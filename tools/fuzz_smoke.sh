#!/bin/sh
# Fixed-seed fuzz smoke: a small deterministic corpus must come out
# clean, and the campaign report must be byte-identical across job
# counts (the per-cell split-stream seeding makes results independent
# of VPIR_JOBS by construction — this is the check that keeps it so).
#
# Usage: fuzz_smoke.sh <build-dir>
# Knobs: VPIR_FUZZ_SEED / VPIR_FUZZ_CELLS override the fixed corpus.
set -eu

BUILD="${1:?usage: fuzz_smoke.sh <build-dir>}"
BIN="$BUILD/tools/vpirfuzz"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

SEED="${VPIR_FUZZ_SEED:-0xf00dfeed}"
CELLS="${VPIR_FUZZ_CELLS:-8}"

"$BIN" --seed "$SEED" --cells "$CELLS" --dir "$TMP/r1" --jobs 1 \
    > "$TMP/report1.txt"
"$BIN" --seed "$SEED" --cells "$CELLS" --dir "$TMP/r4" --jobs 4 \
    > "$TMP/report4.txt"

# Any divergence already failed the script via set -e; now prove the
# determinism claim.
diff -u "$TMP/report1.txt" "$TMP/report4.txt"

echo "fuzz smoke ok: $CELLS cells clean (seed $SEED), report" \
     "byte-identical for 1 vs 4 jobs"
