#!/bin/sh
# Fixed-seed fuzz smoke: a small deterministic corpus must come out
# clean, and the campaign report must be byte-identical across job
# counts (the per-cell split-stream seeding makes results independent
# of VPIR_JOBS by construction — this is the check that keeps it so).
#
# The same corpus then runs again with VPIR_SCHED_XCHECK=1, which
# shadows the event-driven scheduler with the brute-force scans it
# replaced and panics on the first diverging decision. That report
# must be byte-for-byte identical to the fast run: the cross-checked
# scheduler may change nothing observable.
#
# Usage: fuzz_smoke.sh <build-dir>
# Knobs: VPIR_FUZZ_SEED / VPIR_FUZZ_CELLS override the fixed corpus.
set -eu

BUILD="${1:?usage: fuzz_smoke.sh <build-dir>}"
BIN="$BUILD/tools/vpirfuzz"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

SEED="${VPIR_FUZZ_SEED:-0xf00dfeed}"
CELLS="${VPIR_FUZZ_CELLS:-8}"

"$BIN" --seed "$SEED" --cells "$CELLS" --dir "$TMP/r1" --jobs 1 \
    > "$TMP/report1.txt"
"$BIN" --seed "$SEED" --cells "$CELLS" --dir "$TMP/r4" --jobs 4 \
    > "$TMP/report4.txt"

# Any divergence already failed the script via set -e; now prove the
# determinism claim.
diff -u "$TMP/report1.txt" "$TMP/report4.txt"

# Same corpus with the scheduler cross-check armed: brute-force and
# event-driven scheduling must agree on every decision (a mismatch
# panics the cell), and the campaign report must not change a byte.
VPIR_SCHED_XCHECK=1 "$BIN" --seed "$SEED" --cells "$CELLS" \
    --dir "$TMP/rx" --jobs 4 > "$TMP/report_xcheck.txt"
diff -u "$TMP/report4.txt" "$TMP/report_xcheck.txt"

echo "fuzz smoke ok: $CELLS cells clean (seed $SEED), report" \
     "byte-identical for 1 vs 4 jobs and under VPIR_SCHED_XCHECK=1"
