#!/bin/sh
# Performance smoke test (opt-in: ctest -C bench, test "perf_smoke").
#
# Two checks, both against bench_micro:
#
#  1. Warm-start win: BM_CellSetup with VPIR_WARM_CACHE=1 must be
#     measurably cheaper than with the cache off — the cached cell
#     skips assembly and replaces the functional warmup with a COW
#     clone, so anything short of a large win means the warm path
#     regressed.
#
#  2. Simulator throughput: simMIPS of BM_PipelineSimulation/0 must
#     not regress by more than 20% against a recorded baseline. The
#     baseline file is recorded on first run (and after deleting it),
#     so the check is always relative to the same host.
#
# Usage: perf_smoke.sh <build-dir> [baseline-file]
set -u

BUILD_DIR=${1:?usage: perf_smoke.sh <build-dir> [baseline-file]}
BASELINE=${2:-$BUILD_DIR/perf_smoke_baseline.txt}
BENCH=$BUILD_DIR/bench/bench_micro

if [ ! -x "$BENCH" ]; then
    echo "perf_smoke: $BENCH not found or not executable" >&2
    exit 1
fi

# google-benchmark console output: "BM_Name  123 ns  124 ns  5000 ..."
# Field 2 is cpu-independent real time; field 3 its unit.
bench_time_ns() {
    # $1: benchmark filter regex, $2: VPIR_WARM_CACHE value
    VPIR_WARM_CACHE=$2 "$BENCH" \
        --benchmark_filter="$1" --benchmark_min_time=0.2 2>/dev/null |
        awk '$1 ~ /^BM_/ {
            t = $2; u = $3
            if (u == "us") t *= 1000
            else if (u == "ms") t *= 1000000
            else if (u == "s") t *= 1000000000
            print t; exit
        }'
}

fail=0

# ---- 1. warm vs cold cell setup ------------------------------------
cold_ns=$(bench_time_ns '^BM_CellSetup$' 0)
warm_ns=$(bench_time_ns '^BM_CellSetup$' 1)
if [ -z "$cold_ns" ] || [ -z "$warm_ns" ]; then
    echo "perf_smoke: could not parse BM_CellSetup times" >&2
    exit 1
fi
echo "perf_smoke: cell setup cold ${cold_ns}ns, warm ${warm_ns}ns"
# Require warm < 70% of cold. The warm path removes assembly and the
# functional warmup but keeps the (fixed) core-construction cost, so
# the observed ratio is well under 0.7 and shrinks further as warmup
# grows; 0.7 only trips when the warm path has stopped working.
if ! awk -v w="$warm_ns" -v c="$cold_ns" 'BEGIN{exit !(w < 0.7 * c)}'; then
    echo "perf_smoke: FAIL: warm-start setup (${warm_ns}ns) is not" \
         "measurably cheaper than cold (${cold_ns}ns)" >&2
    fail=1
fi

# ---- 2. simulator throughput vs recorded baseline ------------------
mips=$(VPIR_WARM_CACHE=1 "$BENCH" \
    --benchmark_filter='^BM_PipelineSimulation/0$' \
    --benchmark_min_time=0.5 2>/dev/null |
    awk '$1 ~ /^BM_/ { if (match($0, /simMIPS=[0-9.]+[kM]?/)) {
        v = substr($0, RSTART + 8, RLENGTH - 8)
        mult = 1
        if (v ~ /k$/) { mult = 1000; sub(/k$/, "", v) }
        else if (v ~ /M$/) { mult = 1000000; sub(/M$/, "", v) }
        print v * mult; exit
    } }')
if [ -z "$mips" ]; then
    echo "perf_smoke: could not parse simMIPS" >&2
    exit 1
fi
if [ ! -f "$BASELINE" ]; then
    echo "$mips" > "$BASELINE"
    echo "perf_smoke: recorded simMIPS baseline $mips -> $BASELINE"
else
    base=$(cat "$BASELINE")
    echo "perf_smoke: simMIPS $mips (baseline $base)"
    if ! awk -v m="$mips" -v b="$base" 'BEGIN{exit !(m >= 0.8 * b)}'; then
        echo "perf_smoke: FAIL: simMIPS $mips regressed >20% below" \
             "baseline $base (delete $BASELINE to re-record)" >&2
        fail=1
    fi
fi

exit $fail
