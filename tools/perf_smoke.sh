#!/bin/sh
# Performance smoke test (opt-in: ctest -C bench, test "perf_smoke").
#
# Three checks:
#
#  1. Warm-start win: BM_CellSetup with VPIR_WARM_CACHE=1 must be
#     measurably cheaper than with the cache off — the cached cell
#     skips assembly and replaces the functional warmup with a COW
#     clone, so anything short of a large win means the warm path
#     regressed.
#
#  2. Simulator throughput: simMIPS of BM_PipelineSimulation/0 must
#     not regress by more than 20% against a recorded baseline. The
#     baseline file is recorded on first run (and after deleting it),
#     so the check is always relative to the same host.
#
#  3. Event-driven scheduler win: the fig3 sweep with the simulated
#     caches disabled (VPIR_CACHE_DISABLE=1, long miss latency) is
#     stall-dominated — most cycles are idle, and the event-driven
#     core skips them while the brute-force scheduler walks the
#     window every cycle. Aggregate simMIPS of the default scheduler
#     must be >= 1.5x VPIR_SCHED_BRUTE=1 on that sweep, and the
#     per-stage profiler counters must appear in the bench_timing
#     JSON. No result cache is used: every cell simulates.
#
# Usage: perf_smoke.sh <build-dir> [baseline-file]
set -u

BUILD_DIR=${1:?usage: perf_smoke.sh <build-dir> [baseline-file]}
BASELINE=${2:-$BUILD_DIR/perf_smoke_baseline.txt}
BENCH=$BUILD_DIR/bench/bench_micro

if [ ! -x "$BENCH" ]; then
    echo "perf_smoke: $BENCH not found or not executable" >&2
    exit 1
fi

# google-benchmark console output: "BM_Name  123 ns  124 ns  5000 ..."
# Field 2 is cpu-independent real time; field 3 its unit.
bench_time_ns() {
    # $1: benchmark filter regex, $2: VPIR_WARM_CACHE value
    VPIR_WARM_CACHE=$2 "$BENCH" \
        --benchmark_filter="$1" --benchmark_min_time=0.2 2>/dev/null |
        awk '$1 ~ /^BM_/ {
            t = $2; u = $3
            if (u == "us") t *= 1000
            else if (u == "ms") t *= 1000000
            else if (u == "s") t *= 1000000000
            print t; exit
        }'
}

fail=0

# ---- 1. warm vs cold cell setup ------------------------------------
cold_ns=$(bench_time_ns '^BM_CellSetup$' 0)
warm_ns=$(bench_time_ns '^BM_CellSetup$' 1)
if [ -z "$cold_ns" ] || [ -z "$warm_ns" ]; then
    echo "perf_smoke: could not parse BM_CellSetup times" >&2
    exit 1
fi
echo "perf_smoke: cell setup cold ${cold_ns}ns, warm ${warm_ns}ns"
# Require warm < 70% of cold. The warm path removes assembly and the
# functional warmup but keeps the (fixed) core-construction cost, so
# the observed ratio is well under 0.7 and shrinks further as warmup
# grows; 0.7 only trips when the warm path has stopped working.
if ! awk -v w="$warm_ns" -v c="$cold_ns" 'BEGIN{exit !(w < 0.7 * c)}'; then
    echo "perf_smoke: FAIL: warm-start setup (${warm_ns}ns) is not" \
         "measurably cheaper than cold (${cold_ns}ns)" >&2
    fail=1
fi

# ---- 2. simulator throughput vs recorded baseline ------------------
mips=$(VPIR_WARM_CACHE=1 "$BENCH" \
    --benchmark_filter='^BM_PipelineSimulation/0$' \
    --benchmark_min_time=0.5 2>/dev/null |
    awk '$1 ~ /^BM_/ { if (match($0, /simMIPS=[0-9.]+[kM]?/)) {
        v = substr($0, RSTART + 8, RLENGTH - 8)
        mult = 1
        if (v ~ /k$/) { mult = 1000; sub(/k$/, "", v) }
        else if (v ~ /M$/) { mult = 1000000; sub(/M$/, "", v) }
        print v * mult; exit
    } }')
if [ -z "$mips" ]; then
    echo "perf_smoke: could not parse simMIPS" >&2
    exit 1
fi
if [ ! -f "$BASELINE" ]; then
    echo "$mips" > "$BASELINE"
    echo "perf_smoke: recorded simMIPS baseline $mips -> $BASELINE"
else
    base=$(cat "$BASELINE")
    echo "perf_smoke: simMIPS $mips (baseline $base)"
    if ! awk -v m="$mips" -v b="$base" 'BEGIN{exit !(m >= 0.8 * b)}'; then
        echo "perf_smoke: FAIL: simMIPS $mips regressed >20% below" \
             "baseline $base (delete $BASELINE to re-record)" >&2
        fail=1
    fi
fi

# ---- 3. event-driven scheduler vs brute-force on uncached fig3 -----
FIG3=$BUILD_DIR/bench/bench_fig3
if [ ! -x "$FIG3" ]; then
    echo "perf_smoke: $FIG3 not found or not executable" >&2
    exit 1
fi

# Aggregate MIPS of one fig3 sweep run; $1 = extra env assignment (or
# empty), $2 = bench_timing output path. VPIR_RESULT_CACHE is cleared
# so every cell actually simulates.
fig3_mips() {
    env -u VPIR_RESULT_CACHE $1 \
        VPIR_CACHE_DISABLE=1 VPIR_MISS_LATENCY=50 \
        VPIR_ROB_ENTRIES=256 VPIR_LSQ_ENTRIES=256 \
        VPIR_BENCH_INSTS=100000 VPIR_JOBS=1 VPIR_PROFILE=1 \
        VPIR_TIMING_JSON="$2" "$FIG3" >/dev/null 2>&1
    awk 'match($0, /"mips": [0-9.]+/) {
        print substr($0, RSTART + 8, RLENGTH - 8); exit
    }' "$2"
}

# Interleaved repetitions absorb scheduler noise on small shared
# hosts: the check passes as soon as one pair clears the bar.
sched_ok=0
rep=1
while [ $rep -le 3 ]; do
    fast_mips=$(fig3_mips VPIR_SCHED_BRUTE=0 \
        "$BUILD_DIR/bench_timing.perf_smoke_fast.json")
    brute_mips=$(fig3_mips VPIR_SCHED_BRUTE=1 \
        "$BUILD_DIR/bench_timing.perf_smoke_brute.json")
    if [ -z "$fast_mips" ] || [ -z "$brute_mips" ]; then
        echo "perf_smoke: could not parse fig3 aggregate MIPS" >&2
        exit 1
    fi
    echo "perf_smoke: uncached fig3 rep $rep:" \
         "event-driven ${fast_mips} MIPS, brute ${brute_mips} MIPS"
    if awk -v f="$fast_mips" -v b="$brute_mips" \
        'BEGIN{exit !(f >= 1.5 * b)}'; then
        sched_ok=1
        break
    fi
    rep=$((rep + 1))
done
if [ $sched_ok -ne 1 ]; then
    echo "perf_smoke: FAIL: event-driven scheduler (${fast_mips}" \
         "MIPS) is not >= 1.5x brute-force (${brute_mips} MIPS) on" \
         "the cache-disabled fig3 sweep" >&2
    fail=1
fi

# The per-stage profiler must land its counters in the timing JSON.
for key in issue_ns idle_skipped_cycles cycles_run; do
    if ! grep -q "\"$key\":" \
        "$BUILD_DIR/bench_timing.perf_smoke_fast.json"; then
        echo "perf_smoke: FAIL: profiler counter '$key' missing from" \
             "bench_timing JSON" >&2
        fail=1
    fi
done

exit $fail
