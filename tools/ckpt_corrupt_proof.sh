#!/bin/sh
# Corruption-detection proof (registered with WILL_FAIL): exits
# NON-ZERO exactly when the checkpoint corruption machinery works.
#
# Run 1 writes checkpoints with a planted single-bit flip
# (VPIR_FAULT_CKPT_BITFLIP) and is SIGKILLed mid-run. Run 2 is then
# *forbidden* to cold-start (VPIR_CKPT_MUST_RESUME=1): it must notice
# the flip via the bundle CRC, quarantine every candidate to `.bad`,
# and fail the cell loudly. If instead the corrupt bundle restores
# "successfully" or the run silently completes, the proof is broken
# and the script exits 0 — which WILL_FAIL reports as a test failure.
#
# Usage: ckpt_corrupt_proof.sh <build-dir>
set -eu

BUILD="${1:?usage: ckpt_corrupt_proof.sh <build-dir>}"
BIN="$BUILD/tools/vpirsim"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

ARGS="--config hybrid --max-insts 2000000 --ckpt-insts 100000"
WL=gcc

# Run 1: persist bit-flipped checkpoints, then die mid-run.
VPIR_FAULT_CKPT_BITFLIP=1 \
    "$BIN" $ARGS --ckpt-dir "$TMP/ck" "$WL" > /dev/null 2>&1 &
pid=$!
i=0
while [ "$i" -lt 500 ]; do
    if ls "$TMP"/ck/*.ckpt >/dev/null 2>&1; then
        break
    fi
    i=$((i + 1))
    sleep 0.02
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if ! ls "$TMP"/ck/*.ckpt >/dev/null 2>&1; then
    echo "corrupt-proof BROKEN: no checkpoint was ever written"
    exit 0
fi

# Run 2: must detect, quarantine, and fail — never cold-start.
if VPIR_CKPT_MUST_RESUME=1 VPIR_CELL_RETRIES=0 \
    "$BIN" $ARGS --ckpt-dir "$TMP/ck" "$WL" \
    > "$TMP/out.txt" 2> "$TMP/err.txt"; then
    echo "corrupt-proof BROKEN: run completed despite planted bit flip"
    cat "$TMP/err.txt"
    exit 0
fi
if ! grep -q "corrupt checkpoint" "$TMP/err.txt"; then
    echo "corrupt-proof BROKEN: cell failed without a quarantine notice"
    cat "$TMP/err.txt"
    exit 0
fi
if ! ls "$TMP"/ck/*.bad >/dev/null 2>&1; then
    echo "corrupt-proof BROKEN: no .bad quarantine file left on disk"
    exit 0
fi

echo "ckpt corruption proof holds: bit-flipped bundle rejected by CRC," \
     "quarantined to .bad, cell failed under VPIR_CKPT_MUST_RESUME" \
     "(exiting non-zero for WILL_FAIL)"
exit 1
