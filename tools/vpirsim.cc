/**
 * @file
 * vpirsim — command-line front end for the simulator: pick a
 * workload and a configuration, run it, dump statistics.
 *
 * Usage:
 *   vpirsim [options] <workload>
 *     <workload>            go|m88ksim|ijpeg|perl|vortex|gcc|compress
 *     --config NAME         base (default) | ir | ir-late | vp | lvp
 *                           | hybrid
 *     --branch sb|nsb       VP branch resolution (default sb)
 *     --reexec me|nme       VP re-execution policy (default me)
 *     --verify N            VP verification latency (default 0)
 *     --max-insts N         committed-instruction limit
 *     --max-cycles N        cycle limit
 *     --warmup N            functional fast-forward instructions
 *     --scale F             workload scale factor (default 1.0)
 *     --stats               dump the full named statistics set
 *     --isolate             run the cell in a forked child
 *                           (VPIR_ISOLATE=1): a simulator crash or
 *                           hang is reported instead of inherited
 *     --timeout-ms N        per-cell wall-clock deadline
 *                           (VPIR_CELL_TIMEOUT_MS)
 *     --ckpt-insts N        drain-and-checkpoint every N committed
 *                           instructions (VPIR_CKPT_INSTS)
 *     --ckpt-dir D          persist checkpoints to D and resume the
 *                           newest valid one (VPIR_CKPT_DIR)
 *     --no-resume           ignore existing checkpoints; start cold
 *                           (VPIR_CKPT_RESUME=0)
 *     --repro BUNDLE.json   replay a fuzz repro bundle instead of a
 *                           workload: re-run its program under its
 *                           exact configuration and verify the bundled
 *                           divergence reproduces (exit 0 iff it does)
 *
 * Runs go through the sweep engine, so VPIR_RESULT_CACHE=<dir> makes
 * repeated invocations with identical parameters instant. Host wall
 * time and simulated MIPS are reported on stderr.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/repro.hh"
#include "sim/simulator.hh"
#include "sweep/sweep.hh"

using namespace vpir;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: vpirsim [--config base|ir|ir-late|vp|lvp|hybrid]\n"
        "               [--branch sb|nsb] [--reexec me|nme]\n"
        "               [--verify N] [--max-insts N] [--max-cycles N]\n"
        "               [--warmup N] [--scale F] [--stats]\n"
        "               [--isolate] [--timeout-ms N]\n"
        "               [--ckpt-insts N] [--ckpt-dir D] [--no-resume]\n"
        "               <workload>\n"
        "       vpirsim --repro <bundle.json>\n");
    std::exit(1);
}

/** Replay a fuzz repro bundle: exit 0 iff the bundled divergence
 *  reproduces identically. */
int
replayRepro(const std::string &path)
{
    fuzz::ReproBundle b;
    std::string err;
    if (!fuzz::loadReproBundle(path, b, err)) {
        std::fprintf(stderr, "vpirsim: %s\n", err.c_str());
        return 1;
    }
    std::printf("bundle      %s\n", path.c_str());
    std::printf("workload    %s (generator rev %llu, seed "
                "0x%016llx)\n",
                b.workload.c_str(),
                static_cast<unsigned long long>(b.generatorRevision),
                static_cast<unsigned long long>(b.seed));
    if (!b.env.empty())
        std::printf("env         %s\n", b.env.c_str());
    std::printf("expected    [%s] %s\n", b.kind.c_str(),
                b.detail.c_str());

    fuzz::DiffOutcome got = fuzz::replayBundle(b);
    if (!got.diverged) {
        std::printf("replay      CLEAN — divergence did not "
                    "reproduce\n");
        return 1;
    }
    std::printf("replayed    [%s] %s\n", got.kind.c_str(),
                got.detail.c_str());
    if (got.kind != b.kind || got.detail != b.detail) {
        std::printf("verdict     DIFFERENT divergence (expected "
                    "[%s] %s)\n",
                    b.kind.c_str(), b.detail.c_str());
        return 1;
    }
    std::printf("verdict     reproduced identically\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string config = "base";
    BranchResolution branch = BranchResolution::Speculative;
    ReexecPolicy reexec = ReexecPolicy::Multiple;
    unsigned verify = 0;
    uint64_t max_insts = 1000000;
    uint64_t max_cycles = UINT64_MAX;
    uint64_t warmup = 0;
    WorkloadScale scale;
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--config") {
            config = next();
        } else if (arg == "--branch") {
            std::string v = next();
            branch = v == "nsb" ? BranchResolution::NonSpeculative
                                : BranchResolution::Speculative;
        } else if (arg == "--reexec") {
            std::string v = next();
            reexec = v == "nme" ? ReexecPolicy::Single
                                : ReexecPolicy::Multiple;
        } else if (arg == "--verify") {
            verify = static_cast<unsigned>(std::strtoul(next(),
                                                        nullptr, 10));
        } else if (arg == "--max-insts") {
            max_insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-cycles") {
            max_cycles = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--scale") {
            scale.factor = std::strtod(next(), nullptr);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--isolate") {
            // The engine reads the environment when it is first
            // constructed, which happens after argument parsing.
            setenv("VPIR_ISOLATE", "1", 1);
        } else if (arg == "--timeout-ms") {
            setenv("VPIR_CELL_TIMEOUT_MS", next(), 1);
        } else if (arg == "--ckpt-insts") {
            // Routed through the environment like --isolate: the
            // interval lands in CoreParams via applyHardeningEnv(),
            // the persistence knobs in ckptConfigFromEnv().
            setenv("VPIR_CKPT_INSTS", next(), 1);
        } else if (arg == "--ckpt-dir") {
            setenv("VPIR_CKPT_DIR", next(), 1);
        } else if (arg == "--no-resume") {
            setenv("VPIR_CKPT_RESUME", "0", 1);
        } else if (arg == "--repro") {
            return replayRepro(next());
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            workload = arg;
        }
    }
    if (workload.empty())
        usage();

    CoreParams params;
    if (config == "base") {
        params = baseConfig();
    } else if (config == "ir") {
        params = irConfig();
    } else if (config == "ir-late") {
        params = irConfig(IrValidation::Late);
    } else if (config == "vp") {
        params = vpConfig(VpScheme::Magic, reexec, branch, verify);
    } else if (config == "lvp") {
        params = vpConfig(VpScheme::Lvp, reexec, branch, verify);
    } else if (config == "hybrid") {
        params = hybridConfig(VpScheme::Magic, branch, verify);
    } else {
        usage();
    }
    params = withLimits(params, max_insts, max_cycles);
    params.warmupInsts = warmup;
    applyHardeningEnv(params);

    sweep::SweepCell cell{workload, config, params, scale};
    sweep::SweepEngine &eng = sweep::SweepEngine::global();
    auto t0 = std::chrono::steady_clock::now();
    const CoreStats &st = eng.get(cell);
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    bool cached = eng.cellsFromDiskCache() > 0;

    std::vector<sweep::CellFailure> fails = eng.failures();
    if (!fails.empty()) {
        for (const sweep::CellFailure &f : fails) {
            std::fprintf(stderr,
                         "vpirsim: simulation FAILED (%d attempt%s):\n"
                         "%s\n",
                         f.attempts, f.attempts == 1 ? "" : "s",
                         f.error.c_str());
        }
        return 1;
    }

    std::printf("workload    %s (%s)\n", workload.c_str(),
                sweep::cellWorkloadInput(eng, cell).c_str());
    std::printf("config      %s\n", config.c_str());
    std::printf("cycles      %llu\n",
                static_cast<unsigned long long>(st.cycles));
    std::printf("insts       %llu\n",
                static_cast<unsigned long long>(st.committedInsts));
    std::printf("IPC         %.4f\n", st.ipc());
    std::printf("br pred     %.2f%%\n",
                st.condBranches
                    ? 100.0 * (1.0 -
                               static_cast<double>(
                                   st.condMispredicted) /
                                   static_cast<double>(
                                       st.condBranches))
                    : 0.0);
    std::printf("squashes    %llu (%llu spurious)\n",
                static_cast<unsigned long long>(st.branchSquashes),
                static_cast<unsigned long long>(st.spuriousSquashes));
    if (st.reusedResults) {
        std::printf("reused      %.2f%% results, %.2f%% addresses\n",
                    pct(static_cast<double>(st.reusedResults),
                        static_cast<double>(st.committedInsts)),
                    pct(static_cast<double>(st.reusedAddrs),
                        static_cast<double>(st.committedMemOps)));
    }
    if (st.vpResultPredicted) {
        std::printf("predicted   %.2f%% correct, %.2f%% wrong\n",
                    pct(static_cast<double>(st.vpResultCorrect),
                        static_cast<double>(st.committedInsts)),
                    pct(static_cast<double>(st.vpResultWrong),
                        static_cast<double>(st.committedInsts)));
    }

    if (dump_stats) {
        StatSet out;
        st.exportTo(out);
        std::printf("\n%s", out.dump().c_str());
    }

    std::fprintf(stderr, "[sweep] host wall %.3f s, %.2f simulated MIPS%s\n",
                 wall,
                 wall > 0.0
                     ? static_cast<double>(st.committedInsts) / wall / 1e6
                     : 0.0,
                 cached ? " (from result cache)" : "");

    // Per-stage cycle profile (VPIR_PROFILE=1), stderr like all other
    // host-dependent timing.
    for (const sweep::CellTiming &t : eng.timings()) {
        if (!t.profile.enabled)
            continue;
        std::fprintf(stderr, "[profile] %s/%s:", t.workload.c_str(),
                     t.label.c_str());
        forEachProfileField(t.profile,
                            [](const char *name, const uint64_t &v) {
                                std::fprintf(
                                    stderr, " %s=%llu", name,
                                    static_cast<unsigned long long>(v));
                            });
        std::fprintf(stderr, "\n");
    }
    return 0;
}
