/**
 * @file
 * vpirfuzz — differential fuzzing campaign driver.
 *
 * Usage:
 *   vpirfuzz [options]
 *     --seed N              campaign base seed (VPIR_FUZZ_SEED)
 *     --cells N             number of fuzz cells (VPIR_FUZZ_CELLS)
 *     --dir PATH            where repro bundles are published (default .)
 *     --jobs N              worker threads (default VPIR_JOBS)
 *     --no-shrink           bundle failures unshrunk
 *     --max-evals N         shrinker budget per failure
 *     --require-shrunk-max N  proof mode: exit non-zero only when
 *                           divergences were found AND every one
 *                           shrank to <= N instructions. A shrink
 *                           over budget demotes the exit to 0 with a
 *                           loud message, so a WILL_FAIL ctest on
 *                           this command passes exactly when "a
 *                           planted fault is caught and shrinks
 *                           small".
 *
 * Exit status: 0 = no divergences, 1 = divergences found (bundles
 * written). Every cell is an independent split stream of the base
 * seed and results print in cell-index order, so output is identical
 * for any --jobs.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/campaign.hh"

using namespace vpir;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: vpirfuzz [--seed N] [--cells N] [--dir PATH]\n"
                 "                [--jobs N] [--no-shrink]\n"
                 "                [--max-evals N]\n"
                 "                [--require-shrunk-max N]\n");
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    fuzz::FuzzCampaignOptions opt = fuzz::campaignOptionsFromEnv();
    uint64_t require_shrunk_max = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--seed") {
            opt.baseSeed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--cells") {
            opt.cells = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--dir") {
            opt.reproDir = next();
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--no-shrink") {
            opt.shrink = false;
        } else if (arg == "--max-evals") {
            opt.shrinkMaxEvals = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--require-shrunk-max") {
            require_shrunk_max = std::strtoull(next(), nullptr, 10);
        } else {
            usage();
        }
    }

    std::fprintf(stderr,
                 "vpirfuzz: %u cell(s), base seed 0x%016llx, repro "
                 "dir '%s'\n",
                 opt.cells,
                 static_cast<unsigned long long>(opt.baseSeed),
                 opt.reproDir.c_str());

    fuzz::FuzzCampaignResult res = fuzz::runFuzzCampaign(opt, stdout);

    std::fprintf(stderr, "vpirfuzz: %u/%zu cell(s) diverged\n",
                 res.failures, res.cells.size());

    if (require_shrunk_max > 0) {
        if (res.failures == 0) {
            std::fprintf(stderr,
                         "vpirfuzz: proof FAILED — no divergence "
                         "found to shrink\n");
            return 0;
        }
        for (const fuzz::FuzzCellResult &c : res.cells) {
            if (!c.outcome.diverged)
                continue;
            if (c.shrunk.instrsAfter > require_shrunk_max) {
                std::fprintf(stderr,
                             "vpirfuzz: proof FAILED — %s shrank to "
                             "%zu insts, budget %llu\n",
                             c.workload.c_str(), c.shrunk.instrsAfter,
                             static_cast<unsigned long long>(
                                 require_shrunk_max));
                return 0;
            }
        }
        std::fprintf(stderr,
                     "vpirfuzz: proof ok — every divergence shrank "
                     "to <= %llu insts\n",
                     static_cast<unsigned long long>(
                         require_shrunk_max));
        return 1;
    }

    return res.failures ? 1 : 0;
}
