#!/bin/sh
# Checkpoint-resume smoke: SIGKILL an isolated cell mid-run, let the
# retry ladder resume it from its newest on-disk checkpoint, and prove
# the final stdout is byte-identical to an uninterrupted run.
#
# The kill is aimed at the forked cell worker (not the harness), so a
# single invocation exercises the whole ladder: attempt 1 dies by
# SIGKILL mid-simulation, attempt 2 restores the checkpoint the dead
# worker left behind and carries the cell to completion.
#
# Usage: ckpt_smoke.sh <build-dir>
set -eu

BUILD="${1:?usage: ckpt_smoke.sh <build-dir>}"
BIN="$BUILD/tools/vpirsim"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

ARGS="--config hybrid --max-insts 2000000 --ckpt-insts 100000"
WL=gcc

# Uninterrupted baseline. The drain interval is part of the simulated
# machine, so it must be identical; only persistence is off.
"$BIN" $ARGS "$WL" > "$TMP/base.txt" 2>/dev/null

# Interrupted run: wait for the first checkpoint to land (so the kill
# can never be vacuous), then SIGKILL the isolated cell worker.
VPIR_ISOLATE=1 VPIR_CELL_RETRIES=2 \
    "$BIN" $ARGS --ckpt-dir "$TMP/ck" "$WL" \
    > "$TMP/resumed.txt" 2> "$TMP/resumed.err" &
pid=$!

i=0
while [ "$i" -lt 500 ]; do
    if ls "$TMP"/ck/*.ckpt >/dev/null 2>&1; then
        break
    fi
    i=$((i + 1))
    sleep 0.02
done
if ! ls "$TMP"/ck/*.ckpt >/dev/null 2>&1; then
    echo "ckpt smoke FAILED: no checkpoint ever appeared"
    kill -9 "$pid" 2>/dev/null || true
    exit 1
fi

child="$(pgrep -P "$pid" || true)"
if [ -z "$child" ]; then
    echo "ckpt smoke FAILED: no isolated cell worker to kill"
    kill -9 "$pid" 2>/dev/null || true
    exit 1
fi
kill -9 $child 2>/dev/null || true

wait "$pid" || {
    echo "ckpt smoke FAILED: harness exited non-zero after worker kill"
    cat "$TMP/resumed.err"
    exit 1
}

# A successful retry is silent about the kill (failures only print
# when the ladder is exhausted), but the resume message can only come
# from a later attempt restoring what the dead worker left behind —
# attempt 1 started with an empty checkpoint dir.
grep -q "\[ckpt\] resumed" "$TMP/resumed.err" || {
    echo "ckpt smoke FAILED: retry did not resume from a checkpoint"
    cat "$TMP/resumed.err"
    exit 1
}

diff -u "$TMP/base.txt" "$TMP/resumed.txt"

echo "ckpt smoke ok: cell worker SIGKILLed mid-run, retry resumed" \
     "from its checkpoint, final stats byte-identical"
