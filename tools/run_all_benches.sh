#!/bin/sh
# Run every experiment harness in sequence. A failing harness (e.g. a
# sweep cell that panicked — the harnesses exit non-zero when any cell
# fails) no longer aborts the remaining benches: every harness runs,
# the failures are summarised at the end, and the script exits 1 if
# there were any. Usage:
#
#   tools/run_all_benches.sh [build-dir]
#
# The usual knobs apply (VPIR_JOBS, VPIR_BENCH_INSTS, VPIR_BENCH_SCALE,
# VPIR_RESULT_CACHE, VPIR_TIMING_JSON, VPIR_CHECK, VPIR_FAULT_*).
# Wired into ctest as the opt-in "bench" configuration: ctest -C bench.
set -u

BUILD=${1:-build}
if [ ! -d "$BUILD/bench" ]; then
    echo "run_all_benches: no bench binaries under '$BUILD'" >&2
    echo "usage: $0 [build-dir]" >&2
    exit 2
fi

BENCHES="bench_table1 bench_table2 bench_table3 bench_table4
         bench_table5 bench_table6 bench_fig3 bench_fig4 bench_fig5
         bench_fig6 bench_fig7 bench_fig8 bench_fig9 bench_fig10
         bench_ablation bench_hybrid"

FAILED=""
for b in $BENCHES; do
    echo "==== $b ===="
    if ! "$BUILD/bench/$b"; then
        echo "run_all_benches: $b exited non-zero" >&2
        FAILED="$FAILED $b"
    fi
done

echo "==== bench_micro ===="
if ! "$BUILD/bench/bench_micro" --benchmark_min_time=0.01; then
    echo "run_all_benches: bench_micro exited non-zero" >&2
    FAILED="$FAILED bench_micro"
fi

if [ -n "$FAILED" ]; then
    echo "run_all_benches: FAILED harnesses:$FAILED" >&2
    exit 1
fi
echo "run_all_benches: all harnesses completed"
