#!/bin/sh
# Run every experiment harness in sequence. A failing harness (e.g. a
# sweep cell that panicked — the harnesses exit non-zero when any cell
# fails) no longer aborts the remaining benches: every harness runs,
# the failures are summarised at the end, and the script exits 1 if
# there were any. Usage:
#
#   tools/run_all_benches.sh [--isolate] [build-dir]
#
#   --isolate   export VPIR_ISOLATE=1: each sweep cell runs in a
#               forked child, so a crashing or hanging cell is
#               reported as a CellFailure instead of killing the
#               harness.
#
# The usual knobs apply (VPIR_JOBS, VPIR_BENCH_INSTS, VPIR_BENCH_SCALE,
# VPIR_RESULT_CACHE, VPIR_TIMING_JSON, VPIR_CHECK, VPIR_FAULT_*,
# VPIR_ISOLATE, VPIR_CELL_TIMEOUT_MS, VPIR_CELL_RLIMIT_MB). Each
# harness writes its own bench_timing.<harness>.json unless
# VPIR_TIMING_JSON overrides the path.
#
# SIGINT/SIGTERM stop gracefully: the harness in flight flushes its
# completed cells to the result cache (if configured) and exits
# 128+sig, the script reports which harnesses completed, and a rerun
# with the same VPIR_RESULT_CACHE resumes from the missing cells.
# Wired into ctest as the opt-in "bench" configuration: ctest -C bench.
set -u

ISOLATE=0
BUILD=build
for arg; do
    case "$arg" in
        --isolate) ISOLATE=1 ;;
        --help|-h)
            echo "usage: $0 [--isolate] [build-dir]" >&2
            exit 2 ;;
        *) BUILD=$arg ;;
    esac
done

if [ ! -d "$BUILD/bench" ]; then
    echo "run_all_benches: no bench binaries under '$BUILD'" >&2
    echo "usage: $0 [--isolate] [build-dir]" >&2
    exit 2
fi

if [ "$ISOLATE" = 1 ]; then
    VPIR_ISOLATE=1
    export VPIR_ISOLATE
fi

BENCHES="bench_table1 bench_table2 bench_table3 bench_table4
         bench_table5 bench_table6 bench_fig3 bench_fig4 bench_fig5
         bench_fig6 bench_fig7 bench_fig8 bench_fig9 bench_fig10
         bench_ablation bench_hybrid"

# The trap only records the signal; the shell runs it after the
# harness in flight has finished its own graceful shutdown.
INTERRUPTED=0
trap 'INTERRUPTED=1' INT TERM

FAILED=""
COMPLETED=""
for b in $BENCHES; do
    [ "$INTERRUPTED" = 1 ] && break
    echo "==== $b ===="
    if "$BUILD/bench/$b"; then
        COMPLETED="$COMPLETED $b"
    else
        rc=$?
        if [ "$rc" -ge 128 ]; then
            # Killed by a signal (130 = SIGINT): graceful interrupt,
            # not a bench failure.
            INTERRUPTED=1
            break
        fi
        echo "run_all_benches: $b exited non-zero" >&2
        FAILED="$FAILED $b"
    fi
done

if [ "$INTERRUPTED" = 1 ]; then
    echo "run_all_benches: interrupted" >&2
    echo "run_all_benches: completed harnesses:${COMPLETED:- (none)}" >&2
    [ -n "$FAILED" ] &&
        echo "run_all_benches: FAILED harnesses:$FAILED" >&2
    echo "run_all_benches: rerun with the same VPIR_RESULT_CACHE to" \
         "resume the remaining cells" >&2
    exit 130
fi

echo "==== bench_micro ===="
if ! "$BUILD/bench/bench_micro" --benchmark_min_time=0.01; then
    echo "run_all_benches: bench_micro exited non-zero" >&2
    FAILED="$FAILED bench_micro"
fi

if [ -n "$FAILED" ]; then
    echo "run_all_benches: FAILED harnesses:$FAILED" >&2
    exit 1
fi
echo "run_all_benches: all harnesses completed"
