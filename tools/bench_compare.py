#!/usr/bin/env python3
"""Compare two bench_timing JSON files cell by cell.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Cells are matched on (workload, label). For each pair the simulated
MIPS delta is printed; cells served from the disk result cache (or
with no throughput recorded) carry no timing signal and are skipped.
Exits 1 when any matched cell -- or the aggregate -- regresses by
more than the threshold (default 20%), so CI can gate on it.
"""

import argparse
import json
import signal
import sys

signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def timed_cells(doc):
    """(workload, label) -> mips, for cells that actually ran."""
    out = {}
    for cell in doc.get("cells", []):
        mips = cell.get("mips")
        if cell.get("disk_cache") or not mips:
            continue
        out[(cell["workload"], cell["label"])] = mips
    return out


def main():
    ap = argparse.ArgumentParser(
        description="diff two bench_timing JSON files")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="regression threshold in percent (default 20)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base = timed_cells(base_doc)
    cur = timed_cells(cur_doc)

    common = sorted(base.keys() & cur.keys())
    only_base = sorted(base.keys() - cur.keys())
    only_cur = sorted(cur.keys() - base.keys())
    if not common:
        sys.exit("bench_compare: no timed cells in common")

    regressed = []
    print(f"{'workload':<10} {'label':<14} {'base':>8} {'cur':>8} "
          f"{'delta':>8}")
    for key in common:
        b, c = base[key], cur[key]
        delta = 100.0 * (c - b) / b
        flag = ""
        if delta < -args.threshold:
            flag = "  REGRESSED"
            regressed.append(key)
        print(f"{key[0]:<10} {key[1]:<14} {b:>8.3f} {c:>8.3f} "
              f"{delta:>+7.1f}%{flag}")

    for key in only_base:
        print(f"{key[0]:<10} {key[1]:<14} only in baseline")
    for key in only_cur:
        print(f"{key[0]:<10} {key[1]:<14} only in current")

    ab = base_doc.get("aggregate", {}).get("mips")
    ac = cur_doc.get("aggregate", {}).get("mips")
    agg_regressed = False
    if ab and ac:
        delta = 100.0 * (ac - ab) / ab
        agg_regressed = delta < -args.threshold
        print(f"{'aggregate':<25} {ab:>8.3f} {ac:>8.3f} {delta:>+7.1f}%"
              f"{'  REGRESSED' if agg_regressed else ''}")

    if regressed or agg_regressed:
        n = len(regressed) + (1 if agg_regressed else 0)
        print(f"bench_compare: {n} regression(s) beyond "
              f"{args.threshold:.0f}%", file=sys.stderr)
        return 1
    print(f"bench_compare: {len(common)} cell(s) within "
          f"{args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
