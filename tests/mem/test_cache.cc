/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"

using namespace vpir;

namespace
{

CacheParams
smallCache()
{
    // 4 sets x 2 ways x 32B lines = 256 bytes, easy to reason about.
    return CacheParams{256, 2, 32, 1, 6};
}

} // anonymous namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_EQ(c.access(0x1000), 7u); // 1 + 6 miss
    EXPECT_EQ(c.access(0x1000), 1u); // hit
    EXPECT_EQ(c.access(0x101f), 1u); // same 32B line
    EXPECT_EQ(c.access(0x1020), 7u); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, TwoWaysHoldConflictingLines)
{
    Cache c(smallCache());
    // Same set: addresses 4 sets * 32B = 128 bytes apart.
    c.access(0x0000);
    c.access(0x0080);
    EXPECT_EQ(c.access(0x0000), 1u);
    EXPECT_EQ(c.access(0x0080), 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    c.access(0x0000); // way A
    c.access(0x0080); // way B
    c.access(0x0000); // touch A
    c.access(0x0100); // evicts B (LRU)
    EXPECT_EQ(c.access(0x0000), 1u);
    EXPECT_EQ(c.access(0x0080), 7u); // was evicted
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x40));
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_FALSE(c.probe(0x40 + 256));
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(smallCache());
    c.access(0x40);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(Cache, SameLine)
{
    Cache c(smallCache());
    EXPECT_TRUE(c.sameLine(0x1000, 0x101f));
    EXPECT_FALSE(c.sameLine(0x101f, 0x1020));
}

TEST(Cache, Table1Geometry)
{
    // The paper's 64KB 2-way 32B cache: lines 64KB/32 = 2048, sets
    // 1024. Two addresses 32KB apart share a set; three conflict.
    Cache c(CacheParams{64 * 1024, 2, 32, 1, 6});
    c.access(0x00000);
    c.access(0x08000);
    c.access(0x10000);
    EXPECT_EQ(c.misses(), 3u);
    c.access(0x08000);
    c.access(0x10000);
    EXPECT_EQ(c.misses(), 3u); // both still resident
    c.access(0x00000);         // evicted by the two above
    EXPECT_EQ(c.misses(), 4u);
}

/** Property: a direct-mapped cache modelled against a reference map. */
TEST(Cache, DirectMappedMatchesReference)
{
    Cache c(CacheParams{1024, 1, 32, 1, 6});
    std::vector<int64_t> ref(1024 / 32, -1);
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        Addr a = static_cast<Addr>(rng.below(1 << 14)) & ~3u;
        uint32_t line = a / 32;
        uint32_t set = line % ref.size();
        bool hit = ref[set] == static_cast<int64_t>(line);
        unsigned lat = c.access(a);
        ASSERT_EQ(lat == 1, hit) << "addr " << a;
        ref[set] = line;
    }
}

/** Property: hit rate of a big cache on a small working set is ~1. */
TEST(Cache, SmallWorkingSetHits)
{
    Cache c(CacheParams{64 * 1024, 2, 32, 1, 6});
    Rng rng(3);
    for (int i = 0; i < 4096; ++i)
        c.access(static_cast<Addr>(rng.below(8 * 1024)));
    uint64_t warm_misses = c.misses();
    for (int i = 0; i < 100000; ++i)
        c.access(static_cast<Addr>(rng.below(8 * 1024)));
    EXPECT_EQ(c.misses(), warm_misses); // 8KB fits entirely
}
