/** @file Unit tests for the named machine configurations. */

#include <gtest/gtest.h>

#include "sim/configs.hh"

using namespace vpir;

TEST(Configs, BaseMatchesTable1)
{
    CoreParams p = baseConfig();
    EXPECT_EQ(p.technique, Technique::None);
    EXPECT_EQ(p.fetchWidth, 4u);
    EXPECT_EQ(p.issueWidth, 4u);
    EXPECT_EQ(p.commitWidth, 4u);
    EXPECT_EQ(p.robEntries, 32u);
    EXPECT_EQ(p.lsqEntries, 32u);
    EXPECT_EQ(p.maxUnresolvedBranches, 8u);
    EXPECT_EQ(p.dcachePorts, 2u);
    EXPECT_EQ(p.icache.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.icache.ways, 2u);
    EXPECT_EQ(p.icache.lineBytes, 32u);
    EXPECT_EQ(p.icache.missLatency, 6u);
    EXPECT_EQ(p.dcache.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.bpred.historyBits, 10u);
    EXPECT_EQ(p.bpred.tableEntries, 16u * 1024);
}

TEST(Configs, IrCarriesPaperSizedRb)
{
    CoreParams p = irConfig();
    EXPECT_EQ(p.technique, Technique::IR);
    EXPECT_EQ(p.rb.entries, 4u * 1024);
    EXPECT_EQ(p.rb.ways, 4u);
    EXPECT_EQ(p.irValidation, IrValidation::Early);
    EXPECT_EQ(irConfig(IrValidation::Late).irValidation,
              IrValidation::Late);
}

TEST(Configs, VpCarriesPaperSizedVpt)
{
    CoreParams p = vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                            BranchResolution::NonSpeculative, 1);
    EXPECT_EQ(p.technique, Technique::VP);
    EXPECT_EQ(p.vpt.entries, 16u * 1024);
    EXPECT_EQ(p.vpt.ways, 4u);
    EXPECT_EQ(p.vpt.scheme, VpScheme::Magic);
    EXPECT_EQ(p.reexec, ReexecPolicy::Single);
    EXPECT_EQ(p.branchRes, BranchResolution::NonSpeculative);
    EXPECT_EQ(p.vpVerifyLatency, 1u);
}

TEST(Configs, HybridCarriesBothStructures)
{
    CoreParams p = hybridConfig();
    EXPECT_EQ(p.technique, Technique::Hybrid);
    EXPECT_EQ(p.vpt.entries, 16u * 1024);
    EXPECT_EQ(p.rb.entries, 4u * 1024);
}

TEST(Configs, LabelsFollowThePaper)
{
    EXPECT_EQ(vpConfigLabel(ReexecPolicy::Multiple,
                            BranchResolution::Speculative),
              "ME-SB");
    EXPECT_EQ(vpConfigLabel(ReexecPolicy::Single,
                            BranchResolution::NonSpeculative),
              "NME-NSB");
}

TEST(Configs, WithLimitsAppliesCaps)
{
    CoreParams p = withLimits(baseConfig(), 123, 456);
    EXPECT_EQ(p.maxInsts, 123u);
    EXPECT_EQ(p.maxCycles, 456u);
    // Other fields untouched.
    EXPECT_EQ(p.robEntries, 32u);
}
