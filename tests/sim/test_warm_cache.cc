/**
 * @file
 * WarmStartCache tests: exactly-once builds with pointer-identity
 * hits, snapshots equivalent to a hand-run warmup, and end-to-end
 * stats identity between cache-on and cache-off simulation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "emu/executor.hh"
#include "sim/simulator.hh"
#include "sim/warm_cache.hh"
#include "sweep/stats_json.hh"

using namespace vpir;

namespace
{

/** setenv/unsetenv for the test's scope. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

WorkloadScale
scaleOf(double f)
{
    WorkloadScale sc;
    sc.factor = f;
    return sc;
}

TEST(WarmStartCache, ProgramBuiltOncePerKey)
{
    WarmStartCache &cache = WarmStartCache::global();
    cache.clear();

    bool built = false;
    auto w1 = cache.workload("perl", scaleOf(0.25), &built);
    ASSERT_TRUE(w1);
    EXPECT_TRUE(built);
    EXPECT_EQ(w1->name, "perl");

    auto w2 = cache.workload("perl", scaleOf(0.25), &built);
    EXPECT_FALSE(built);
    EXPECT_EQ(w1.get(), w2.get()); // the very same object, not a copy

    // A different scale is a different key.
    auto w3 = cache.workload("perl", scaleOf(0.5), &built);
    EXPECT_TRUE(built);
    EXPECT_NE(w1.get(), w3.get());

    WarmStartCache::Counters c = cache.counters();
    EXPECT_EQ(c.programBuilds, 2u);
    EXPECT_EQ(c.programHits, 1u);
}

TEST(WarmStartCache, SnapshotBuiltOncePerKey)
{
    WarmStartCache &cache = WarmStartCache::global();
    cache.clear();

    bool built = false;
    auto s1 = cache.snapshot("compress", scaleOf(0.25), 1000, &built);
    ASSERT_TRUE(s1);
    EXPECT_TRUE(built);
    EXPECT_EQ(s1->warmupInsts, 1000u);

    auto s2 = cache.snapshot("compress", scaleOf(0.25), 1000, &built);
    EXPECT_FALSE(built);
    EXPECT_EQ(s1.get(), s2.get());

    // A different warmup length is a different key over the same
    // program (which is only assembled once).
    auto s3 = cache.snapshot("compress", scaleOf(0.25), 2000, &built);
    EXPECT_TRUE(built);
    EXPECT_NE(s1.get(), s3.get());

    WarmStartCache::Counters c = cache.counters();
    EXPECT_EQ(c.programBuilds, 1u);
    EXPECT_EQ(c.snapshotBuilds, 2u);
    EXPECT_EQ(c.snapshotHits, 1u);
}

TEST(WarmStartCache, SnapshotMatchesHandRunWarmup)
{
    WarmStartCache &cache = WarmStartCache::global();
    cache.clear();

    constexpr uint64_t WARMUP = 5000;
    auto cached = cache.snapshot("m88ksim", scaleOf(0.25), WARMUP);

    Workload w = makeWorkload("m88ksim", scaleOf(0.25));
    EmuSnapshot ref = makeWarmSnapshot(w.program, WARMUP);

    ASSERT_TRUE(cached);
    EXPECT_EQ(cached->pc, ref.pc);
    EXPECT_EQ(cached->halted, ref.halted);
    EXPECT_EQ(cached->warmupInsts, ref.warmupInsts);
    for (RegId r = 0; r < NUM_ARCH_REGS; ++r)
        ASSERT_EQ(cached->state.readReg(r), ref.state.readReg(r))
            << "register " << static_cast<int>(r);
    ASSERT_EQ(cached->state.residentPages(), ref.state.residentPages());
}

TEST(WarmStartCache, RunWorkloadIdenticalWithCacheOnAndOff)
{
    WarmStartCache::global().clear();

    CoreParams cfg = withLimits(baseConfig(), 20000);
    cfg.warmupInsts = 3000;

    CoreStats cold, warm1, warm2;
    {
        EnvGuard off("VPIR_WARM_CACHE", "0");
        cold = runWorkload("perl", cfg, scaleOf(0.25));
    }
    {
        EnvGuard on("VPIR_WARM_CACHE", "1");
        warm1 = runWorkload("perl", cfg, scaleOf(0.25)); // builds
        warm2 = runWorkload("perl", cfg, scaleOf(0.25)); // clones
    }
    EXPECT_TRUE(sweep::statsEqual(cold, warm1));
    EXPECT_TRUE(sweep::statsEqual(cold, warm2));
    EXPECT_GT(cold.committedInsts, 0u);
}

TEST(WarmStartCache, WarmCoreIdenticalWithCheckerOn)
{
    // The lockstep checker replays retirement against an independent
    // machine cloned from the same snapshot: a warm-start bug on
    // either side diverges immediately.
    WarmStartCache::global().clear();
    CoreParams cfg = withLimits(baseConfig(), 20000);
    cfg.warmupInsts = 3000;
    cfg.checkRetire = true;

    CoreStats cold, warm;
    {
        EnvGuard off("VPIR_WARM_CACHE", "0");
        cold = runWorkload("compress", cfg, scaleOf(0.25));
    }
    {
        EnvGuard on("VPIR_WARM_CACHE", "1");
        warm = runWorkload("compress", cfg, scaleOf(0.25));
    }
    EXPECT_TRUE(sweep::statsEqual(cold, warm));
    EXPECT_GT(warm.committedInsts, 0u);
}

TEST(WarmStartCache, ClearResetsEverything)
{
    WarmStartCache &cache = WarmStartCache::global();
    cache.clear();
    auto w1 = cache.workload("perl", scaleOf(0.25));
    cache.clear();
    WarmStartCache::Counters c = cache.counters();
    EXPECT_EQ(c.programBuilds, 0u);
    bool built = false;
    auto w2 = cache.workload("perl", scaleOf(0.25), &built);
    EXPECT_TRUE(built); // rebuilt from scratch
    EXPECT_NE(w1.get(), w2.get());
}

} // anonymous namespace
