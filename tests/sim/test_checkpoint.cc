/**
 * @file
 * Mid-cell drain-and-checkpoint tests: the binary bundle I/O layer,
 * drain-schedule determinism, mid-run save/restore byte-identity,
 * persistence + resume through runWithCheckpoints(), and the
 * corruption model (truncation, bit flips, quarantine, fallback,
 * VPIR_CKPT_MUST_RESUME).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fault.hh"
#include "common/ckpt_io.hh"
#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "sweep/stats_json.hh"
#include "workload/workload.hh"

using namespace vpir;

namespace
{

constexpr uint64_t TEST_INSTS = 20000;
constexpr uint64_t CKPT_INSTS = 5000;

class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

CoreParams
ckptParams(uint64_t interval = CKPT_INSTS)
{
    CoreParams p = withLimits(
        hybridConfig(VpScheme::Magic, BranchResolution::Speculative, 0),
        TEST_INSTS);
    p.ckptInsts = interval;
    return p;
}

Simulator
makeSim(const CoreParams &p, const std::string &workload = "compress")
{
    WorkloadScale scale;
    scale.factor = 0.25;
    Workload w = makeWorkload(workload, scale);
    return Simulator(p, std::move(w.program));
}

CkptCellId
testCellId()
{
    CkptCellId id;
    id.workload = "compress";
    id.cellKey = 0x1234abcd5678ef90ull;
    id.paramsHash = 0xfeedface0badf00dull;
    id.warmupInsts = 0;
    return id;
}

std::string
scratchDir(const char *tag)
{
    std::string d = std::string("ckpt_test_") + tag;
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

size_t
countSuffix(const std::string &dir, const std::string &suffix)
{
    size_t n = 0;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        std::string name = ent.path().filename().string();
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            ++n;
    }
    return n;
}

std::filesystem::path
newestCkpt(const std::string &dir)
{
    std::filesystem::path best;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        std::string name = ent.path().filename().string();
        if (name.size() < 5 ||
            name.compare(name.size() - 5, 5, ".ckpt") != 0)
            continue;
        if (best.empty() || best.filename().string() < name)
            best = ent.path();
    }
    return best;
}

// ------------------------------------------------------ bundle I/O

TEST(CkptIo, WriterReaderRoundTrip)
{
    CkptWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.b(true);
    w.b(false);
    w.str(std::string("hello\0world", 11)); // embedded NUL survives
    char raw[3] = {'x', 'y', 'z'};
    w.bytes(raw, sizeof(raw));

    CkptReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.str(), std::string("hello\0world", 11));
    char back[3];
    r.bytes(back, sizeof(back));
    EXPECT_EQ(std::string(back, 3), "xyz");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(CkptIo, ReaderFailsStickyOnTruncation)
{
    CkptWriter w;
    w.u64(42);
    CkptReader r(w.data().data(), 4); // half a u64
    r.u64();                          // runs off the end
    EXPECT_FALSE(r.ok());
    // Sticky: the failure persists for the caller's single end check.
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.atEnd() && r.ok());
}

TEST(CkptIo, Crc32MatchesStandardCheckValue)
{
    // The canonical CRC-32/IEEE check vector.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_NE(crc32("123456788", 9), crc32("123456789", 9));
}

// ------------------------------------------- drain schedule semantics

TEST(CkptDrain, ScheduleIsDeterministic)
{
    Simulator a = makeSim(ckptParams());
    Simulator b = makeSim(ckptParams());
    const CoreStats &sa = a.run();
    const CoreStats &sb = b.run();
    EXPECT_TRUE(sweep::statsEqual(sa, sb));
}

TEST(CkptDrain, BubblesChangeTimingButNotWork)
{
    CoreParams plain = ckptParams(0);
    Simulator a = makeSim(plain);
    Simulator b = makeSim(ckptParams());
    const CoreStats &sa = a.run();
    const CoreStats &sb = b.run();
    // Same committed work; the drains only insert fetch bubbles.
    EXPECT_EQ(sa.committedInsts, sb.committedInsts);
    EXPECT_GE(sb.cycles, sa.cycles);
}

TEST(CkptDrain, BoundaryFiresQuiescedAndRepeats)
{
    Simulator sim = makeSim(ckptParams());
    Core &core = sim.core();
    size_t boundaries = 0;
    uint64_t last_insts = 0;
    while (core.cycle()) {
        if (core.atCkptBoundary()) {
            ++boundaries;
            // Commit progress is monotone across boundaries.
            EXPECT_GT(core.stats().committedInsts, last_insts);
            last_insts = core.stats().committedInsts;
            EXPECT_GE(core.stats().committedInsts,
                      boundaries * CKPT_INSTS);
        }
    }
    EXPECT_GE(boundaries, 2u);
    EXPECT_LE(boundaries, TEST_INSTS / CKPT_INSTS);
}

// ------------------------------------------- save/restore round trip

TEST(CkptRestore, MidRunRoundTripIsByteIdentical)
{
    Simulator a = makeSim(ckptParams());
    Core &ca = a.core();
    while (ca.cycle() && !ca.atCkptBoundary()) {
    }
    ASSERT_TRUE(ca.atCkptBoundary()) << "run ended before a boundary";

    CkptWriter w;
    ca.saveCheckpoint(w);

    // Finish the donor run.
    const CoreStats &ref = a.run();

    // Restore into a fresh core and finish from the boundary.
    Simulator b = makeSim(ckptParams());
    CkptReader r(w.data());
    ASSERT_TRUE(b.core().restoreCheckpoint(r));
    EXPECT_TRUE(r.atEnd());
    const CoreStats &resumed = b.run();

    EXPECT_TRUE(sweep::statsEqual(ref, resumed))
        << "resumed run diverged from the uninterrupted one";
}

TEST(CkptRestore, RejectsGarbagePayload)
{
    Simulator a = makeSim(ckptParams());
    Core &ca = a.core();
    while (ca.cycle() && !ca.atCkptBoundary()) {
    }
    ASSERT_TRUE(ca.atCkptBoundary());
    CkptWriter w;
    ca.saveCheckpoint(w);

    // A wildly corrupt payload must be rejected by the subsystem
    // geometry checks, not crash or restore garbage.
    std::string bad = w.data();
    for (size_t i = 0; i < bad.size(); ++i)
        bad[i] = static_cast<char>(~bad[i]);
    Simulator b = makeSim(ckptParams());
    CkptReader r(bad);
    EXPECT_FALSE(b.core().restoreCheckpoint(r));
}

// --------------------------------------- runWithCheckpoints lifecycle

TEST(CkptRun, NonPersistentIsPlainRun)
{
    Simulator a = makeSim(ckptParams());
    CkptConfig cfg; // no dir: not persistent
    cfg.insts = CKPT_INSTS;
    CkptRunResult res =
        runWithCheckpoints(a, cfg, testCellId(), true);
    EXPECT_FALSE(res.stopped);
    EXPECT_FALSE(res.resumed);
    EXPECT_EQ(res.checkpointsWritten, 0u);
    Simulator b = makeSim(ckptParams());
    EXPECT_TRUE(sweep::statsEqual(a.stats(), b.run()));
}

TEST(CkptRun, StopResumeCompletesByteIdentical)
{
    std::string dir = scratchDir("resume");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    CkptCellId id = testCellId();

    // Reference: uninterrupted run.
    Simulator ref = makeSim(ckptParams());
    CoreStats want = ref.run();

    // Interrupted run: the stop flag is already raised, so the run
    // stops at its first persisted boundary.
    std::atomic<int> stop{SIGTERM};
    Simulator a = makeSim(ckptParams());
    {
        CkptStopScope scope(&stop);
        CkptRunResult r1 = runWithCheckpoints(a, cfg, id, true);
        EXPECT_TRUE(r1.stopped);
        EXPECT_FALSE(r1.resumed);
        EXPECT_EQ(r1.checkpointsWritten, 1u);
    }
    EXPECT_EQ(countSuffix(dir, ".ckpt"), 1u);

    // Resume: restores the persisted boundary, finishes, and cleans
    // its checkpoints up.
    Simulator b = makeSim(ckptParams());
    CkptRunResult r2 = runWithCheckpoints(b, cfg, id, true);
    EXPECT_FALSE(r2.stopped);
    EXPECT_TRUE(r2.resumed);
    EXPECT_GT(r2.resumedFromInsts, 0u);
    EXPECT_TRUE(sweep::statsEqual(want, b.stats()));
    EXPECT_EQ(countSuffix(dir, ".ckpt"), 0u);

    std::filesystem::remove_all(dir);
}

TEST(CkptRun, NoResumeFlagStartsCold)
{
    std::string dir = scratchDir("noresume");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    CkptCellId id = testCellId();

    std::atomic<int> stop{SIGTERM};
    Simulator a = makeSim(ckptParams());
    {
        CkptStopScope scope(&stop);
        runWithCheckpoints(a, cfg, id, true);
    }
    ASSERT_EQ(countSuffix(dir, ".ckpt"), 1u);

    // allow_resume=false (the ladder's cold rung) ignores the file.
    Simulator b = makeSim(ckptParams());
    CkptRunResult r = runWithCheckpoints(b, cfg, id, false);
    EXPECT_FALSE(r.resumed);
    Simulator ref = makeSim(ckptParams());
    EXPECT_TRUE(sweep::statsEqual(ref.run(), b.stats()));

    std::filesystem::remove_all(dir);
}

// ------------------------------------------------- corruption model

TEST(CkptCorruption, BitFlipQuarantinedWithColdFallback)
{
    std::string dir = scratchDir("flip");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    CkptCellId id = testCellId();

    std::atomic<int> stop{SIGTERM};
    Simulator a = makeSim(ckptParams());
    {
        CkptStopScope scope(&stop);
        runWithCheckpoints(a, cfg, id, true);
    }
    std::filesystem::path victim = newestCkpt(dir);
    ASSERT_FALSE(victim.empty());

    // Flip one bit in the middle of the bundle.
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(0, std::ios::end);
        auto size = static_cast<long long>(f.tellg());
        ASSERT_GT(size, 64);
        f.seekp(size / 2);
        char c;
        f.seekg(size / 2);
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x10);
        f.seekp(size / 2);
        f.write(&c, 1);
    }

    Simulator b = makeSim(ckptParams());
    CkptRunResult r = runWithCheckpoints(b, cfg, id, true);
    EXPECT_FALSE(r.resumed) << "a bit-flipped bundle restored";
    EXPECT_EQ(countSuffix(dir, ".bad"), 1u)
        << "corrupt bundle was not quarantined";
    Simulator ref = makeSim(ckptParams());
    EXPECT_TRUE(sweep::statsEqual(ref.run(), b.stats()));

    std::filesystem::remove_all(dir);
}

TEST(CkptCorruption, CorruptNewestFallsBackToOlderCheckpoint)
{
    std::string dir = scratchDir("fallback");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    CkptCellId id = testCellId();

    // Produce two checkpoints: stop at the first boundary, resume and
    // stop again at the second.
    std::atomic<int> stop{SIGTERM};
    {
        CkptStopScope scope(&stop);
        Simulator a = makeSim(ckptParams());
        runWithCheckpoints(a, cfg, id, true);
        Simulator b = makeSim(ckptParams());
        CkptRunResult r = runWithCheckpoints(b, cfg, id, true);
        EXPECT_TRUE(r.resumed);
        EXPECT_TRUE(r.stopped);
    }
    ASSERT_EQ(countSuffix(dir, ".ckpt"), 2u);

    // Truncate the newest: the older one must carry the resume.
    std::filesystem::path victim = newestCkpt(dir);
    std::filesystem::resize_file(victim,
                                 std::filesystem::file_size(victim) / 2);

    Simulator c = makeSim(ckptParams());
    CkptRunResult r = runWithCheckpoints(c, cfg, id, true);
    EXPECT_TRUE(r.resumed);
    EXPECT_GT(r.resumedFromInsts, 0u);
    EXPECT_LT(r.resumedFromInsts, 2 * CKPT_INSTS)
        << "the fallback must be the OLDER boundary";
    EXPECT_EQ(countSuffix(dir, ".bad"), 1u);
    Simulator ref = makeSim(ckptParams());
    EXPECT_TRUE(sweep::statsEqual(ref.run(), c.stats()));

    std::filesystem::remove_all(dir);
}

TEST(CkptCorruption, StaleCellOrBinaryIsRejected)
{
    std::string dir = scratchDir("stale");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    CkptCellId id = testCellId();

    std::atomic<int> stop{SIGTERM};
    Simulator a = makeSim(ckptParams());
    {
        CkptStopScope scope(&stop);
        runWithCheckpoints(a, cfg, id, true);
    }
    ASSERT_EQ(countSuffix(dir, ".ckpt"), 1u);

    // Same file name (same cell key), different params hash — the
    // stale-binary case. The header check must reject and quarantine
    // it, never restore it.
    CkptCellId other = id;
    other.paramsHash ^= 1;
    Simulator b = makeSim(ckptParams());
    CkptRunResult r = runWithCheckpoints(b, cfg, other, true);
    EXPECT_FALSE(r.resumed);
    EXPECT_EQ(countSuffix(dir, ".bad"), 1u)
        << "a stale bundle must be quarantined";

    std::filesystem::remove_all(dir);
}

TEST(CkptCorruption, MustResumePanicsWithNothingRestorable)
{
    std::string dir = scratchDir("mustresume");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    cfg.mustResume = true;

    Simulator a = makeSim(ckptParams());
    PanicThrowScope throw_scope;
    EXPECT_THROW(runWithCheckpoints(a, cfg, testCellId(), true),
                 SimError);

    std::filesystem::remove_all(dir);
}

// --------------------------------------------- fault-injection plans

TEST(CkptFaults, BitflipFlipsExactlyOneBitDeterministically)
{
    CkptFaultPlan plan;
    plan.bitflip = true;
    std::string bundle(1024, '\x5a');
    std::string once = bundle, twice = bundle;
    EXPECT_TRUE(applyCkptFaults(plan, once, 7));
    EXPECT_TRUE(applyCkptFaults(plan, twice, 7));
    EXPECT_EQ(once, twice) << "same (seed, salt) must corrupt alike";
    ASSERT_EQ(once.size(), bundle.size());
    int bits = 0;
    for (size_t i = 0; i < bundle.size(); ++i) {
        unsigned char diff = static_cast<unsigned char>(
            once[i] ^ bundle[i]);
        for (; diff; diff &= diff - 1)
            ++bits;
    }
    EXPECT_EQ(bits, 1);

    // A different salt flips a different position (with overwhelming
    // probability for this seed; fixed, so deterministic here).
    std::string other = bundle;
    applyCkptFaults(plan, other, 8);
    EXPECT_NE(once, other);
}

TEST(CkptFaults, TruncatePlanShortensTheBundle)
{
    CkptFaultPlan plan;
    plan.truncate = true;
    std::string bundle(1024, '\x11');
    EXPECT_TRUE(applyCkptFaults(plan, bundle, 3));
    EXPECT_LT(bundle.size(), 1024u);
    EXPECT_GE(bundle.size(), 1u);
}

TEST(CkptFaults, EnvPlanParsesStrictly)
{
    EnvGuard t("VPIR_FAULT_CKPT_TRUNC", "1");
    EnvGuard b("VPIR_FAULT_CKPT_BITFLIP", "0");
    CkptFaultPlan plan = ckptFaultPlanFromEnv();
    EXPECT_TRUE(plan.truncate);
    EXPECT_FALSE(plan.bitflip);
    EXPECT_TRUE(plan.any());
}

// -------------------------------------------------- config & hygiene

TEST(CkptConfig, EnvKnobsParseAndClamp)
{
    EnvGuard d("VPIR_CKPT_DIR", "some_dir");
    EnvGuard k("VPIR_CKPT_KEEP", "0");
    EnvGuard r("VPIR_CKPT_RESUME", "0");
    EnvGuard m("VPIR_CKPT_MUST_RESUME", "1");
    CkptConfig cfg = ckptConfigFromEnv(123);
    EXPECT_EQ(cfg.insts, 123u);
    EXPECT_EQ(cfg.dir, "some_dir");
    EXPECT_EQ(cfg.keep, 1u) << "keep=0 must clamp to 1";
    EXPECT_FALSE(cfg.resume);
    EXPECT_TRUE(cfg.mustResume);
    EXPECT_TRUE(cfg.persistent());
    EXPECT_FALSE(ckptConfigFromEnv(0).persistent());
}

TEST(CkptConfig, RotationKeepsNewestOnly)
{
    std::string dir = scratchDir("rotate");
    CkptConfig cfg;
    cfg.insts = CKPT_INSTS;
    cfg.dir = dir;
    cfg.keep = 1;
    CkptCellId id = testCellId();

    std::atomic<int> stop{SIGTERM};
    CkptStopScope scope(&stop);
    Simulator a = makeSim(ckptParams());
    runWithCheckpoints(a, cfg, id, true);
    Simulator b = makeSim(ckptParams());
    runWithCheckpoints(b, cfg, id, true);
    EXPECT_EQ(countSuffix(dir, ".ckpt"), 1u)
        << "keep=1 must rotate the older checkpoint out";

    std::filesystem::remove_all(dir);
}

TEST(CkptConfig, ScrubRemovesOnlyTmpFiles)
{
    std::string dir = scratchDir("scrub");
    { std::ofstream(dir + "/cell-1.00001.ckpt") << "x"; }
    { std::ofstream(dir + "/cell-1.00002.ckpt.tmp.999") << "y"; }
    { std::ofstream(dir + "/cell-1.00003.ckpt.bad") << "z"; }
    scrubCkptTmpFiles(dir);
    EXPECT_TRUE(std::filesystem::exists(dir + "/cell-1.00001.ckpt"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/cell-1.00002.ckpt.tmp.999"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/cell-1.00003.ckpt.bad"));
    std::filesystem::remove_all(dir);
}

TEST(CkptConfig, ProgramFingerprintSeparatesWorkloads)
{
    WorkloadScale scale;
    scale.factor = 0.25;
    Workload a = makeWorkload("compress", scale);
    Workload b = makeWorkload("go", scale);
    Workload a2 = makeWorkload("compress", scale);
    EXPECT_EQ(programFingerprint(a.program),
              programFingerprint(a2.program));
    EXPECT_NE(programFingerprint(a.program),
              programFingerprint(b.program));
}

} // anonymous namespace
