/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "stats/stats.hh"

using namespace vpir;

TEST(Counter, IncrementAndSet)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.set(3);
    EXPECT_EQ(c.value(), 3u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(3);
    h.sample(9); // overflow -> last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Means, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 0.0}), 0.0);
}

TEST(Means, HarmonicLeqArithmetic)
{
    std::vector<double> v = {0.9, 1.3, 2.7, 1.1, 0.4};
    EXPECT_LE(harmonicMean(v), arithmeticMean(v));
}

TEST(Means, PctAndRatio)
{
    EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(pct(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(ratio(3, 0), 0.0);
}

TEST(StatSet, SetAddGet)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 0.0);
    s.set("x", 2.5);
    s.add("x", 1.0);
    s.add("y", 4.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_DOUBLE_EQ(s.get("x"), 3.5);
    EXPECT_DOUBLE_EQ(s.get("y"), 4.0);
}

TEST(StatSet, DumpContainsEntries)
{
    StatSet s;
    s.set("cycles", 100);
    s.set("ipc", 1.5);
    std::string d = s.dump();
    EXPECT_NE(d.find("cycles"), std::string::npos);
    EXPECT_NE(d.find("ipc"), std::string::npos);
}
