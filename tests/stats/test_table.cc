/** @file Unit tests for text table rendering. */

#include <gtest/gtest.h>

#include "stats/table.hh"

using namespace vpir;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"bench", "ipc"});
    t.addRow({"go", "1.50"});
    t.addRow({"gcc", "2.00"});
    std::string out = t.render();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("go"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos);
    // Separator line under the header.
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"longcell", "x"});
    std::string out = t.render();
    // Each line ends with the final cell, no trailing padding.
    EXPECT_EQ(out.find("x \n"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}
