/** @file Unit tests for the disassembler. */

#include <gtest/gtest.h>

#include "isa/disasm.hh"

using namespace vpir;

TEST(Disasm, RegisterNames)
{
    EXPECT_EQ(regName(intReg(0)), "r0");
    EXPECT_EQ(regName(intReg(31)), "r31");
    EXPECT_EQ(regName(REG_HI), "hi");
    EXPECT_EQ(regName(REG_LO), "lo");
    EXPECT_EQ(regName(fpReg(3)), "f3");
    EXPECT_EQ(regName(REG_FCC), "fcc");
}

TEST(Disasm, OpNames)
{
    EXPECT_EQ(opName(Op::ADD), "add");
    EXPECT_EQ(opName(Op::L_D), "l.d");
    EXPECT_EQ(opName(Op::C_LT_D), "c.lt.d");
    EXPECT_EQ(opName(Op::HALT), "halt");
}

TEST(Disasm, LoadFormat)
{
    Instr i;
    i.op = Op::LW;
    i.rd = intReg(5);
    i.rs = intReg(29);
    i.imm = -8;
    std::string s = disassemble(i);
    EXPECT_NE(s.find("lw"), std::string::npos);
    EXPECT_NE(s.find("r5"), std::string::npos);
    EXPECT_NE(s.find("-8(r29)"), std::string::npos);
}

TEST(Disasm, BranchShowsTarget)
{
    Instr i;
    i.op = Op::BNE;
    i.rs = intReg(1);
    i.rt = intReg(2);
    i.target = 0x1040;
    std::string s = disassemble(i);
    EXPECT_NE(s.find("bne"), std::string::npos);
    EXPECT_NE(s.find("0x1040"), std::string::npos);
}

/** Every opcode disassembles to something non-empty. */
class DisasmAllOps : public ::testing::TestWithParam<int>
{
};

TEST_P(DisasmAllOps, NonEmpty)
{
    Instr i;
    i.op = static_cast<Op>(GetParam());
    i.rd = intReg(1);
    i.rs = intReg(2);
    i.rt = intReg(3);
    EXPECT_FALSE(disassemble(i).empty());
    EXPECT_NE(opName(i.op), "op?");
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, DisasmAllOps,
    ::testing::Range(0, static_cast<int>(Op::NUM_OPS)));
