/** @file Unit tests for static decode information. */

#include <gtest/gtest.h>

#include "isa/decode.hh"

using namespace vpir;

TEST(Decode, Table1Latencies)
{
    EXPECT_EQ(decodeInfo(Op::ADD).opLat, 1);
    EXPECT_EQ(decodeInfo(Op::MULT).opLat, 3);
    EXPECT_EQ(decodeInfo(Op::DIV).opLat, 20);
    EXPECT_EQ(decodeInfo(Op::DIV).issueLat, 19);
    EXPECT_EQ(decodeInfo(Op::ADD_D).opLat, 2);
    EXPECT_EQ(decodeInfo(Op::MUL_D).opLat, 4);
    EXPECT_EQ(decodeInfo(Op::DIV_D).opLat, 12);
    EXPECT_EQ(decodeInfo(Op::DIV_D).issueLat, 12);
    EXPECT_EQ(decodeInfo(Op::SQRT_D).opLat, 24);
    EXPECT_EQ(decodeInfo(Op::SQRT_D).issueLat, 24);
}

TEST(Decode, Table1FuPoolSizes)
{
    EXPECT_EQ(fuPoolSize(FuType::IntAlu), 8u);
    EXPECT_EQ(fuPoolSize(FuType::LoadStore), 2u);
    EXPECT_EQ(fuPoolSize(FuType::FpAdder), 4u);
    EXPECT_EQ(fuPoolSize(FuType::IntMulDiv), 1u);
    EXPECT_EQ(fuPoolSize(FuType::FpMulDiv), 1u);
}

TEST(Decode, Classes)
{
    EXPECT_EQ(decodeInfo(Op::LW).cls, InstClass::Load);
    EXPECT_EQ(decodeInfo(Op::SW).cls, InstClass::Store);
    EXPECT_EQ(decodeInfo(Op::BEQ).cls, InstClass::Branch);
    EXPECT_EQ(decodeInfo(Op::JR).cls, InstClass::Jump);
    EXPECT_EQ(decodeInfo(Op::NOP).cls, InstClass::Nop);
    EXPECT_EQ(decodeInfo(Op::HALT).cls, InstClass::Halt);
}

TEST(Decode, Predicates)
{
    EXPECT_TRUE(isLoad(Op::LBU));
    EXPECT_TRUE(isStore(Op::S_D));
    EXPECT_TRUE(isMem(Op::LH));
    EXPECT_FALSE(isMem(Op::ADD));
    EXPECT_TRUE(isCondBranch(Op::BC1T));
    EXPECT_TRUE(isJump(Op::JAL));
    EXPECT_TRUE(isControl(Op::BNE));
    EXPECT_TRUE(isIndirectJump(Op::JALR));
    EXPECT_FALSE(isIndirectJump(Op::J));
    EXPECT_TRUE(isCall(Op::JAL));
    EXPECT_FALSE(isCall(Op::JR));
}

TEST(Decode, ReturnConvention)
{
    Instr jr;
    jr.op = Op::JR;
    jr.rs = REG_RA;
    EXPECT_TRUE(isReturn(jr));
    jr.rs = intReg(5);
    EXPECT_FALSE(isReturn(jr));
}

TEST(Decode, SrcRegsExtraction)
{
    Instr add;
    add.op = Op::ADD;
    add.rd = intReg(3);
    add.rs = intReg(1);
    add.rt = intReg(2);
    SrcRegs s = srcRegs(add);
    EXPECT_EQ(s.src[0], intReg(1));
    EXPECT_EQ(s.src[1], intReg(2));
}

TEST(Decode, R0ReadsAreNotDependences)
{
    Instr add;
    add.op = Op::ADD;
    add.rd = intReg(3);
    add.rs = REG_ZERO;
    add.rt = intReg(2);
    SrcRegs s = srcRegs(add);
    EXPECT_EQ(s.src[0], REG_INVALID);
    EXPECT_EQ(s.src[1], intReg(2));
}

TEST(Decode, R0WritesAreDiscarded)
{
    Instr add;
    add.op = Op::ADD;
    add.rd = REG_ZERO;
    DstRegs d = dstRegs(add);
    EXPECT_EQ(d.dst[0], REG_INVALID);
}

TEST(Decode, MultHasTwoDests)
{
    Instr m;
    m.op = Op::MULT;
    m.rd = REG_LO;
    m.rd2 = REG_HI;
    m.rs = intReg(1);
    m.rt = intReg(2);
    DstRegs d = dstRegs(m);
    EXPECT_EQ(d.dst[0], REG_LO);
    EXPECT_EQ(d.dst[1], REG_HI);
}

TEST(Decode, MfhiReadsHi)
{
    Instr m;
    m.op = Op::MFHI;
    m.rd = intReg(4);
    SrcRegs s = srcRegs(m);
    EXPECT_EQ(s.src[0], REG_HI);
}

TEST(Decode, MemSizes)
{
    EXPECT_EQ(memSize(Op::LB), 1u);
    EXPECT_EQ(memSize(Op::SH), 2u);
    EXPECT_EQ(memSize(Op::LW), 4u);
    EXPECT_EQ(memSize(Op::L_D), 8u);
    EXPECT_EQ(memSize(Op::ADD), 0u);
}

/** Every opcode must have coherent decode info. */
class DecodeAllOps : public ::testing::TestWithParam<int>
{
};

TEST_P(DecodeAllOps, InfoIsCoherent)
{
    Op op = static_cast<Op>(GetParam());
    const DecodeInfo &di = decodeInfo(op);
    if (di.cls == InstClass::Nop || di.cls == InstClass::Halt) {
        EXPECT_EQ(di.fu, FuType::None);
    } else {
        EXPECT_NE(di.fu, FuType::None);
        EXPECT_GE(di.opLat, 1);
        EXPECT_GE(di.issueLat, 1);
        EXPECT_LE(di.issueLat, di.opLat);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, DecodeAllOps,
    ::testing::Range(0, static_cast<int>(Op::NUM_OPS)));
