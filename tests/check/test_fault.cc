/**
 * @file
 * Fault-injection tests — the executable form of the paper's
 * early/late validation contrast:
 *
 *  - VP faults (corrupted predictions, flipped confidence) must ALWAYS
 *    be absorbed: value prediction validates late, at execute, so a
 *    wrong predicted value can cost cycles but never commit. The
 *    lockstep checker must stay green.
 *  - RB faults on a machine that trusts its reuse buffer
 *    (irOracleCheck=false, modelling hardware with no oracle) produce
 *    architecturally wrong commits, and the checker must catch them
 *    with a structured divergence report.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace vpir;

namespace
{

constexpr uint64_t TEST_INSTS = 20000;

CoreStats
run(const std::string &workload, CoreParams p)
{
    p = withLimits(p, TEST_INSTS);
    WorkloadScale scale;
    scale.factor = 0.25;
    Workload w = makeWorkload(workload, scale);
    Simulator sim(p, std::move(w.program));
    return sim.run();
}

TEST(FaultInjection, VptValueFaultsAreAbsorbedByLateValidation)
{
    PanicThrowScope throws_;
    for (const char *wl : {"m88ksim", "compress", "perl"}) {
        CoreParams p = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                BranchResolution::Speculative, 0);
        p.checkRetire = true;
        p.faults.vptValueRate = 0.05;
        CoreStats st;
        ASSERT_NO_THROW(st = run(wl, p)) << wl;
        EXPECT_GT(st.faultsVptValue, 0u) << wl;
        // Corrupt predictions surface as ordinary mispredictions...
        EXPECT_GT(st.vpResultWrong, 0u) << wl;
        // ...and never reach architectural state.
        EXPECT_EQ(st.checkedInsts, st.committedInsts) << wl;
    }
}

TEST(FaultInjection, VptConfidenceFlipsAreAbsorbed)
{
    PanicThrowScope throws_;
    CoreParams p = vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                            BranchResolution::NonSpeculative, 0);
    p.checkRetire = true;
    p.faults.vptConfRate = 0.02;
    CoreStats st;
    ASSERT_NO_THROW(st = run("ijpeg", p));
    EXPECT_GT(st.faultsVptConf, 0u);
    EXPECT_EQ(st.checkedInsts, st.committedInsts);
}

TEST(FaultInjection, RbLinkCorruptionDegradesButStaysCorrect)
{
    // Dropping a dependence pointer severs the S_{n+d} chain, which
    // can only *reduce* reuse — the safe failure mode. Unlike operand
    // or result corruption, there is no path from a missing link to a
    // wrong value.
    PanicThrowScope throws_;
    CoreParams p = irConfig();
    p.checkRetire = true;
    p.faults.rbLinkRate = 0.2;
    CoreStats st;
    ASSERT_NO_THROW(st = run("m88ksim", p));
    EXPECT_GT(st.faultsRbLink, 0u);
    EXPECT_EQ(st.checkedInsts, st.committedInsts);
}

TEST(FaultInjection, CheckerCatchesRbResultEscape)
{
    // A reuse buffer that silently stores wrong results *will* commit
    // wrong values on a machine that trusts it (oracle self-checks
    // off). The checker must flag the first such commit.
    PanicThrowScope throws_;
    CoreParams p = irConfig();
    p.checkRetire = true;
    p.irOracleCheck = false;
    p.faults.rbResultRate = 0.5;
    try {
        run("m88ksim", p);
        FAIL() << "corrupt reused result committed undetected";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("lockstep divergence"), std::string::npos)
            << msg;
        // The report carries the replay context.
        EXPECT_NE(msg.find("pc"), std::string::npos) << msg;
    }
}

TEST(FaultInjection, OracleAssertCatchesRbCorruptionAtDispatch)
{
    // Same corruption with the simulator's oracle cross-checks left
    // on: the RB probe validates operands, not results, so a corrupt
    // stored result sails through the reuse test — and the oracle
    // assert fail-stops the run the moment the wrong value would flow
    // to dependants (early detection, vs the checker's at-commit
    // detection above).
    PanicThrowScope throws_;
    CoreParams p = irConfig();
    p.faults.rbResultRate = 0.5;
    try {
        run("m88ksim", p);
        FAIL() << "corrupt reused result passed the oracle cross-check";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "reuse delivered a wrong value"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultInjection, CheckerCatchesRbOperandEscape)
{
    // Operand corruption is subtler than result corruption: the entry
    // only mis-fires when a future probe's live operand happens to
    // equal the corrupted stored value (a single flipped low bit makes
    // that realistic for loop counters), at which point a result from
    // the *wrong* operand context is delivered. With the oracle checks
    // off, only the retire checker stands in the way.
    PanicThrowScope throws_;
    CoreParams p = irConfig();
    p.checkRetire = true;
    p.irOracleCheck = false;
    p.faults.rbOperandRate = 0.5;
    try {
        CoreStats st = run("m88ksim", p);
        // Legitimate outcome: no corrupt entry ever matched, so the
        // run is clean — but the faults must at least have fired.
        EXPECT_GT(st.faultsRbOperand, 0u);
        EXPECT_EQ(st.checkedInsts, st.committedInsts);
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("lockstep divergence"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultInjection, SameSeedSameFaults)
{
    PanicThrowScope throws_;
    CoreParams p = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                            BranchResolution::Speculative, 0);
    p.checkRetire = true;
    p.faults.vptValueRate = 0.03;
    p.faults.seed = 42;
    CoreStats a = run("compress", p);
    CoreStats b = run("compress", p);
    EXPECT_GT(a.faultsVptValue, 0u);
    EXPECT_EQ(a.faultsVptValue, b.faultsVptValue);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.vpResultWrong, b.vpResultWrong);

    p.faults.seed = 43;
    CoreStats c = run("compress", p);
    // A different seed fires at different points; the cycle-exact
    // trajectory must differ even if counts land close.
    EXPECT_TRUE(c.faultsVptValue != a.faultsVptValue ||
                c.cycles != a.cycles || c.vpResultWrong != a.vpResultWrong);
}

} // anonymous namespace
