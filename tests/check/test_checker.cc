/**
 * @file
 * Lockstep checker tests: every paper configuration must retire a
 * divergence-free instruction stream on every workload (the checker
 * re-executes each retired instruction on an independent functional
 * machine), and the commit-progress watchdog must convert a stuck
 * pipeline into a catchable, attributable error.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace vpir;

namespace
{

constexpr uint64_t TEST_INSTS = 15000;

CoreStats
runChecked(const std::string &workload, CoreParams p)
{
    p = withLimits(p, TEST_INSTS);
    p.checkRetire = true;
    WorkloadScale scale;
    scale.factor = 0.25;
    Workload w = makeWorkload(workload, scale);
    Simulator sim(p, std::move(w.program));
    return sim.run();
}

struct NamedConfig
{
    const char *name;
    CoreParams params;
};

std::vector<NamedConfig>
allConfigs()
{
    return {
        {"base", baseConfig()},
        {"vp-magic", vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                              BranchResolution::Speculative, 0)},
        {"vp-lvp", vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                            BranchResolution::Speculative, 0)},
        {"ir", irConfig()},
        {"hybrid", hybridConfig()},
    };
}

TEST(LockstepChecker, AllWorkloadsAllTechniquesRetireClean)
{
    PanicThrowScope throws_; // a divergence must surface as SimError
    for (const auto &name : workloadNames()) {
        for (const NamedConfig &cfg : allConfigs()) {
            CoreStats st;
            ASSERT_NO_THROW(st = runChecked(name, cfg.params))
                << name << "/" << cfg.name;
            // Every committed instruction was independently verified.
            EXPECT_EQ(st.checkedInsts, st.committedInsts)
                << name << "/" << cfg.name;
            EXPECT_GT(st.checkedInsts, 0u) << name << "/" << cfg.name;
        }
    }
}

TEST(LockstepChecker, CleanWithWarmupFastForward)
{
    PanicThrowScope throws_;
    CoreParams p = irConfig();
    p.warmupInsts = 5000; // checker must replay the same fast-forward
    CoreStats st;
    ASSERT_NO_THROW(st = runChecked("compress", p));
    EXPECT_EQ(st.checkedInsts, st.committedInsts);
    EXPECT_GT(st.checkedInsts, 0u);
}

TEST(Watchdog, StuckPipelineRaisesRecoverableError)
{
    PanicThrowScope throws_;
    CoreParams p = withLimits(baseConfig(), TEST_INSTS);
    p.watchdogCycles = 1; // nothing commits in the very first cycle
    WorkloadScale scale;
    scale.factor = 0.25;
    Workload w = makeWorkload("compress", scale);
    Simulator sim(p, std::move(w.program));
    try {
        sim.run();
        FAIL() << "watchdog did not fire";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
        EXPECT_NE(msg.find("fetchPC"), std::string::npos) << msg;
    }
}

TEST(Watchdog, QuietWhileInstructionsCommit)
{
    PanicThrowScope throws_;
    CoreParams p = baseConfig();
    // Generous limit: commits happen every few cycles, so a healthy
    // run must never trip it.
    p.watchdogCycles = 10000;
    CoreStats st;
    ASSERT_NO_THROW(st = runChecked("m88ksim", p));
    EXPECT_GT(st.committedInsts, 0u);
}

} // anonymous namespace
