/** @file Unit tests for the redundancy limit study (§4.3). */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "redundancy/redundancy.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** A loop recomputing a constant chain: everything repeats. */
Program
constantLoop(int iters)
{
    Assembler a;
    a.dataLabel("c");
    a.word(42);
    a.la(S0, "c");
    a.li(S1, iters);
    a.label("loop");
    a.lw(T0, S0, 0);
    a.sll(T1, T0, 1);
    a.xor_(T2, T1, T0);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    return a.finish();
}

/** A pure counter: results follow a stride, never repeating. */
Program
counterLoop(int iters)
{
    Assembler a;
    a.li(S1, iters);
    a.li(T0, 0);
    a.label("loop");
    a.addi(T0, T0, 12);    // strided results: derivable
    a.addi(S1, S1, -1);    // strided results: derivable
    a.bgtz(S1, "loop");
    a.halt();
    return a.finish();
}

/** An LCG: results are effectively unique and unstrided. */
Program
lcgLoop(int iters)
{
    Assembler a;
    a.li(S1, iters);
    a.li(T0, 12345);
    a.li(T1, 1103515245 & 0x7fff);
    a.label("loop");
    a.mult(T0, T1);
    a.mflo(T0);
    a.addi(T0, T0, 12345);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    return a.finish();
}

} // anonymous namespace

TEST(Redundancy, ConstantLoopIsRepeated)
{
    RedundancyStats st = analyzeRedundancy(constantLoop(500));
    EXPECT_GT(st.resultProducing, 1000u);
    // The chain body repeats; unique results only from the first
    // iteration and the (derivable) countdown.
    double repeated_frac = static_cast<double>(st.repeated) /
                           static_cast<double>(st.resultProducing);
    EXPECT_GT(repeated_frac, 0.55);
    EXPECT_LT(st.unique, 20u);
}

TEST(Redundancy, CounterLoopIsDerivable)
{
    RedundancyStats st = analyzeRedundancy(counterLoop(500));
    double derivable_frac = static_cast<double>(st.derivable) /
                            static_cast<double>(st.resultProducing);
    EXPECT_GT(derivable_frac, 0.9);
}

TEST(Redundancy, LcgIsMostlyUnique)
{
    RedundancyStats st = analyzeRedundancy(lcgLoop(500));
    double unique_frac = static_cast<double>(st.unique) /
                         static_cast<double>(st.resultProducing);
    EXPECT_GT(unique_frac, 0.35);
    EXPECT_LT(static_cast<double>(st.repeated) /
                  static_cast<double>(st.resultProducing),
              0.4);
}

TEST(Redundancy, ConstantLoopIsReusable)
{
    RedundancyStats st = analyzeRedundancy(constantLoop(500));
    // Same operands every iteration and the producers reuse too:
    // nearly all of the repeated work is reusable.
    EXPECT_GT(st.reusableFraction(), 0.65);
}

TEST(Redundancy, CategoriesPartitionResultProducing)
{
    for (const Program &p :
         {constantLoop(300), counterLoop(300), lcgLoop(300)}) {
        RedundancyStats st = analyzeRedundancy(p);
        EXPECT_EQ(st.unique + st.repeated + st.derivable +
                      st.unaccounted,
                  st.resultProducing);
        EXPECT_EQ(st.prodReused + st.prodFar + st.prodNear,
                  st.repeated);
        EXPECT_LE(st.reusable, st.repeated);
    }
}

TEST(Redundancy, UnaccountedAppearsWithTinyBuffers)
{
    RedundancyParams params;
    params.maxInstances = 4;
    RedundancyStats st = analyzeRedundancy(lcgLoop(500), params);
    EXPECT_GT(st.unaccounted, 100u);
}

TEST(Redundancy, MaxInstsCapsAnalysis)
{
    RedundancyParams params;
    params.maxInsts = 100;
    RedundancyStats st = analyzeRedundancy(constantLoop(500), params);
    EXPECT_LE(st.totalDynamic, 100u);
}

TEST(Redundancy, NearProducersBlockReuse)
{
    // A tight serial chain: each instruction's producer is the
    // immediately preceding one (< 50 instructions), and nothing is
    // reusable to bootstrap the chain, so inputs are never ready.
    Assembler a;
    a.li(S1, 300);
    a.li(T0, 0);
    a.label("loop");
    a.xori(T0, T0, 1);     // alternates: repeated results
    a.xori(T0, T0, 2);
    a.xori(T0, T0, 4);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    RedundancyStats st = analyzeRedundancy(a.finish());
    EXPECT_GT(st.prodNear + st.prodReused, st.prodFar);
}

TEST(Redundancy, PaperBandHoldsForMixedProgram)
{
    // A program mixing constants, counters and a little noise should
    // land in the paper's "most redundancy is reusable" regime.
    Assembler a;
    a.dataLabel("tab");
    for (int i = 0; i < 8; ++i)
        a.word(static_cast<uint32_t>(3 * i + 1));
    a.la(S0, "tab");
    a.li(S1, 400);
    a.li(S2, 0);
    a.label("loop");
    a.addi(S2, S2, 1);
    a.andi(S2, S2, 7);     // wrapping index: operand values repeat,
                           // bootstrapping the reuse chains
    a.sll(T0, S2, 2);
    a.add(T1, S0, T0);
    a.lw(T2, T1, 0);
    a.sll(T3, T2, 1);
    a.add(S3, S3, T3);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    RedundancyStats st = analyzeRedundancy(a.finish());
    EXPECT_GT(st.redundant(), st.resultProducing / 2);
    EXPECT_GT(st.reusableFraction(), 0.5);
}
