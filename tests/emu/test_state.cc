/** @file Unit tests for journaled architectural state. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "emu/state.hh"

using namespace vpir;

TEST(EmuState, R0IsHardwiredZero)
{
    EmuState s;
    s.writeReg(REG_ZERO, 99);
    EXPECT_EQ(s.readReg(REG_ZERO), 0u);
    EXPECT_EQ(s.journalDepth(), 0u); // write was dropped entirely
}

TEST(EmuState, RegisterReadWrite)
{
    EmuState s;
    s.writeReg(5, 1234);
    EXPECT_EQ(s.readReg(5), 1234u);
    s.writeReg(REG_HI, 7);
    EXPECT_EQ(s.readReg(REG_HI), 7u);
}

TEST(EmuState, MemoryLittleEndian)
{
    EmuState s;
    s.writeMem(0x1000, 4, 0x11223344);
    EXPECT_EQ(s.readMem(0x1000, 1), 0x44u);
    EXPECT_EQ(s.readMem(0x1001, 1), 0x33u);
    EXPECT_EQ(s.readMem(0x1000, 2), 0x3344u);
    EXPECT_EQ(s.readMem(0x1000, 4), 0x11223344u);
}

TEST(EmuState, UnmappedMemoryReadsZero)
{
    EmuState s;
    EXPECT_EQ(s.readMem(0xdead0000, 4), 0u);
}

TEST(EmuState, CrossPageAccess)
{
    EmuState s;
    // Write 8 bytes straddling a 4 KiB page boundary.
    s.writeMem(0x1ffc, 8, 0x0102030405060708ull);
    EXPECT_EQ(s.readMem(0x1ffc, 8), 0x0102030405060708ull);
    EXPECT_EQ(s.readMem(0x2000, 4), 0x01020304u);
}

TEST(EmuState, RollbackRestoresRegisters)
{
    EmuState s;
    s.writeReg(3, 10);
    JournalMark m = s.mark();
    s.writeReg(3, 20);
    s.writeReg(4, 30);
    s.rollback(m);
    EXPECT_EQ(s.readReg(3), 10u);
    EXPECT_EQ(s.readReg(4), 0u);
}

TEST(EmuState, RollbackRestoresMemory)
{
    EmuState s;
    s.writeMem(0x100, 4, 0xaaaa);
    JournalMark m = s.mark();
    s.writeMem(0x100, 4, 0xbbbb);
    s.writeMem(0x104, 2, 0x12);
    s.rollback(m);
    EXPECT_EQ(s.readMem(0x100, 4), 0xaaaau);
    EXPECT_EQ(s.readMem(0x104, 2), 0u);
}

TEST(EmuState, NestedRollbacks)
{
    EmuState s;
    s.writeReg(1, 1);
    JournalMark m1 = s.mark();
    s.writeReg(1, 2);
    JournalMark m2 = s.mark();
    s.writeReg(1, 3);
    s.rollback(m2);
    EXPECT_EQ(s.readReg(1), 2u);
    s.rollback(m1);
    EXPECT_EQ(s.readReg(1), 1u);
}

TEST(EmuState, RetireBoundsJournal)
{
    EmuState s;
    for (int i = 0; i < 100; ++i)
        s.writeReg(2, static_cast<uint64_t>(i));
    EXPECT_EQ(s.journalDepth(), 100u);
    s.retire(s.mark());
    EXPECT_EQ(s.journalDepth(), 0u);
    // State unaffected by retirement.
    EXPECT_EQ(s.readReg(2), 99u);
}

TEST(EmuState, RollbackAfterPartialRetire)
{
    EmuState s;
    s.writeReg(1, 1);
    s.retire(s.mark());
    JournalMark m = s.mark();
    s.writeReg(1, 2);
    s.rollback(m);
    EXPECT_EQ(s.readReg(1), 1u);
}

TEST(EmuState, InitWritesAreNotJournaled)
{
    EmuState s;
    s.initReg(7, 42);
    s.initMem(0x10, 4, 77);
    EXPECT_EQ(s.journalDepth(), 0u);
    EXPECT_EQ(s.readReg(7), 42u);
    EXPECT_EQ(s.readMem(0x10, 4), 77u);
}

// ----------------------------------------------------- copy-on-write

TEST(EmuStateCow, CloneSharesAllPages)
{
    EmuState s;
    s.writeMem(0x1000, 4, 0xaabbccdd);
    s.writeMem(0x5000, 4, 0x11223344);
    s.retire(s.mark());
    ASSERT_EQ(s.residentPages(), 2u);
    EXPECT_EQ(s.sharedPages(), 0u);

    EmuState clone = s;
    // A clone is pointer copies, not data copies: every page shared.
    EXPECT_EQ(clone.residentPages(), 2u);
    EXPECT_EQ(s.sharedPages(), 2u);
    EXPECT_EQ(clone.sharedPages(), 2u);
    EXPECT_EQ(clone.readMem(0x1000, 4), 0xaabbccddu);
    EXPECT_EQ(clone.readMem(0x5000, 4), 0x11223344u);
    EXPECT_EQ(clone.cowFaults(), 0u);
}

TEST(EmuStateCow, WriteFaultsAPrivatePage)
{
    EmuState s;
    s.writeMem(0x1000, 4, 0xaabbccdd);
    s.writeMem(0x5000, 4, 0x11223344);
    s.retire(s.mark());

    EmuState clone = s;
    clone.writeMem(0x1000, 4, 0xdeadbeef);
    // Exactly the written page was cloned; the other stays shared.
    EXPECT_EQ(clone.cowFaults(), 1u);
    EXPECT_EQ(clone.sharedPages(), 1u);
    EXPECT_EQ(s.sharedPages(), 1u);
    EXPECT_EQ(clone.readMem(0x1000, 4), 0xdeadbeefu);
    EXPECT_EQ(s.readMem(0x1000, 4), 0xaabbccddu); // original untouched
    // Writing the same page again must not fault a second time.
    clone.writeMem(0x1004, 4, 1);
    EXPECT_EQ(clone.cowFaults(), 1u);
}

TEST(EmuStateCow, ReadsNeverFault)
{
    EmuState s;
    s.writeMem(0x1000, 4, 42);
    s.retire(s.mark());
    EmuState clone = s;
    EXPECT_EQ(clone.readMem(0x1000, 4), 42u);
    EXPECT_EQ(clone.readMem(0x1ffc, 4), 0u); // same page, zero bytes
    EXPECT_EQ(clone.cowFaults(), 0u);
    EXPECT_EQ(s.sharedPages(), 1u);
}

TEST(EmuStateCow, JournalRollbackAcrossClone)
{
    // The journal must behave identically on a COW clone: speculative
    // writes fault private pages, rollback restores the clone to the
    // snapshot values, and the original never observes any of it.
    EmuState s;
    s.writeReg(5, 77);
    s.writeMem(0x2000, 4, 0x1111);
    s.retire(s.mark());

    EmuState clone = s;
    JournalMark m = clone.mark();
    clone.writeReg(5, 88);
    clone.writeMem(0x2000, 4, 0x2222);
    clone.writeMem(0x9000, 4, 0x3333); // page the original never had
    EXPECT_EQ(s.readMem(0x2000, 4), 0x1111u);
    clone.rollback(m);
    EXPECT_EQ(clone.readReg(5), 77u);
    EXPECT_EQ(clone.readMem(0x2000, 4), 0x1111u);
    EXPECT_EQ(clone.readMem(0x9000, 4), 0u);
    EXPECT_EQ(s.readReg(5), 77u);
    EXPECT_EQ(s.readMem(0x2000, 4), 0x1111u);
}

/**
 * Property test: against a reference model, random interleavings of
 * writes, rollbacks, and retires always restore the exact state.
 */
TEST(EmuState, RandomisedJournalEquivalence)
{
    EmuState s;
    Rng rng(2024);

    struct Shadow
    {
        std::map<RegId, uint64_t> regs;
        std::map<Addr, uint8_t> mem;
    };
    Shadow cur;
    std::vector<std::pair<JournalMark, Shadow>> snaps;

    for (int step = 0; step < 3000; ++step) {
        uint64_t r = rng.below(100);
        if (r < 40) {
            RegId reg = static_cast<RegId>(1 + rng.below(30));
            uint64_t v = rng.next();
            s.writeReg(reg, v);
            cur.regs[reg] = v;
        } else if (r < 80) {
            Addr a = static_cast<Addr>(0x4000 + rng.below(256) * 4);
            uint32_t v = static_cast<uint32_t>(rng.next());
            s.writeMem(a, 4, v);
            for (int b = 0; b < 4; ++b)
                cur.mem[a + b] = static_cast<uint8_t>(v >> (8 * b));
        } else if (r < 90) {
            snaps.emplace_back(s.mark(), cur);
        } else if (!snaps.empty()) {
            size_t k = rng.below(snaps.size());
            s.rollback(snaps[k].first);
            cur = snaps[k].second;
            snaps.resize(k + 1);
        }
    }

    for (const auto &[reg, v] : cur.regs)
        ASSERT_EQ(s.readReg(reg), v);
    for (const auto &[a, v] : cur.mem)
        ASSERT_EQ(s.readMem(a, 1), v);
}
