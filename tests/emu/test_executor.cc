/** @file Unit tests for instruction semantics and the stepper. */

#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hh"
#include "common/rng.hh"
#include "emu/executor.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

uint64_t
evalRR(Op op, uint32_t a, uint32_t b)
{
    Instr i;
    i.op = op;
    i.rd = T0;
    i.rs = T1;
    i.rt = T2;
    return evalInstr(i, 0x1000, a, b, nullptr).result;
}

uint64_t
dbits(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

double
bitsd(uint64_t b)
{
    double d;
    std::memcpy(&d, &b, sizeof(d));
    return d;
}

} // anonymous namespace

TEST(EvalInstr, IntegerAlu)
{
    EXPECT_EQ(evalRR(Op::ADD, 5, 7), 12u);
    EXPECT_EQ(evalRR(Op::ADD, 0xffffffff, 1), 0u); // 32-bit wrap
    EXPECT_EQ(evalRR(Op::SUB, 5, 7),
              static_cast<uint32_t>(-2));
    EXPECT_EQ(evalRR(Op::AND, 0xf0f0, 0xff00), 0xf000u);
    EXPECT_EQ(evalRR(Op::OR, 0xf0f0, 0x0f0f), 0xffffu);
    EXPECT_EQ(evalRR(Op::XOR, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(evalRR(Op::NOR, 0, 0), 0xffffffffu);
    EXPECT_EQ(evalRR(Op::SLT, static_cast<uint32_t>(-1), 0), 1u);
    EXPECT_EQ(evalRR(Op::SLTU, static_cast<uint32_t>(-1), 0), 0u);
    EXPECT_EQ(evalRR(Op::SLLV, 1, 5), 32u);
    EXPECT_EQ(evalRR(Op::SRLV, 0x80000000, 31), 1u);
    EXPECT_EQ(evalRR(Op::SRAV, 0x80000000, 31), 0xffffffffu);
}

TEST(EvalInstr, Immediates)
{
    Instr i;
    i.op = Op::ADDI;
    i.rd = T0;
    i.rs = T1;
    i.imm = -3;
    EXPECT_EQ(evalInstr(i, 0, 10, 0, nullptr).result, 7u);

    i.op = Op::LUI;
    i.imm = 0x1234;
    EXPECT_EQ(evalInstr(i, 0, 0, 0, nullptr).result, 0x12340000u);

    i.op = Op::LI;
    i.imm = -1;
    EXPECT_EQ(evalInstr(i, 0, 0, 0, nullptr).result, 0xffffffffu);

    i.op = Op::SLL;
    i.imm = 4;
    EXPECT_EQ(evalInstr(i, 0, 3, 0, nullptr).result, 48u);
    i.op = Op::SRA;
    i.imm = 1;
    EXPECT_EQ(evalInstr(i, 0, 0x80000000u, 0, nullptr).result,
              0xc0000000u);
}

TEST(EvalInstr, MultDiv)
{
    Instr m;
    m.op = Op::MULT;
    m.rd = REG_LO;
    m.rd2 = REG_HI;
    m.rs = T1;
    m.rt = T2;
    SemOut o = evalInstr(m, 0, 0x10000, 0x10000, nullptr);
    EXPECT_EQ(o.result, 0u);       // LO
    EXPECT_EQ(o.result2, 1u);      // HI
    o = evalInstr(m, 0, static_cast<uint32_t>(-2), 3, nullptr);
    EXPECT_EQ(o.result, static_cast<uint32_t>(-6));
    EXPECT_EQ(o.result2, 0xffffffffu); // sign extension of -6

    m.op = Op::DIV;
    o = evalInstr(m, 0, 17, 5, nullptr);
    EXPECT_EQ(o.result, 3u);  // quotient in LO
    EXPECT_EQ(o.result2, 2u); // remainder in HI
    o = evalInstr(m, 0, 17, 0, nullptr); // divide by zero defined
    EXPECT_EQ(o.result, 0u);
}

/** Property: DIV satisfies a = q*b + r with |r| < |b|. */
TEST(EvalInstr, DivMulIdentityProperty)
{
    Rng rng(5);
    Instr d;
    d.op = Op::DIV;
    d.rd = REG_LO;
    d.rd2 = REG_HI;
    d.rs = T1;
    d.rt = T2;
    for (int i = 0; i < 2000; ++i) {
        int32_t a = static_cast<int32_t>(rng.next());
        int32_t b = static_cast<int32_t>(rng.next() | 1);
        if (a == INT32_MIN && b == -1)
            continue;
        SemOut o = evalInstr(d, 0, static_cast<uint32_t>(a),
                             static_cast<uint32_t>(b), nullptr);
        int32_t q = static_cast<int32_t>(o.result);
        int32_t r = static_cast<int32_t>(o.result2);
        ASSERT_EQ(static_cast<int64_t>(q) * b + r, a);
    }
}

TEST(EvalInstr, Branches)
{
    Instr b;
    b.op = Op::BEQ;
    b.rs = T1;
    b.rt = T2;
    b.target = 0x2000;
    SemOut o = evalInstr(b, 0x1000, 4, 4, nullptr);
    EXPECT_TRUE(o.taken);
    EXPECT_EQ(o.nextPC, 0x2000u);
    o = evalInstr(b, 0x1000, 4, 5, nullptr);
    EXPECT_FALSE(o.taken);
    EXPECT_EQ(o.nextPC, 0x1004u);

    b.op = Op::BLTZ;
    o = evalInstr(b, 0x1000, static_cast<uint32_t>(-1), 0, nullptr);
    EXPECT_TRUE(o.taken);
    b.op = Op::BGEZ;
    o = evalInstr(b, 0x1000, 0, 0, nullptr);
    EXPECT_TRUE(o.taken);
}

TEST(EvalInstr, Jumps)
{
    Instr j;
    j.op = Op::JAL;
    j.rd = REG_RA;
    j.target = 0x3000;
    SemOut o = evalInstr(j, 0x1000, 0, 0, nullptr);
    EXPECT_EQ(o.nextPC, 0x3000u);
    EXPECT_EQ(o.result, 0x1004u); // link

    j.op = Op::JR;
    j.rs = T1;
    o = evalInstr(j, 0x1000, 0x4000, 0, nullptr);
    EXPECT_EQ(o.nextPC, 0x4000u);
}

TEST(EvalInstr, FloatingPoint)
{
    Instr f;
    f.op = Op::ADD_D;
    f.rd = fpReg(0);
    f.rs = fpReg(1);
    f.rt = fpReg(2);
    SemOut o = evalInstr(f, 0, dbits(1.5), dbits(2.25), nullptr);
    EXPECT_DOUBLE_EQ(bitsd(o.result), 3.75);

    f.op = Op::MUL_D;
    o = evalInstr(f, 0, dbits(3.0), dbits(-2.0), nullptr);
    EXPECT_DOUBLE_EQ(bitsd(o.result), -6.0);

    f.op = Op::SQRT_D;
    o = evalInstr(f, 0, dbits(9.0), 0, nullptr);
    EXPECT_DOUBLE_EQ(bitsd(o.result), 3.0);

    f.op = Op::C_LT_D;
    o = evalInstr(f, 0, dbits(1.0), dbits(2.0), nullptr);
    EXPECT_EQ(o.result, 1u);

    f.op = Op::CVT_D_W;
    o = evalInstr(f, 0, static_cast<uint32_t>(-7), 0, nullptr);
    EXPECT_DOUBLE_EQ(bitsd(o.result), -7.0);

    f.op = Op::CVT_W_D;
    o = evalInstr(f, 0, dbits(-7.9), 0, nullptr);
    EXPECT_EQ(static_cast<int32_t>(o.result), -7);
}

TEST(EvalInstr, LoadsSignAndZeroExtend)
{
    auto mem = [](Addr, unsigned) -> uint64_t { return 0x80; };
    Instr l;
    l.op = Op::LB;
    l.rd = T0;
    l.rs = T1;
    EXPECT_EQ(evalInstr(l, 0, 0x100, 0, mem).result, 0xffffff80u);
    l.op = Op::LBU;
    EXPECT_EQ(evalInstr(l, 0, 0x100, 0, mem).result, 0x80u);
}

TEST(Emulator, RunsAssembledProgram)
{
    Assembler a;
    a.dataLabel("out");
    a.space(8);
    a.li(T0, 6);
    a.li(T1, 7);
    a.mult(T0, T1);
    a.mflo(T2);
    a.la(T3, "out");
    a.sw(T2, T3, 0);
    a.halt();
    Program p = a.finish();

    EmuState st;
    Emulator emu(p, st);
    Emulator::loadProgram(p, st);
    int guard = 0;
    while (!emu.halted() && guard++ < 100)
        emu.step();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(st.readMem(a.dataAddr("out"), 4), 42u);
}

TEST(Emulator, LoopExecutesExpectedCount)
{
    Assembler a;
    a.li(T0, 10);
    a.li(T1, 0);
    a.label("loop");
    a.addi(T1, T1, 3);
    a.addi(T0, T0, -1);
    a.bgtz(T0, "loop");
    a.halt();
    Program p = a.finish();

    EmuState st;
    Emulator emu(p, st);
    Emulator::loadProgram(p, st);
    uint64_t steps = 0;
    while (!emu.halted()) {
        emu.step();
        ++steps;
        ASSERT_LT(steps, 1000u);
    }
    EXPECT_EQ(st.readReg(T1), 30u);
    EXPECT_EQ(steps, 2u + 3u * 10u + 1u); // 2 li, 10x3 body, halt
}

TEST(Emulator, OffTextPCHalts)
{
    Assembler a;
    a.nop();
    Program p = a.finish();
    EmuState st;
    Emulator emu(p, st);
    ExecResult r = emu.stepAt(0xdead0000);
    EXPECT_TRUE(r.halted);
}

TEST(Emulator, SrcValsCaptureOperands)
{
    Assembler a;
    a.li(T0, 11);
    a.li(T1, 22);
    a.add(T2, T0, T1);
    a.halt();
    Program p = a.finish();
    EmuState st;
    Emulator emu(p, st);
    emu.step();
    emu.step();
    ExecResult r = emu.step();
    EXPECT_EQ(r.srcVals[0], 11u);
    EXPECT_EQ(r.srcVals[1], 22u);
    EXPECT_EQ(r.out.result, 33u);
}

TEST(Emulator, StoreWritesThroughJournal)
{
    Assembler a;
    a.li(T0, 0x5000);
    a.li(T1, 0x99);
    a.sb(T1, T0, 2);
    a.halt();
    Program p = a.finish();
    EmuState st;
    Emulator emu(p, st);
    JournalMark m = st.mark();
    emu.step();
    emu.step();
    emu.step();
    EXPECT_EQ(st.readMem(0x5002, 1), 0x99u);
    st.rollback(m);
    EXPECT_EQ(st.readMem(0x5002, 1), 0u);
}
