/** @file Unit tests for the S_{n+d} reuse buffer. */

#include <gtest/gtest.h>

#include "reuse/reuse_buffer.hh"

using namespace vpir;

namespace
{

RbParams
smallRb()
{
    return RbParams{64, 4};
}

Instr
addInstr()
{
    Instr i;
    i.op = Op::ADD;
    i.rd = 3;
    i.rs = 1;
    i.rt = 2;
    return i;
}

Instr
loadInstr()
{
    Instr i;
    i.op = Op::LW;
    i.rd = 3;
    i.rs = 1;
    i.imm = 0;
    return i;
}

RbInsertInfo
addInsert(Addr pc, uint64_t a, uint64_t b)
{
    RbInsertInfo info;
    info.pc = pc;
    info.inst = addInstr();
    info.srcReg[0] = 1;
    info.srcReg[1] = 2;
    info.srcVal[0] = a;
    info.srcVal[1] = b;
    info.result = (a + b) & 0xffffffff;
    return info;
}

RbInsertInfo
loadInsert(Addr pc, uint64_t base, uint64_t value)
{
    RbInsertInfo info;
    info.pc = pc;
    info.inst = loadInstr();
    info.srcReg[0] = 1;
    info.srcReg[1] = REG_INVALID;
    info.srcVal[0] = base;
    info.memAddr = static_cast<Addr>(base);
    info.memValue = value;
    info.result = value;
    return info;
}

/** Ready operand query with the given values. */
void
readyOps(RbOperandQuery q[2], uint64_t a, uint64_t b)
{
    q[0] = RbOperandQuery{};
    q[0].reg = 1;
    q[0].ready = true;
    q[0].value = a;
    q[1] = RbOperandQuery{};
    q[1].reg = 2;
    q[1].ready = true;
    q[1].value = b;
}

} // anonymous namespace

TEST(ReuseBuffer, MissOnEmpty)
{
    ReuseBuffer rb(smallRb());
    RbOperandQuery q[2];
    readyOps(q, 5, 7);
    EXPECT_FALSE(rb.probe(0x1000, addInstr(), q).resultReused);
}

TEST(ReuseBuffer, HitWithMatchingOperands)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 5, 7));
    RbOperandQuery q[2];
    readyOps(q, 5, 7);
    RbProbeResult r = rb.probe(0x1000, addInstr(), q);
    EXPECT_TRUE(r.resultReused);
    EXPECT_EQ(r.result, 12u);
}

TEST(ReuseBuffer, MissWithDifferentOperands)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 5, 7));
    RbOperandQuery q[2];
    readyOps(q, 5, 8);
    EXPECT_FALSE(rb.probe(0x1000, addInstr(), q).resultReused);
}

TEST(ReuseBuffer, MissWhenOperandNotReady)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 5, 7));
    RbOperandQuery q[2];
    readyOps(q, 5, 7);
    q[1].ready = false; // paper §3.1: not ready -> not reused
    EXPECT_FALSE(rb.probe(0x1000, addInstr(), q).resultReused);
}

TEST(ReuseBuffer, MultipleInstancesPerPC)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 1, 1));
    rb.insert(addInsert(0x1000, 2, 2));
    rb.insert(addInsert(0x1000, 3, 3));
    EXPECT_EQ(rb.instancesFor(0x1000), 3u);
    RbOperandQuery q[2];
    readyOps(q, 2, 2);
    RbProbeResult r = rb.probe(0x1000, addInstr(), q);
    ASSERT_TRUE(r.resultReused);
    EXPECT_EQ(r.result, 4u);
}

TEST(ReuseBuffer, RefreshDoesNotDuplicate)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 1, 1));
    rb.insert(addInsert(0x1000, 1, 1));
    EXPECT_EQ(rb.instancesFor(0x1000), 1u);
}

TEST(ReuseBuffer, CapacityFourInstances)
{
    ReuseBuffer rb(smallRb());
    for (uint64_t v = 0; v < 6; ++v)
        rb.insert(addInsert(0x1000, v, v));
    EXPECT_EQ(rb.instancesFor(0x1000), 4u);
}

TEST(ReuseBuffer, LoadAddressAndResultReuse)
{
    ReuseBuffer rb(smallRb());
    rb.insert(loadInsert(0x2000, 0x5000, 77));
    RbOperandQuery q[2];
    q[0] = RbOperandQuery{};
    q[0].reg = 1;
    q[0].ready = true;
    q[0].value = 0x5000;
    q[1] = RbOperandQuery{};
    RbProbeResult r = rb.probe(0x2000, loadInstr(), q);
    EXPECT_TRUE(r.addrReused);
    EXPECT_TRUE(r.resultReused);
    EXPECT_EQ(r.memValue, 77u);
    EXPECT_EQ(r.memAddr, 0x5000u);
}

TEST(ReuseBuffer, StoreKillsLoadResultNotAddress)
{
    ReuseBuffer rb(smallRb());
    rb.insert(loadInsert(0x2000, 0x5000, 77));
    rb.storeInvalidate(0x5000, 4);
    RbOperandQuery q[2];
    q[0] = RbOperandQuery{};
    q[0].reg = 1;
    q[0].ready = true;
    q[0].value = 0x5000;
    q[1] = RbOperandQuery{};
    RbProbeResult r = rb.probe(0x2000, loadInstr(), q);
    EXPECT_TRUE(r.addrReused);     // address part survives
    EXPECT_FALSE(r.resultReused);  // result part invalidated
}

TEST(ReuseBuffer, StoreToOtherAddressLeavesLoadValid)
{
    ReuseBuffer rb(smallRb());
    rb.insert(loadInsert(0x2000, 0x5000, 77));
    rb.storeInvalidate(0x6000, 4);
    RbOperandQuery q[2];
    q[0] = RbOperandQuery{};
    q[0].reg = 1;
    q[0].ready = true;
    q[0].value = 0x5000;
    q[1] = RbOperandQuery{};
    EXPECT_TRUE(rb.probe(0x2000, loadInstr(), q).resultReused);
}

TEST(ReuseBuffer, PartialOverlapStoreInvalidates)
{
    ReuseBuffer rb(smallRb());
    rb.insert(loadInsert(0x2000, 0x5000, 77)); // 4-byte load
    rb.storeInvalidate(0x5002, 1);             // one byte inside
    RbOperandQuery q[2];
    q[0] = RbOperandQuery{};
    q[0].reg = 1;
    q[0].ready = true;
    q[0].value = 0x5000;
    q[1] = RbOperandQuery{};
    EXPECT_FALSE(rb.probe(0x2000, loadInstr(), q).resultReused);
}

TEST(ReuseBuffer, ReinsertRevalidatesLoad)
{
    ReuseBuffer rb(smallRb());
    rb.insert(loadInsert(0x2000, 0x5000, 77));
    rb.storeInvalidate(0x5000, 4);
    rb.insert(loadInsert(0x2000, 0x5000, 88)); // re-executed load
    RbOperandQuery q[2];
    q[0] = RbOperandQuery{};
    q[0].reg = 1;
    q[0].ready = true;
    q[0].value = 0x5000;
    q[1] = RbOperandQuery{};
    RbProbeResult r = rb.probe(0x2000, loadInstr(), q);
    EXPECT_TRUE(r.resultReused);
    EXPECT_EQ(r.memValue, 88u);
}

TEST(ReuseBuffer, ChainReuseThroughDependencePointer)
{
    ReuseBuffer rb(smallRb());
    // Producer: r3 = r1 + r2 with (5, 7) -> 12.
    RbRef prod = rb.insert(addInsert(0x1000, 5, 7));

    // Consumer: r4 = r3 + r2 with (12, 7), linked to the producer.
    Instr consumer;
    consumer.op = Op::ADD;
    consumer.rd = 4;
    consumer.rs = 3;
    consumer.rt = 2;
    RbInsertInfo info;
    info.pc = 0x1004;
    info.inst = consumer;
    info.srcReg[0] = 3;
    info.srcReg[1] = 2;
    info.srcVal[0] = 12;
    info.srcVal[1] = 7;
    info.result = 19;
    RbRef cons = rb.insert(info);
    RbRef links[2] = {prod, RbRef{}};
    rb.linkSources(cons, links);

    // Probe the consumer with operand r3 NOT ready, but its in-flight
    // producer reused from the linked entry: the chain collapses.
    RbOperandQuery q[2];
    q[0] = RbOperandQuery{};
    q[0].reg = 3;
    q[0].ready = false;
    q[0].value = 12;
    q[0].producerReuse = prod;
    q[1] = RbOperandQuery{};
    q[1].reg = 2;
    q[1].ready = true;
    q[1].value = 7;
    RbProbeResult r = rb.probe(0x1004, consumer, q);
    ASSERT_TRUE(r.resultReused);
    EXPECT_EQ(r.result, 19u);

    // A stale link (different serial) must not chain.
    q[0].producerReuse.serial += 1;
    EXPECT_FALSE(rb.probe(0x1004, consumer, q).resultReused);
}

TEST(ReuseBuffer, SquashedWorkRecoveryCreditOnce)
{
    ReuseBuffer rb(smallRb());
    RbRef ref = rb.insert(addInsert(0x1000, 5, 7));
    rb.markSquashed(ref);

    RbOperandQuery q[2];
    readyOps(q, 5, 7);
    RbProbeResult r = rb.probe(0x1000, addInstr(), q);
    ASSERT_TRUE(r.resultReused);
    EXPECT_TRUE(r.recoveredSquashedWork);
    rb.noteReused(r, addInstr());

    // Credit consumed: the next reuse of the same entry is ordinary.
    r = rb.probe(0x1000, addInstr(), q);
    ASSERT_TRUE(r.resultReused);
    EXPECT_FALSE(r.recoveredSquashedWork);
}

TEST(ReuseBuffer, BranchOutcomeReuse)
{
    ReuseBuffer rb(smallRb());
    Instr br;
    br.op = Op::BNE;
    br.rs = 1;
    br.rt = 2;
    br.target = 0x3000;
    RbInsertInfo info;
    info.pc = 0x1010;
    info.inst = br;
    info.srcReg[0] = 1;
    info.srcReg[1] = 2;
    info.srcVal[0] = 4;
    info.srcVal[1] = 9;
    info.taken = true;
    info.nextPC = 0x3000;
    rb.insert(info);

    RbOperandQuery q[2];
    readyOps(q, 4, 9);
    RbProbeResult r = rb.probe(0x1010, br, q);
    ASSERT_TRUE(r.resultReused);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPC, 0x3000u);
}

TEST(ReuseBuffer, DifferentOpcodeSamePCMisses)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 5, 7));
    Instr sub = addInstr();
    sub.op = Op::SUB;
    RbOperandQuery q[2];
    readyOps(q, 5, 7);
    EXPECT_FALSE(rb.probe(0x1000, sub, q).resultReused);
}

TEST(ReuseBuffer, ResetClears)
{
    ReuseBuffer rb(smallRb());
    rb.insert(addInsert(0x1000, 5, 7));
    rb.reset();
    RbOperandQuery q[2];
    readyOps(q, 5, 7);
    EXPECT_FALSE(rb.probe(0x1000, addInstr(), q).resultReused);
}
