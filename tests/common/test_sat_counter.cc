/** @file Unit tests for the saturating counter. */

#include <gtest/gtest.h>

#include "common/sat_counter.hh"

using namespace vpir;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_EQ(c.max(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, IsSetAboveMidpoint)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.isSet());
    c.increment(); // 1
    EXPECT_FALSE(c.isSet());
    c.increment(); // 2
    EXPECT_TRUE(c.isSet());
    c.increment(); // 3
    EXPECT_TRUE(c.isSet());
}

TEST(SatCounter, AtLeastThreshold)
{
    SatCounter c(3, 5);
    EXPECT_TRUE(c.atLeast(5));
    EXPECT_TRUE(c.atLeast(0));
    EXPECT_FALSE(c.atLeast(6));
}

TEST(SatCounter, ResetToValue)
{
    SatCounter c(2, 3);
    c.reset(1);
    EXPECT_EQ(c.value(), 1u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

/** Property: a counter never leaves [0, max] under random walks. */
TEST(SatCounter, StaysBoundedUnderRandomWalk)
{
    SatCounter c(3, 4);
    uint64_t s = 12345;
    for (int i = 0; i < 10000; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        if (s >> 63)
            c.increment();
        else
            c.decrement();
        ASSERT_LE(c.value(), c.max());
    }
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, MaxMatchesWidth)
{
    unsigned bits = GetParam();
    SatCounter c(bits, 0);
    EXPECT_EQ(c.max(), (1u << bits) - 1);
    for (unsigned i = 0; i < c.max() + 5; ++i)
        c.increment();
    EXPECT_EQ(c.value(), c.max());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1, 2, 3, 4, 8, 15));
