/** @file Unit tests for LRU replacement state. */

#include <gtest/gtest.h>

#include "common/lru.hh"

using namespace vpir;

TEST(LruSet, VictimIsLeastRecentlyTouched)
{
    LruSet l(4);
    l.touch(0);
    l.touch(1);
    l.touch(2);
    l.touch(3);
    EXPECT_EQ(l.victim(), 0u);
    l.touch(0);
    EXPECT_EQ(l.victim(), 1u);
}

TEST(LruSet, UntouchedWaysAreVictimsFirst)
{
    LruSet l(4);
    l.touch(2);
    // Ways 0, 1, 3 are untouched; the first one wins ties.
    EXPECT_EQ(l.victim(), 0u);
}

TEST(LruSet, SingleWay)
{
    LruSet l(1);
    l.touch(0);
    EXPECT_EQ(l.victim(), 0u);
}

/** Property: after touching every way in order, victims cycle in
 *  the same order as re-touches happen. */
TEST(LruSet, CyclesThroughVictims)
{
    LruSet l(4);
    for (unsigned w = 0; w < 4; ++w)
        l.touch(w);
    for (unsigned round = 0; round < 12; ++round) {
        unsigned v = l.victim();
        EXPECT_EQ(v, round % 4);
        l.touch(v);
    }
}

/** Property: the victim is never a way touched more recently than
 *  some untouched way (reference-model check). */
TEST(LruSet, MatchesReferenceModel)
{
    LruSet l(8);
    std::vector<uint64_t> stamp(8, 0);
    uint64_t t = 0;
    uint64_t s = 99;
    for (int i = 0; i < 2000; ++i) {
        s = s * 6364136223846793005ull + 1;
        unsigned w = static_cast<unsigned>(s >> 61);
        l.touch(w);
        stamp[w] = ++t;
        unsigned expect = 0;
        for (unsigned k = 1; k < 8; ++k) {
            if (stamp[k] < stamp[expect])
                expect = k;
        }
        ASSERT_EQ(l.victim(), expect);
    }
}
