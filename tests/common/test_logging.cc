/**
 * @file
 * Recoverable-panic machinery: PanicThrowScope turns panic()/fatal()
 * into catchable SimError on the current thread, and PanicContext
 * frames annotate the message so a failure deep inside a sweep worker
 * is attributable to its cell.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"

using namespace vpir;

namespace
{

TEST(PanicThrow, PanicThrowsSimErrorInsideScope)
{
    PanicThrowScope throws_;
    try {
        panic("broken invariant");
        FAIL() << "panic returned";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("broken invariant"),
                  std::string::npos);
    }
}

TEST(PanicThrow, FatalThrowsSimErrorInsideScope)
{
    PanicThrowScope throws_;
    EXPECT_THROW(fatal("bad config"), SimError);
}

TEST(PanicThrow, AssertMacroReportsLocation)
{
    PanicThrowScope throws_;
    try {
        VPIR_ASSERT(1 + 1 == 3, "arithmetic drifted");
        FAIL() << "assert passed";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("assertion failed"), std::string::npos);
        EXPECT_NE(msg.find("test_logging.cc"), std::string::npos);
        EXPECT_NE(msg.find("arithmetic drifted"), std::string::npos);
    }
}

TEST(PanicContext, FramesAppendOutermostFirst)
{
    PanicThrowScope throws_;
    PanicContext outer([] { return std::string("cell=compress/base"); });
    std::string msg;
    {
        PanicContext inner([] { return std::string("cycle 1234"); });
        try {
            panic("boom");
        } catch (const SimError &e) {
            msg = e.what();
        }
    }
    auto cell_at = msg.find("cell=compress/base");
    auto cycle_at = msg.find("cycle 1234");
    ASSERT_NE(cell_at, std::string::npos) << msg;
    ASSERT_NE(cycle_at, std::string::npos) << msg;
    EXPECT_LT(cell_at, cycle_at);
}

TEST(PanicContext, FramesPopOnScopeExit)
{
    {
        PanicContext frame([] { return std::string("ephemeral"); });
        EXPECT_NE(PanicContext::gather().find("ephemeral"),
                  std::string::npos);
    }
    EXPECT_EQ(PanicContext::gather().find("ephemeral"), std::string::npos);
}

TEST(PanicContext, LazyProviderOnlyRunsOnFailure)
{
    int calls = 0;
    {
        PanicContext frame([&calls] {
            ++calls;
            return std::string("counted");
        });
        EXPECT_EQ(calls, 0);
        PanicThrowScope throws_;
        EXPECT_THROW(panic("x"), SimError);
        EXPECT_EQ(calls, 1);
    }
}

} // anonymous namespace
