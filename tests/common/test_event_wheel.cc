/**
 * @file
 * EventWheel unit tests: bucket wraparound (two laps sharing a
 * bucket), far-heap migration into the near wheel, exact-cycle
 * popDue filtering, nextEventAt bounds, event-kind round-tripping,
 * and the schedule-in-the-past assertion.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/event_wheel.hh"
#include "common/logging.hh"

using namespace vpir;

namespace
{

WheelEvent
ev(uint64_t at, int slot = 0, uint64_t seq = 0,
   WheelEvent::Kind kind = WheelEvent::Kind::Complete)
{
    WheelEvent e;
    e.at = at;
    e.slot = slot;
    e.seq = seq;
    e.kind = kind;
    return e;
}

std::vector<WheelEvent>
popAll(EventWheel &w, uint64_t now)
{
    std::vector<WheelEvent> out;
    w.popDue(now, out);
    return out;
}

TEST(EventWheel, PopsExactlyAtDueCycle)
{
    EventWheel w;
    w.schedule(ev(5, 1), 0);
    w.schedule(ev(7, 2), 0);
    EXPECT_EQ(w.size(), 2u);

    EXPECT_TRUE(popAll(w, 4).empty());
    std::vector<WheelEvent> due = popAll(w, 5);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].slot, 1);
    EXPECT_EQ(w.size(), 1u);

    EXPECT_TRUE(popAll(w, 6).empty());
    due = popAll(w, 7);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].slot, 2);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, TwoLapsShareABucketWithoutCrosstalk)
{
    // at and at + WHEEL_SPAN map to the same bucket index. Schedule
    // the later lap from a later `now` so both land in the near wheel
    // simultaneously; popDue must take only the exact-cycle lap and
    // leave the other for its own revolution.
    constexpr uint64_t SPAN = EventWheel::WHEEL_SPAN;
    EventWheel w;
    w.schedule(ev(9, 1), 0);
    w.schedule(ev(9 + SPAN, 2), 20); // delta < SPAN: same bucket as 9

    std::vector<WheelEvent> due = popAll(w, 9);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].slot, 1);
    EXPECT_EQ(w.size(), 1u); // the later lap survived the pop

    EXPECT_TRUE(popAll(w, 9 + SPAN - 1).empty());
    due = popAll(w, 9 + SPAN);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].slot, 2);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, FarEventsMigrateAndPopOnTime)
{
    // Far beyond the near span: the event waits in the heap and must
    // still pop at exactly its due cycle after migration.
    constexpr uint64_t SPAN = EventWheel::WHEEL_SPAN;
    EventWheel w;
    w.schedule(ev(3 * SPAN + 17, 1), 0);
    w.schedule(ev(5 * SPAN + 4, 2), 0);
    EXPECT_EQ(w.nextEventAt(0), 3 * SPAN + 17);

    // Sweep every cycle; events must appear exactly once, on time.
    std::vector<uint64_t> seen;
    for (uint64_t now = 0; now <= 5 * SPAN + 4; ++now) {
        for (const WheelEvent &e : popAll(w, now)) {
            EXPECT_EQ(e.at, now);
            seen.push_back(e.at);
        }
    }
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 3 * SPAN + 17);
    EXPECT_EQ(seen[1], 5 * SPAN + 4);
    EXPECT_TRUE(w.empty());
}

TEST(EventWheel, NextEventAtFindsEarliestAcrossNearAndFar)
{
    constexpr uint64_t SPAN = EventWheel::WHEEL_SPAN;
    EventWheel w;
    EXPECT_EQ(w.nextEventAt(0), UINT64_MAX);

    w.schedule(ev(2 * SPAN + 1, 1), 0); // far
    EXPECT_EQ(w.nextEventAt(0), 2 * SPAN + 1);

    w.schedule(ev(40, 2), 0); // near, beats the far event
    EXPECT_EQ(w.nextEventAt(0), 40u);
    EXPECT_EQ(w.nextEventAt(40), 40u); // due right now

    (void)popAll(w, 40);
    EXPECT_EQ(w.nextEventAt(41), 2 * SPAN + 1);
}

TEST(EventWheel, KindSurvivesScheduleAndPop)
{
    constexpr uint64_t SPAN = EventWheel::WHEEL_SPAN;
    EventWheel w;
    w.schedule(ev(6, 1, 11, WheelEvent::Kind::Refinal), 0);
    w.schedule(ev(SPAN + 6, 2, 22, WheelEvent::Kind::Complete), 0);

    std::vector<WheelEvent> due = popAll(w, 6);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].kind, WheelEvent::Kind::Refinal);
    EXPECT_EQ(due[0].seq, 11u);

    for (uint64_t now = 7; now < SPAN + 6; ++now)
        EXPECT_TRUE(popAll(w, now).empty());
    due = popAll(w, SPAN + 6);
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0].kind, WheelEvent::Kind::Complete);
    EXPECT_EQ(due[0].seq, 22u);
}

TEST(EventWheel, ClearEmptiesBothStructures)
{
    constexpr uint64_t SPAN = EventWheel::WHEEL_SPAN;
    EventWheel w;
    w.schedule(ev(3, 1), 0);
    w.schedule(ev(4 * SPAN, 2), 0);
    EXPECT_EQ(w.size(), 2u);
    w.clear();
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.nextEventAt(0), UINT64_MAX);
    EXPECT_TRUE(popAll(w, 3).empty());
}

TEST(EventWheel, SchedulingInThePastPanics)
{
    EventWheel w;
    PanicThrowScope scope;
    EXPECT_THROW(w.schedule(ev(5), 6), SimError);
}

} // anonymous namespace
