/**
 * @file
 * Strict environment-variable parsing: malformed values must fall back
 * to the documented default (with a warning), never be silently
 * half-parsed ("10m" -> 10) or wrapped ("-1" -> 2^64-1).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace vpir;

namespace
{

/** setenv/unsetenv wrapper that restores the old state on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv() { ::unsetenv(name); }

  private:
    const char *name;
};

constexpr const char *VAR = "VPIR_TEST_ENV_VAR";

TEST(ParseEnvU64, UnsetUsesDefault)
{
    ScopedEnv e(VAR, nullptr);
    EXPECT_EQ(parseEnvU64(VAR, 400000u), 400000u);
    EXPECT_FALSE(envSet(VAR));
}

TEST(ParseEnvU64, ValidValueParses)
{
    ScopedEnv e(VAR, "123456");
    EXPECT_EQ(parseEnvU64(VAR, 7u), 123456u);
    EXPECT_TRUE(envSet(VAR));
}

TEST(ParseEnvU64, TrailingGarbageRejected)
{
    ScopedEnv e(VAR, "10m");
    EXPECT_EQ(parseEnvU64(VAR, 400000u), 400000u);
}

TEST(ParseEnvU64, NegativeRejectedInsteadOfWrapping)
{
    ScopedEnv e(VAR, "-1");
    EXPECT_EQ(parseEnvU64(VAR, 5u), 5u);
}

TEST(ParseEnvU64, EmptyStringRejected)
{
    ScopedEnv e(VAR, "");
    EXPECT_EQ(parseEnvU64(VAR, 5u), 5u);
}

TEST(ParseEnvU64, OverflowRejected)
{
    ScopedEnv e(VAR, "18446744073709551616"); // 2^64
    EXPECT_EQ(parseEnvU64(VAR, 5u), 5u);
}

TEST(ParseEnvF64, ValidValueParses)
{
    ScopedEnv e(VAR, "0.25");
    EXPECT_DOUBLE_EQ(parseEnvF64(VAR, 1.0), 0.25);
}

TEST(ParseEnvF64, ScientificNotationParses)
{
    ScopedEnv e(VAR, "1e-2");
    EXPECT_DOUBLE_EQ(parseEnvF64(VAR, 1.0), 0.01);
}

TEST(ParseEnvF64, GarbageRejected)
{
    ScopedEnv e(VAR, "fast");
    EXPECT_DOUBLE_EQ(parseEnvF64(VAR, 1.0), 1.0);
}

TEST(ParseEnvF64, NonFiniteRejected)
{
    ScopedEnv e(VAR, "inf");
    EXPECT_DOUBLE_EQ(parseEnvF64(VAR, 1.0), 1.0);
}

} // anonymous namespace
