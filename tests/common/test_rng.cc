/** @file Unit tests for the deterministic workload RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace vpir;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(1, 4) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreDeterministic)
{
    EXPECT_EQ(Rng::split(42, 7), Rng::split(42, 7));
    Rng a(42, 7), b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsAreIndependent)
{
    // Distinct streams of one seed, and the same stream of distinct
    // seeds, must all decorrelate.
    std::set<uint64_t> seeds;
    for (uint64_t s = 0; s < 64; ++s) {
        seeds.insert(Rng::split(42, s));
        seeds.insert(Rng::split(43, s));
    }
    EXPECT_EQ(seeds.size(), 128u);

    Rng a(9, 0), b(9, 1);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, StreamConstructorMatchesSplit)
{
    Rng direct(Rng::split(1234, 56));
    Rng streamed(1234, 56);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(direct.next(), streamed.next());
}
