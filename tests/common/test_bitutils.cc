/** @file Unit tests for bit utilities. */

#include <gtest/gtest.h>

#include "common/bitutils.hh"

using namespace vpir;

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1023), 9u);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtendByte(0x80), -128);
    EXPECT_EQ(signExtendByte(0x7f), 127);
    EXPECT_EQ(signExtendHalf(0xffff), -1);
    EXPECT_EQ(signExtendHalf(0x0001), 1);
}

TEST(BitUtils, FoldPCStaysInRange)
{
    for (uint32_t pc = 0; pc < 1u << 20; pc += 4093) {
        uint32_t idx = foldPC(pc, 10);
        EXPECT_LT(idx, 1u << 10);
    }
}

TEST(BitUtils, FoldPCDistinguishesNearbyPCs)
{
    // Word-adjacent PCs should map to different indices (no trivial
    // aliasing of consecutive instructions).
    EXPECT_NE(foldPC(0x1000, 12), foldPC(0x1004, 12));
    EXPECT_NE(foldPC(0x1004, 12), foldPC(0x1008, 12));
}
