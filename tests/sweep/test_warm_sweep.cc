/**
 * @file
 * Warm-start sweep tests: a sweep's per-cell stats must be
 * bit-identical with the warm-start cache on and off, in both the
 * in-process and the forked-isolation execution modes; and with the
 * cache on, assembly and warmup must happen exactly once per
 * (workload, scale, warmup) key no matter how many cells share it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/warm_cache.hh"
#include "sweep/stats_json.hh"
#include "sweep/sweep.hh"

using namespace vpir;
using namespace vpir::sweep;

namespace
{

constexpr uint64_t TEST_INSTS = 20000;

/** setenv/unsetenv for the test's scope (engines and cells read the
 *  environment when they run, so ordering matters). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

/** Three configs x two workloads: six cells over two warm-start keys
 *  (all configs share the same warmup length). */
std::vector<SweepCell>
standardCells()
{
    WorkloadScale scale;
    scale.factor = 0.25;
    std::vector<CoreParams> cfgs = {
        baseConfig(),
        irConfig(),
        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                 BranchResolution::Speculative, 0),
    };
    std::vector<SweepCell> cells;
    for (const std::string &w : {std::string("perl"),
                                 std::string("compress")}) {
        for (size_t i = 0; i < cfgs.size(); ++i) {
            CoreParams p = withLimits(cfgs[i], TEST_INSTS);
            p.warmupInsts = 2000;
            cells.push_back(
                SweepCell{w, "cfg" + std::to_string(i), p, scale});
        }
    }
    return cells;
}

std::vector<CoreStats>
runSweep(const std::vector<SweepCell> &cells, unsigned jobs)
{
    SweepEngine eng(jobs, "");
    for (const SweepCell &c : cells)
        eng.prefetch(c);
    eng.drain();
    std::vector<CoreStats> out;
    for (const SweepCell &c : cells)
        out.push_back(eng.get(c));
    EXPECT_TRUE(eng.failures().empty());
    return out;
}

void
expectAllEqual(const std::vector<CoreStats> &a,
               const std::vector<CoreStats> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(statsEqual(a[i], b[i])) << "cell " << i;
        EXPECT_GT(a[i].committedInsts, 0u) << "cell " << i;
    }
}

TEST(WarmSweep, StatsIdenticalCacheOnVsOffInProcess)
{
    std::vector<SweepCell> cells = standardCells();
    std::vector<CoreStats> off, on;
    {
        EnvGuard cache("VPIR_WARM_CACHE", "0");
        off = runSweep(cells, 2);
    }
    {
        EnvGuard cache("VPIR_WARM_CACHE", "1");
        WarmStartCache::global().clear();
        on = runSweep(cells, 2);
    }
    expectAllEqual(off, on);
}

TEST(WarmSweep, StatsIdenticalCacheOnVsOffIsolated)
{
    EnvGuard iso("VPIR_ISOLATE", "1");
    std::vector<SweepCell> cells = standardCells();
    std::vector<CoreStats> off, on;
    {
        EnvGuard cache("VPIR_WARM_CACHE", "0");
        off = runSweep(cells, 2);
    }
    {
        EnvGuard cache("VPIR_WARM_CACHE", "1");
        WarmStartCache::global().clear();
        on = runSweep(cells, 2);
    }
    expectAllEqual(off, on);
}

TEST(WarmSweep, BuildsExactlyOncePerKeyInProcess)
{
    EnvGuard cache("VPIR_WARM_CACHE", "1");
    WarmStartCache::global().clear();

    std::vector<SweepCell> cells = standardCells(); // 6 cells, 2 keys
    SweepEngine eng(2, "");
    for (const SweepCell &c : cells)
        eng.prefetch(c);
    eng.drain();

    WarmStartCache::Counters c = WarmStartCache::global().counters();
    EXPECT_EQ(c.programBuilds, 2u);
    EXPECT_EQ(c.snapshotBuilds, 2u);
    EXPECT_EQ(c.snapshotHits, 4u); // the other four cells cloned

    // Per-cell attribution must agree: exactly one cell per key paid
    // for the build, every cell has a phase breakdown.
    std::vector<CellTiming> ts = eng.timings();
    ASSERT_EQ(ts.size(), cells.size());
    size_t assembled = 0, warmed = 0;
    for (const CellTiming &t : ts) {
        assembled += t.assembled ? 1 : 0;
        warmed += t.warmed ? 1 : 0;
        EXPECT_GT(t.runSeconds, 0.0);
        EXPECT_GE(t.wallSeconds, t.setupSeconds + t.runSeconds - 1e-3);
    }
    EXPECT_EQ(assembled, 2u);
    EXPECT_EQ(warmed, 2u);
}

TEST(WarmSweep, BuildsExactlyOncePerKeyIsolated)
{
    EnvGuard iso("VPIR_ISOLATE", "1");
    EnvGuard cache("VPIR_WARM_CACHE", "1");
    WarmStartCache::global().clear();

    std::vector<SweepCell> cells = standardCells();
    SweepEngine eng(2, "");
    for (const SweepCell &c : cells)
        eng.prefetch(c);
    eng.drain();
    EXPECT_TRUE(eng.failures().empty());

    // The parent prewarms before forking, so the counters live in the
    // parent and tell the same exactly-once story.
    WarmStartCache::Counters c = WarmStartCache::global().counters();
    EXPECT_EQ(c.programBuilds, 2u);
    EXPECT_EQ(c.snapshotBuilds, 2u);

    std::vector<CellTiming> ts = eng.timings();
    ASSERT_EQ(ts.size(), cells.size());
    size_t assembled = 0;
    for (const CellTiming &t : ts)
        assembled += t.assembled ? 1 : 0;
    EXPECT_EQ(assembled, 2u);
}

TEST(WarmSweep, CacheOffCellsDoTheirOwnSetup)
{
    EnvGuard cache("VPIR_WARM_CACHE", "0");
    WarmStartCache::global().clear();

    std::vector<SweepCell> cells = standardCells();
    SweepEngine eng(1, "");
    for (const SweepCell &c : cells)
        eng.prefetch(c);
    eng.drain();

    // No cache traffic at all...
    WarmStartCache::Counters c = WarmStartCache::global().counters();
    EXPECT_EQ(c.programBuilds + c.programHits + c.snapshotBuilds +
                  c.snapshotHits,
              0u);
    // ...and every cell reports paying for its own assembly + warmup.
    for (const CellTiming &t : eng.timings()) {
        EXPECT_TRUE(t.assembled);
        EXPECT_TRUE(t.warmed);
    }
}

} // anonymous namespace
