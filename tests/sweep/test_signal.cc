/**
 * @file
 * Graceful-interrupt and retry-ladder tests: a SIGINT mid-sweep must
 * stop the global engine at a cell boundary, report "interrupted:
 * N/M", exit 128+sig, and leave a disk cache a rerun resumes from;
 * the escalation ladder must honor VPIR_CELL_RETRIES and retry
 * deadline overruns exactly when checkpoints persist progress.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sweep/stats_json.hh"
#include "sweep/sweep.hh"

using namespace vpir;
using namespace vpir::sweep;

namespace
{

constexpr uint64_t TEST_INSTS = 20000;

class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

SweepCell
cell(const std::string &workload, const std::string &label,
     const CoreParams &params)
{
    WorkloadScale scale;
    scale.factor = 0.25;
    return SweepCell{workload, label, withLimits(params, TEST_INSTS),
                     scale};
}

/** A cell that simulates for seconds: no instruction limit, larger
 *  input. Only useful together with a deadline. */
SweepCell
longRunningCell()
{
    WorkloadScale scale;
    scale.factor = 5.0;
    return SweepCell{"compress", "runaway", baseConfig(), scale};
}

std::string
scratchDir(const char *tag)
{
    std::string d = std::string("signal_test_") + tag;
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::vector<SweepCell>
threeCells()
{
    return {
        cell("compress", "a", baseConfig()),
        cell("go", "b", baseConfig()),
        cell("m88ksim", "c", baseConfig()),
    };
}

// A self-delivered SIGINT between cells: the global engine must finish
// the current cell, skip the queued ones, print the partial summary
// with an "interrupted ... N/M cells done" line, and exit 130. The
// whole scenario runs in a forked child because the global engine's
// interrupt epilogue legitimately calls std::exit().
TEST(Signal, GracefulSigintExits130AndCacheResumes)
{
    std::string cache = scratchDir("sigint_cache");
    std::string errfile = cache + "/child.stderr";
    std::vector<SweepCell> cs = threeCells();

    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        // Child: its gtest state is discarded; it reports only via its
        // exit status and captured stderr.
        setenv("VPIR_JOBS", "1", 1);
        setenv("VPIR_RESULT_CACHE", cache.c_str(), 1);
        if (!std::freopen(errfile.c_str(), "w", stderr))
            _exit(97);
        SweepEngine &eng = SweepEngine::global();
        eng.get(cs[0]); // completes and is flushed to the disk cache
        raise(SIGINT);  // handler records the stop; no second signal
        for (const SweepCell &c : cs)
            eng.prefetch(c);
        eng.drain(); // must print the summary and std::exit(130)
        _exit(99);   // reached only if the stop was ignored
    }

    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status))
        << "child died abnormally instead of exiting gracefully";
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);

    std::string err = slurp(errfile);
    EXPECT_NE(err.find("interrupted by SIGINT: 1/3 cells done"),
              std::string::npos)
        << "missing/incorrect partial-progress line; stderr was:\n"
        << err;

    // The rerun must resume: one cell from disk, the other two
    // computed, and every result identical to a clean sweep.
    SweepEngine rerun(1, cache);
    for (const SweepCell &c : cs)
        rerun.prefetch(c);
    rerun.drain();
    EXPECT_EQ(rerun.cellsFromDiskCache(), 1u);
    EXPECT_EQ(rerun.cellsComputed(), 2u);
    EXPECT_TRUE(rerun.failures().empty());

    SweepEngine clean(1, "");
    for (const SweepCell &c : cs)
        EXPECT_TRUE(statsEqual(rerun.get(c), clean.get(c)))
            << c.workload << " diverged after the interrupted sweep";

    std::filesystem::remove_all(cache);
}

// VPIR_CELL_RETRIES sizes the ladder: a cell that crashes on every
// rung is attempted 1 + retries times before being reported. A tiny
// VPIR_RETRY_BACKOFF_MS exercises the backoff+jitter path too.
TEST(Ladder, RetriesKnobControlsAttempts)
{
    EnvGuard iso("VPIR_ISOLATE", "1");
    EnvGuard hook("VPIR_TEST_CRASH_CELL", "crashme");
    EnvGuard retries("VPIR_CELL_RETRIES", "3");
    EnvGuard backoff("VPIR_RETRY_BACKOFF_MS", "1");

    SweepEngine eng(1, "");
    SweepCell bad = cell("compress", "crashme", baseConfig());
    eng.get(bad);

    std::vector<CellFailure> fails = eng.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_EQ(fails[0].attempts, 4)
        << "ladder must use 1 + VPIR_CELL_RETRIES rungs";
}

// A deadline overrun is useless to retry when the retry would start
// from scratch against the same deadline — but with persisted
// checkpoints each rung carries forward the previous rung's progress,
// so timeouts become retryable. (test_isolate.cc pins the converse:
// with checkpoints off, a timeout is never retried.)
TEST(Ladder, TimeoutRetriedWhenCheckpointsPersist)
{
    std::string dir = scratchDir("timeout_ck");
    EnvGuard timeout("VPIR_CELL_TIMEOUT_MS", "150");
    EnvGuard ckdir("VPIR_CKPT_DIR", dir);

    SweepCell runaway = longRunningCell();
    runaway.params.ckptInsts = 50000;

    SweepEngine eng(1, "");
    eng.get(runaway);

    std::vector<CellFailure> fails = eng.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(fails[0].timedOut);
    EXPECT_EQ(fails[0].attempts, 2)
        << "a timeout with persisted checkpoints must climb the ladder";

    std::filesystem::remove_all(dir);
}

// The bench_timing JSON carries the robustness provenance fields.
TEST(Ladder, TimingJsonCarriesAttemptProvenance)
{
    std::string dir = scratchDir("timing_json");
    std::string path = dir + "/timing.json";

    SweepEngine eng(1, "");
    eng.get(cell("compress", "a", baseConfig()));
    ASSERT_TRUE(eng.writeTimingJson(path));

    std::string json = slurp(path);
    EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ckpt_resumed\": false"), std::string::npos);
    EXPECT_NE(json.find("\"ckpt_written\": 0"), std::string::npos);

    std::filesystem::remove_all(dir);
}

} // anonymous namespace
