/**
 * @file
 * SweepEngine tests: parallel execution must be bit-identical to
 * serial for every workload and technique, the cache key must depend
 * on the full parameter set (not display labels), and the on-disk
 * result cache must round-trip CoreStats losslessly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sweep/stats_json.hh"
#include "sweep/sweep.hh"

using namespace vpir;
using namespace vpir::sweep;

namespace
{

/** Small but non-trivial run: exercises squashes, reuse, prediction. */
constexpr uint64_t TEST_INSTS = 20000;

SweepCell
cell(const std::string &workload, const std::string &label,
     const CoreParams &params)
{
    WorkloadScale scale;
    scale.factor = 0.25;
    return SweepCell{workload, label, withLimits(params, TEST_INSTS),
                     scale};
}

std::vector<SweepCell>
allCells()
{
    std::vector<SweepCell> cs;
    for (const auto &name : workloadNames()) {
        cs.push_back(cell(name, "base", baseConfig()));
        cs.push_back(cell(name, "vp",
                          vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                   BranchResolution::Speculative, 0)));
        cs.push_back(cell(name, "ir", irConfig()));
    }
    return cs;
}

/** Unique scratch directory under the test's working dir. */
std::string
scratchDir(const char *tag)
{
    std::string d = std::string("sweep_test_cache_") + tag;
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

TEST(SweepEngine, ParallelBitIdenticalToSerial)
{
    std::vector<SweepCell> cs = allCells();

    SweepEngine serial(1, "");
    SweepEngine parallel(4, "");
    for (const SweepCell &c : cs)
        parallel.prefetch(c);
    parallel.drain();

    for (const SweepCell &c : cs) {
        const CoreStats &s = serial.get(c);
        const CoreStats &p = parallel.get(c);
        EXPECT_TRUE(statsEqual(s, p))
            << c.workload << "/" << c.label
            << " differs between serial and parallel runs";
    }
    EXPECT_EQ(parallel.cellsComputed(), cs.size());
    EXPECT_EQ(parallel.cellsFromDiskCache(), 0u);
}

TEST(SweepEngine, MemoizesByParamsNotLabel)
{
    SweepEngine eng(1, "");

    // Same params under two labels: one simulation, same record.
    SweepCell a = cell("perl", "first", irConfig());
    SweepCell b = cell("perl", "second", irConfig());
    const CoreStats &ra = eng.get(a);
    const CoreStats &rb = eng.get(b);
    EXPECT_EQ(&ra, &rb);
    EXPECT_EQ(eng.cellsComputed(), 1u);

    // Same label, different params: distinct cells (the stale-cache
    // collision the string-keyed bench Runner used to have).
    CoreParams small = irConfig();
    small.rb.entries = 16; // tiny buffer: measurably less reuse
    SweepCell c = cell("perl", "first", small);
    const CoreStats &rc = eng.get(c);
    EXPECT_NE(&ra, &rc);
    EXPECT_FALSE(statsEqual(ra, rc));
    EXPECT_EQ(eng.cellsComputed(), 2u);
}

TEST(SweepEngine, HashCoversParamsWorkloadAndScale)
{
    CoreParams p = baseConfig();
    CoreParams q = p;
    q.rb.entries /= 2;
    EXPECT_NE(hashParams(p), hashParams(q));
    q = p;
    q.vpVerifyLatency += 1;
    EXPECT_NE(hashParams(p), hashParams(q));

    SweepCell c1{"go", "x", p, WorkloadScale{1.0}};
    SweepCell c2{"gcc", "x", p, WorkloadScale{1.0}};
    SweepCell c3{"go", "x", p, WorkloadScale{0.5}};
    SweepCell c4{"go", "other-label", p, WorkloadScale{1.0}};
    EXPECT_NE(cellHash(c1), cellHash(c2));
    EXPECT_NE(cellHash(c1), cellHash(c3));
    EXPECT_EQ(cellHash(c1), cellHash(c4)); // label is display-only
}

TEST(SweepEngine, DiskCacheRoundTripsStatsLosslessly)
{
    std::string dir = scratchDir("roundtrip");
    std::vector<SweepCell> cs = allCells();

    CoreStats fresh[64];
    size_t n = 0;
    {
        SweepEngine writer(2, dir);
        for (const SweepCell &c : cs)
            writer.prefetch(c);
        writer.drain();
        for (const SweepCell &c : cs)
            fresh[n++] = writer.get(c);
        EXPECT_EQ(writer.cellsFromDiskCache(), 0u);
    }

    SweepEngine reader(2, dir);
    for (size_t i = 0; i < cs.size(); ++i) {
        const CoreStats &cached = reader.get(cs[i]);
        EXPECT_TRUE(statsEqual(fresh[i], cached))
            << cs[i].workload << "/" << cs[i].label
            << " corrupted by the disk cache round trip";
    }
    EXPECT_EQ(reader.cellsFromDiskCache(), cs.size());
    EXPECT_EQ(reader.cellsComputed(), 0u);

    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, CorruptCacheFileFallsBackToRecompute)
{
    std::string dir = scratchDir("corrupt");
    SweepCell c = cell("compress", "base", baseConfig());

    CoreStats fresh;
    {
        SweepEngine writer(1, dir);
        fresh = writer.get(c);
    }
    // Truncate every cache file in the directory.
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        std::FILE *f = std::fopen(ent.path().c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"schema\":", f);
        std::fclose(f);
    }

    SweepEngine reader(1, dir);
    const CoreStats &recomputed = reader.get(c);
    EXPECT_TRUE(statsEqual(fresh, recomputed));
    EXPECT_EQ(reader.cellsFromDiskCache(), 0u);
    EXPECT_EQ(reader.cellsComputed(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, TruncatedMidWriteCacheFileFallsBackToRecompute)
{
    // A crash mid-write leaves a file whose prefix is perfectly valid
    // JSON — schema line, matching cell_hash — but which stops partway
    // through the stats object. The loader must reject it (a parser
    // that stops at the first complete-looking field would resurrect a
    // half-written record).
    std::string dir = scratchDir("midwrite");
    SweepCell c = cell("compress", "base", baseConfig());

    CoreStats fresh;
    {
        SweepEngine writer(1, dir);
        fresh = writer.get(c);
    }
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        std::FILE *f = std::fopen(ent.path().c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::string body;
        char buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            body.append(buf, got);
        std::fclose(f);
        // Keep a prefix that still contains the (valid) cell hash but
        // is cut inside the stats payload.
        ASSERT_GT(body.size(), 64u);
        body.resize(body.size() * 7 / 10);
        f = std::fopen(ent.path().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
    }

    SweepEngine reader(1, dir);
    const CoreStats &recomputed = reader.get(c);
    EXPECT_TRUE(statsEqual(fresh, recomputed));
    EXPECT_EQ(reader.cellsFromDiskCache(), 0u);
    EXPECT_EQ(reader.cellsComputed(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, PoisonedCellIsIsolatedFromHealthyNeighbors)
{
    // One cell that cannot make progress (watchdog trips on cycle 1)
    // must not take down the sweep: it is retried once, recorded as a
    // structured failure, kept out of the disk cache, and every other
    // cell completes bit-identical to a clean engine.
    std::string dir = scratchDir("poison");

    CoreParams poison = baseConfig();
    poison.watchdogCycles = 1;
    std::vector<SweepCell> healthy = {
        cell("compress", "base", baseConfig()),
        cell("perl", "base", baseConfig()),
        cell("m88ksim", "ir", irConfig()),
    };
    SweepCell bad = cell("compress", "poisoned", poison);

    SweepEngine eng(2, dir);
    eng.prefetch(healthy[0]);
    eng.prefetch(bad);
    eng.prefetch(healthy[1]);
    eng.prefetch(healthy[2]);
    eng.drain();

    std::vector<CellFailure> fails = eng.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_EQ(fails[0].workload, "compress");
    EXPECT_EQ(fails[0].label, "poisoned");
    EXPECT_EQ(fails[0].attempts, 2); // retried once, failed again
    EXPECT_NE(fails[0].error.find("watchdog"), std::string::npos)
        << fails[0].error;
    // Context frames attribute the failure to its cell.
    EXPECT_NE(fails[0].error.find("poisoned"), std::string::npos)
        << fails[0].error;

    // The failed cell yields empty stats rather than garbage.
    EXPECT_EQ(eng.get(bad).committedInsts, 0u);

    // Healthy neighbors are untouched by the failure.
    SweepEngine clean(1, "");
    for (const SweepCell &c : healthy) {
        EXPECT_TRUE(statsEqual(eng.get(c), clean.get(c)))
            << c.workload << "/" << c.label;
    }

    // Only the healthy cells were persisted; failures are never cached.
    size_t cached_files = 0;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        (void)ent;
        ++cached_files;
    }
    EXPECT_EQ(cached_files, healthy.size());

    // Timing records only cover completed cells.
    EXPECT_EQ(eng.timings().size(), healthy.size());

    std::filesystem::remove_all(dir);
}

TEST(SweepEngine, TimingRecordsFollowSubmissionOrder)
{
    SweepEngine eng(4, "");
    std::vector<SweepCell> cs = allCells();
    for (const SweepCell &c : cs)
        eng.prefetch(c);
    eng.drain();

    std::vector<CellTiming> ts = eng.timings();
    ASSERT_EQ(ts.size(), cs.size());
    for (size_t i = 0; i < cs.size(); ++i) {
        EXPECT_EQ(ts[i].workload, cs[i].workload);
        EXPECT_EQ(ts[i].label, cs[i].label);
        EXPECT_EQ(ts[i].paramsHash, hashParams(cs[i].params));
        EXPECT_GT(ts[i].committedInsts, 0u);
    }

    std::string path = "sweep_test_timing.json";
    EXPECT_TRUE(eng.writeTimingJson(path));
    std::error_code ec;
    EXPECT_GT(std::filesystem::file_size(path, ec), 0u);
    std::filesystem::remove(path);
}

TEST(StatsJson, RoundTripAndRejection)
{
    SweepEngine eng(1, "");
    CoreStats st = eng.get(cell("m88ksim", "vp",
                                vpConfig(VpScheme::Magic,
                                         ReexecPolicy::Multiple,
                                         BranchResolution::Speculative,
                                         1)));
    std::string j = statsToJson(st);
    CoreStats back;
    ASSERT_TRUE(statsFromJson(j, back));
    EXPECT_TRUE(statsEqual(st, back));

    // A truncated document must be rejected, not half-filled.
    CoreStats junk;
    EXPECT_FALSE(statsFromJson(j.substr(0, j.size() / 2), junk));
    EXPECT_FALSE(statsFromJson("{}", junk));
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    parallelFor(hits.size(), [&](size_t i) { ++hits[i]; }, 4);
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

} // anonymous namespace
