/**
 * @file
 * Crash-containment and resumption tests: a segfaulting cell under
 * VPIR_ISOLATE=1 must not cost the sweep, per-cell deadlines must
 * kill runaway cells in both execution modes, a graceful stop must
 * leave a resumable disk cache behind, and the isolated mode must be
 * bit-identical to the in-process mode on clean sweeps.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sweep/isolate.hh"
#include "sweep/stats_json.hh"
#include "sweep/sweep.hh"

using namespace vpir;
using namespace vpir::sweep;

namespace
{

constexpr uint64_t TEST_INSTS = 20000;

/** setenv/unsetenv for the test's scope (engines read the environment
 *  at construction, so ordering matters). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

SweepCell
cell(const std::string &workload, const std::string &label,
     const CoreParams &params)
{
    WorkloadScale scale;
    scale.factor = 0.25;
    return SweepCell{workload, label, withLimits(params, TEST_INSTS),
                     scale};
}

/** A cell that simulates for seconds: no instruction limit, larger
 *  input. Only useful together with a deadline. */
SweepCell
longRunningCell()
{
    WorkloadScale scale;
    scale.factor = 5.0;
    return SweepCell{"compress", "runaway", baseConfig(), scale};
}

std::string
scratchDir(const char *tag)
{
    std::string d = std::string("isolate_test_cache_") + tag;
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d;
}

size_t
fileCount(const std::string &dir)
{
    size_t n = 0;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        (void)ent;
        ++n;
    }
    return n;
}

TEST(Isolate, StatsBitIdenticalToInProcess)
{
    std::vector<SweepCell> cs = {
        cell("compress", "base", baseConfig()),
        cell("perl", "ir", irConfig()),
        cell("m88ksim", "vp",
             vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                      BranchResolution::Speculative, 0)),
    };

    SweepEngine inproc(2, "");
    for (const SweepCell &c : cs)
        inproc.prefetch(c);
    inproc.drain();

    EnvGuard iso("VPIR_ISOLATE", "1");
    SweepEngine isolated(2, "");
    for (const SweepCell &c : cs)
        isolated.prefetch(c);
    isolated.drain();

    for (const SweepCell &c : cs) {
        EXPECT_TRUE(statsEqual(inproc.get(c), isolated.get(c)))
            << c.workload << "/" << c.label
            << " differs between in-process and isolated execution";
        // Workload metadata must survive the pipe too (vpirsim prints
        // it, so stdout must stay byte-identical across the modes).
        EXPECT_EQ(cellWorkloadInput(inproc, c),
                  cellWorkloadInput(isolated, c));
    }
    EXPECT_TRUE(isolated.failures().empty());
    EXPECT_EQ(isolated.cellsComputed(), cs.size());
}

TEST(Isolate, CrashingCellIsContainedAndResumable)
{
    std::string dir = scratchDir("crash");
    std::vector<SweepCell> healthy = {
        cell("compress", "base", baseConfig()),
        cell("perl", "base", baseConfig()),
    };
    SweepCell bad = cell("go", "crashme", baseConfig());

    {
        EnvGuard iso("VPIR_ISOLATE", "1");
        EnvGuard hook("VPIR_TEST_CRASH_CELL", "crashme");
        SweepEngine eng(2, dir);
        eng.prefetch(healthy[0]);
        eng.prefetch(bad);
        eng.prefetch(healthy[1]);
        eng.drain();

        // The crash became a structured failure naming the signal...
        std::vector<CellFailure> fails = eng.failures();
        ASSERT_EQ(fails.size(), 1u);
        EXPECT_EQ(fails[0].workload, "go");
        EXPECT_EQ(fails[0].label, "crashme");
        EXPECT_EQ(fails[0].attempts, 2); // crash is retried once
        EXPECT_FALSE(fails[0].timedOut);
        EXPECT_NE(fails[0].error.find("SIGSEGV"), std::string::npos)
            << fails[0].error;
        EXPECT_EQ(eng.get(bad).committedInsts, 0u);

        // ...and every other cell completed, bit-identical to a clean
        // engine.
        SweepEngine clean(1, "");
        for (const SweepCell &c : healthy)
            EXPECT_TRUE(statsEqual(eng.get(c), clean.get(c)))
                << c.workload << "/" << c.label;

        // Failed cells never reach the disk cache.
        EXPECT_EQ(fileCount(dir), healthy.size());
    }

    // Rerun without the crash hook: only the crashed cell is
    // recomputed; the completed ones resume from the cache.
    SweepEngine rerun(2, dir);
    for (const SweepCell &c : healthy)
        rerun.prefetch(c);
    rerun.prefetch(bad);
    rerun.drain();
    EXPECT_TRUE(rerun.failures().empty());
    EXPECT_EQ(rerun.cellsFromDiskCache(), healthy.size());
    EXPECT_EQ(rerun.cellsComputed(), 1u);
    EXPECT_GT(rerun.get(bad).committedInsts, 0u);

    std::filesystem::remove_all(dir);
}

TEST(Isolate, DeadlineKillsRunawayIsolatedCell)
{
    EnvGuard iso("VPIR_ISOLATE", "1");
    EnvGuard timeout("VPIR_CELL_TIMEOUT_MS", "150");
    SweepEngine eng(1, "");
    eng.prefetch(longRunningCell());
    eng.drain();

    std::vector<CellFailure> fails = eng.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(fails[0].timedOut);
    EXPECT_EQ(fails[0].attempts, 1); // deadline overruns never retry
    EXPECT_NE(fails[0].error.find("deadline exceeded"),
              std::string::npos)
        << fails[0].error;
}

TEST(Isolate, DeadlineStopsRunawayInProcessCell)
{
    // Same budget, no fork: the core's cycle loop polls the
    // cooperative deadline and panics into a structured failure.
    EnvGuard timeout("VPIR_CELL_TIMEOUT_MS", "150");
    SweepEngine eng(1, "");
    eng.prefetch(longRunningCell());
    eng.drain();

    std::vector<CellFailure> fails = eng.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(fails[0].timedOut);
    EXPECT_EQ(fails[0].attempts, 1);
    EXPECT_NE(fails[0].error.find("deadline exceeded"),
              std::string::npos)
        << fails[0].error;
}

TEST(Isolate, RlimitTurnsOverconsumptionIntoFailure)
{
    EnvGuard iso("VPIR_ISOLATE", "1");
    EnvGuard rlimit("VPIR_CELL_RLIMIT_MB", "8");
    SweepEngine eng(1, "");
    SweepCell c = cell("compress", "base", baseConfig());
    eng.prefetch(c);
    eng.drain();

    // 8MB of address space cannot even hold the workload program; the
    // child dies on allocation failure (the exact signal/exit depends
    // on the allocator and sanitizers) and the sweep survives.
    std::vector<CellFailure> fails = eng.failures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_FALSE(fails[0].error.empty());
    EXPECT_EQ(eng.get(c).committedInsts, 0u);
}

TEST(Sweep, GracefulStopSkipsQueuedCellsAndRerunResumes)
{
    std::string dir = scratchDir("resume");
    std::vector<SweepCell> cs = {
        cell("compress", "base", baseConfig()),
        cell("perl", "base", baseConfig()),
        cell("go", "base", baseConfig()),
        cell("m88ksim", "base", baseConfig()),
    };

    {
        SweepEngine eng(1, dir);
        // Complete the first two cells...
        eng.get(cs[0]);
        eng.get(cs[1]);
        // ...then a stop request (what the SIGINT handler issues on
        // the global engine) abandons the rest unrun. The stop lands
        // before the remaining cells are queued, so none of them can
        // slip into a worker first.
        eng.requestStop(SIGINT);
        for (const SweepCell &c : cs)
            eng.prefetch(c);
        eng.drain();

        EXPECT_EQ(eng.stopRequestedSignal(), SIGINT);
        EXPECT_EQ(eng.cellsComputed(), 2u);
        EXPECT_EQ(eng.cellsSkipped(), 2u);
        EXPECT_TRUE(eng.failures().empty());
        EXPECT_EQ(eng.timings().size(), 2u);
        // The completed cells were flushed to the cache as they
        // finished.
        EXPECT_EQ(fileCount(dir), 2u);
    }

    // Rerun: completed cells load from the cache, only the skipped
    // ones are recomputed, and results match a clean engine.
    SweepEngine rerun(2, dir);
    for (const SweepCell &c : cs)
        rerun.prefetch(c);
    rerun.drain();
    EXPECT_EQ(rerun.cellsFromDiskCache(), 2u);
    EXPECT_EQ(rerun.cellsComputed(), 2u);
    SweepEngine clean(1, "");
    for (const SweepCell &c : cs)
        EXPECT_TRUE(statsEqual(rerun.get(c), clean.get(c)))
            << c.workload << "/" << c.label;

    std::filesystem::remove_all(dir);
}

TEST(DiskCache, SchemaFingerprintMismatchRecomputes)
{
    std::string dir = scratchDir("schema");
    SweepCell c = cell("compress", "base", baseConfig());

    CoreStats fresh;
    {
        SweepEngine writer(1, dir);
        fresh = writer.get(c);
    }

    // Flip one digit of the stamped stats-schema fingerprint, as if
    // the file had been written by a binary with a different stat
    // field set (the per-field payload may even still parse — the
    // fingerprint must reject it first).
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        std::ifstream in(ent.path());
        std::stringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();
        size_t pos = text.find("\"stats_schema\": \"");
        ASSERT_NE(pos, std::string::npos);
        pos += std::strlen("\"stats_schema\": \"");
        text[pos] = text[pos] == '0' ? '1' : '0';
        std::ofstream out(ent.path());
        out << text;
    }

    SweepEngine reader(1, dir);
    EXPECT_TRUE(statsEqual(fresh, reader.get(c)));
    EXPECT_EQ(reader.cellsFromDiskCache(), 0u);
    EXPECT_EQ(reader.cellsComputed(), 1u);

    std::filesystem::remove_all(dir);
}

TEST(DiskCache, StaleTmpFilesScrubbedAtStartup)
{
    std::string dir = scratchDir("tmpscrub");
    // What a SIGKILLed writer leaves behind: a published record and a
    // half-written tmp that never got renamed.
    { std::ofstream(dir + "/keep-0123456789abcdef.json") << "{}\n"; }
    { std::ofstream(dir + "/dead-fedcba9876543210.json.tmp.4242")
          << "{\"schema\":"; }

    SweepEngine eng(1, dir);
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/dead-fedcba9876543210.json.tmp.4242"));
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/keep-0123456789abcdef.json"));

    std::filesystem::remove_all(dir);
}

TEST(Isolate, SignalNamesAreReadable)
{
    EXPECT_EQ(signalName(SIGSEGV), "SIGSEGV");
    EXPECT_EQ(signalName(SIGKILL), "SIGKILL");
    EXPECT_EQ(signalName(1000), "signal 1000");
}

} // anonymous namespace
