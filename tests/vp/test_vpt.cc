/** @file Unit tests for the value prediction table. */

#include <gtest/gtest.h>

#include "vp/vpt.hh"

using namespace vpir;

namespace
{

VptParams
magicParams()
{
    VptParams p;
    p.entries = 64;
    p.ways = 4;
    p.scheme = VpScheme::Magic;
    return p;
}

VptParams
lvpParams()
{
    VptParams p = magicParams();
    p.scheme = VpScheme::Lvp;
    return p;
}

/** Observe a value (no prediction made) n times. */
void
observe(Vpt &v, Addr pc, uint64_t value, int n = 1)
{
    for (int i = 0; i < n; ++i)
        v.update(pc, value, VptPrediction{});
}

} // anonymous namespace

TEST(VptMagic, ColdTableMakesNoPrediction)
{
    Vpt v(magicParams());
    EXPECT_FALSE(v.predict(0x1000, 42).valid);
}

TEST(VptMagic, SingleObservationIsNotEnough)
{
    Vpt v(magicParams());
    observe(v, 0x1000, 42);
    EXPECT_FALSE(v.predict(0x1000, 42).valid);
}

TEST(VptMagic, TwoObservationsEnableOraclePick)
{
    Vpt v(magicParams());
    observe(v, 0x1000, 42, 2);
    VptPrediction p = v.predict(0x1000, 42);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.value, 42u);
}

TEST(VptMagic, OracleSelectionAmongInstances)
{
    Vpt v(magicParams());
    // Four rotating values, each observed repeatedly.
    for (int round = 0; round < 4; ++round) {
        for (uint64_t val = 10; val < 14; ++val)
            observe(v, 0x1000, val);
    }
    EXPECT_EQ(v.instancesFor(0x1000), 4u);
    for (uint64_t val = 10; val < 14; ++val) {
        VptPrediction p = v.predict(0x1000, val);
        ASSERT_TRUE(p.valid);
        EXPECT_EQ(p.value, val); // picks the matching instance
    }
}

TEST(VptMagic, FallbackNeedsSaturatedConfidence)
{
    Vpt v(magicParams());
    observe(v, 0x1000, 42, 2);
    // Oracle value 43 absent; instance 42 only at confidence 1.
    EXPECT_FALSE(v.predict(0x1000, 43).valid);
    observe(v, 0x1000, 42, 2); // saturate
    VptPrediction p = v.predict(0x1000, 43);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.value, 42u); // confidently wrong (the paper's case)
}

TEST(VptMagic, WrongPredictionSilencesInstance)
{
    Vpt v(magicParams());
    observe(v, 0x1000, 42, 4);
    VptPrediction made = v.predict(0x1000, 43); // wrong fallback
    ASSERT_TRUE(made.valid);
    v.update(0x1000, 43, made); // trains 43, resets 42
    EXPECT_FALSE(v.predict(0x1000, 99).valid);
}

TEST(VptMagic, DistinctPCsDoNotInterfere)
{
    Vpt v(magicParams());
    observe(v, 0x1000, 1, 2);
    observe(v, 0x2000, 2, 2);
    EXPECT_EQ(v.predict(0x1000, 1).value, 1u);
    EXPECT_EQ(v.predict(0x2000, 2).value, 2u);
}

TEST(VptMagic, CapacityIsFourInstancesPerPC)
{
    Vpt v(magicParams());
    for (uint64_t val = 0; val < 8; ++val)
        observe(v, 0x1000, val);
    EXPECT_EQ(v.instancesFor(0x1000), 4u);
}

TEST(VptMagic, ResetClears)
{
    Vpt v(magicParams());
    observe(v, 0x1000, 42, 3);
    v.reset();
    EXPECT_FALSE(v.predict(0x1000, 42).valid);
    EXPECT_EQ(v.instancesFor(0x1000), 0u);
}

TEST(VptLvp, PredictsLastValueAfterConfidence)
{
    Vpt v(lvpParams());
    observe(v, 0x1000, 7, 3);
    VptPrediction p = v.predict(0x1000, 999 /* oracle unused */);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 7u);
}

TEST(VptLvp, OneInstancePerPC)
{
    Vpt v(lvpParams());
    observe(v, 0x1000, 7, 3);
    observe(v, 0x1000, 8); // replaces the value
    EXPECT_EQ(v.instancesFor(0x1000), 1u);
    // Confidence decayed on change; rebuild it, then 8 is predicted.
    observe(v, 0x1000, 8, 3);
    EXPECT_EQ(v.predict(0x1000, 0).value, 8u);
}

TEST(VptLvp, OracleDoesNotLeakIntoLvp)
{
    Vpt v(lvpParams());
    observe(v, 0x1000, 7, 3);
    // Even when the oracle says 8, LVP must offer its last value 7.
    VptPrediction p = v.predict(0x1000, 8);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 7u);
}

TEST(VptLvp, AlternatingValuesStayUnconfident)
{
    Vpt v(lvpParams());
    for (int i = 0; i < 50; ++i)
        observe(v, 0x1000, i % 2);
    // Every update flips the value, so confidence never builds.
    EXPECT_FALSE(v.predict(0x1000, 0).valid);
}

TEST(VptMagic, AlternatingValuesArePredictable)
{
    // The key VP_Magic vs VP_LVP difference the paper leans on: with
    // oracle selection, a small set of alternating values is fully
    // predictable.
    Vpt v(magicParams());
    for (int i = 0; i < 8; ++i)
        observe(v, 0x1000, i % 2);
    for (int i = 0; i < 8; ++i) {
        VptPrediction p = v.predict(0x1000, i % 2);
        ASSERT_TRUE(p.valid);
        EXPECT_EQ(p.value, static_cast<uint64_t>(i % 2));
    }
}
