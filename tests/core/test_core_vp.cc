/** @file Core tests: value prediction integration. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/core.hh"
#include "sim/configs.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** Serial pointer-style chain with a tiny recurring value set: the
 *  classic VP win (IR cannot touch it because operands are never
 *  ready at decode). */
Program
ringChase(int iters)
{
    Assembler a;
    a.dataLabel("ring");
    a.word(4);
    a.word(8);
    a.word(0);
    a.la(S0, "ring");
    a.li(S1, iters);
    a.li(T1, 0);
    a.label("loop");
    a.add(T2, S0, T1);
    a.lw(T1, T2, 0);
    a.add(T2, S0, T1);
    a.lw(T1, T2, 0);
    a.add(T2, S0, T1);
    a.lw(T1, T2, 0);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    return a.finish();
}

CoreParams
magic(ReexecPolicy re = ReexecPolicy::Multiple,
      BranchResolution br = BranchResolution::Speculative,
      unsigned lat = 0)
{
    return vpConfig(VpScheme::Magic, re, br, lat);
}

} // anonymous namespace

TEST(CoreVP, CollapsesSerialChains)
{
    Program p = ringChase(2000);
    Core base(baseConfig(), p);
    Core vp(magic(), p);
    uint64_t bc = base.run().cycles;
    uint64_t vc = vp.run().cycles;
    EXPECT_LT(vc, bc * 2 / 3); // large speedup on the chase
    EXPECT_GT(vp.stats().vpResultCorrect,
              vp.stats().committedInsts / 3);
}

TEST(CoreVP, EndStateMatchesBase)
{
    Program p = ringChase(500);
    Core base(baseConfig(), p);
    Core vp(magic(), p);
    base.run();
    vp.run();
    EXPECT_TRUE(vp.stats().haltedCleanly);
    EXPECT_EQ(base.stats().committedInsts, vp.stats().committedInsts);
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r) {
        ASSERT_EQ(base.emuState().readReg(static_cast<RegId>(r)),
                  vp.emuState().readReg(static_cast<RegId>(r)));
    }
}

TEST(CoreVP, LvpFailsOnAlternation)
{
    // A value alternating between two states every iteration: Magic
    // (oracle instance selection) predicts it, LVP cannot.
    Assembler a;
    a.dataLabel("seq");
    a.word(0);
    a.li(S1, 1500);
    a.li(T1, 0);
    a.label("loop");
    a.xori(T1, T1, 1);
    a.add(T2, T1, T1);
    a.add(T3, T2, T2);
    a.add(T4, T3, T3);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    Program p = a.finish();

    Core m(magic(), p);
    Core l(vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                    BranchResolution::Speculative, 0),
           p);
    m.run();
    l.run();
    EXPECT_GT(m.stats().vpResultCorrect,
              l.stats().vpResultCorrect * 2);
}

TEST(CoreVP, NmeCapsExecutionsAtTwo)
{
    Program p = ringChase(800);
    Core c(magic(ReexecPolicy::Single), p);
    const CoreStats &st = c.run();
    EXPECT_EQ(st.execCountHist[2], 0u); // no third executions
    EXPECT_EQ(st.execCountHist[3], 0u);
}

TEST(CoreVP, MostInstructionsExecuteOnce)
{
    // Table 6's shape: even under ME, >90% of instructions execute
    // exactly once.
    Program p = ringChase(800);
    Core c(magic(ReexecPolicy::Multiple,
                 BranchResolution::Speculative, 1),
           p);
    const CoreStats &st = c.run();
    uint64_t total = st.execCountHist[0] + st.execCountHist[1] +
                     st.execCountHist[2] + st.execCountHist[3];
    EXPECT_GT(st.execCountHist[0], total * 8 / 10);
}

TEST(CoreVP, SpuriousSquashesOnlyUnderSB)
{
    // A predictable loop branch fed by a hard-to-predict value: SB
    // resolves with speculative operands and squashes spuriously; NSB
    // never does.
    Assembler a;
    a.dataLabel("tab");
    for (int i = 0; i < 16; ++i)
        a.word(static_cast<uint32_t>(i * 2654435761u) >> 16);
    a.la(S0, "tab");
    a.li(S1, 1200);
    a.li(S2, 0);
    a.label("loop");
    a.andi(T0, S2, 15);
    a.sll(T0, T0, 2);
    a.add(T0, S0, T0);
    a.lw(T1, T0, 0);      // varying value, often mispredicted
    a.sltiu(T2, T1, 30000);
    a.beq(T2, ZERO, "skip");  // outcome depends on T1
    a.addi(S3, S3, 1);
    a.label("skip");
    a.addi(S2, S2, 1);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    Program p = a.finish();

    Core sb(magic(ReexecPolicy::Multiple,
                  BranchResolution::Speculative),
            p);
    Core nsb(magic(ReexecPolicy::Multiple,
                   BranchResolution::NonSpeculative),
             p);
    sb.run();
    nsb.run();
    EXPECT_EQ(nsb.stats().spuriousSquashes, 0u);
    // Both still compute the same final state.
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r) {
        ASSERT_EQ(sb.emuState().readReg(static_cast<RegId>(r)),
                  nsb.emuState().readReg(static_cast<RegId>(r)));
    }
}

TEST(CoreVP, VerifyLatencyCostsPerformance)
{
    Program p = ringChase(1500);
    Core lat0(magic(ReexecPolicy::Multiple,
                    BranchResolution::NonSpeculative, 0),
              p);
    Core lat1(magic(ReexecPolicy::Multiple,
                    BranchResolution::NonSpeculative, 1),
              p);
    uint64_t c0 = lat0.run().cycles;
    uint64_t c1 = lat1.run().cycles;
    EXPECT_GE(c1, c0);
}

TEST(CoreVP, AddressPredictionFiresForLoads)
{
    Program p = ringChase(1000);
    Core c(magic(), p);
    const CoreStats &st = c.run();
    EXPECT_GT(st.vpAddrPredicted, 0u);
    EXPECT_GT(st.vpAddrCorrect, st.vpAddrWrong);
}

TEST(CoreVP, WrongPredictionsNeverCorruptState)
{
    // LVP on alternating values mispredicts constantly; the final
    // architectural result must still equal the base machine's.
    Assembler a;
    a.dataLabel("out");
    a.space(4);
    a.li(S1, 400);
    a.li(T1, 7);
    a.label("loop");
    a.xori(T1, T1, 0x2b);
    a.add(T2, T1, S1);
    a.sltiu(T3, T2, 220);
    a.beq(T3, ZERO, "skip");
    a.addi(S4, S4, 3);
    a.label("skip");
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.la(T0, "out");
    a.sw(S4, T0, 0);
    a.halt();
    Program p = a.finish();

    Core base(baseConfig(), p);
    Core lvp(vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                      BranchResolution::Speculative, 1),
             p);
    base.run();
    lvp.run();
    EXPECT_TRUE(lvp.stats().haltedCleanly);
    EXPECT_EQ(base.emuState().readMem(0x100000, 4),
              lvp.emuState().readMem(0x100000, 4));
}
