/**
 * @file
 * Cycle-level invariant audit tests: VPIR_AUDIT must be pure
 * observation (bit-identical stats on every technique) and must catch
 * planted corruption at the cycle it happens.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/logging.hh"
#include "core/core.hh"
#include "sim/configs.hh"
#include "sweep/stats_json.hh"
#include "workload/workload.hh"

using namespace vpir;

namespace
{

CoreStats
runWith(CoreParams p, bool audit)
{
    p.auditInvariants = audit;
    p.maxInsts = 20000;
    Workload w = makeWorkload("compress", WorkloadScale{});
    Core core(p, w.program);
    return core.run();
}

} // namespace

TEST(CoreAudit, PureObservationOnEveryTechnique)
{
    const CoreParams configs[] = {
        baseConfig(),
        irConfig(IrValidation::Early),
        irConfig(IrValidation::Late),
        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                 BranchResolution::Speculative, 0),
        hybridConfig(),
    };
    for (const CoreParams &p : configs) {
        CoreStats off = runWith(p, false);
        CoreStats on = runWith(p, true);
        EXPECT_TRUE(sweep::statsEqual(off, on))
            << "audit changed the stats:\n"
            << sweep::statsToJson(off) << "\nvs\n"
            << sweep::statsToJson(on);
    }
}

TEST(CoreAudit, CatchesPlantedConservationViolation)
{
    PanicThrowScope throws_;
    setenv("VPIR_TEST_AUDIT_CLOBBER", "150", 1);
    try {
        CoreStats st = runWith(baseConfig(), true);
        unsetenv("VPIR_TEST_AUDIT_CLOBBER");
        FAIL() << "audit missed the planted corruption (run finished "
                  "with "
               << st.committedInsts << " insts)";
    } catch (const SimError &e) {
        unsetenv("VPIR_TEST_AUDIT_CLOBBER");
        EXPECT_NE(std::string(e.what()).find("audit: conservation"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CoreAudit, CleanWithoutClobber)
{
    // The audited run completes; the clobber-free audit never fires.
    CoreStats st = runWith(irConfig(), true);
    EXPECT_GT(st.committedInsts, 0u);
}
