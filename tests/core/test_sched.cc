/**
 * @file
 * Event-driven scheduler equivalence tests. The core keeps a ready
 * set, finalize-candidate set, and completion wheel incrementally;
 * VPIR_SCHED_BRUTE=1 swaps back the original full-window scans and
 * VPIR_SCHED_XCHECK=1 runs both, asserting identical decisions every
 * cycle. These tests drive all three modes through every technique
 * mix and through the squash/fault storms that stress the structure
 * restoration paths, requiring bit-identical architectural stats.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/simulator.hh"
#include "stats/stats.hh"

using namespace vpir;

namespace
{

/** setenv/unsetenv for the test's scope (the core reads the
 *  scheduler-mode knobs at construction). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

constexpr uint64_t TEST_INSTS = 25000;

WorkloadScale
smallScale()
{
    WorkloadScale sc;
    sc.factor = 0.25;
    return sc;
}

std::string
statsDump(const std::string &workload, const CoreParams &cfg)
{
    CoreStats st = runWorkload(workload, withLimits(cfg, TEST_INSTS),
                               smallScale());
    EXPECT_GT(st.committedInsts, 0u) << workload;
    StatSet out;
    st.exportTo(out);
    return out.dump();
}

/** Every architectural stat must be identical whether the scheduler
 *  ran event-driven, brute-force, or cross-checked. */
void
expectModeEquivalence(const std::string &workload, const CoreParams &cfg)
{
    std::string fast = statsDump(workload, cfg);
    std::string brute, xcheck;
    {
        EnvGuard g("VPIR_SCHED_BRUTE", "1");
        brute = statsDump(workload, cfg);
    }
    {
        EnvGuard g("VPIR_SCHED_XCHECK", "1");
        xcheck = statsDump(workload, cfg);
    }
    EXPECT_EQ(fast, brute) << workload << ": fast vs brute";
    EXPECT_EQ(fast, xcheck) << workload << ": fast vs xcheck";
}

void
runXchecked(const std::string &workload, CoreParams cfg)
{
    EnvGuard g("VPIR_SCHED_XCHECK", "1");
    // The audit recomputes every scheduler structure from scratch each
    // cycle, so arm it too: xcheck catches wrong decisions, the audit
    // catches silently corrupt bookkeeping behind right decisions.
    cfg.auditInvariants = true;
    CoreStats st = runWorkload(workload, withLimits(cfg, TEST_INSTS),
                               smallScale());
    EXPECT_GT(st.committedInsts, 0u) << workload;
}

CoreParams
noCaches(CoreParams p, unsigned miss_latency)
{
    // Single line, direct mapped: every new line pays the miss. Long
    // misses drain the window and manufacture the idle cycles the
    // skipper exists for.
    p.icache = CacheParams{32, 1, 32, 1, miss_latency};
    p.dcache = CacheParams{32, 1, 32, 1, miss_latency};
    return p;
}

TEST(SchedEquivalence, AllTechniqueMixes)
{
    expectModeEquivalence("compress", baseConfig());
    expectModeEquivalence("perl", irConfig(IrValidation::Early));
    expectModeEquivalence("gcc", irConfig(IrValidation::Late));
    expectModeEquivalence(
        "gcc", vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                        BranchResolution::Speculative, 0));
    expectModeEquivalence(
        "compress", vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                             BranchResolution::NonSpeculative, 3));
    expectModeEquivalence(
        "m88ksim", vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                            BranchResolution::NonSpeculative, 1));
    expectModeEquivalence("perl",
                          hybridConfig(VpScheme::Magic,
                                       BranchResolution::Speculative, 0));
    expectModeEquivalence("compress",
                          hybridConfig(VpScheme::Lvp,
                                       BranchResolution::NonSpeculative,
                                       2));
}

TEST(SchedEquivalence, IdleHeavyRegime)
{
    // Disabled caches + long miss latency: most cycles are idle and
    // the fast path skips them wholesale. Skipped cycles still count,
    // so cycle-derived stats must match brute exactly.
    expectModeEquivalence("compress", noCaches(baseConfig(), 40));
    expectModeEquivalence(
        "gcc", noCaches(vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0),
                        40));
}

TEST(SchedEquivalence, IdleSkipRespectsCkptAndWatchdog)
{
    // The skipper must never jump past a checkpoint drain boundary or
    // a watchdog trip cycle. Equivalence with brute (which never
    // skips) under both features proves the skip bounds are exact.
    CoreParams cfg = noCaches(irConfig(), 40);
    cfg.ckptInsts = 5000;
    cfg.watchdogCycles = 50000;
    expectModeEquivalence("compress", cfg);
    cfg = noCaches(baseConfig(), 60);
    cfg.ckptInsts = 3000;
    cfg.watchdogCycles = 20000;
    expectModeEquivalence("m88ksim", cfg);
}

TEST(SchedXcheck, SquashStormRestoresReadySet)
{
    // Speculative branch resolution on wrong value predictions causes
    // spurious squashes: every one must evict dying slots from the
    // ready/ctrl/finalize sets and unlink their operand waiters. The
    // per-cycle xcheck + audit pair fails fast on any leftover.
    runXchecked("gcc", vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                BranchResolution::Speculative, 0));
    runXchecked("compress",
                hybridConfig(VpScheme::Magic,
                             BranchResolution::Speculative, 0));
}

TEST(SchedXcheck, FaultStormUnderVerifyLatency)
{
    // Injected VPT corruption drives misprediction storms while a
    // nonzero verify latency keeps finalization pending long enough
    // for Refinal wheel events and finalize-waiter parking to matter.
    CoreParams cfg = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                              BranchResolution::Speculative, 2);
    cfg.faults.seed = 12345;
    cfg.faults.vptValueRate = 0.05;
    cfg.faults.vptConfRate = 0.02;
    runXchecked("m88ksim", cfg);
}

TEST(SchedXcheck, TinyWindowOccupancyCorners)
{
    // A 16-entry ROB wraps the slot-indexed structures constantly and
    // keeps the window full, hitting the ring-order iteration and the
    // head-pop unlink paths far more often than a Table 1 machine.
    CoreParams cfg = vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                              BranchResolution::NonSpeculative, 1);
    cfg.robEntries = 16;
    cfg.lsqEntries = 16;
    runXchecked("compress", cfg);
    cfg = irConfig(IrValidation::Late);
    cfg.robEntries = 16;
    cfg.lsqEntries = 16;
    runXchecked("perl", cfg);
}

} // anonymous namespace
