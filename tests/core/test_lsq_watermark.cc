/**
 * @file
 * Store-address watermark validation: with VPIR_LSQ_XCHECK=1 the core
 * cross-checks every oldestUnknownStoreSeq() query against the brute-
 * force LSQ scan it replaced and panics on the first divergence. The
 * tests drive that assertion through squash-heavy configurations —
 * speculative branch resolution with value prediction produces
 * spurious squashes, and injected VPT faults add misprediction storms
 * — so the watermark's commit/squash/ready bookkeeping is exercised
 * under fire, not just on the happy path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/simulator.hh"

using namespace vpir;

namespace
{

/** setenv/unsetenv for the test's scope (the core reads
 *  VPIR_LSQ_XCHECK at construction). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        setenv(name, value.c_str(), 1);
    }
    ~EnvGuard() { unsetenv(name_); }

  private:
    const char *name_;
};

constexpr uint64_t TEST_INSTS = 30000;

WorkloadScale
smallScale()
{
    WorkloadScale sc;
    sc.factor = 0.25;
    return sc;
}

void
runChecked(const std::string &workload, CoreParams cfg)
{
    EnvGuard xcheck("VPIR_LSQ_XCHECK", "1");
    CoreStats st = runWorkload(workload, withLimits(cfg, TEST_INSTS),
                               smallScale());
    // The real assertion runs inside the core on every disambiguation
    // query; reaching here with commits means it never diverged.
    EXPECT_GT(st.committedInsts, 0u) << workload;
}

TEST(LsqWatermark, MatchesScanOnBaseline)
{
    runChecked("compress", baseConfig());
    runChecked("m88ksim", baseConfig());
}

TEST(LsqWatermark, MatchesScanUnderReuse)
{
    // IR exercises the second gate (addr-reuse marks storeAddrReady at
    // dispatch, out of issue order).
    runChecked("compress", irConfig());
    runChecked("perl", irConfig());
}

TEST(LsqWatermark, MatchesScanUnderSpeculativeSquashes)
{
    // Speculative branch resolution on wrongly predicted values causes
    // spurious squashes: storeQ is truncated and the prefix clamped
    // mid-flight, over and over.
    CoreParams cfg = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                              BranchResolution::Speculative, 0);
    runChecked("compress", cfg);
    runChecked("gcc", cfg);
}

TEST(LsqWatermark, MatchesScanUnderFaultStorm)
{
    // Injected VPT value corruption makes predictions wrong at a high
    // rate; every late validation failure squashes younger stores.
    CoreParams cfg = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                              BranchResolution::Speculative, 0);
    cfg.faults.seed = 12345;
    cfg.faults.vptValueRate = 0.05;
    cfg.faults.vptConfRate = 0.02;
    runChecked("m88ksim", cfg);
}

TEST(LsqWatermark, XcheckKnobIsReadAtConstruction)
{
    // Sanity: the knob off must also work (no accidental always-on
    // scan, which would defeat the optimisation silently).
    CoreStats st = runWorkload("compress",
                               withLimits(baseConfig(), TEST_INSTS),
                               smallScale());
    EXPECT_GT(st.committedInsts, 0u);
}

} // anonymous namespace
