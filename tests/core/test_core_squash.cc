/** @file Core tests: wrong-path execution and squash recovery. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "sim/configs.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** Loop with an unpredictable data-dependent branch. */
Program
noisyBranches(int iters)
{
    Assembler a;
    Rng rng(0xb17b17);
    a.dataLabel("bits");
    for (int i = 0; i < 4096; ++i)
        a.word(static_cast<uint32_t>(rng.below(2)));
    a.dataLabel("out");
    a.space(8);
    a.la(S0, "bits");
    a.li(S1, iters);
    a.li(S2, 0);
    a.label("loop");
    a.andi(T0, S2, 4095);
    a.sll(T0, T0, 2);
    a.add(T0, S0, T0);
    a.lw(T1, T0, 0);
    a.beq(T1, ZERO, "zero_path");
    a.addi(S3, S3, 5);
    a.sw(S3, S0, 16384); // wrong-path stores must roll back
    a.j("join");
    a.label("zero_path");
    a.addi(S4, S4, 9);
    a.sw(S4, S0, 16388);
    a.label("join");
    a.addi(S2, S2, 1);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.la(T2, "out");
    a.sw(S3, T2, 0);
    a.sw(S4, T2, 4);
    a.halt();
    return a.finish();
}

} // anonymous namespace

TEST(CoreSquash, WrongPathWorkIsCountedAndDiscarded)
{
    Program p = noisyBranches(1000);
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_GT(st.executedInsts, st.committedInsts);
    EXPECT_GT(st.squashedExecuted, 100u);
    EXPECT_GT(st.branchSquashes, 100u);
}

TEST(CoreSquash, ArchitecturalStateSurvivesSquashes)
{
    // Compute the expected sums functionally first.
    Program p = noisyBranches(500);
    uint64_t s3 = 0, s4 = 0;
    {
        Rng rng(0xb17b17);
        std::vector<uint32_t> bits(4096);
        for (int i = 0; i < 4096; ++i)
            bits[i] = static_cast<uint32_t>(rng.below(2));
        for (int i = 0; i < 500; ++i) {
            if (bits[i % 4096])
                s3 += 5;
            else
                s4 += 9;
        }
    }
    Core c(baseConfig(), p);
    c.run();
    EXPECT_EQ(c.emuState().readMem(0x100000 + 16384, 4), s3);
    EXPECT_EQ(c.emuState().readMem(0x100000 + 16388, 4), s4);
}

TEST(CoreSquash, IndirectJumpsRecoverThroughBtb)
{
    // A jalr alternating between two targets: BTB mispredicts often,
    // but the final state must be exact.
    Assembler a;
    a.dataLabel("targets");
    Addr tgt_table = a.dataCursor();
    a.space(8);
    a.dataLabel("out");
    a.space(4);
    a.li(S1, 400);
    a.li(S2, 0);
    a.label("loop");
    a.andi(T0, S2, 1);
    a.sll(T0, T0, 2);
    a.la(T1, "targets");
    a.add(T0, T1, T0);
    a.lw(T2, T0, 0);
    a.jalr(RA, T2);
    a.addi(S2, S2, 1);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.la(T3, "out");
    a.sw(S3, T3, 0);
    a.halt();
    a.label("f_a");
    a.addi(S3, S3, 1);
    a.jr(RA);
    a.label("f_b");
    a.addi(S3, S3, 100);
    a.jr(RA);
    a.patchWord(tgt_table + 0, a.labelPC("f_a"));
    a.patchWord(tgt_table + 4, a.labelPC("f_b"));
    Program p = a.finish();

    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_EQ(c.emuState().readMem(a.dataAddr("out"), 4),
              200u * 1 + 200u * 100);
}

TEST(CoreSquash, ReturnStackSurvivesSquashes)
{
    // Calls mixed with unpredictable branches: RAS checkpointing must
    // keep return prediction near-perfect anyway.
    Assembler a;
    a.dataLabel("bits");
    for (int i = 0; i < 64; ++i)
        a.word((i * 40503u) >> 7 & 1);
    a.la(S0, "bits");
    a.li(S1, 600);
    a.li(S2, 0);
    a.label("loop");
    a.andi(T0, S2, 63);
    a.sll(T0, T0, 2);
    a.add(T0, S0, T0);
    a.lw(T1, T0, 0);
    a.beq(T1, ZERO, "skip");
    a.jal("leaf");
    a.label("skip");
    a.jal("leaf");
    a.addi(S2, S2, 1);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    a.label("leaf");
    a.addi(S5, S5, 1);
    a.jr(RA);
    Program p = a.finish();

    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_GT(st.returns, 600u);
    EXPECT_LT(st.returnMispredicted, st.returns / 50);
}

TEST(CoreSquash, FetchStallsOffTextUntilRedirect)
{
    // A mispredicted branch at the very end of the text: fetch runs
    // off the program, stalls, and recovers on resolution.
    Assembler a;
    a.dataLabel("zero");
    a.word(0);
    a.la(T0, "zero");
    a.lw(T1, T0, 0);
    a.li(S1, 50);
    a.label("loop");
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.beq(T1, ZERO, "fin"); // taken; predictor may fall through into
                            // nothing until resolved
    a.nop();
    a.nop();
    a.label("fin");
    a.halt();
    Program p = a.finish();
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_TRUE(st.haltedCleanly);
}

TEST(CoreSquash, SquashStatisticsConsistent)
{
    Program p = noisyBranches(800);
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    // Without value speculation every squash is a legitimate branch
    // misprediction.
    EXPECT_EQ(st.spuriousSquashes, 0u);
    EXPECT_LE(st.squashedExecuted, st.executedInsts);
    // Every executed dynamic instruction either committed (and is in
    // the execution-count histogram) or was squashed after executing.
    uint64_t committed_executed =
        st.execCountHist[0] + st.execCountHist[1] +
        st.execCountHist[2] + st.execCountHist[3];
    EXPECT_EQ(st.executedInsts,
              committed_executed + st.squashedExecuted);
}
