/** @file Core tests: base superscalar behaviour and correctness. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/core.hh"
#include "sim/configs.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** N-instruction serial dependent chain of 1-cycle adds + halt. */
Program
serialChain(int n)
{
    Assembler a;
    a.li(T0, 1);
    for (int i = 0; i < n; ++i)
        a.add(T0, T0, T0);
    a.halt();
    return a.finish();
}

/** N independent 1-cycle adds + halt. */
Program
independentAdds(int n)
{
    Assembler a;
    for (int i = 0; i < n; ++i)
        a.addi(static_cast<RegId>(1 + (i % 24)), ZERO, i);
    a.halt();
    return a.finish();
}

uint64_t
runCycles(const Program &p)
{
    Core c(baseConfig(), p);
    return c.run().cycles;
}

} // anonymous namespace

TEST(CoreBase, HaltsCleanly)
{
    Program p = serialChain(4);
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_EQ(st.committedInsts, 6u); // li + 4 adds + halt
}

TEST(CoreBase, SerialChainIsLatencyBound)
{
    // In steady state (warm icache), a serial chain of adds retires
    // ~1 per cycle while independent adds retire several per cycle.
    auto loop = [](bool serial) {
        Assembler a;
        a.li(S1, 200);
        a.li(T0, 1);
        a.label("loop");
        for (int i = 0; i < 16; ++i) {
            if (serial)
                a.add(T0, T0, T0);
            else
                a.addi(static_cast<RegId>(8 + (i % 8)), ZERO, i);
        }
        a.addi(S1, S1, -1);
        a.bgtz(S1, "loop");
        a.halt();
        return a.finish();
    };
    Program sp = loop(true);
    Program ip = loop(false);
    uint64_t serial = runCycles(sp);
    uint64_t indep = runCycles(ip);
    EXPECT_GE(serial, 200u * 16u);
    EXPECT_LT(indep, serial * 2 / 3);
}

TEST(CoreBase, IpcNeverExceedsMachineWidth)
{
    // A tight loop of independent work, long enough to amortise the
    // cold icache misses.
    Assembler a;
    a.li(S1, 500);
    a.label("loop");
    for (int i = 0; i < 12; ++i)
        a.addi(static_cast<RegId>(8 + (i % 8)), ZERO, i);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    Program p = a.finish();
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_LE(st.ipc(), 4.0);
    EXPECT_GT(st.ipc(), 1.2);
}

TEST(CoreBase, MaxCyclesStopsRun)
{
    Assembler a;
    a.label("spin");
    a.j("spin");
    Program p = a.finish();
    Core c(withLimits(baseConfig(), UINT64_MAX, 500), p);
    const CoreStats &st = c.run();
    EXPECT_FALSE(st.haltedCleanly);
    EXPECT_EQ(st.cycles, 500u);
}

TEST(CoreBase, MaxInstsStopsRun)
{
    Assembler a;
    a.label("spin");
    a.addi(T0, T0, 1);
    a.j("spin");
    Program p = a.finish();
    Core c(withLimits(baseConfig(), 1000, UINT64_MAX), p);
    const CoreStats &st = c.run();
    EXPECT_GE(st.committedInsts, 1000u);
    EXPECT_LT(st.committedInsts, 1010u);
}

TEST(CoreBase, MultiplyLatencyVisible)
{
    // A chain of dependent multiplies pays 3 cycles each.
    Assembler a;
    a.li(T0, 3);
    for (int i = 0; i < 16; ++i) {
        a.mult(T0, T0);
        a.mflo(T0);
    }
    a.halt();
    uint64_t mul_cycles = runCycles(a.finish());
    uint64_t add_cycles = runCycles(serialChain(32));
    EXPECT_GT(mul_cycles, add_cycles + 16);
}

TEST(CoreBase, StoreLoadForwardingIsCorrect)
{
    Assembler a;
    a.dataLabel("x");
    a.space(8);
    a.la(T0, "x");
    a.li(T1, 1234);
    a.sw(T1, T0, 0);
    a.lw(T2, T0, 0);   // must see the in-flight store's value
    a.addi(T2, T2, 1);
    a.la(T3, "x");
    a.sw(T2, T3, 4);
    a.halt();
    Program p = a.finish();
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_EQ(c.emuState().readMem(0x100000 + 4, 4), 1235u);
}

TEST(CoreBase, BranchyLoopCommitsExactStream)
{
    // Sum 1..100 via a loop; the final memory cell is the oracle.
    Assembler a;
    a.dataLabel("out");
    a.space(4);
    a.li(T0, 100);
    a.li(T1, 0);
    a.label("loop");
    a.add(T1, T1, T0);
    a.addi(T0, T0, -1);
    a.bgtz(T0, "loop");
    a.la(T2, "out");
    a.sw(T1, T2, 0);
    a.halt();
    Program p = a.finish();
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_EQ(st.committedInsts, 2u + 300u + 3u);
    EXPECT_EQ(c.emuState().readMem(0x100000, 4), 5050u);
}

TEST(CoreBase, UnpredictableBranchesCostCycles)
{
    // Branch on the low bit of an LCG-ish sequence vs a never-taken
    // branch; the unpredictable version must be slower.
    auto build = [](bool random) {
        Assembler a;
        a.li(S0, 12345);
        a.li(S1, 400);
        a.li(S2, 1103515245 & 0xffff);
        a.label("loop");
        if (random) {
            a.mult(S0, S2);
            a.mflo(S0);
            a.addi(S0, S0, 12345);
            a.srl(T0, S0, 9);
            a.andi(T0, T0, 1);
        } else {
            a.mult(S0, S2);
            a.mflo(S0);
            a.addi(S0, S0, 12345);
            a.li(T0, 0);
            a.nop();
        }
        a.beq(T0, ZERO, "skip");
        a.addi(T1, T1, 1);
        a.label("skip");
        a.addi(S1, S1, -1);
        a.bgtz(S1, "loop");
        a.halt();
        return a.finish();
    };
    Program random_p = build(true);
    Program biased_p = build(false);
    Core cr(baseConfig(), random_p);
    Core cb(baseConfig(), biased_p);
    const CoreStats &sr = cr.run();
    const CoreStats &sb = cb.run();
    EXPECT_GT(sr.condMispredicted, sb.condMispredicted + 50);
    EXPECT_GT(sr.cycles, sb.cycles);
    EXPECT_GT(sr.branchSquashes, 50u);
}

TEST(CoreBase, IcacheMissesOnLargeCodeFootprint)
{
    // A long straight-line code sequence larger than a few lines must
    // produce icache activity.
    Program p = independentAdds(600);
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_GT(st.icacheAccesses, 0u);
    EXPECT_GT(st.icacheMisses, 10u);
}

TEST(CoreBase, DcacheMissLatencyVisible)
{
    // A serial pointer chase (each load's address depends on the
    // previous load): distinct-line strides put the 6-cycle miss on
    // the critical path; a self-loop pointer stays in one line.
    auto build = [](bool big) {
        Assembler a;
        a.dataLabel("arr");
        // next[i] = (i + 32) mod footprint, stored at each slot, so
        // the loaded value IS the next offset.
        for (unsigned i = 0; i < 8192 * 32 / 4; ++i) {
            unsigned off = (i * 4 + 32) % (8192 * 32);
            a.word(big ? off : (i * 4 / 32) * 32); // self-line loop
        }
        a.la(T0, "arr");
        a.li(T1, 3000);
        a.li(T2, 0);
        a.label("loop");
        a.add(T3, T0, T2);
        a.lw(T2, T3, 0); // serial: address of the next load
        a.addi(T1, T1, -1);
        a.bgtz(T1, "loop");
        a.halt();
        return a.finish();
    };
    Program big_p = build(true);
    Program small_p = build(false);
    Core cb(baseConfig(), big_p);
    Core cs(baseConfig(), small_p);
    uint64_t big_cycles = cb.run().cycles;
    uint64_t small_cycles = cs.run().cycles;
    EXPECT_GT(cb.stats().dcacheMisses, 2000u);
    EXPECT_GT(big_cycles, small_cycles + 3000);
}

TEST(CoreBase, CallsAndReturnsPredictPerfectlyInSteadyState)
{
    Assembler a;
    a.li(S0, 200);
    a.label("loop");
    a.jal("leaf");
    a.addi(S0, S0, -1);
    a.bgtz(S0, "loop");
    a.halt();
    a.label("leaf");
    a.addi(T0, T0, 1);
    a.jr(RA);
    Program p = a.finish();
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_EQ(st.returns, 200u);
    EXPECT_LE(st.returnMispredicted, 2u);
}

TEST(CoreBase, ExecCountHistogramAllOnesWithoutVP)
{
    Program p = serialChain(50);
    Core c(baseConfig(), p);
    const CoreStats &st = c.run();
    EXPECT_GT(st.execCountHist[0], 0u);
    EXPECT_EQ(st.execCountHist[1], 0u); // nothing re-executes
    EXPECT_EQ(st.execCountHist[2], 0u);
}
