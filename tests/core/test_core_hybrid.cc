/** @file Core tests: the hybrid VP+IR technique and warmup. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/core.hh"
#include "sim/configs.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** A kernel with both reuse-friendly (invariant chain) and
 *  VP-only (in-flight ring chase) redundancy. */
Program
mixedKernel(int iters)
{
    Assembler a;
    a.dataLabel("ring");
    a.word(4);
    a.word(8);
    a.word(0);
    a.dataLabel("c");
    a.word(777);
    a.la(S0, "ring");
    a.la(S2, "c");
    a.li(S1, iters);
    a.li(T1, 0);
    a.label("loop");
    // VP-only part: serial dependent ring chase.
    a.add(T2, S0, T1);
    a.lw(T1, T2, 0);
    a.add(T2, S0, T1);
    a.lw(T1, T2, 0);
    // IR-friendly part: invariant chain.
    a.lw(T3, S2, 0);
    a.sll(T4, T3, 1);
    a.xor_(T5, T4, T3);
    a.addi(T6, T5, 9);
    // VP-only part: same result from ever-different operands (the
    // paper's §3.1 logical-operation case); IR's operand test can
    // never pass here.
    a.slti(T7, S1, 10000000);
    a.add(T8, T8, T7);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    return a.finish();
}

} // anonymous namespace

TEST(CoreHybrid, CapturesBothKindsOfRedundancy)
{
    Program p = mixedKernel(1500);
    Core hy(hybridConfig(), p);
    const CoreStats &st = hy.run();
    EXPECT_GT(st.reusedResults, st.committedInsts / 5);
    // The slti produces one IR-impossible (different-operand) correct
    // prediction per iteration.
    EXPECT_GT(st.vpResultCorrect, 1000u);
}

TEST(CoreHybrid, AtLeastAsFastAsEitherAlone)
{
    Program p = mixedKernel(1500);
    Core base(baseConfig(), p);
    Core vp(vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, 0),
            p);
    Core ir(irConfig(), p);
    Core hy(hybridConfig(), p);
    uint64_t bc = base.run().cycles;
    uint64_t vc = vp.run().cycles;
    uint64_t ic = ir.run().cycles;
    uint64_t hc = hy.run().cycles;
    EXPECT_LT(hc, bc);
    // Small slack: the hybrid should be within a whisker of the best
    // single technique (and usually strictly better).
    EXPECT_LE(hc, std::min(vc, ic) * 102 / 100);
}

TEST(CoreHybrid, EndStateMatchesBase)
{
    Program p = mixedKernel(500);
    Core base(baseConfig(), p);
    Core hy(hybridConfig(), p);
    base.run();
    hy.run();
    EXPECT_TRUE(hy.stats().haltedCleanly);
    EXPECT_EQ(base.stats().committedInsts,
              hy.stats().committedInsts);
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r) {
        ASSERT_EQ(base.emuState().readReg(static_cast<RegId>(r)),
                  hy.emuState().readReg(static_cast<RegId>(r)));
    }
}

TEST(CoreHybrid, NsbSuppressesSpuriousSquashes)
{
    Program p = mixedKernel(1000);
    Core nsb(hybridConfig(VpScheme::Magic,
                          BranchResolution::NonSpeculative, 0),
             p);
    const CoreStats &st = nsb.run();
    EXPECT_EQ(st.spuriousSquashes, 0u);
}

TEST(CoreWarmup, SkipsInstructionsFunctionally)
{
    Program p = mixedKernel(1000);
    CoreParams cfg = baseConfig();
    Core plain(cfg, p);
    uint64_t full = plain.run().committedInsts;

    cfg.warmupInsts = 3000;
    Core warm(cfg, p);
    const CoreStats &st = warm.run();
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_EQ(st.committedInsts + 3000, full);
}

TEST(CoreWarmup, EndStateUnaffected)
{
    Program p = mixedKernel(800);
    CoreParams cfg = baseConfig();
    Core plain(cfg, p);
    cfg.warmupInsts = 2500;
    Core warm(cfg, p);
    plain.run();
    warm.run();
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r) {
        ASSERT_EQ(plain.emuState().readReg(static_cast<RegId>(r)),
                  warm.emuState().readReg(static_cast<RegId>(r)));
    }
}

TEST(CoreWarmup, SurvivesWarmupPastHalt)
{
    Program p = mixedKernel(50);
    CoreParams cfg = baseConfig();
    cfg.warmupInsts = 10000000; // beyond the whole program
    Core warm(cfg, p);
    const CoreStats &st = warm.run();
    // Warmup consumed everything; the timed run restarts at entry
    // and still terminates.
    EXPECT_TRUE(st.haltedCleanly);
}
