/** @file Core tests: instruction reuse integration. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "core/core.hh"
#include "sim/configs.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** A loop whose body recomputes the same dependent chain from a
 *  loop-invariant load: ideal reuse prey. */
Program
invariantChain(int iters)
{
    Assembler a;
    a.dataLabel("c");
    a.word(12345);
    a.dataLabel("sink");
    a.space(8);
    a.la(S0, "c");
    a.li(S1, iters);
    a.label("loop");
    a.lw(T2, S0, 0);
    a.sll(T3, T2, 1);
    a.xor_(T4, T3, T2);
    a.addi(T5, T4, 7);
    a.mult(T5, T3);   // long-latency link in the chain
    a.mflo(T6);
    a.add(T6, T6, T5);
    a.la(T7, "sink");
    a.sw(T6, T7, 0);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    return a.finish();
}

} // anonymous namespace

TEST(CoreIR, ReusesInvariantChains)
{
    Program p = invariantChain(2000);
    Core base(baseConfig(), p);
    Core ir(irConfig(), p);
    uint64_t bc = base.run().cycles;
    uint64_t ic = ir.run().cycles;
    EXPECT_LT(ic, bc); // reuse must help here
    EXPECT_GT(ir.stats().reusedResults,
              ir.stats().committedInsts / 2);
}

TEST(CoreIR, EndStateMatchesBase)
{
    Program p = invariantChain(500);
    Core base(baseConfig(), p);
    Core ir(irConfig(), p);
    base.run();
    ir.run();
    EXPECT_TRUE(ir.stats().haltedCleanly);
    EXPECT_EQ(base.stats().committedInsts, ir.stats().committedInsts);
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r) {
        ASSERT_EQ(base.emuState().readReg(static_cast<RegId>(r)),
                  ir.emuState().readReg(static_cast<RegId>(r)));
    }
}

TEST(CoreIR, EarlyValidationBeatsLate)
{
    // Figure 3: deferring validation to execute loses most of the
    // benefit.
    Program p = invariantChain(2000);
    Core base(baseConfig(), p);
    Core early(irConfig(IrValidation::Early), p);
    Core late(irConfig(IrValidation::Late), p);
    uint64_t bc = base.run().cycles;
    uint64_t ec = early.run().cycles;
    uint64_t lc = late.run().cycles;
    EXPECT_LT(ec, lc);
    EXPECT_LE(lc, bc); // late still >= base (correct predictions)
}

TEST(CoreIR, StoreInvalidationKeepsLoadsCorrect)
{
    // The loop alternates between reading and rewriting the same
    // location; reused loads must always deliver the current value.
    Assembler a;
    a.dataLabel("cell");
    a.word(5);
    a.dataLabel("out");
    a.space(4);
    a.la(S0, "cell");
    a.li(S1, 300);
    a.li(S2, 0);
    a.label("loop");
    a.lw(T0, S0, 0);
    a.add(S2, S2, T0);
    a.addi(T0, T0, 1);
    a.sw(T0, S0, 0); // kills the load's result entry
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.la(T1, "out");
    a.sw(S2, T1, 0);
    a.halt();
    Program p = a.finish();

    Core base(baseConfig(), p);
    Core ir(irConfig(), p);
    base.run();
    ir.run();
    // sum of 5..304
    uint64_t expect = (5 + 304) * 300 / 2;
    EXPECT_EQ(base.emuState().readMem(0x100004, 4), expect);
    EXPECT_EQ(ir.emuState().readMem(0x100004, 4), expect);
}

TEST(CoreIR, ReusedBranchesResolveAtDecode)
{
    // A data-dependent branch whose operands repeat: once its RB
    // entry exists, resolution latency collapses versus base.
    Assembler a;
    a.dataLabel("flags");
    for (int i = 0; i < 8; ++i)
        a.word(i % 2);
    a.la(S0, "flags");
    a.li(S1, 2000);
    a.li(S2, 0);
    a.label("loop");
    a.andi(T0, S2, 7);
    a.sll(T0, T0, 2);
    a.add(T0, S0, T0);
    a.lw(T1, T0, 0);
    a.beq(T1, ZERO, "skip");
    a.addi(S3, S3, 1);
    a.label("skip");
    a.addi(S2, S2, 1);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    Program p = a.finish();

    Core base(baseConfig(), p);
    Core ir(irConfig(), p);
    base.run();
    ir.run();
    double base_lat = static_cast<double>(base.stats().branchResLatSum) /
                      static_cast<double>(base.stats().branchResCount);
    double ir_lat = static_cast<double>(ir.stats().branchResLatSum) /
                    static_cast<double>(ir.stats().branchResCount);
    EXPECT_LT(ir_lat, base_lat);
}

TEST(CoreIR, RecoversSquashedWork)
{
    // Unpredictable branches with convergent code: work executed on
    // the wrong path is squashed, inserted into the RB, and later
    // reused on the correct path.
    Assembler a;
    a.dataLabel("tab");
    for (int i = 0; i < 64; ++i)
        a.word((i * 2654435761u) >> 20 & 1);
    a.la(S0, "tab");
    a.li(S1, 3000);
    a.li(S2, 0);
    a.label("loop");
    a.andi(T0, S2, 63);
    a.sll(T0, T0, 2);
    a.add(T0, S0, T0);
    a.lw(T1, T0, 0);
    a.beq(T1, ZERO, "other");
    // Both paths converge on the same computation.
    a.lw(T2, S0, 0);
    a.sll(T3, T2, 2);
    a.add(S3, S3, T3);
    a.j("join");
    a.label("other");
    a.lw(T2, S0, 0);
    a.sll(T3, T2, 2);
    a.add(S4, S4, T3);
    a.label("join");
    a.addi(S2, S2, 1);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    Program p = a.finish();

    Core ir(irConfig(), p);
    const CoreStats &st = ir.run();
    EXPECT_GT(st.squashedExecuted, 100u);
    EXPECT_GT(st.squashedRecovered, 20u);
}

TEST(CoreIR, AddressOnlyReuseForChangingLoads)
{
    // Loads from a constant address whose value keeps changing: the
    // address part reuses, the result part cannot.
    Assembler a;
    a.dataLabel("cell");
    a.word(0);
    a.la(S0, "cell");
    a.li(S1, 500);
    a.label("loop");
    a.lw(T0, S0, 0);
    a.addi(T0, T0, 3);
    a.sw(T0, S0, 0);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();
    Program p = a.finish();
    Core ir(irConfig(), p);
    const CoreStats &st = ir.run();
    EXPECT_GT(st.reusedAddrs, st.reusedResults);
    EXPECT_GT(st.reusedAddrs, 400u);
}

TEST(CoreIR, ReuseRatesBoundedByCommits)
{
    Program p = invariantChain(300);
    Core ir(irConfig(), p);
    const CoreStats &st = ir.run();
    EXPECT_LE(st.reusedResults, st.committedInsts);
    EXPECT_LE(st.reusedAddrs, st.committedMemOps);
}
