/** @file Unit tests for the embedded assembler. */

#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hh"
#include "isa/decode.hh"

using namespace vpir;

namespace
{
constexpr RegId R1 = 1, R2 = 2, R3 = 3;
}

TEST(Assembler, EmitsSequentialPCs)
{
    Assembler a;
    a.add(R1, R2, R3);
    a.nop();
    a.halt();
    Program p = a.finish();
    ASSERT_EQ(p.text.size(), 3u);
    EXPECT_EQ(p.at(p.textBase)->op, Op::ADD);
    EXPECT_EQ(p.at(p.textBase + 4)->op, Op::NOP);
    EXPECT_EQ(p.at(p.textBase + 8)->op, Op::HALT);
}

TEST(Assembler, AtRejectsBadPCs)
{
    Assembler a;
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.at(p.textBase - 4), nullptr);
    EXPECT_EQ(p.at(p.textEnd()), nullptr);
    EXPECT_EQ(p.at(p.textBase + 1), nullptr); // misaligned
}

TEST(Assembler, ForwardBranchResolves)
{
    Assembler a;
    a.beq(R1, R2, "skip");
    a.nop();
    a.label("skip");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.text[0].target, p.textBase + 8);
}

TEST(Assembler, BackwardBranchResolves)
{
    Assembler a;
    a.label("top");
    a.nop();
    a.bne(R1, R2, "top");
    Program p = a.finish();
    EXPECT_EQ(p.text[1].target, p.textBase);
}

TEST(Assembler, JumpAndCall)
{
    Assembler a;
    a.j("end");
    a.label("end");
    a.jal("end");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.text[0].target, p.textBase + 4);
    EXPECT_EQ(p.text[1].op, Op::JAL);
    EXPECT_EQ(p.text[1].rd, REG_RA);
    EXPECT_EQ(p.text[1].target, p.textBase + 4);
}

TEST(Assembler, DataSegmentLayout)
{
    Assembler a(0x1000, 0x20000);
    a.dataLabel("tab");
    a.word(0x11223344);
    a.word(0xdeadbeef);
    a.dataLabel("str");
    a.bytes({1, 2, 3});
    a.align(4);
    a.dataLabel("after");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(a.dataAddr("tab"), 0x20000u);
    EXPECT_EQ(a.dataAddr("str"), 0x20008u);
    EXPECT_EQ(a.dataAddr("after"), 0x2000cu);
    // Little-endian layout of the first word.
    const auto &seg = p.dataInit.front().second;
    EXPECT_EQ(seg[0], 0x44);
    EXPECT_EQ(seg[3], 0x11);
}

TEST(Assembler, DwordRoundTrips)
{
    Assembler a;
    a.dataLabel("d");
    a.dword(3.25);
    a.halt();
    Program p = a.finish();
    const auto &seg = p.dataInit.front().second;
    double v;
    std::memcpy(&v, seg.data(), 8);
    EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(Assembler, PatchWordRewritesData)
{
    Assembler a;
    a.dataLabel("slot");
    a.word(0);
    a.halt();
    a.patchWord(a.dataAddr("slot"), 0xcafef00d);
    Program p = a.finish();
    const auto &seg = p.dataInit.front().second;
    uint32_t v;
    std::memcpy(&v, seg.data(), 4);
    EXPECT_EQ(v, 0xcafef00du);
}

TEST(Assembler, LaLoadsDataAddress)
{
    Assembler a;
    a.dataLabel("x");
    a.word(7);
    a.la(R1, "x");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.text[0].op, Op::LI);
    EXPECT_EQ(static_cast<uint32_t>(p.text[0].imm), a.dataAddr("x"));
}

TEST(Assembler, MultEncodesHiLo)
{
    Assembler a;
    a.mult(R1, R2);
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.text[0].rd, REG_LO);
    EXPECT_EQ(p.text[0].rd2, REG_HI);
}

TEST(Assembler, StoresPutDataInRt)
{
    Assembler a;
    a.sw(R1, R2, 12);
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.text[0].rs, R2); // base
    EXPECT_EQ(p.text[0].rt, R1); // data
    EXPECT_EQ(p.text[0].imm, 12);
    EXPECT_EQ(p.text[0].rd, REG_INVALID);
}

TEST(AssemblerDeath, UndefinedLabelIsFatal)
{
    Assembler a;
    a.j("nowhere");
    EXPECT_DEATH(
        {
            Program p = a.finish();
            (void)p;
        },
        "nowhere");
}

TEST(AssemblerDeath, DuplicateLabelIsFatal)
{
    Assembler a;
    a.label("x");
    EXPECT_DEATH(a.label("x"), "duplicate");
}
