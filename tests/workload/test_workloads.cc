/** @file Tests for the seven synthetic SPEC95int-like workloads. */

#include <gtest/gtest.h>

#include "emu/executor.hh"
#include "workload/workload.hh"

using namespace vpir;

namespace
{

/** Run a workload functionally; return executed instructions. */
uint64_t
runFunctional(const Program &p, uint64_t cap)
{
    EmuState st;
    Emulator emu(p, st);
    Emulator::loadProgram(p, st);
    uint64_t n = 0;
    while (!emu.halted() && n < cap) {
        emu.step();
        st.retire(st.mark());
        ++n;
    }
    return n;
}

} // anonymous namespace

TEST(Workloads, NamesMatchThePaper)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names[0], "go");
    EXPECT_EQ(names[1], "m88ksim");
    EXPECT_EQ(names[2], "ijpeg");
    EXPECT_EQ(names[3], "perl");
    EXPECT_EQ(names[4], "vortex");
    EXPECT_EQ(names[5], "gcc");
    EXPECT_EQ(names[6], "compress");
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_DEATH(
        {
            Workload w = makeWorkload("spice");
            (void)w;
        },
        "unknown workload");
}

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, HaltsAtSmallScale)
{
    WorkloadScale sc;
    sc.factor = 0.01;
    Workload w = makeWorkload(GetParam(), sc);
    EmuState st;
    Emulator emu(w.program, st);
    Emulator::loadProgram(w.program, st);
    uint64_t n = 0;
    while (!emu.halted()) {
        emu.step();
        st.retire(st.mark());
        ++n;
        ASSERT_LT(n, 5000000u) << "did not halt";
    }
    EXPECT_GT(n, 1000u);
}

TEST_P(WorkloadSuite, DeterministicBuild)
{
    Workload a = makeWorkload(GetParam());
    Workload b = makeWorkload(GetParam());
    ASSERT_EQ(a.program.text.size(), b.program.text.size());
    ASSERT_EQ(a.program.dataInit.size(), b.program.dataInit.size());
    EXPECT_EQ(a.program.dataInit.front().second,
              b.program.dataInit.front().second);
    for (size_t i = 0; i < a.program.text.size(); ++i) {
        EXPECT_EQ(a.program.text[i].op, b.program.text[i].op);
        EXPECT_EQ(a.program.text[i].imm, b.program.text[i].imm);
    }
}

TEST_P(WorkloadSuite, FullScaleIsRoughlyMillionInstructions)
{
    Workload w = makeWorkload(GetParam());
    uint64_t n = runFunctional(w.program, 10000000);
    // Order-of-magnitude check: run lengths sized per DESIGN.md.
    EXPECT_GT(n, 300000u);
    EXPECT_LE(n, 10000000u);
}

TEST_P(WorkloadSuite, ScaleControlsLength)
{
    WorkloadScale small, big;
    small.factor = 0.2;
    big.factor = 0.8;
    uint64_t ns =
        runFunctional(makeWorkload(GetParam(), small).program,
                      40000000);
    uint64_t nb =
        runFunctional(makeWorkload(GetParam(), big).program,
                      40000000);
    EXPECT_GT(nb, static_cast<uint64_t>(ns * 1.8));
}

TEST_P(WorkloadSuite, UsesMemoryAndBranches)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    Workload w = makeWorkload(GetParam(), sc);
    EmuState st;
    Emulator emu(w.program, st);
    Emulator::loadProgram(w.program, st);
    uint64_t loads = 0, stores = 0, branches = 0, total = 0;
    while (!emu.halted() && total < 200000) {
        ExecResult r = emu.step();
        st.retire(st.mark());
        ++total;
        if (isLoad(r.inst.op))
            ++loads;
        if (isStore(r.inst.op))
            ++stores;
        if (isCondBranch(r.inst.op))
            ++branches;
    }
    // Every benchmark should have a realistic mix. (m88ksim's
    // direct-threaded dispatch has the lowest conditional-branch
    // density, ~3%.)
    EXPECT_GT(loads, total / 20);
    EXPECT_GT(stores, total / 200);
    EXPECT_GT(branches, total / 40);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSuite,
                         ::testing::ValuesIn(workloadNames()));
