/**
 * @file
 * Differential driver tests: clean seeds run clean, conservation-law
 * violations and audit trips are caught, planted reuse-buffer faults
 * diverge and shrink to a minimal program, and whole campaigns are
 * deterministic for any job count.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hh"
#include "core/core.hh"
#include "fuzz/campaign.hh"
#include "fuzz/differential.hh"
#include "fuzz/generator.hh"
#include "fuzz/shrink.hh"
#include "sim/configs.hh"
#include "sweep/stats_json.hh"

using namespace vpir;
using namespace vpir::fuzz;

namespace
{

/** The planted-fault cell: every store invalidation dropped on an
 *  RB-bearing configuration, dispatch oracle check off (hardware
 *  trusts its RB), so a stale reused load must escape to commit and
 *  be caught there. Seed picked so the derived config carries an RB
 *  and the program aliases stores over reusable loads. */
DiffOutcome
plantedRbFault(Program &program_out, CoreParams &params_out)
{
    uint64_t seed = Rng::split(0xd1ffe4, 0);
    Program program = generateProgram(seed);
    CoreParams params = fuzzParamsForSeed(seed);
    params.faults.rbDropInvRate = 1.0;
    params.faults.seed = Rng::split(params.faults.seed, 0);
    params.irOracleCheck = false;
    program_out = program;
    params_out = params;
    return runDifferential(program, params);
}

} // namespace

TEST(Differential, CleanSeedsRunClean)
{
    for (uint64_t cell : {0ull, 1ull, 2ull}) {
        uint64_t seed = Rng::split(0xf00dfeed, cell);
        DiffOutcome d =
            runDifferential(generateProgram(seed),
                            fuzzParamsForSeed(seed));
        EXPECT_FALSE(d.diverged)
            << "cell " << cell << ": [" << d.kind << "] " << d.detail;
        EXPECT_TRUE(d.stats.haltedCleanly);
        EXPECT_GT(d.stats.committedInsts, 0u);
    }
}

TEST(Differential, ConservationLawViolationIsCaught)
{
    uint64_t seed = Rng::split(0xf00dfeed, 0);
    CoreParams params = fuzzParamsForSeed(seed);
    DiffOutcome d = runDifferential(generateProgram(seed), params);
    ASSERT_FALSE(d.diverged);

    // Hand-plant violations of three different laws.
    CoreStats st = d.stats;
    st.committedLoads += 1;
    EXPECT_NE(checkStatsConservation(st, params), "");

    st = d.stats;
    st.vpResultPredicted += 1;
    EXPECT_NE(checkStatsConservation(st, params), "");

    st = d.stats;
    st.checkedInsts -= 1;
    EXPECT_NE(checkStatsConservation(st, params), "");
}

TEST(Differential, AuditCatchesPlantedStatsCorruption)
{
    // VPIR_TEST_AUDIT_CLOBBER bumps committedInsts mid-run: the
    // cycle-level instruction-conservation audit must panic at
    // exactly that cycle instead of letting the corruption ride to
    // the end of the run.
    uint64_t seed = Rng::split(0xf00dfeed, 1);
    setenv("VPIR_TEST_AUDIT_CLOBBER", "200", 1);
    DiffOutcome d = runDifferential(generateProgram(seed),
                                    fuzzParamsForSeed(seed));
    unsetenv("VPIR_TEST_AUDIT_CLOBBER");
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.kind, "audit") << d.detail;
    EXPECT_NE(d.detail.find("conserv"), std::string::npos) << d.detail;
}

TEST(Differential, PlantedRbFaultDivergesAndShrinks)
{
    Program program;
    CoreParams params;
    DiffOutcome d = plantedRbFault(program, params);
    ASSERT_TRUE(d.diverged) << "planted fault was absorbed";
    // Caught at commit: by the cycle audit (unvalidated reused value)
    // with the checker as backstop.
    EXPECT_TRUE(d.kind == "audit" || d.kind == "checker") << d.kind;

    ShrinkResult s = shrinkFailure(program, params, d);
    EXPECT_EQ(s.outcome.kind, d.kind);
    EXPECT_LT(s.instrsAfter, s.instrsBefore);
    EXPECT_LE(s.instrsAfter, 10u)
        << "shrunk case still has " << s.instrsAfter
        << " active instructions";

    // The minimized program still fails the same way when re-run.
    DiffOutcome again = runDifferential(s.program, s.params);
    EXPECT_TRUE(again.diverged);
    EXPECT_EQ(again.kind, d.kind);
    EXPECT_EQ(divergenceSignature(again),
              divergenceSignature(s.outcome));
}

TEST(Differential, CampaignIsDeterministicAcrossJobCounts)
{
    FuzzCampaignOptions opt;
    opt.baseSeed = 0xf00dfeed;
    opt.cells = 4;
    opt.reproDir = ::testing::TempDir();

    opt.jobs = 1;
    FuzzCampaignResult r1 = runFuzzCampaign(opt, nullptr);
    opt.jobs = 3;
    FuzzCampaignResult r3 = runFuzzCampaign(opt, nullptr);

    ASSERT_EQ(r1.cells.size(), r3.cells.size());
    EXPECT_EQ(r1.failures, r3.failures);
    for (size_t i = 0; i < r1.cells.size(); ++i) {
        EXPECT_EQ(r1.cells[i].seed, r3.cells[i].seed);
        EXPECT_EQ(r1.cells[i].workload, r3.cells[i].workload);
        EXPECT_EQ(divergenceSignature(r1.cells[i].outcome),
                  divergenceSignature(r3.cells[i].outcome));
        EXPECT_TRUE(sweep::statsEqual(r1.cells[i].outcome.stats,
                                      r3.cells[i].outcome.stats))
            << "cell " << i << " stats differ across job counts";
    }
}
