/**
 * @file
 * Generator unit tests: determinism, termination by construction,
 * full static Op coverage in every program, and the fuzz workload
 * naming scheme (including routing through makeWorkload).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "emu/executor.hh"
#include "fuzz/generator.hh"
#include "fuzz/program_io.hh"
#include "isa/instr.hh"
#include "workload/workload.hh"

using namespace vpir;
using namespace vpir::fuzz;

TEST(FuzzGenerator, DeterministicForSeed)
{
    Program a = generateProgram(0x1234);
    Program b = generateProgram(0x1234);
    EXPECT_EQ(programToText(a), programToText(b));
}

TEST(FuzzGenerator, SeedsProduceDistinctPrograms)
{
    EXPECT_NE(programToText(generateProgram(1)),
              programToText(generateProgram(2)));
}

TEST(FuzzGenerator, EveryOpAppearsInEveryProgram)
{
    // The coverage block makes full static ISA coverage a structural
    // property, not a statistical one: any seed exercises the whole
    // assembler -> decode -> disasm surface.
    for (uint64_t seed : {0ull, 7ull, 0xdeadbeefull}) {
        Program p = generateProgram(seed);
        std::set<Op> seen;
        for (const Instr &i : p.text)
            seen.insert(i.op);
        for (int op = 0; op <= static_cast<int>(Op::HALT); ++op) {
            EXPECT_TRUE(seen.count(static_cast<Op>(op)))
                << "seed " << seed << " missing op "
                << opName(static_cast<Op>(op));
        }
    }
}

TEST(FuzzGenerator, ProgramsTerminate)
{
    for (uint64_t seed : {3ull, 0x5eedull, 0xffffffffull}) {
        Program p = generateProgram(seed);
        EmuState st;
        Emulator::loadProgram(p, st);
        Emulator emu(p, st);
        uint64_t steps = 0;
        const uint64_t cap = 2000000;
        while (!emu.halted() && steps < cap) {
            emu.step();
            st.retire(st.mark());
            ++steps;
        }
        EXPECT_TRUE(emu.halted())
            << "seed " << seed << " still running after " << cap
            << " steps";
    }
}

TEST(FuzzGenerator, ScaledItersShortenRuns)
{
    GenOptions small;
    small.outerIters = 2;
    GenOptions big;
    big.outerIters = 50;
    auto run = [](const Program &p) {
        EmuState st;
        Emulator::loadProgram(p, st);
        Emulator emu(p, st);
        uint64_t steps = 0;
        while (!emu.halted() && steps < 5000000) {
            emu.step();
            st.retire(st.mark());
            ++steps;
        }
        return steps;
    };
    EXPECT_LT(run(generateProgram(11, small)),
              run(generateProgram(11, big)));
}

TEST(FuzzGenerator, WorkloadNameRoundTrip)
{
    uint64_t seed = 0xabcdef0123456789ull;
    std::string name = fuzzWorkloadName(seed);
    EXPECT_TRUE(isFuzzWorkloadName(name));
    EXPECT_EQ(fuzzSeedFromName(name), seed);

    EXPECT_FALSE(isFuzzWorkloadName("gcc"));
    EXPECT_FALSE(isFuzzWorkloadName("fuzz:"));
    EXPECT_FALSE(isFuzzWorkloadName("fuzz:xyz"));
    EXPECT_FALSE(isFuzzWorkloadName("fuzz:ABCDEF0123456789"));
}

TEST(FuzzGenerator, MakeWorkloadRoutesFuzzNames)
{
    std::string name = fuzzWorkloadName(0x77);
    Workload w = makeWorkload(name, WorkloadScale{});
    EXPECT_EQ(w.name, name);
    EXPECT_EQ(programToText(w.program),
              programToText(generateProgram(0x77)));
}
