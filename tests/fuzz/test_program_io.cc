/**
 * @file
 * Program text (de)serialization tests, plus the generator-driven
 * assembler -> serialize -> parse -> disasm round trip over every
 * opcode in the ISA.
 */

#include <gtest/gtest.h>

#include <set>

#include "fuzz/generator.hh"
#include "fuzz/program_io.hh"
#include "isa/disasm.hh"
#include "isa/instr.hh"

using namespace vpir;
using namespace vpir::fuzz;

namespace
{

void
expectProgramsEqual(const Program &a, const Program &b)
{
    ASSERT_EQ(a.text.size(), b.text.size());
    EXPECT_EQ(a.textBase, b.textBase);
    EXPECT_EQ(a.entry, b.entry);
    EXPECT_EQ(a.stackTop, b.stackTop);
    for (size_t i = 0; i < a.text.size(); ++i) {
        const Instr &x = a.text[i];
        const Instr &y = b.text[i];
        EXPECT_EQ(x.op, y.op) << "instr " << i;
        EXPECT_EQ(x.rd, y.rd) << "instr " << i;
        EXPECT_EQ(x.rd2, y.rd2) << "instr " << i;
        EXPECT_EQ(x.rs, y.rs) << "instr " << i;
        EXPECT_EQ(x.rt, y.rt) << "instr " << i;
        EXPECT_EQ(x.imm, y.imm) << "instr " << i;
        EXPECT_EQ(x.target, y.target) << "instr " << i;
        // The human-facing rendering must agree too.
        EXPECT_EQ(disassemble(x), disassemble(y)) << "instr " << i;
    }
    ASSERT_EQ(a.dataInit.size(), b.dataInit.size());
    for (size_t i = 0; i < a.dataInit.size(); ++i) {
        EXPECT_EQ(a.dataInit[i].first, b.dataInit[i].first);
        EXPECT_EQ(a.dataInit[i].second, b.dataInit[i].second);
    }
}

} // namespace

TEST(ProgramIo, RoundTripsEveryOpcode)
{
    // Generated programs statically contain every Op (the coverage
    // block), so three fixed seeds push the full ISA through
    // assemble -> serialize -> parse -> disassemble.
    for (uint64_t seed : {0x10ull, 0x20ull, 0x30ull}) {
        Program p = generateProgram(seed);
        std::set<Op> seen;
        for (const Instr &i : p.text)
            seen.insert(i.op);
        ASSERT_EQ(seen.size(),
                  static_cast<size_t>(Op::NUM_OPS))
            << "seed " << seed
            << " does not cover the full opcode set";

        std::string text = programToText(p);
        Program q;
        std::string err;
        ASSERT_TRUE(programFromText(text, q, err)) << err;
        expectProgramsEqual(p, q);

        // Canonical text is a fixed point.
        EXPECT_EQ(programToText(q), text);
    }
}

TEST(ProgramIo, RejectsMalformedText)
{
    Program out;
    std::string err;

    EXPECT_FALSE(programFromText("", out, err));
    EXPECT_FALSE(programFromText("not a program\n", out, err));

    std::string good = programToText(generateProgram(1));

    // Truncation: lose the trailing "end".
    std::string no_end = good.substr(0, good.rfind("end"));
    EXPECT_FALSE(programFromText(no_end, out, err));

    // Unknown opcode.
    std::string bad_op = good;
    size_t pos = bad_op.find("i halt");
    ASSERT_NE(pos, std::string::npos);
    bad_op.replace(pos, 6, "i bogus");
    EXPECT_FALSE(programFromText(bad_op, out, err));
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;

    // Odd-length data hex.
    std::string bad_data = good;
    pos = bad_data.find("\ndata 0x");
    ASSERT_NE(pos, std::string::npos);
    size_t sp = bad_data.find(' ', pos + 6);
    ASSERT_NE(sp, std::string::npos);
    bad_data.insert(sp + 1, "a"); // odd-length hex image
    EXPECT_FALSE(programFromText(bad_data, out, err));
}

TEST(ProgramIo, ParseFailureLeavesOutputUntouched)
{
    Program out = generateProgram(5);
    std::string before = programToText(out);
    std::string err;
    EXPECT_FALSE(programFromText("garbage", out, err));
    EXPECT_EQ(programToText(out), before);
}
