/**
 * @file
 * Repro bundle tests: lossless round trip, identical replay, loud
 * schema-fingerprint rejection, atomic writes, and stale-tmp
 * scrubbing. Also covers the params JSON round trip the bundles rely
 * on.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.hh"
#include "fuzz/generator.hh"
#include "fuzz/program_io.hh"
#include "fuzz/repro.hh"
#include "sweep/params_json.hh"

using namespace vpir;
using namespace vpir::fuzz;

namespace
{

ReproBundle
sampleBundle()
{
    uint64_t seed = 0x1234;
    ReproBundle b;
    b.generatorRevision = GENERATOR_REVISION;
    b.seed = seed;
    b.workload = fuzzWorkloadName(seed);
    b.kind = "checker";
    b.detail = "lockstep divergence at cycle 5, seq 3, pc 0x1000";
    b.env = "VPIR_FAULT_RB_DROPINV=1.0";
    b.params = fuzzParamsForSeed(seed);
    b.program = generateProgram(seed);
    return b;
}

} // namespace

TEST(ParamsJson, RoundTripIsLossless)
{
    CoreParams p = fuzzParamsForSeed(0xabc);
    p.faults.rbDropInvRate = 0.015625; // exercise double bit-exactness
    std::string json = sweep::paramsToJson(p);
    CoreParams q;
    ASSERT_TRUE(sweep::paramsFromJson(json, q));
    EXPECT_TRUE(sweep::paramsEqual(p, q));
    EXPECT_EQ(q.faults.rbDropInvRate, 0.015625);
}

TEST(ParamsJson, MissingFieldFails)
{
    CoreParams p;
    std::string json = sweep::paramsToJson(p);
    size_t pos = json.find("\"robEntries\"");
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, 12, "\"robEntriez\"");
    CoreParams q = fuzzParamsForSeed(7);
    std::string before = sweep::paramsToJson(q);
    EXPECT_FALSE(sweep::paramsFromJson(json, q));
    EXPECT_EQ(sweep::paramsToJson(q), before); // untouched on failure
}

TEST(ReproBundle, JsonRoundTrip)
{
    ReproBundle b = sampleBundle();
    std::string json = bundleToJson(b);
    ReproBundle c;
    std::string err;
    ASSERT_TRUE(bundleFromJson(json, c, err)) << err;
    EXPECT_EQ(c.generatorRevision, b.generatorRevision);
    EXPECT_EQ(c.seed, b.seed);
    EXPECT_EQ(c.workload, b.workload);
    EXPECT_EQ(c.kind, b.kind);
    EXPECT_EQ(c.detail, b.detail);
    EXPECT_EQ(c.env, b.env);
    EXPECT_TRUE(sweep::paramsEqual(c.params, b.params));
    EXPECT_EQ(programToText(c.program), programToText(b.program));
}

TEST(ReproBundle, RejectsSchemaFingerprintMismatchLoudly)
{
    ReproBundle b = sampleBundle();
    std::string json = bundleToJson(b);

    // Corrupt one hex digit of the stats-schema stamp.
    size_t pos = json.find("\"stats_schema\": \"");
    ASSERT_NE(pos, std::string::npos);
    pos += 17;
    json[pos] = json[pos] == '0' ? '1' : '0';

    ReproBundle c;
    std::string err;
    EXPECT_FALSE(bundleFromJson(json, c, err));
    EXPECT_NE(err.find("fingerprint mismatch"), std::string::npos)
        << err;
    EXPECT_NE(err.find("refusing to replay"), std::string::npos)
        << err;
}

TEST(ReproBundle, WriteLoadReplay)
{
    std::string dir = ::testing::TempDir();
    std::string path = dir + "/sample.repro.json";
    ReproBundle b = sampleBundle();
    std::string err;
    ASSERT_TRUE(writeReproBundle(b, path, err)) << err;

    ReproBundle c;
    ASSERT_TRUE(loadReproBundle(path, c, err)) << err;

    // The sample bundle's run is clean (no fault rates armed in the
    // params), so replay must come back non-diverged; what matters is
    // the bundle drives the exact same differential machinery.
    DiffOutcome d = replayBundle(c);
    DiffOutcome ref = runDifferential(b.program, b.params);
    EXPECT_EQ(d.diverged, ref.diverged);
    EXPECT_EQ(divergenceSignature(d), divergenceSignature(ref));

    std::filesystem::remove(path);
}

TEST(ReproBundle, ScrubsOnlyStaleTmpFiles)
{
    std::string dir =
        ::testing::TempDir() + "/scrub_test";
    std::filesystem::create_directories(dir);
    auto touch = [&](const std::string &name) {
        std::ofstream f(dir + "/" + name);
        f << "x";
    };
    touch("a.repro.json.tmp.12345");
    touch("b.repro.json.tmp.99");
    touch("keep.repro.json");
    touch("unrelated.txt");

    EXPECT_EQ(scrubStaleReproTmp(dir), 2u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/keep.repro.json"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/unrelated.txt"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/a.repro.json.tmp.12345"));

    std::filesystem::remove_all(dir);
}
