/**
 * @file
 * Randomised program fuzzing: generate programs covering the whole
 * ISA (integer ALU, mult/div, all load/store widths, FP arithmetic,
 * forward branches, calls), then check that every technique commits
 * exactly the functional-execution result. This is the widest
 * correctness net in the repository: any timing-model bug that leaks
 * into architectural state trips it.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "emu/executor.hh"
#include "sim/configs.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/** Generate a random but surely-terminating program. */
Program
fuzzProgram(uint64_t seed)
{
    Rng rng(seed);
    Assembler a;

    a.dataLabel("scratch");
    for (int i = 0; i < 256; ++i)
        a.word(static_cast<uint32_t>(rng.next()));
    a.dataLabel("fpdata");
    for (int i = 0; i < 16; ++i)
        a.dword(static_cast<double>(rng.range(-50, 50)) / 4.0);

    const RegId ipool[8] = {T0, T1, T2, T3, T4, T5, T6, T7};
    auto ireg = [&]() { return ipool[rng.below(8)]; };
    auto freg = [&]() { return fpReg(rng.below(6)); };

    a.la(S0, "scratch");
    a.la(S2, "fpdata");
    a.li(S1, 40); // outer iterations
    // Seed the integer pool.
    for (int i = 0; i < 8; ++i)
        a.li(ipool[i], static_cast<int32_t>(rng.next()));
    // Seed the FP pool from integer values.
    for (int i = 0; i < 6; ++i)
        a.cvt_d_w(fpReg(i), ipool[i % 8]);

    int label_n = 0;
    a.label("loop");
    const int body = 60;
    for (int i = 0; i < body; ++i) {
        uint64_t k = rng.below(100);
        if (k < 30) {
            // Integer ALU, register form.
            Op ops[] = {Op::ADD, Op::SUB, Op::AND, Op::OR, Op::XOR,
                        Op::NOR, Op::SLT, Op::SLTU, Op::SLLV,
                        Op::SRLV, Op::SRAV};
            Op op = ops[rng.below(std::size(ops))];
            Instr inst;
            inst.op = op;
            inst.rd = ireg();
            inst.rs = ireg();
            inst.rt = ireg();
            // Emit through the typed API for coverage of it too.
            switch (op) {
              case Op::ADD: a.add(inst.rd, inst.rs, inst.rt); break;
              case Op::SUB: a.sub(inst.rd, inst.rs, inst.rt); break;
              case Op::AND: a.and_(inst.rd, inst.rs, inst.rt); break;
              case Op::OR: a.or_(inst.rd, inst.rs, inst.rt); break;
              case Op::XOR: a.xor_(inst.rd, inst.rs, inst.rt); break;
              case Op::NOR: a.nor(inst.rd, inst.rs, inst.rt); break;
              case Op::SLT: a.slt(inst.rd, inst.rs, inst.rt); break;
              case Op::SLTU: a.sltu(inst.rd, inst.rs, inst.rt); break;
              case Op::SLLV: a.sllv(inst.rd, inst.rs, inst.rt); break;
              case Op::SRLV: a.srlv(inst.rd, inst.rs, inst.rt); break;
              default: a.srav(inst.rd, inst.rs, inst.rt); break;
            }
        } else if (k < 42) {
            // Immediate forms.
            int32_t imm = static_cast<int32_t>(rng.range(-512, 512));
            switch (rng.below(5)) {
              case 0: a.addi(ireg(), ireg(), imm); break;
              case 1: a.andi(ireg(), ireg(), imm & 0xffff); break;
              case 2: a.ori(ireg(), ireg(), imm & 0xffff); break;
              case 3: a.slti(ireg(), ireg(), imm); break;
              default:
                a.sll(ireg(), ireg(),
                      static_cast<unsigned>(rng.below(31)));
                break;
            }
        } else if (k < 50) {
            // Multiply / divide through HI/LO.
            if (rng.chance(1, 2))
                a.mult(ireg(), ireg());
            else
                a.div(ireg(), ireg());
            a.mflo(ireg());
            a.mfhi(ireg());
        } else if (k < 66) {
            // Memory, every width; offsets stay inside scratch.
            int32_t off =
                static_cast<int32_t>(rng.below(256)) & ~7;
            switch (rng.below(8)) {
              case 0: a.lw(ireg(), S0, off); break;
              case 1: a.lb(ireg(), S0, off); break;
              case 2: a.lbu(ireg(), S0, off); break;
              case 3: a.lh(ireg(), S0, off); break;
              case 4: a.lhu(ireg(), S0, off); break;
              case 5: a.sw(ireg(), S0, off); break;
              case 6: a.sb(ireg(), S0, off); break;
              default: a.sh(ireg(), S0, off); break;
            }
        } else if (k < 78) {
            // Floating point.
            switch (rng.below(7)) {
              case 0: a.add_d(freg(), freg(), freg()); break;
              case 1: a.sub_d(freg(), freg(), freg()); break;
              case 2: a.mul_d(freg(), freg(), freg()); break;
              case 3: a.mov_d(freg(), freg()); break;
              case 4: a.neg_d(freg(), freg()); break;
              case 5:
                a.ld(freg(), S2,
                     static_cast<int32_t>(rng.below(16)) * 8);
                break;
              default:
                a.cvt_w_d(ireg(), freg());
                break;
            }
        } else if (k < 86) {
            // FP compare + conditional branch over one instruction.
            std::string skip = "fskip" + std::to_string(label_n++);
            a.c_lt_d(freg(), freg());
            if (rng.chance(1, 2))
                a.bc1t(skip);
            else
                a.bc1f(skip);
            a.addi(ireg(), ireg(), 1);
            a.label(skip);
        } else if (k < 96) {
            // Integer conditional forward branch over 1-2 insts.
            std::string skip = "skip" + std::to_string(label_n++);
            switch (rng.below(4)) {
              case 0: a.beq(ireg(), ireg(), skip); break;
              case 1: a.bne(ireg(), ireg(), skip); break;
              case 2: a.blez(ireg(), skip); break;
              default: a.bgtz(ireg(), skip); break;
            }
            a.xori(ireg(), ireg(),
                   static_cast<int32_t>(rng.below(256)));
            if (rng.chance(1, 2))
                a.addi(ireg(), ireg(), 3);
            a.label(skip);
        } else {
            // Call one of the leaf helpers.
            a.jal(rng.chance(1, 2) ? "leaf_a" : "leaf_b");
        }
    }
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();

    a.label("leaf_a");
    a.addi(T8, T8, 1);
    a.sw(T8, S0, 1020);
    a.jr(RA);
    a.label("leaf_b");
    a.lw(T9, S0, 1016);
    a.add(T9, T9, T8);
    a.sw(T9, S0, 1016);
    a.jr(RA);

    return a.finish();
}

uint64_t
checksum(EmuState &st, const Program &p)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r)
        mix(st.readReg(static_cast<RegId>(r)));
    for (const auto &[base, seg] : p.dataInit) {
        for (size_t off = 0; off < seg.size(); off += 4)
            mix(st.readMem(base + static_cast<Addr>(off), 4));
    }
    return h;
}

} // anonymous namespace

class FuzzSuite : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSuite, AllTechniquesMatchFunctionalExecution)
{
    Program p = fuzzProgram(GetParam());

    // Functional reference.
    EmuState ref_state;
    Emulator emu(p, ref_state);
    Emulator::loadProgram(p, ref_state);
    uint64_t ref_n = 0;
    while (!emu.halted() && ref_n < 2000000) {
        emu.step();
        ref_state.retire(ref_state.mark());
        ++ref_n;
    }
    ASSERT_TRUE(emu.halted());
    uint64_t ref_sum = checksum(ref_state, p);

    CoreParams cfgs[] = {
        baseConfig(),
        irConfig(),
        irConfig(IrValidation::Late),
        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                 BranchResolution::Speculative, 1),
        vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                 BranchResolution::NonSpeculative, 1),
        hybridConfig(),
    };
    for (const CoreParams &cfg : cfgs) {
        Core core(cfg, p);
        const CoreStats &st = core.run();
        ASSERT_TRUE(st.haltedCleanly)
            << "technique " << static_cast<int>(cfg.technique);
        EXPECT_EQ(st.committedInsts, ref_n)
            << "technique " << static_cast<int>(cfg.technique);
        EXPECT_EQ(checksum(core.emuState(), p), ref_sum)
            << "technique " << static_cast<int>(cfg.technique);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSuite,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));
