/**
 * @file
 * Cross-module integration tests.
 *
 * The strongest oracle in the repository: VP and IR are
 * performance-only techniques, so for any program and any
 * configuration the committed instruction stream and the final
 * architectural state must be bit-identical to the base machine's.
 * We check that for every workload under every technique knob.
 */

#include <gtest/gtest.h>

#include "emu/executor.hh"
#include "redundancy/redundancy.hh"
#include "sim/simulator.hh"

using namespace vpir;

namespace
{

/** Checksum registers + the initialised data segment. */
uint64_t
stateChecksum(EmuState &st, const Program &p)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r)
        mix(st.readReg(static_cast<RegId>(r)));
    for (const auto &[base, seg] : p.dataInit) {
        for (size_t off = 0; off < seg.size(); off += 4) {
            mix(st.readMem(base + static_cast<Addr>(off), 4));
        }
    }
    return h;
}

struct RunResult
{
    uint64_t checksum;
    uint64_t committed;
    bool halted;
};

RunResult
runConfig(const Program &p, const CoreParams &params)
{
    Simulator sim(params, p);
    const CoreStats &st = sim.run();
    return RunResult{stateChecksum(sim.core().emuState(), p),
                     st.committedInsts, st.haltedCleanly};
}

/** Reference: pure functional execution to halt. */
RunResult
runFunctional(const Program &p)
{
    EmuState st;
    Emulator emu(p, st);
    Emulator::loadProgram(p, st);
    uint64_t n = 0;
    while (!emu.halted() && n < 50000000) {
        emu.step();
        st.retire(st.mark());
        ++n;
    }
    // n already counts the final HALT step.
    return RunResult{stateChecksum(st, p), n, emu.halted()};
}

std::vector<CoreParams>
allConfigs()
{
    std::vector<CoreParams> v;
    v.push_back(baseConfig());
    v.push_back(irConfig(IrValidation::Early));
    v.push_back(irConfig(IrValidation::Late));
    for (auto scheme : {VpScheme::Magic, VpScheme::Lvp}) {
        for (auto re : {ReexecPolicy::Multiple, ReexecPolicy::Single}) {
            for (auto br : {BranchResolution::Speculative,
                            BranchResolution::NonSpeculative}) {
                for (unsigned lat : {0u, 1u}) {
                    v.push_back(vpConfig(scheme, re, br, lat));
                }
            }
        }
    }
    return v;
}

} // anonymous namespace

class EquivalenceSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EquivalenceSuite, AllConfigsCommitTheSameProgram)
{
    WorkloadScale sc;
    sc.factor = 0.01;
    Workload w = makeWorkload(GetParam(), sc);
    RunResult ref = runFunctional(w.program);
    ASSERT_TRUE(ref.halted);

    for (const CoreParams &cfg : allConfigs()) {
        RunResult r = runConfig(w.program, cfg);
        ASSERT_TRUE(r.halted);
        EXPECT_EQ(r.committed, ref.committed)
            << "technique " << static_cast<int>(cfg.technique);
        EXPECT_EQ(r.checksum, ref.checksum)
            << "technique " << static_cast<int>(cfg.technique);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EquivalenceSuite,
                         ::testing::ValuesIn(workloadNames()));

TEST(Integration, RunWorkloadHelper)
{
    WorkloadScale sc;
    sc.factor = 0.01;
    CoreStats st = runWorkload("perl", baseConfig(), sc);
    EXPECT_TRUE(st.haltedCleanly);
    EXPECT_GT(st.ipc(), 0.2);
}

TEST(Integration, StatsExportCoversKeyCounters)
{
    WorkloadScale sc;
    sc.factor = 0.01;
    CoreStats st = runWorkload("gcc", irConfig(), sc);
    StatSet out;
    st.exportTo(out);
    EXPECT_TRUE(out.has("cycles"));
    EXPECT_TRUE(out.has("ipc"));
    EXPECT_TRUE(out.has("reused_results"));
    EXPECT_TRUE(out.has("branch_squashes"));
    EXPECT_TRUE(out.has("resource_contention"));
    EXPECT_DOUBLE_EQ(out.get("cycles"),
                     static_cast<double>(st.cycles));
}

TEST(Integration, TechniquesChangeTimingNotSemantics)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    Workload w = makeWorkload("m88ksim", sc);
    RunResult base = runConfig(w.program, baseConfig());
    RunResult ir = runConfig(w.program, irConfig());
    Simulator sim_ir(irConfig(), w.program);
    const CoreStats &ist = sim_ir.run();
    EXPECT_EQ(base.checksum, ir.checksum);
    EXPECT_GT(ist.reusedResults, 0u);
}

TEST(Integration, RedundancyAnalyzerRunsOnWorkloads)
{
    WorkloadScale sc;
    sc.factor = 0.02;
    for (const auto &name : workloadNames()) {
        Workload w = makeWorkload(name, sc);
        RedundancyParams params;
        params.maxInsts = 50000;
        RedundancyStats st = analyzeRedundancy(w.program, params);
        EXPECT_GT(st.resultProducing, 10000u) << name;
        EXPECT_EQ(st.unique + st.repeated + st.derivable +
                      st.unaccounted,
                  st.resultProducing)
            << name;
    }
}
