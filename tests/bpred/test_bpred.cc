/** @file Unit tests for the branch prediction unit. */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"

using namespace vpir;

namespace
{

Instr
condBr(Addr target)
{
    Instr i;
    i.op = Op::BNE;
    i.rs = 1;
    i.rt = 2;
    i.target = target;
    return i;
}

Instr
callInst(Addr target)
{
    Instr i;
    i.op = Op::JAL;
    i.rd = REG_RA;
    i.target = target;
    return i;
}

Instr
returnInst()
{
    Instr i;
    i.op = Op::JR;
    i.rs = REG_RA;
    return i;
}

} // anonymous namespace

namespace
{

/**
 * Drive one predict/update round the way the core does: speculative
 * history is repaired (checkpoint restore + actual outcome) whenever
 * the prediction was wrong.
 */
bool
predictAndTrain(BranchPredUnit &bp, Addr pc, const Instr &br,
                bool outcome, Addr target)
{
    BpredCheckpoint cp = bp.checkpoint();
    BpredLookup l = bp.predict(pc, br);
    if (l.predTaken != outcome) {
        bp.restore(cp);
        bp.forceHistoryBit(outcome);
    }
    bp.update(pc, br, outcome, target, l.ghrUsed);
    return l.predTaken == outcome;
}

} // anonymous namespace

TEST(Gshare, LearnsAlwaysTaken)
{
    BranchPredUnit bp;
    Instr br = condBr(0x2000);
    // History shifts toward all-taken as training proceeds; give it
    // enough rounds to saturate the 10-bit GHR and train that index.
    for (int i = 0; i < 20; ++i)
        predictAndTrain(bp, 0x1000, br, true, 0x2000);
    BpredLookup l = bp.predict(0x1000, br);
    EXPECT_TRUE(l.predTaken);
    EXPECT_EQ(l.predTarget, 0x2000u);
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    BranchPredUnit bp;
    Instr br = condBr(0x2000);
    for (int i = 0; i < 4; ++i) {
        BpredLookup l = bp.predict(0x1000, br);
        bp.update(0x1000, br, false, 0x1004, l.ghrUsed);
    }
    EXPECT_FALSE(bp.predict(0x1000, br).predTaken);
}

TEST(Gshare, LearnsAlternationThroughHistory)
{
    BranchPredUnit bp;
    Instr br = condBr(0x2000);
    bool outcome = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        bool ok = predictAndTrain(bp, 0x1000, br, outcome,
                                  outcome ? 0x2000 : 0x1004);
        if (i >= 200 && ok)
            ++correct;
    }
    // A T/NT alternation is trivially captured by global history.
    EXPECT_GT(correct, 190);
}

TEST(Gshare, TableIndexUsesHistory)
{
    BranchPredUnit bp;
    EXPECT_NE(bp.tableIndex(0x1000, 0), bp.tableIndex(0x1000, 0x3ff));
}

TEST(Bpred, DirectJumpPredictsTarget)
{
    BranchPredUnit bp;
    Instr j;
    j.op = Op::J;
    j.target = 0x4444;
    BpredLookup l = bp.predict(0x1000, j);
    EXPECT_TRUE(l.predTaken);
    EXPECT_EQ(l.predTarget, 0x4444u);
}

TEST(Bpred, BtbLearnsIndirectTargets)
{
    BranchPredUnit bp;
    Instr jr;
    jr.op = Op::JR;
    jr.rs = 5; // not a return
    BpredLookup l = bp.predict(0x1000, jr);
    EXPECT_EQ(l.predTarget, 0x1004u); // cold BTB falls through
    bp.update(0x1000, jr, true, 0x8000, l.ghrUsed);
    l = bp.predict(0x1000, jr);
    EXPECT_EQ(l.predTarget, 0x8000u);
}

TEST(Bpred, RasPredictsReturns)
{
    BranchPredUnit bp;
    bp.predict(0x1000, callInst(0x5000)); // pushes 0x1004
    bp.predict(0x2000, callInst(0x6000)); // pushes 0x2004
    BpredLookup l = bp.predict(0x6100, returnInst());
    EXPECT_TRUE(l.fromRas);
    EXPECT_EQ(l.predTarget, 0x2004u);
    l = bp.predict(0x5100, returnInst());
    EXPECT_EQ(l.predTarget, 0x1004u);
}

TEST(Bpred, CheckpointRestoresHistoryAndRas)
{
    BranchPredUnit bp;
    bp.predict(0x1000, callInst(0x5000));
    BpredCheckpoint cp = bp.checkpoint();

    // Pollute: another call and some history bits.
    bp.predict(0x2000, callInst(0x6000));
    Instr br = condBr(0x3000);
    bp.predict(0x2100, br);
    bp.predict(0x2200, br);

    bp.restore(cp);
    BpredLookup l = bp.predict(0x5100, returnInst());
    EXPECT_EQ(l.predTarget, 0x1004u); // original RAS top
}

TEST(Bpred, ForceHistoryMatchesPredictShift)
{
    BranchPredUnit a, b;
    Instr br = condBr(0x2000);
    // a: predict (shifts predicted bit); outcome agrees.
    BpredLookup la = a.predict(0x1000, br);
    // b: restore-free equivalent via forceHistoryBit.
    b.forceHistoryBit(la.predTaken);
    EXPECT_EQ(a.predict(0x1400, br).ghrUsed,
              b.predict(0x1400, br).ghrUsed);
}

TEST(Bpred, RedoCallAndReturn)
{
    BranchPredUnit bp;
    BpredCheckpoint cp = bp.checkpoint();
    bp.predict(0x1000, callInst(0x5000));
    bp.restore(cp);
    bp.redoCall(0x1004);
    EXPECT_EQ(bp.predict(0x5100, returnInst()).predTarget, 0x1004u);
}

TEST(Bpred, DeepCallChainsWrapRas)
{
    BranchPredUnit bp;
    // Overflow the 16-entry RAS; the newest 16 returns still match.
    for (int i = 0; i < 20; ++i)
        bp.predict(0x1000 + 16 * i, callInst(0x9000));
    for (int i = 19; i >= 4; --i) {
        BpredLookup l = bp.predict(0x9100, returnInst());
        EXPECT_EQ(l.predTarget, 0x1000u + 16 * i + 4);
    }
}
