# Empty compiler generated dependencies file for vpir_stats.
# This may be replaced when dependencies are built.
