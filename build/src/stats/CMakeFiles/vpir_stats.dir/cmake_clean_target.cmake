file(REMOVE_RECURSE
  "libvpir_stats.a"
)
