file(REMOVE_RECURSE
  "CMakeFiles/vpir_stats.dir/stats.cc.o"
  "CMakeFiles/vpir_stats.dir/stats.cc.o.d"
  "CMakeFiles/vpir_stats.dir/table.cc.o"
  "CMakeFiles/vpir_stats.dir/table.cc.o.d"
  "libvpir_stats.a"
  "libvpir_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
