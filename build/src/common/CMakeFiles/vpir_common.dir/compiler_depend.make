# Empty compiler generated dependencies file for vpir_common.
# This may be replaced when dependencies are built.
