file(REMOVE_RECURSE
  "CMakeFiles/vpir_common.dir/logging.cc.o"
  "CMakeFiles/vpir_common.dir/logging.cc.o.d"
  "libvpir_common.a"
  "libvpir_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
