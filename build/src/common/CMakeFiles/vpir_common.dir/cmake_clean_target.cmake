file(REMOVE_RECURSE
  "libvpir_common.a"
)
