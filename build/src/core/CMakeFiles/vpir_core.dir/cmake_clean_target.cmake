file(REMOVE_RECURSE
  "libvpir_core.a"
)
