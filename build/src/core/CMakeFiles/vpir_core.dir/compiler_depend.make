# Empty compiler generated dependencies file for vpir_core.
# This may be replaced when dependencies are built.
