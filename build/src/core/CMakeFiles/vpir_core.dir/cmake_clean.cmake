file(REMOVE_RECURSE
  "CMakeFiles/vpir_core.dir/core.cc.o"
  "CMakeFiles/vpir_core.dir/core.cc.o.d"
  "CMakeFiles/vpir_core.dir/core_stats.cc.o"
  "CMakeFiles/vpir_core.dir/core_stats.cc.o.d"
  "libvpir_core.a"
  "libvpir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
