# Empty compiler generated dependencies file for vpir_mem.
# This may be replaced when dependencies are built.
