file(REMOVE_RECURSE
  "CMakeFiles/vpir_mem.dir/cache.cc.o"
  "CMakeFiles/vpir_mem.dir/cache.cc.o.d"
  "libvpir_mem.a"
  "libvpir_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
