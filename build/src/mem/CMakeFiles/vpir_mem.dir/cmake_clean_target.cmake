file(REMOVE_RECURSE
  "libvpir_mem.a"
)
