file(REMOVE_RECURSE
  "libvpir_emu.a"
)
