# Empty dependencies file for vpir_emu.
# This may be replaced when dependencies are built.
