file(REMOVE_RECURSE
  "CMakeFiles/vpir_emu.dir/executor.cc.o"
  "CMakeFiles/vpir_emu.dir/executor.cc.o.d"
  "CMakeFiles/vpir_emu.dir/state.cc.o"
  "CMakeFiles/vpir_emu.dir/state.cc.o.d"
  "libvpir_emu.a"
  "libvpir_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
