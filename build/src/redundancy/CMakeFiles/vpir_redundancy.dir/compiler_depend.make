# Empty compiler generated dependencies file for vpir_redundancy.
# This may be replaced when dependencies are built.
