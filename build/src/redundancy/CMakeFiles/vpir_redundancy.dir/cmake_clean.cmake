file(REMOVE_RECURSE
  "CMakeFiles/vpir_redundancy.dir/redundancy.cc.o"
  "CMakeFiles/vpir_redundancy.dir/redundancy.cc.o.d"
  "libvpir_redundancy.a"
  "libvpir_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
