file(REMOVE_RECURSE
  "libvpir_redundancy.a"
)
