# Empty dependencies file for vpir_workload.
# This may be replaced when dependencies are built.
