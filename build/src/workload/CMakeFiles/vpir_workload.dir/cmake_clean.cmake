file(REMOVE_RECURSE
  "CMakeFiles/vpir_workload.dir/wl_compress.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_compress.cc.o.d"
  "CMakeFiles/vpir_workload.dir/wl_gcc.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_gcc.cc.o.d"
  "CMakeFiles/vpir_workload.dir/wl_go.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_go.cc.o.d"
  "CMakeFiles/vpir_workload.dir/wl_ijpeg.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_ijpeg.cc.o.d"
  "CMakeFiles/vpir_workload.dir/wl_m88ksim.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_m88ksim.cc.o.d"
  "CMakeFiles/vpir_workload.dir/wl_perl.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_perl.cc.o.d"
  "CMakeFiles/vpir_workload.dir/wl_vortex.cc.o"
  "CMakeFiles/vpir_workload.dir/wl_vortex.cc.o.d"
  "CMakeFiles/vpir_workload.dir/workload.cc.o"
  "CMakeFiles/vpir_workload.dir/workload.cc.o.d"
  "libvpir_workload.a"
  "libvpir_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
