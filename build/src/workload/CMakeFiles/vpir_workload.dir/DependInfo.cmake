
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/wl_compress.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_compress.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_compress.cc.o.d"
  "/root/repo/src/workload/wl_gcc.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_gcc.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_gcc.cc.o.d"
  "/root/repo/src/workload/wl_go.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_go.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_go.cc.o.d"
  "/root/repo/src/workload/wl_ijpeg.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_ijpeg.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_ijpeg.cc.o.d"
  "/root/repo/src/workload/wl_m88ksim.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_m88ksim.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_m88ksim.cc.o.d"
  "/root/repo/src/workload/wl_perl.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_perl.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_perl.cc.o.d"
  "/root/repo/src/workload/wl_vortex.cc" "src/workload/CMakeFiles/vpir_workload.dir/wl_vortex.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/wl_vortex.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/vpir_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/vpir_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/vpir_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpir_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vpir_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
