file(REMOVE_RECURSE
  "libvpir_workload.a"
)
