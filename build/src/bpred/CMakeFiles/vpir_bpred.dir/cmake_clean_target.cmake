file(REMOVE_RECURSE
  "libvpir_bpred.a"
)
