# Empty dependencies file for vpir_bpred.
# This may be replaced when dependencies are built.
