file(REMOVE_RECURSE
  "CMakeFiles/vpir_bpred.dir/bpred.cc.o"
  "CMakeFiles/vpir_bpred.dir/bpred.cc.o.d"
  "libvpir_bpred.a"
  "libvpir_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
