file(REMOVE_RECURSE
  "CMakeFiles/vpir_asm.dir/assembler.cc.o"
  "CMakeFiles/vpir_asm.dir/assembler.cc.o.d"
  "libvpir_asm.a"
  "libvpir_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
