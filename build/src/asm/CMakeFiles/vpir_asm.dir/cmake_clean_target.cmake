file(REMOVE_RECURSE
  "libvpir_asm.a"
)
