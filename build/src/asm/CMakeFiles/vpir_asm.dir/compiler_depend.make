# Empty compiler generated dependencies file for vpir_asm.
# This may be replaced when dependencies are built.
