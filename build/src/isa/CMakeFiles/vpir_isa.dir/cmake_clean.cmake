file(REMOVE_RECURSE
  "CMakeFiles/vpir_isa.dir/decode.cc.o"
  "CMakeFiles/vpir_isa.dir/decode.cc.o.d"
  "CMakeFiles/vpir_isa.dir/disasm.cc.o"
  "CMakeFiles/vpir_isa.dir/disasm.cc.o.d"
  "libvpir_isa.a"
  "libvpir_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
