file(REMOVE_RECURSE
  "libvpir_isa.a"
)
