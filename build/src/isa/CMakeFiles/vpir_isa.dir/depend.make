# Empty dependencies file for vpir_isa.
# This may be replaced when dependencies are built.
