# Empty dependencies file for vpir_reuse.
# This may be replaced when dependencies are built.
