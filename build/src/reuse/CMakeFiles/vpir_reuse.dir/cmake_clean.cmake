file(REMOVE_RECURSE
  "CMakeFiles/vpir_reuse.dir/reuse_buffer.cc.o"
  "CMakeFiles/vpir_reuse.dir/reuse_buffer.cc.o.d"
  "libvpir_reuse.a"
  "libvpir_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
