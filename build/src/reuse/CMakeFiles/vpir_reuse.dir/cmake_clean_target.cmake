file(REMOVE_RECURSE
  "libvpir_reuse.a"
)
