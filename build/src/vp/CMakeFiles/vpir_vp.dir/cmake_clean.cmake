file(REMOVE_RECURSE
  "CMakeFiles/vpir_vp.dir/vpt.cc.o"
  "CMakeFiles/vpir_vp.dir/vpt.cc.o.d"
  "libvpir_vp.a"
  "libvpir_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
