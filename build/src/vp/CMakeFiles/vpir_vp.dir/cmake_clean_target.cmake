file(REMOVE_RECURSE
  "libvpir_vp.a"
)
