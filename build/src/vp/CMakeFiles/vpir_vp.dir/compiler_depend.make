# Empty compiler generated dependencies file for vpir_vp.
# This may be replaced when dependencies are built.
