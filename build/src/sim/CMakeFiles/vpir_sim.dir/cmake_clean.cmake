file(REMOVE_RECURSE
  "CMakeFiles/vpir_sim.dir/configs.cc.o"
  "CMakeFiles/vpir_sim.dir/configs.cc.o.d"
  "CMakeFiles/vpir_sim.dir/simulator.cc.o"
  "CMakeFiles/vpir_sim.dir/simulator.cc.o.d"
  "libvpir_sim.a"
  "libvpir_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpir_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
