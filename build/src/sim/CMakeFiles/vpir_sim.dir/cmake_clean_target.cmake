file(REMOVE_RECURSE
  "libvpir_sim.a"
)
