# Empty dependencies file for vpir_sim.
# This may be replaced when dependencies are built.
