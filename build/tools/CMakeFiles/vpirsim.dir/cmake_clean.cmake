file(REMOVE_RECURSE
  "CMakeFiles/vpirsim.dir/vpirsim.cc.o"
  "CMakeFiles/vpirsim.dir/vpirsim.cc.o.d"
  "vpirsim"
  "vpirsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpirsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
