# Empty compiler generated dependencies file for vpirsim.
# This may be replaced when dependencies are built.
