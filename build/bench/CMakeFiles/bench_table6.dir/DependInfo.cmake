
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6.cc" "bench/CMakeFiles/bench_table6.dir/bench_table6.cc.o" "gcc" "bench/CMakeFiles/bench_table6.dir/bench_table6.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vpir_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/redundancy/CMakeFiles/vpir_redundancy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vpir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vpir_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vpir_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/vpir_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/vp/CMakeFiles/vpir_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/reuse/CMakeFiles/vpir_reuse.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vpir_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/vpir_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/vpir_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vpir_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vpir_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
