file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_core_base.cc.o"
  "CMakeFiles/test_core.dir/core/test_core_base.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_core_hybrid.cc.o"
  "CMakeFiles/test_core.dir/core/test_core_hybrid.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_core_ir.cc.o"
  "CMakeFiles/test_core.dir/core/test_core_ir.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_core_squash.cc.o"
  "CMakeFiles/test_core.dir/core/test_core_squash.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_core_vp.cc.o"
  "CMakeFiles/test_core.dir/core/test_core_vp.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
