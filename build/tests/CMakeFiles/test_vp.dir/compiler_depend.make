# Empty compiler generated dependencies file for test_vp.
# This may be replaced when dependencies are built.
