file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_bitutils.cc.o"
  "CMakeFiles/test_common.dir/common/test_bitutils.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_lru.cc.o"
  "CMakeFiles/test_common.dir/common/test_lru.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cc.o"
  "CMakeFiles/test_common.dir/common/test_rng.cc.o.d"
  "CMakeFiles/test_common.dir/common/test_sat_counter.cc.o"
  "CMakeFiles/test_common.dir/common/test_sat_counter.cc.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
