# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_emu[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_vp[1]_include.cmake")
include("/root/repo/build/tests/test_reuse[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_redundancy[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
