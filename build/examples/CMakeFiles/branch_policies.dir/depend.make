# Empty dependencies file for branch_policies.
# This may be replaced when dependencies are built.
