file(REMOVE_RECURSE
  "CMakeFiles/branch_policies.dir/branch_policies.cpp.o"
  "CMakeFiles/branch_policies.dir/branch_policies.cpp.o.d"
  "branch_policies"
  "branch_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
