/**
 * @file
 * Design-space exploration beyond the paper's fixed 16K-VPT / 4K-RB
 * budget: sweep the structure capacities and watch capture rates and
 * speedup saturate. (The paper sized the two structures to equal
 * hardware cost — an RB entry is ~4x a VPT entry; this sweep keeps
 * that 4:1 entry ratio.)
 *
 * Usage: capacity_explorer [workload] (default: m88ksim)
 */

#include <cstdio>
#include <string>

#include "sim/simulator.hh"

using namespace vpir;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "m88ksim";
    const uint64_t limit = 300000;

    std::printf("capacity exploration on '%s' (equal-cost VPT/RB "
                "pairs)\n\n",
                name.c_str());
    CoreStats base =
        runWorkload(name, withLimits(baseConfig(), limit));

    std::printf("%10s %10s | %12s %10s | %12s %10s\n", "VPT", "RB",
                "VP pred %", "VP spdup", "IR reuse %", "IR spdup");
    for (unsigned rb_entries : {256u, 1024u, 4096u, 16384u}) {
        unsigned vpt_entries = rb_entries * 4;

        CoreParams vp = vpConfig(VpScheme::Magic,
                                 ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0);
        vp.vpt.entries = vpt_entries;
        CoreStats vps = runWorkload(name, withLimits(vp, limit));

        CoreParams ir = irConfig();
        ir.rb.entries = rb_entries;
        CoreStats irs = runWorkload(name, withLimits(ir, limit));

        std::printf("%10u %10u | %11.1f%% %9.3fx | %11.1f%% %9.3fx\n",
                    vpt_entries, rb_entries,
                    pct(static_cast<double>(vps.vpResultCorrect),
                        static_cast<double>(vps.committedInsts)),
                    vps.ipc() / base.ipc(),
                    pct(static_cast<double>(irs.reusedResults),
                        static_cast<double>(irs.committedInsts)),
                    irs.ipc() / base.ipc());
    }

    std::printf("\nnote: capture is bounded by the 4 instances per "
                "static instruction\n(set associativity), so rates "
                "saturate well before capacity does —\none of the "
                "paper's implicit design points.\n");
    return 0;
}
