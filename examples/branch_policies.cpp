/**
 * @file
 * The paper's central sensitivity result, interactively: how VP
 * performance depends on the way branches with value-speculative
 * operands are resolved (SB vs NSB), for an accurate predictor
 * (VP_Magic) and an inaccurate one (VP_LVP), at 0- and 1-cycle
 * verification latency.
 *
 * Usage: branch_policies [workload] (default: go)
 */

#include <cstdio>
#include <string>

#include "sim/simulator.hh"

using namespace vpir;

namespace
{

void
sweep(const std::string &name, VpScheme scheme, const CoreStats &base,
      uint64_t limit)
{
    std::printf("%s:\n", scheme == VpScheme::Magic
                             ? "VP_Magic (accurate)"
                             : "VP_LVP (inaccurate)");
    for (unsigned lat : {0u, 1u}) {
        for (auto br : {BranchResolution::Speculative,
                        BranchResolution::NonSpeculative}) {
            CoreParams p = vpConfig(scheme, ReexecPolicy::Multiple,
                                    br, lat);
            CoreStats st =
                runWorkload(name, withLimits(p, limit));
            bool sb = br == BranchResolution::Speculative;
            std::printf("  %-4s verify=%u: speedup %.3fx, squashes "
                        "%6llu (%llu spurious), value mispredicts "
                        "%llu\n",
                        sb ? "SB" : "NSB", lat,
                        st.ipc() / base.ipc(),
                        static_cast<unsigned long long>(
                            st.branchSquashes),
                        static_cast<unsigned long long>(
                            st.spuriousSquashes),
                        static_cast<unsigned long long>(
                            st.valueMispredictEvents));
        }
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "go";
    const uint64_t limit = 300000;

    std::printf("branch resolution policy exploration on '%s'\n\n",
                name.c_str());
    CoreStats base =
        runWorkload(name, withLimits(baseConfig(), limit));
    std::printf("base machine: IPC %.3f, %llu branch squashes\n\n",
                base.ipc(),
                static_cast<unsigned long long>(base.branchSquashes));

    sweep(name, VpScheme::Magic, base, limit);
    std::printf("\n");
    sweep(name, VpScheme::Lvp, base, limit);

    std::printf(
        "\nwhat to look for (paper section 5):\n"
        "  - with the accurate predictor, SB wins: spurious squashes "
        "are cheap\n    next to the benefit of resolving branches "
        "early;\n"
        "  - with the inaccurate predictor, SB degrades below the "
        "base machine\n    and NSB becomes the better policy;\n"
        "  - 1-cycle verification latency hurts NSB far more than "
        "SB.\n");
    return 0;
}
