/**
 * @file
 * Quickstart: assemble a tiny program, run it on the base machine,
 * then with Value Prediction and Instruction Reuse, and print the
 * headline statistics. Start here to learn the public API.
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "sim/simulator.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

/**
 * A small redundant kernel: every iteration recomputes the same
 * dependent chain (multiply included) from a loop-invariant load —
 * ideal prey for both VP and IR, which collapse the chain that
 * serialises the base machine.
 */
Program
buildDemo()
{
    Assembler a;

    a.dataLabel("c");
    a.word(12345);
    a.dataLabel("sink");
    a.space(8);

    a.la(S0, "c");
    a.li(S1, 40000); // iterations

    a.label("loop");
    a.lw(T2, S0, 0);    // invariant load
    a.sll(T3, T2, 1);   // dependent chain on the loaded value
    a.xor_(T4, T3, T2);
    a.addi(T5, T4, 7);
    a.mult(T5, T3);     // 3-cycle multiply inside the chain
    a.mflo(T6);
    a.add(T6, T6, T5);
    a.la(T7, "sink");
    a.sw(T6, T7, 0);
    a.addi(S1, S1, -1);
    a.bgtz(S1, "loop");
    a.halt();

    return a.finish();
}

void
report(const char *label, const CoreStats &st)
{
    std::printf("%-22s cycles=%-10llu insts=%-10llu IPC=%.3f\n", label,
                static_cast<unsigned long long>(st.cycles),
                static_cast<unsigned long long>(st.committedInsts),
                st.ipc());
}

} // anonymous namespace

int
main()
{
    const uint64_t limit = 300000;

    std::printf("vpir quickstart: one kernel, three machines\n\n");

    Program prog = buildDemo();

    Simulator base(withLimits(baseConfig(), limit), prog);
    report("base superscalar", base.run());

    Simulator vp(withLimits(vpConfig(VpScheme::Magic,
                                     ReexecPolicy::Multiple,
                                     BranchResolution::Speculative, 0),
                            limit),
                 prog);
    const CoreStats &vps = vp.run();
    report("VP_Magic (ME-SB)", vps);
    std::printf("  value predictions: %llu correct, %llu wrong\n",
                static_cast<unsigned long long>(vps.vpResultCorrect),
                static_cast<unsigned long long>(vps.vpResultWrong));

    Simulator ir(withLimits(irConfig(), limit), prog);
    const CoreStats &irs = ir.run();
    report("IR (S_n+d)", irs);
    std::printf("  reused results: %llu of %llu committed (%.1f%%)\n",
                static_cast<unsigned long long>(irs.reusedResults),
                static_cast<unsigned long long>(irs.committedInsts),
                pct(static_cast<double>(irs.reusedResults),
                    static_cast<double>(irs.committedInsts)));

    std::printf("\nspeedup over base: VP %.3fx, IR %.3fx\n",
                vps.ipc() / base.stats().ipc(),
                irs.ipc() / base.stats().ipc());
    return 0;
}
