/**
 * @file
 * Authoring a custom workload with the embedded assembler and
 * studying it end to end: run it on the three machines (base, VP,
 * IR), then put it through the §4.3 redundancy limit study.
 *
 * The kernel is a small string-interning loop — hash a name, probe a
 * table, intern on miss — a classic mix of reusable hashing and
 * unreusable table state.
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "redundancy/redundancy.hh"
#include "sim/simulator.hh"
#include "workload/wregs.hh"

using namespace vpir;
using namespace vpir::wreg;

namespace
{

Program
buildInterner()
{
    Assembler a;

    // Eight names, 8 bytes each, cycled repeatedly.
    const char *names[8] = {"alpha", "beta", "gamma", "delta",
                            "epsilon", "zeta", "eta", "theta"};
    a.dataLabel("names");
    for (const char *n : names) {
        std::vector<uint8_t> slot(8, 0);
        for (unsigned i = 0; n[i] && i < 8; ++i)
            slot[i] = static_cast<uint8_t>(n[i]);
        a.bytes(slot);
    }
    a.dataLabel("table"); // 64 open-addressed slots
    a.space(64 * 4);
    a.dataLabel("interned");
    a.space(4);

    a.la(S0, "names");
    a.la(S1, "table");
    a.li(S2, 12000); // iterations
    a.li(S3, 0);     // name index

    a.label("loop");
    // name pointer = names + (idx & 7) * 8
    a.andi(T0, S3, 7);
    a.sll(T0, T0, 3);
    a.add(T0, S0, T0);
    // hash the name (reusable chain: same 8 names repeat)
    a.li(T1, 0);
    a.move(T2, T0);
    a.label("hash");
    a.lbu(T3, T2, 0);
    a.beq(T3, ZERO, "hashed");
    a.sll(T4, T1, 5);
    a.sub(T4, T4, T1);
    a.add(T1, T4, T3);
    a.addi(T2, T2, 1);
    a.j("hash");
    a.label("hashed");
    // probe table[hash & 63]
    a.andi(T5, T1, 63);
    a.sll(T5, T5, 2);
    a.add(T5, S1, T5);
    a.lw(T6, T5, 0);
    a.bne(T6, ZERO, "hit");
    a.sw(T1, T5, 0); // intern
    a.la(T7, "interned");
    a.lw(T8, T7, 0);
    a.addi(T8, T8, 1);
    a.sw(T8, T7, 0);
    a.label("hit");
    a.addi(S3, S3, 1);
    a.addi(S2, S2, -1);
    a.bgtz(S2, "loop");
    a.halt();

    return a.finish();
}

void
report(const char *label, const CoreStats &st, const CoreStats &base)
{
    std::printf("  %-16s IPC %.3f  speedup %.3fx", label, st.ipc(),
                st.ipc() / base.ipc());
    if (st.reusedResults)
        std::printf("  (%.1f%% reused)",
                    pct(static_cast<double>(st.reusedResults),
                        static_cast<double>(st.committedInsts)));
    if (st.vpResultCorrect)
        std::printf("  (%.1f%% predicted right, %.1f%% wrong)",
                    pct(static_cast<double>(st.vpResultCorrect),
                        static_cast<double>(st.committedInsts)),
                    pct(static_cast<double>(st.vpResultWrong),
                        static_cast<double>(st.committedInsts)));
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    std::printf("custom workload example: string interner\n\n");
    Program prog = buildInterner();
    std::printf("assembled %zu instructions\n\n", prog.text.size());

    Simulator base(baseConfig(), prog);
    const CoreStats &b = base.run();
    report("base", b, b);

    Simulator vp(vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                          BranchResolution::Speculative, 0),
                 prog);
    report("VP_Magic ME-SB", vp.run(), b);

    Simulator ir(irConfig(), prog);
    report("IR S_n+d", ir.run(), b);

    std::printf("\nredundancy limit study (paper section 4.3):\n");
    RedundancyStats rs = analyzeRedundancy(prog);
    double rp = static_cast<double>(rs.resultProducing);
    std::printf("  unique %.1f%%  repeated %.1f%%  derivable %.1f%%\n",
                pct(static_cast<double>(rs.unique), rp),
                pct(static_cast<double>(rs.repeated), rp),
                pct(static_cast<double>(rs.derivable), rp));
    std::printf("  reusable fraction of redundancy: %.1f%%\n",
                100.0 * rs.reusableFraction());
    return 0;
}
