/**
 * @file
 * Value Prediction Table (paper §4.1.1).
 *
 * The table is 16K entries, 4-way set associative with LRU, so up to
 * four value instances can be stored per static instruction. Each
 * entry carries a 2-bit confidence counter. Two selection schemes are
 * provided:
 *
 *  - VP_Magic: the paper's comparable-to-IR scheme. Among the stored
 *    instances, if the *correct* result is present it is selected
 *    (oracle selection, standing in for the accurate hybrid selectors
 *    of Wang & Franklin); otherwise the most confident instance is
 *    selected. Only confident instances produce predictions.
 *
 *  - VP_LVP: classic last value predictor; one instance per
 *    instruction, value replaced on every misprediction.
 *
 * The same structure is instantiated separately for result values and
 * for effective addresses of memory operations.
 */

#ifndef VPIR_VP_VPT_HH
#define VPIR_VP_VPT_HH

#include <cstdint>
#include <vector>

#include "common/ckpt_io.hh"
#include "common/lru.hh"
#include "common/sat_counter.hh"
#include "isa/instr.hh"

namespace vpir
{

/** Value selection policy. */
enum class VpScheme : uint8_t
{
    Magic, //!< n unique values + oracle selection (VP_Magic)
    Lvp,   //!< last value predictor (VP_LVP)
};

/** VPT configuration. */
struct VptParams
{
    unsigned entries = 16 * 1024;
    unsigned ways = 4;
    VpScheme scheme = VpScheme::Magic;
    unsigned confidenceBits = 2;
    unsigned confidenceThreshold = 2;
};

/** A prediction returned by the table. */
struct VptPrediction
{
    bool valid = false;    //!< a confident prediction was made
    uint64_t value = 0;
};

/** The value prediction table. */
class Vpt
{
  public:
    explicit Vpt(const VptParams &params = VptParams());

    /**
     * Look up a prediction for the instruction at @p pc.
     *
     * @param oracle The correct value, used only by the Magic scheme's
     *               oracle instance selection (never leaks into LVP).
     */
    VptPrediction predict(Addr pc, uint64_t oracle);

    /**
     * Train the table with the actual value, adjusting confidence of
     * the predicted instance and inserting/replacing instances.
     */
    void update(Addr pc, uint64_t actual, const VptPrediction &made);

    /** Clear all entries. */
    void reset();

    /** Number of valid entries holding @p pc (test hook). */
    unsigned instancesFor(Addr pc) const;

    /** Structural sanity sweep for VPIR_AUDIT: every valid entry
     *  sits in the set its PC indexes to and its confidence is
     *  within the counter's range. @return "" when clean. */
    std::string audit() const;

    /** Checkpoint all entries and LRU state. */
    void serialize(CkptWriter &w) const;
    /** Restore serialize()d state; false on geometry mismatch. */
    bool deserialize(CkptReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        uint64_t value = 0;
        SatCounter conf;

        Entry() : conf(2, 0) {}
    };

    uint32_t setIndex(Addr pc) const;
    Entry *findValue(Addr pc, uint64_t value);
    void insert(Addr pc, uint64_t value);

    VptParams params;
    uint32_t numSets;
    std::vector<std::vector<Entry>> sets;
    std::vector<LruSet> lru;
};

} // namespace vpir

#endif // VPIR_VP_VPT_HH
