#include "vp/vpt.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace vpir
{

Vpt::Vpt(const VptParams &p) : params(p)
{
    VPIR_ASSERT(p.ways >= 1 && p.entries % p.ways == 0,
                "entries must divide into ways");
    numSets = p.entries / p.ways;
    VPIR_ASSERT(isPowerOf2(numSets), "set count not a power of two");
    sets.assign(numSets, std::vector<Entry>(p.ways));
    lru.assign(numSets, LruSet(p.ways));
}

uint32_t
Vpt::setIndex(Addr pc) const
{
    return foldPC(pc, floorLog2(numSets));
}

Vpt::Entry *
Vpt::findValue(Addr pc, uint64_t value)
{
    auto &set = sets[setIndex(pc)];
    for (Entry &e : set) {
        if (e.valid && e.pc == pc && e.value == value)
            return &e;
    }
    return nullptr;
}

void
Vpt::insert(Addr pc, uint64_t value)
{
    uint32_t si = setIndex(pc);
    auto &set = sets[si];
    // Prefer an invalid way; otherwise evict LRU.
    unsigned victim = set.size();
    for (unsigned w = 0; w < set.size(); ++w) {
        if (!set[w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == set.size())
        victim = lru[si].victim();

    Entry &e = set[victim];
    e.valid = true;
    e.pc = pc;
    e.value = value;
    // New instances start unconfident: they must be observed again
    // before they are used for prediction. This is what keeps
    // VP_Magic's misprediction rate low on rotating value sequences.
    e.conf.reset(0);
    lru[si].touch(victim);
}

VptPrediction
Vpt::predict(Addr pc, uint64_t oracle)
{
    VptPrediction r;
    uint32_t si = setIndex(pc);
    auto &set = sets[si];

    if (params.scheme == VpScheme::Lvp) {
        // At most one instance per pc by construction of update().
        for (unsigned w = 0; w < set.size(); ++w) {
            Entry &e = set[w];
            if (e.valid && e.pc == pc) {
                lru[si].touch(w);
                if (e.conf.atLeast(params.confidenceThreshold)) {
                    r.valid = true;
                    r.value = e.value;
                }
                return r;
            }
        }
        return r;
    }

    // Magic: an instance matching the oracle wins (the accurate
    // selector of Wang & Franklin would pick it) once it has been
    // observed at least twice; otherwise fall back to the most
    // confident instance, which needs full confidence.
    Entry *best = nullptr;
    for (unsigned w = 0; w < set.size(); ++w) {
        Entry &e = set[w];
        if (!e.valid || e.pc != pc)
            continue;
        if (e.value == oracle && e.conf.atLeast(1)) {
            lru[si].touch(w);
            r.valid = true;
            r.value = e.value;
            return r;
        }
        // The fallback fires only when the correct value is absent,
        // so gate it on full (saturated) confidence to keep VP_Magic's
        // misprediction rates in the paper's 0.2-3.3% band.
        if (!e.conf.atLeast(e.conf.max()))
            continue;
        if (!best || e.conf.value() > best->conf.value())
            best = &e;
    }
    if (best) {
        r.valid = true;
        r.value = best->value;
    }
    return r;
}

void
Vpt::update(Addr pc, uint64_t actual, const VptPrediction &made)
{
    if (params.scheme == VpScheme::Lvp) {
        auto &set = sets[setIndex(pc)];
        for (unsigned w = 0; w < set.size(); ++w) {
            Entry &e = set[w];
            if (e.valid && e.pc == pc) {
                if (e.value == actual) {
                    e.conf.increment();
                } else {
                    e.conf.decrement();
                    e.value = actual; // last value semantics
                }
                lru[setIndex(pc)].touch(w);
                return;
            }
        }
        insert(pc, actual);
        return;
    }

    // Magic: strengthen the instance holding the actual value
    // (inserting if missing); silence a wrongly predicted instance
    // so stale values stop being offered.
    if (made.valid && made.value != actual) {
        if (Entry *e = findValue(pc, made.value))
            e->conf.reset(0);
    }
    if (Entry *e = findValue(pc, actual)) {
        e->conf.increment();
        // Refresh recency of the matching way.
        auto &set = sets[setIndex(pc)];
        for (unsigned w = 0; w < set.size(); ++w) {
            if (&set[w] == e) {
                lru[setIndex(pc)].touch(w);
                break;
            }
        }
    } else {
        insert(pc, actual);
    }
}

void
Vpt::reset()
{
    for (auto &set : sets) {
        for (Entry &e : set)
            e.valid = false;
    }
}

unsigned
Vpt::instancesFor(Addr pc) const
{
    unsigned n = 0;
    for (const Entry &e : sets[setIndex(pc)]) {
        if (e.valid && e.pc == pc)
            ++n;
    }
    return n;
}

std::string
Vpt::audit() const
{
    for (uint32_t s = 0; s < numSets; ++s) {
        for (const Entry &e : sets[s]) {
            if (!e.valid)
                continue;
            if (setIndex(e.pc) != s) {
                return "VPT entry for pc " + std::to_string(e.pc) +
                       " outside its PC's set";
            }
            if (e.conf.value() > e.conf.max()) {
                return "VPT entry for pc " + std::to_string(e.pc) +
                       " confidence above saturation";
            }
        }
    }
    return "";
}

void
Vpt::serialize(CkptWriter &w) const
{
    w.u32(numSets);
    w.u32(params.ways);
    for (const auto &set : sets) {
        for (const Entry &e : set) {
            w.b(e.valid);
            w.u64(e.pc);
            w.u64(e.value);
            w.u8(static_cast<uint8_t>(e.conf.value()));
        }
    }
    for (const LruSet &s : lru)
        s.serialize(w);
}

bool
Vpt::deserialize(CkptReader &r)
{
    if (r.u32() != numSets || r.u32() != params.ways) {
        r.fail();
        return false;
    }
    for (auto &set : sets) {
        for (Entry &e : set) {
            e.valid = r.b();
            e.pc = r.u64();
            e.value = r.u64();
            unsigned c = r.u8();
            if (c > e.conf.max()) {
                r.fail();
                return false;
            }
            e.conf.reset(c);
        }
    }
    for (LruSet &s : lru) {
        if (!s.deserialize(r))
            return false;
    }
    return r.ok();
}

} // namespace vpir
