#include "check/fault.hh"

#include "common/env.hh"

namespace vpir
{

FaultInjector::FaultInjector(const FaultPlan &p) : plan(p), rng(p.seed) {}

bool
FaultInjector::fire(double rate, uint64_t &counter)
{
    if (rate <= 0.0)
        return false;
    if (rng.uniform() >= rate)
        return false;
    ++counter;
    return true;
}

bool FaultInjector::fireVptValue() { return fire(plan.vptValueRate, n.vptValue); }
bool FaultInjector::fireVptConf() { return fire(plan.vptConfRate, n.vptConf); }
bool FaultInjector::fireRbOperand() { return fire(plan.rbOperandRate, n.rbOperand); }
bool FaultInjector::fireRbResult() { return fire(plan.rbResultRate, n.rbResult); }
bool FaultInjector::fireRbLink() { return fire(plan.rbLinkRate, n.rbLink); }
bool FaultInjector::fireRbDropInv() { return fire(plan.rbDropInvRate, n.rbDropInv); }

uint64_t
FaultInjector::corrupt(uint64_t v)
{
    // Flip one bit in the low 32: guaranteed to change the value and
    // low bits matter for address and ALU flows alike.
    return v ^ (1ull << rng.below(32));
}

FaultPlan
faultPlanFromEnv(const FaultPlan &defaults)
{
    FaultPlan p = defaults;
    p.seed = parseEnvU64("VPIR_FAULT_SEED", p.seed);
    p.vptValueRate = parseEnvF64("VPIR_FAULT_VPT_VALUE", p.vptValueRate);
    p.vptConfRate = parseEnvF64("VPIR_FAULT_VPT_CONF", p.vptConfRate);
    p.rbOperandRate = parseEnvF64("VPIR_FAULT_RB_OPERAND", p.rbOperandRate);
    p.rbResultRate = parseEnvF64("VPIR_FAULT_RB_RESULT", p.rbResultRate);
    p.rbLinkRate = parseEnvF64("VPIR_FAULT_RB_LINK", p.rbLinkRate);
    p.rbDropInvRate = parseEnvF64("VPIR_FAULT_RB_DROPINV", p.rbDropInvRate);
    return p;
}

} // namespace vpir
