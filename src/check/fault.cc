#include "check/fault.hh"

#include "common/env.hh"

namespace vpir
{

FaultInjector::FaultInjector(const FaultPlan &p) : plan(p), rng(p.seed) {}

bool
FaultInjector::fire(double rate, uint64_t &counter)
{
    if (rate <= 0.0)
        return false;
    if (rng.uniform() >= rate)
        return false;
    ++counter;
    return true;
}

bool FaultInjector::fireVptValue() { return fire(plan.vptValueRate, n.vptValue); }
bool FaultInjector::fireVptConf() { return fire(plan.vptConfRate, n.vptConf); }
bool FaultInjector::fireRbOperand() { return fire(plan.rbOperandRate, n.rbOperand); }
bool FaultInjector::fireRbResult() { return fire(plan.rbResultRate, n.rbResult); }
bool FaultInjector::fireRbLink() { return fire(plan.rbLinkRate, n.rbLink); }
bool FaultInjector::fireRbDropInv() { return fire(plan.rbDropInvRate, n.rbDropInv); }

uint64_t
FaultInjector::corrupt(uint64_t v)
{
    // Flip one bit in the low 32: guaranteed to change the value and
    // low bits matter for address and ALU flows alike.
    return v ^ (1ull << rng.below(32));
}

void
FaultInjector::serialize(CkptWriter &w) const
{
    w.u64(rng.rawState());
    w.u64(n.vptValue);
    w.u64(n.vptConf);
    w.u64(n.rbOperand);
    w.u64(n.rbResult);
    w.u64(n.rbLink);
    w.u64(n.rbDropInv);
}

bool
FaultInjector::deserialize(CkptReader &r)
{
    rng.setRawState(r.u64());
    n.vptValue = r.u64();
    n.vptConf = r.u64();
    n.rbOperand = r.u64();
    n.rbResult = r.u64();
    n.rbLink = r.u64();
    n.rbDropInv = r.u64();
    return r.ok();
}

CkptFaultPlan
ckptFaultPlanFromEnv()
{
    CkptFaultPlan p;
    p.truncate = parseEnvU64("VPIR_FAULT_CKPT_TRUNC", 0) != 0;
    p.bitflip = parseEnvU64("VPIR_FAULT_CKPT_BITFLIP", 0) != 0;
    p.seed = parseEnvU64("VPIR_FAULT_SEED", p.seed);
    return p;
}

bool
applyCkptFaults(const CkptFaultPlan &plan, std::string &bundle,
                uint64_t salt)
{
    if (!plan.any() || bundle.empty())
        return false;
    Rng rng(plan.seed, salt);
    bool touched = false;
    if (plan.truncate && bundle.size() >= 2) {
        // Keep [1, size-1] bytes: the file exists but cannot parse.
        bundle.resize(1 + rng.below(bundle.size() - 1));
        touched = true;
    }
    if (plan.bitflip && !bundle.empty()) {
        size_t pos = rng.below(bundle.size());
        bundle[pos] = static_cast<char>(bundle[pos] ^
                                        (1u << rng.below(8)));
        touched = true;
    }
    return touched;
}

FaultPlan
faultPlanFromEnv(const FaultPlan &defaults)
{
    FaultPlan p = defaults;
    p.seed = parseEnvU64("VPIR_FAULT_SEED", p.seed);
    p.vptValueRate = parseEnvF64("VPIR_FAULT_VPT_VALUE", p.vptValueRate);
    p.vptConfRate = parseEnvF64("VPIR_FAULT_VPT_CONF", p.vptConfRate);
    p.rbOperandRate = parseEnvF64("VPIR_FAULT_RB_OPERAND", p.rbOperandRate);
    p.rbResultRate = parseEnvF64("VPIR_FAULT_RB_RESULT", p.rbResultRate);
    p.rbLinkRate = parseEnvF64("VPIR_FAULT_RB_LINK", p.rbLinkRate);
    p.rbDropInvRate = parseEnvF64("VPIR_FAULT_RB_DROPINV", p.rbDropInvRate);
    return p;
}

} // namespace vpir
