/**
 * @file
 * Lockstep architectural checker.
 *
 * The OoO core executes functionally along the *fetched* path with an
 * undo journal, so a simulator bug (or an injected reuse-buffer fault
 * that slips past early validation) can silently commit a wrong value
 * into architectural state. The checker closes that hole: it owns a
 * completely independent EmuState + Emulator pair and replays every
 * instruction the core RETIRES, in retirement order, comparing
 *
 *   - path continuity (the retired PC must be where the independent
 *     machine's PC points),
 *   - register results (rd and rd2),
 *   - the next PC of control transfers,
 *   - effective address and stored value of memory operations,
 *
 * against what the core committed. On the first mismatch it emits a
 * structured divergence report — cycle, sequence number, PC,
 * disassembly, expected vs actual values, and the last 32 retired
 * instructions — and calls panic(), which a PanicThrowScope turns
 * into a catchable SimError.
 *
 * The checker shares nothing with the core's emulation state; it only
 * reads the same immutable Program. That independence is the point.
 */

#ifndef VPIR_CHECK_CHECKER_HH
#define VPIR_CHECK_CHECKER_HH

#include <array>
#include <cstdint>

#include "common/ckpt_io.hh"
#include "emu/executor.hh"
#include "emu/state.hh"
#include "isa/instr.hh"

namespace vpir
{

/** Everything the core knows about one retiring instruction. */
struct Retired
{
    uint64_t seq = 0;        //!< dynamic sequence number
    uint64_t cycle = 0;      //!< commit cycle
    Addr pc = 0;
    Instr inst;
    uint64_t result = 0;     //!< value committed to rd
    uint64_t result2 = 0;    //!< value committed to rd2
    Addr nextPC = 0;         //!< PC the core followed after this instr
    Addr memAddr = 0;        //!< effective address (memory ops)
    uint64_t storeValue = 0; //!< value stored (stores)
};

class LockstepChecker
{
  public:
    /**
     * @param program      The (immutable) program image, shared with
     *                     the core by reference.
     * @param warmupInsts  Instructions the core retires functionally
     *                     before timing starts; replayed here so both
     *                     machines start the checked region aligned.
     * @param warm         Optional post-warmup snapshot for the same
     *                     (program, warmupInsts): cloned copy-on-write
     *                     instead of replaying the warmup. The checker
     *                     still shares no *mutable* state with the
     *                     core — both write-fault private pages.
     */
    LockstepChecker(const Program &program, uint64_t warmupInsts,
                    const EmuSnapshot *warm = nullptr);

    /** Cross-validate one retired instruction; panics on divergence. */
    void onRetire(const Retired &r);

    uint64_t checkedInsts() const { return checked; }

    /** Checkpoint the independent machine (its architectural state,
     *  PC, halt flag) plus the checked count and divergence-report
     *  history ring. */
    void serialize(CkptWriter &w) const;
    /** Restore serialize()d state. */
    bool deserialize(CkptReader &r);

  private:
    [[noreturn]] void diverge(const Retired &r, const std::string &what);
    std::string history() const;

    EmuState state;
    Emulator emu;
    uint64_t checked = 0;

    static constexpr size_t histSize = 32;
    std::array<Retired, histSize> ring{};
    size_t ringCount = 0;
};

} // namespace vpir

#endif // VPIR_CHECK_CHECKER_HH
