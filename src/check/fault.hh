/**
 * @file
 * Deterministic fault injection for the redundancy structures.
 *
 * The paper's central contrast is validation: VP is speculative with
 * *late* validation (a wrong predicted value must be squashed before
 * it reaches architectural state), IR is non-speculative with *early*
 * validation (a reused result must never be wrong). The fault plan
 * stresses both sides:
 *
 *  - VPT faults (corrupt a predicted value, flip the confidence gate)
 *    must ALWAYS be absorbed by the existing late-validation machinery
 *    — the lockstep checker stays green while squash/re-execution
 *    counters move.
 *
 *  - RB faults (corrupt stored operand values or results, corrupt
 *    dependence pointers, drop store invalidations) stress the reuse
 *    test itself. Any corruption that escapes to retirement is a real
 *    early-validation bug, which the lockstep checker now reports.
 *
 * All draws come from one seeded xorshift generator owned by the
 * injector, so a given (plan, workload, config) run is bit-for-bit
 * reproducible.
 */

#ifndef VPIR_CHECK_FAULT_HH
#define VPIR_CHECK_FAULT_HH

#include <cstdint>
#include <string>

#include "common/ckpt_io.hh"
#include "common/rng.hh"

namespace vpir
{

/** Per-structure fault rates (probability per opportunity, in [0,1])
 *  plus the seed. All-zero rates = no injection. Part of CoreParams,
 *  so every rate participates in the sweep cache key. */
struct FaultPlan
{
    uint64_t seed = 0x5eed;
    double vptValueRate = 0.0;  //!< corrupt a made prediction's value
    double vptConfRate = 0.0;   //!< flip the confidence-gate decision
    double rbOperandRate = 0.0; //!< corrupt a stored operand value
    double rbResultRate = 0.0;  //!< corrupt a stored result/load value
    double rbLinkRate = 0.0;    //!< corrupt a dependence pointer
    double rbDropInvRate = 0.0; //!< drop a store invalidation

    bool
    anyVpt() const
    {
        return vptValueRate > 0.0 || vptConfRate > 0.0;
    }

    bool
    anyRb() const
    {
        return rbOperandRate > 0.0 || rbResultRate > 0.0 ||
               rbLinkRate > 0.0 || rbDropInvRate > 0.0;
    }

    bool any() const { return anyVpt() || anyRb(); }
};

/** How many faults of each kind were actually injected in a run. */
struct FaultCounts
{
    uint64_t vptValue = 0;
    uint64_t vptConf = 0;
    uint64_t rbOperand = 0;
    uint64_t rbResult = 0;
    uint64_t rbLink = 0;
    uint64_t rbDropInv = 0;

    uint64_t
    total() const
    {
        return vptValue + vptConf + rbOperand + rbResult + rbLink +
               rbDropInv;
    }
};

/**
 * Draws fault decisions against a FaultPlan. One injector per core,
 * shared by its VPT instances and reuse buffer; single-threaded like
 * the core itself.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    // One predicate per fault site; each counts when it fires.
    bool fireVptValue();
    bool fireVptConf();
    bool fireRbOperand();
    bool fireRbResult();
    bool fireRbLink();
    bool fireRbDropInv();

    /** Corrupt a value: flips one pseudo-random low bit, so the
     *  result is guaranteed to differ from the input. */
    uint64_t corrupt(uint64_t v);

    /** Uniform draw in [0, bound); for picking an operand slot. */
    uint64_t pick(uint64_t bound) { return rng.below(bound); }

    const FaultCounts &counts() const { return n; }

    /** Checkpoint the RNG stream position and the fired counts, so a
     *  resumed run draws the exact same fault sequence as an
     *  uninterrupted one. */
    void serialize(CkptWriter &w) const;
    /** Restore serialize()d state. */
    bool deserialize(CkptReader &r);

  private:
    bool fire(double rate, uint64_t &counter);

    FaultPlan plan;
    Rng rng;
    FaultCounts n;
};

/** Build a FaultPlan from the VPIR_FAULT_* environment knobs
 *  (SEED, VPT_VALUE, VPT_CONF, RB_OPERAND, RB_RESULT, RB_LINK,
 *  RB_DROPINV); unset knobs keep the given defaults. */
FaultPlan faultPlanFromEnv(const FaultPlan &defaults = FaultPlan());

/**
 * Checkpoint-targeted fault injection: corrupts checkpoint bundles as
 * they are written, to prove the detection/quarantine paths. Unlike
 * FaultPlan this is NOT part of CoreParams — corrupting the bundle
 * must not change the cell key of the run being corrupted.
 */
struct CkptFaultPlan
{
    bool truncate = false; //!< VPIR_FAULT_CKPT_TRUNC: chop the tail off
    bool bitflip = false;  //!< VPIR_FAULT_CKPT_BITFLIP: flip one bit
    uint64_t seed = 0x5eed;

    bool any() const { return truncate || bitflip; }
};

/** Read VPIR_FAULT_CKPT_TRUNC / VPIR_FAULT_CKPT_BITFLIP /
 *  VPIR_FAULT_SEED. */
CkptFaultPlan ckptFaultPlanFromEnv();

/**
 * Apply the planned corruption to a serialized checkpoint bundle
 * in place. @p salt distinguishes successive writes (e.g. the
 * checkpoint's instruction count) so each write corrupts a different,
 * deterministic position. Returns true when the bundle was modified.
 */
bool applyCkptFaults(const CkptFaultPlan &plan, std::string &bundle,
                     uint64_t salt);

} // namespace vpir

#endif // VPIR_CHECK_FAULT_HH
