#include "check/checker.hh"

#include <sstream>

#include "common/logging.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"

namespace vpir
{

LockstepChecker::LockstepChecker(const Program &program,
                                 uint64_t warmupInsts,
                                 const EmuSnapshot *warm)
    : emu(program, state)
{
    if (warm) {
        VPIR_ASSERT(warm->warmupInsts == warmupInsts,
                    "warm snapshot built for a different warmup length");
        state = warm->state; // COW page share; writes fault private
        emu.setPC(warm->pc);
        return;
    }
    Emulator::loadProgram(program, state);
    // Mirror the core's functional warmup so the checked region starts
    // with both machines in the same architectural state.
    for (uint64_t i = 0; i < warmupInsts && !emu.halted(); ++i) {
        emu.step();
        state.retire(state.mark());
    }
}

void
LockstepChecker::onRetire(const Retired &r)
{
    ring[ringCount % histSize] = r;
    ++ringCount;

    if (r.inst.op == Op::HALT) {
        // Nothing architectural to compare; the run is over.
        ++checked;
        return;
    }

    if (emu.pc() != r.pc) {
        diverge(r, "retired PC " + std::to_string(r.pc) +
                       " but the reference machine is at PC " +
                       std::to_string(emu.pc()));
    }

    ExecResult x = emu.step();
    // Keep the reference journal empty: every replayed write is final.
    state.retire(state.mark());

    std::ostringstream mismatch;
    auto expect = [&](const char *field, uint64_t want, uint64_t got) {
        if (want != got) {
            mismatch << "  " << field << ": expected 0x" << std::hex
                     << want << ", core committed 0x" << got << std::dec
                     << "\n";
        }
    };

    if (r.inst.rd != REG_INVALID)
        expect("result(rd)", x.out.result, r.result);
    if (r.inst.rd2 != REG_INVALID)
        expect("result2(rd2)", x.out.result2, r.result2);
    if (isControl(r.inst.op))
        expect("nextPC", x.out.nextPC, r.nextPC);
    if (isMem(r.inst.op))
        expect("memAddr", x.out.memAddr, r.memAddr);
    if (isStore(r.inst.op))
        expect("storeValue", x.out.storeValue, r.storeValue);

    std::string bad = mismatch.str();
    if (!bad.empty())
        diverge(r, "value mismatch\n" + bad);

    ++checked;
}

void
LockstepChecker::diverge(const Retired &r, const std::string &what)
{
    std::ostringstream os;
    os << "lockstep divergence at cycle " << r.cycle << ", seq " << r.seq
       << ", pc 0x" << std::hex << r.pc << std::dec << " ["
       << disassemble(r.inst) << "]: " << what << "\n"
       << "last " << std::min(ringCount, histSize)
       << " retired instructions (oldest first):\n"
       << history();
    panic(os.str());
}

std::string
LockstepChecker::history() const
{
    std::ostringstream os;
    size_t n = std::min(ringCount, histSize);
    for (size_t i = 0; i < n; ++i) {
        const Retired &r = ring[(ringCount - n + i) % histSize];
        os << "  seq " << r.seq << " cyc " << r.cycle << " pc 0x"
           << std::hex << r.pc << std::dec << "  " << disassemble(r.inst);
        if (r.inst.rd != REG_INVALID)
            os << "  => 0x" << std::hex << r.result << std::dec;
        os << "\n";
    }
    return os.str();
}

namespace
{

void
serializeInstr(CkptWriter &w, const Instr &i)
{
    w.u8(static_cast<uint8_t>(i.op));
    w.u8(i.rd);
    w.u8(i.rd2);
    w.u8(i.rs);
    w.u8(i.rt);
    w.u32(static_cast<uint32_t>(i.imm));
    w.u32(i.target);
}

void
deserializeInstr(CkptReader &r, Instr &i)
{
    i.op = static_cast<Op>(r.u8());
    i.rd = r.u8();
    i.rd2 = r.u8();
    i.rs = r.u8();
    i.rt = r.u8();
    i.imm = static_cast<int32_t>(r.u32());
    i.target = r.u32();
}

} // anonymous namespace

void
LockstepChecker::serialize(CkptWriter &w) const
{
    state.serialize(w);
    w.u32(emu.pc());
    w.b(emu.halted());
    w.u64(checked);
    w.u64(ringCount);
    for (const Retired &r : ring) {
        w.u64(r.seq);
        w.u64(r.cycle);
        w.u32(r.pc);
        serializeInstr(w, r.inst);
        w.u64(r.result);
        w.u64(r.result2);
        w.u32(r.nextPC);
        w.u32(r.memAddr);
        w.u64(r.storeValue);
    }
}

bool
LockstepChecker::deserialize(CkptReader &r)
{
    if (!state.deserialize(r))
        return false;
    emu.setPC(r.u32());
    emu.setHalt(r.b());
    checked = r.u64();
    ringCount = static_cast<size_t>(r.u64());
    for (Retired &e : ring) {
        e.seq = r.u64();
        e.cycle = r.u64();
        e.pc = r.u32();
        deserializeInstr(r, e.inst);
        e.result = r.u64();
        e.result2 = r.u64();
        e.nextPC = r.u32();
        e.memAddr = r.u32();
        e.storeValue = r.u64();
    }
    return r.ok();
}

} // namespace vpir
