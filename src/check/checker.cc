#include "check/checker.hh"

#include <sstream>

#include "common/logging.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"

namespace vpir
{

LockstepChecker::LockstepChecker(const Program &program,
                                 uint64_t warmupInsts,
                                 const EmuSnapshot *warm)
    : emu(program, state)
{
    if (warm) {
        VPIR_ASSERT(warm->warmupInsts == warmupInsts,
                    "warm snapshot built for a different warmup length");
        state = warm->state; // COW page share; writes fault private
        emu.setPC(warm->pc);
        return;
    }
    Emulator::loadProgram(program, state);
    // Mirror the core's functional warmup so the checked region starts
    // with both machines in the same architectural state.
    for (uint64_t i = 0; i < warmupInsts && !emu.halted(); ++i) {
        emu.step();
        state.retire(state.mark());
    }
}

void
LockstepChecker::onRetire(const Retired &r)
{
    ring[ringCount % histSize] = r;
    ++ringCount;

    if (r.inst.op == Op::HALT) {
        // Nothing architectural to compare; the run is over.
        ++checked;
        return;
    }

    if (emu.pc() != r.pc) {
        diverge(r, "retired PC " + std::to_string(r.pc) +
                       " but the reference machine is at PC " +
                       std::to_string(emu.pc()));
    }

    ExecResult x = emu.step();
    // Keep the reference journal empty: every replayed write is final.
    state.retire(state.mark());

    std::ostringstream mismatch;
    auto expect = [&](const char *field, uint64_t want, uint64_t got) {
        if (want != got) {
            mismatch << "  " << field << ": expected 0x" << std::hex
                     << want << ", core committed 0x" << got << std::dec
                     << "\n";
        }
    };

    if (r.inst.rd != REG_INVALID)
        expect("result(rd)", x.out.result, r.result);
    if (r.inst.rd2 != REG_INVALID)
        expect("result2(rd2)", x.out.result2, r.result2);
    if (isControl(r.inst.op))
        expect("nextPC", x.out.nextPC, r.nextPC);
    if (isMem(r.inst.op))
        expect("memAddr", x.out.memAddr, r.memAddr);
    if (isStore(r.inst.op))
        expect("storeValue", x.out.storeValue, r.storeValue);

    std::string bad = mismatch.str();
    if (!bad.empty())
        diverge(r, "value mismatch\n" + bad);

    ++checked;
}

void
LockstepChecker::diverge(const Retired &r, const std::string &what)
{
    std::ostringstream os;
    os << "lockstep divergence at cycle " << r.cycle << ", seq " << r.seq
       << ", pc 0x" << std::hex << r.pc << std::dec << " ["
       << disassemble(r.inst) << "]: " << what << "\n"
       << "last " << std::min(ringCount, histSize)
       << " retired instructions (oldest first):\n"
       << history();
    panic(os.str());
}

std::string
LockstepChecker::history() const
{
    std::ostringstream os;
    size_t n = std::min(ringCount, histSize);
    for (size_t i = 0; i < n; ++i) {
        const Retired &r = ring[(ringCount - n + i) % histSize];
        os << "  seq " << r.seq << " cyc " << r.cycle << " pc 0x"
           << std::hex << r.pc << std::dec << "  " << disassemble(r.inst);
        if (r.inst.rd != REG_INVALID)
            os << "  => 0x" << std::hex << r.result << std::dec;
        os << "\n";
    }
    return os.str();
}

} // namespace vpir
