/**
 * @file
 * Crash-contained execution of one sweep cell.
 *
 * PanicThrowScope contains *panics*, but a hard crash — segfault,
 * sanitizer abort, OOM kill, or a cell that never terminates — still
 * takes the whole harness (and every in-flight cell) with it. The
 * isolated mode (VPIR_ISOLATE=1) runs each cell in a forked child:
 *
 *  - the child simulates the cell and returns its CoreStats over a
 *    pipe using the stats_json serializer, so results are bit-
 *    identical to the in-process mode;
 *  - an optional address-space rlimit (VPIR_CELL_RLIMIT_MB) turns a
 *    leaking or pathological cell into a contained allocation
 *    failure;
 *  - a wall-clock deadline (VPIR_CELL_TIMEOUT_MS) is enforced by the
 *    parent with SIGKILL;
 *  - any abnormal child exit (signal, exit code, captured stderr
 *    tail) is reported as a structured failure instead of killing
 *    the sweep;
 *  - a graceful engine stop is forwarded to the child as SIGUSR1, so
 *    a checkpointing cell (sim/checkpoint.hh) drains to its next
 *    boundary, persists, and reports a resumable partial outcome.
 *
 * In the default in-process mode the same deadline is enforced
 * cooperatively: computeCellOnce() arms a CellDeadlineScope that the
 * core's cycle loop polls (see common/deadline.hh).
 *
 * VPIR_TEST_CRASH_CELL=<label> is a test/CI hook: a cell whose label
 * matches raises SIGSEGV in the worker, standing in for a real
 * simulator crash so containment can be proven end to end.
 */

#ifndef VPIR_SWEEP_ISOLATE_HH
#define VPIR_SWEEP_ISOLATE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/core_stats.hh"
#include "core/sched_profile.hh"

namespace vpir
{

struct Workload;
struct EmuSnapshot;

namespace sweep
{

struct SweepCell;

/** Cell execution knobs, captured from the environment once per
 *  engine (so tests can vary them between engines). */
struct IsolationConfig
{
    bool enabled = false;    //!< VPIR_ISOLATE=1: fork per cell
    uint64_t timeoutMs = 0;  //!< VPIR_CELL_TIMEOUT_MS (0 = none)
    uint64_t rlimitMb = 0;   //!< VPIR_CELL_RLIMIT_MB (0 = none)

    /** Engine stop flag (nonzero = graceful stop requested). The
     *  isolated-mode parent watches it and forwards the request to the
     *  child as one SIGUSR1, so an in-flight forked cell drains to its
     *  next checkpoint boundary instead of running to completion. */
    const std::atomic<int> *stopFlag = nullptr;
};

/** Read VPIR_ISOLATE / VPIR_CELL_TIMEOUT_MS / VPIR_CELL_RLIMIT_MB. */
IsolationConfig isolationFromEnv();

/** Outcome of one cell execution attempt, either mode. */
struct CellOutcome
{
    bool failed = false;
    bool timedOut = false;      //!< deadline overrun (retried only when
                                //!< checkpoints persist progress)
    CoreStats stats;            //!< zeroed when failed
    std::string workloadInput;  //!< Workload::input (for vpirsim)
    std::string error;          //!< failure message, context included

    // Checkpoint provenance of this attempt (sim/checkpoint.hh).
    bool ckptStopped = false;   //!< stopped gracefully at a checkpoint
                                //!< boundary; stats are partial
    bool ckptResumed = false;   //!< continued from an on-disk checkpoint
    uint64_t ckptWritten = 0;   //!< checkpoints persisted by this attempt

    // Phase breakdown of this attempt (bench_timing provenance).
    double setupSeconds = 0.0;  //!< workload + core construction
    double runSeconds = 0.0;    //!< timed simulation proper
    bool asmBuilt = false;      //!< this attempt assembled the program
    bool warmBuilt = false;     //!< this attempt executed the warmup

    /** Per-stage cycle profile of this attempt (core/sched_profile.hh).
     *  Host-dependent, so it rides next to the phase timings rather
     *  than inside the deterministic stats block. */
    SchedProfile profile;
};

/**
 * Run the cell on the calling thread under a PanicThrowScope, cell
 * context frames, and (when @p timeout_ms > 0) a cooperative
 * deadline. Never throws; panics and fatals become a failed outcome.
 *
 * @param allow_resume
 *     Restore the newest valid checkpoint for this cell before
 *     running (when VPIR_CKPT_DIR persistence is configured). The
 *     retry ladder passes false on its final cold-restart rung, in
 *     case the checkpoint itself is what kills the cell.
 *
 * @param prebuilt_w, prebuilt_snap
 *     Pre-resolved warm-start handles for this cell's (workload,
 *     scale, warmup) key. Passed by the isolated mode, where the
 *     parent populates the WarmStartCache *before* forking (a child
 *     must never touch the cache's locks — see sim/warm_cache.hh).
 *     When null, the cell resolves them itself: from the cache when
 *     VPIR_WARM_CACHE is on, by assembling and warming privately
 *     otherwise.
 */
CellOutcome
computeCellOnce(const SweepCell &cell, uint64_t timeout_ms,
                bool allow_resume = true,
                std::shared_ptr<const Workload> prebuilt_w = nullptr,
                std::shared_ptr<const EmuSnapshot> prebuilt_snap = nullptr);

/**
 * Run the cell in a forked child per @p cfg. The child's stderr is
 * captured: forwarded to the parent's stderr on success, appended
 * (tail) to the error on failure. Falls back to computeCellOnce()
 * with a warning if fork/pipe fails.
 */
CellOutcome
runCellIsolated(const SweepCell &cell, const IsolationConfig &cfg,
                bool allow_resume = true,
                std::shared_ptr<const Workload> prebuilt_w = nullptr,
                std::shared_ptr<const EmuSnapshot> prebuilt_snap = nullptr);

/** "SIGSEGV"-style name for common signals, "signal N" otherwise. */
std::string signalName(int sig);

} // namespace sweep
} // namespace vpir

#endif // VPIR_SWEEP_ISOLATE_HH
