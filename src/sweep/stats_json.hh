/**
 * @file
 * Lossless JSON (de)serialization of CoreStats for the sweep engine's
 * on-disk result cache, plus a generic field visitor the sweep tests
 * use to compare two stat sets bit for bit.
 */

#ifndef VPIR_SWEEP_STATS_JSON_HH
#define VPIR_SWEEP_STATS_JSON_HH

#include <string>

#include "core/core_stats.hh"

namespace vpir
{
namespace sweep
{

/**
 * Visit every scalar counter of a CoreStats by name. The visitor
 * signature is fn(const char *name, uint64_t &value); haltedCleanly
 * is visited as 0/1 through a proxy, the execCountHist buckets as
 * execCountHist0..3. Serialization, parsing, and stat comparison all
 * share this single field list so they cannot drift apart.
 */
template <typename Stats, typename Fn>
void
forEachStatField(Stats &st, Fn &&fn)
{
#define VPIR_STAT_FIELD(name) fn(#name, st.name)
    VPIR_STAT_FIELD(cycles);
    VPIR_STAT_FIELD(committedInsts);
    VPIR_STAT_FIELD(committedMemOps);
    VPIR_STAT_FIELD(committedLoads);
    VPIR_STAT_FIELD(committedStores);
    VPIR_STAT_FIELD(executedInsts);
    VPIR_STAT_FIELD(squashedExecuted);
    VPIR_STAT_FIELD(squashedRecovered);
    VPIR_STAT_FIELD(branchSquashes);
    VPIR_STAT_FIELD(spuriousSquashes);
    VPIR_STAT_FIELD(condBranches);
    VPIR_STAT_FIELD(condMispredicted);
    VPIR_STAT_FIELD(returns);
    VPIR_STAT_FIELD(returnMispredicted);
    VPIR_STAT_FIELD(branchResLatSum);
    VPIR_STAT_FIELD(branchResCount);
    VPIR_STAT_FIELD(resourceRequests);
    VPIR_STAT_FIELD(resourceDenied);
    fn("execCountHist0", st.execCountHist[0]);
    fn("execCountHist1", st.execCountHist[1]);
    fn("execCountHist2", st.execCountHist[2]);
    fn("execCountHist3", st.execCountHist[3]);
    VPIR_STAT_FIELD(reusedResults);
    VPIR_STAT_FIELD(reusedAddrs);
    VPIR_STAT_FIELD(reusedControl);
    VPIR_STAT_FIELD(resolvableControl);
    VPIR_STAT_FIELD(vpResultPredicted);
    VPIR_STAT_FIELD(vpResultCorrect);
    VPIR_STAT_FIELD(vpResultWrong);
    VPIR_STAT_FIELD(vpAddrPredicted);
    VPIR_STAT_FIELD(vpAddrCorrect);
    VPIR_STAT_FIELD(vpAddrWrong);
    VPIR_STAT_FIELD(valueMispredictEvents);
    VPIR_STAT_FIELD(icacheAccesses);
    VPIR_STAT_FIELD(icacheMisses);
    VPIR_STAT_FIELD(dcacheAccesses);
    VPIR_STAT_FIELD(dcacheMisses);
    VPIR_STAT_FIELD(checkedInsts);
    VPIR_STAT_FIELD(faultsVptValue);
    VPIR_STAT_FIELD(faultsVptConf);
    VPIR_STAT_FIELD(faultsRbOperand);
    VPIR_STAT_FIELD(faultsRbResult);
    VPIR_STAT_FIELD(faultsRbLink);
    VPIR_STAT_FIELD(faultsRbDropInv);
#undef VPIR_STAT_FIELD
}

/**
 * FNV-1a fingerprint of the serialized stat schema: every field name
 * visited by forEachStatField() (plus haltedCleanly), in order. Two
 * binaries agree on this value iff their statsToJson() payloads are
 * field-compatible, so the disk cache stamps it into every file and
 * rejects mismatches loudly instead of failing a silent
 * field-by-field parse.
 */
uint64_t statsSchemaFingerprint();

/** Render the counters as a flat JSON object (uint64 as decimal). */
std::string statsToJson(const CoreStats &st);

/**
 * Parse a JSON object produced by statsToJson() back into @p out.
 * @return false (leaving @p out untouched) on any malformed input or
 * missing field — callers fall back to recomputation.
 */
bool statsFromJson(const std::string &json, CoreStats &out);

/** Exact equality over every counter (including haltedCleanly). */
bool statsEqual(const CoreStats &a, const CoreStats &b);

} // namespace sweep
} // namespace vpir

#endif // VPIR_SWEEP_STATS_JSON_HH
