#include "sweep/params_json.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace vpir
{
namespace sweep
{

uint64_t
paramsSchemaFingerprint()
{
    static const uint64_t fp = [] {
        constexpr uint64_t FNV_OFFSET = 0xcbf29ce484222325ull;
        constexpr uint64_t FNV_PRIME = 0x100000001b3ull;
        uint64_t h = FNV_OFFSET;
        CoreParams tmp;
        forEachParamField(tmp, [&](const char *name, uint64_t &) {
            for (const char *c = name; *c; ++c) {
                h ^= static_cast<unsigned char>(*c);
                h *= FNV_PRIME;
            }
            h ^= '\n';
            h *= FNV_PRIME;
        });
        return h;
    }();
    return fp;
}

std::string
paramsToJson(const CoreParams &p)
{
    CoreParams tmp = p; // the visitor writes back; a copy keeps p const
    std::string out = "{";
    bool first = true;
    forEachParamField(tmp, [&](const char *name, uint64_t &v) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64,
                      first ? "" : ", ", name, v);
        out += buf;
        first = false;
    });
    out += "}";
    return out;
}

namespace
{

bool
lookupField(const std::string &s, const char *name, uint64_t &out)
{
    std::string needle = std::string("\"") + name + "\"";
    size_t pos = s.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < s.size() &&
           (s[pos] == ':' ||
            std::isspace(static_cast<unsigned char>(s[pos]))))
        ++pos;
    if (pos >= s.size() ||
        !std::isdigit(static_cast<unsigned char>(s[pos])))
        return false;
    uint64_t v = 0;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
        v = v * 10 + static_cast<uint64_t>(s[pos] - '0');
        ++pos;
    }
    out = v;
    return true;
}

} // anonymous namespace

bool
paramsFromJson(const std::string &json, CoreParams &out)
{
    CoreParams tmp;
    bool ok = true;
    forEachParamField(tmp, [&](const char *name, uint64_t &v) {
        if (!lookupField(json, name, v))
            ok = false;
    });
    if (!ok)
        return false;
    out = tmp;
    return true;
}

bool
paramsEqual(const CoreParams &a, const CoreParams &b)
{
    return paramsToJson(a) == paramsToJson(b);
}

} // namespace sweep
} // namespace vpir
