#include "sweep/isolate.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/deadline.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "fuzz/generator.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "sim/warm_cache.hh"
#include "sweep/stats_json.hh"
#include "sweep/sweep.hh"

namespace vpir
{
namespace sweep
{

IsolationConfig
isolationFromEnv()
{
    IsolationConfig cfg;
    cfg.enabled = parseEnvU64("VPIR_ISOLATE", 0) != 0;
    cfg.timeoutMs = parseEnvU64("VPIR_CELL_TIMEOUT_MS", 0);
    cfg.rlimitMb = parseEnvU64("VPIR_CELL_RLIMIT_MB", 0);
    return cfg;
}

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS:  return "SIGBUS";
      case SIGILL:  return "SIGILL";
      case SIGFPE:  return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      case SIGINT:  return "SIGINT";
      default:      return "signal " + std::to_string(sig);
    }
}

/** Reproducibility tail for cell failure reports: the active fault
 *  seed and, for generated fuzz programs, the generator seed and
 *  revision — enough to re-create a crashed cell without its repro
 *  bundle. */
std::string
cellReproInfo(const SweepCell &cell)
{
    std::string s;
    char hex[20];
    if (cell.params.faults.any()) {
        std::snprintf(hex, sizeof(hex), "0x%016" PRIx64,
                      cell.params.faults.seed);
        s += std::string(" fault_seed=") + hex;
    }
    if (fuzz::isFuzzWorkloadName(cell.workload)) {
        std::snprintf(hex, sizeof(hex), "0x%016" PRIx64,
                      fuzz::fuzzSeedFromName(cell.workload));
        s += std::string(" fuzz_seed=") + hex +
             " gen_rev=" + std::to_string(fuzz::GENERATOR_REVISION);
    }
    return s;
}

// --------------------------------------------------- in-process attempt

CellOutcome
computeCellOnce(const SweepCell &cell, uint64_t timeout_ms,
                bool allow_resume,
                std::shared_ptr<const Workload> prebuilt_w,
                std::shared_ptr<const EmuSnapshot> prebuilt_snap)
{
    CellOutcome out;
    char phex[17];
    std::snprintf(phex, sizeof(phex), "%016" PRIx64,
                  hashParams(cell.params));

    PanicThrowScope throw_scope;
    PanicContext cell_frame([&cell, &phex] {
        return "sweep cell workload=" + cell.workload + " label=" +
               cell.label + " params=" + phex + cellReproInfo(cell);
    });
    CellDeadlineScope deadline(timeout_ms);

    // Test/CI hook: stand in for a real simulator crash.
    if (const char *t = std::getenv("VPIR_TEST_CRASH_CELL");
        t && cell.label == t)
        raise(SIGSEGV);

    auto t0 = std::chrono::steady_clock::now();
    try {
        std::shared_ptr<const Workload> w = std::move(prebuilt_w);
        std::shared_ptr<const EmuSnapshot> snap = std::move(prebuilt_snap);
        if (!w) {
            if (WarmStartCache::enabledFromEnv()) {
                // In-process mode: first cell per key builds, the
                // others hit. The build cost lands in that one cell's
                // setupSeconds — phase timing stays honest.
                WarmStartCache &cache = WarmStartCache::global();
                w = cache.workload(cell.workload, cell.scale,
                                   &out.asmBuilt);
                snap = cache.snapshot(cell.workload, cell.scale,
                                      cell.params.warmupInsts,
                                      &out.warmBuilt);
            } else {
                auto priv = std::make_shared<Workload>(
                    makeWorkload(cell.workload, cell.scale));
                w = std::move(priv);
                out.asmBuilt = true;
                out.warmBuilt = true; // Core ctor replays the warmup
            }
        }
        out.workloadInput = w->input;
        Simulator sim(cell.params, std::move(w), std::move(snap));
        auto t1 = std::chrono::steady_clock::now();
        out.setupSeconds =
            std::chrono::duration<double>(t1 - t0).count();
        Core &core = sim.core();
        PanicContext sim_frame([&core] {
            return "cycle " + std::to_string(core.now()) + ", seq " +
                   std::to_string(core.seqAllocated());
        });
        CkptCellId id;
        id.workload = cell.workload;
        id.cellKey = cellHash(cell);
        id.paramsHash = hashParams(cell.params);
        id.warmupInsts = cell.params.warmupInsts;
        CkptRunResult cr = runWithCheckpoints(
            sim, ckptConfigFromEnv(cell.params.ckptInsts), id,
            allow_resume);
        out.stats = sim.stats();
        out.profile = sim.core().schedProfile();
        out.ckptStopped = cr.stopped;
        out.ckptResumed = cr.resumed;
        out.ckptWritten = cr.checkpointsWritten;
        out.runSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t1)
                             .count();
    } catch (const SimError &e) {
        out.failed = true;
        out.error = e.what();
        out.timedOut = cellDeadlineExpired();
        out.stats = CoreStats{};
    }
    return out;
}

// -------------------------------------------------------- wire protocol

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case 'n':  out += '\n'; break;
          case 't':  out += '\t'; break;
          case 'r':  out += '\r'; break;
          default:   out += s[i]; break; // covers \" and \\ too
        }
    }
    return out;
}

/** Extract the (escaped) string value of "key": "..." or false. */
bool
extractString(const std::string &text, const char *key, std::string &out)
{
    std::string needle = std::string("\"") + key + "\": \"";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    size_t end = pos;
    while (end < text.size() && text[end] != '"') {
        if (text[end] == '\\')
            ++end;
        ++end;
    }
    if (end >= text.size())
        return false;
    out = jsonUnescape(text.substr(pos, end - pos));
    return true;
}

bool
extractU64(const std::string &text, const char *key, uint64_t &out)
{
    std::string needle = std::string("\"") + key + "\": ";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
    uint64_t v = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])))
        v = v * 10 + static_cast<uint64_t>(text[pos++] - '0');
    out = v;
    return true;
}

/** The child's result payload. The stats object comes last so a
 *  truncated payload (child killed mid-write) fails statsFromJson()
 *  and takes the abnormal-exit path instead of half-parsing. */
std::string
encodeOutcome(const CellOutcome &out)
{
    // Phase durations travel as integer microseconds: extractU64 stays
    // the only number parser the protocol needs.
    auto us = [](double s) {
        return std::to_string(static_cast<uint64_t>(s * 1e6));
    };
    std::string s = "{\n";
    s += "  \"failed\": " + std::to_string(out.failed ? 1 : 0) + ",\n";
    s += "  \"timed_out\": " + std::to_string(out.timedOut ? 1 : 0) +
         ",\n";
    s += "  \"setup_us\": " + us(out.setupSeconds) + ",\n";
    s += "  \"run_us\": " + us(out.runSeconds) + ",\n";
    s += "  \"asm_built\": " + std::to_string(out.asmBuilt ? 1 : 0) +
         ",\n";
    s += "  \"warm_built\": " + std::to_string(out.warmBuilt ? 1 : 0) +
         ",\n";
    s += "  \"ckpt_stopped\": " +
         std::to_string(out.ckptStopped ? 1 : 0) + ",\n";
    s += "  \"ckpt_resumed\": " +
         std::to_string(out.ckptResumed ? 1 : 0) + ",\n";
    s += "  \"ckpt_written\": " + std::to_string(out.ckptWritten) + ",\n";
    // The scheduler profile travels as prof_-prefixed integers (the
    // prefix keeps extractU64 needles from colliding with stats keys).
    s += "  \"prof_enabled\": " +
         std::to_string(out.profile.enabled ? 1 : 0) + ",\n";
    forEachProfileField(out.profile,
                        [&s](const char *name, const uint64_t &v) {
                            s += "  \"prof_" + std::string(name) +
                                 "\": " + std::to_string(v) + ",\n";
                        });
    s += "  \"input\": \"" + jsonEscape(out.workloadInput) + "\",\n";
    s += "  \"error\": \"" + jsonEscape(out.error) + "\",\n";
    s += "  \"stats\": " + statsToJson(out.stats) + "\n}\n";
    return s;
}

bool
decodeOutcome(const std::string &text, CellOutcome &out)
{
    uint64_t failed = 0, timed_out = 0;
    uint64_t setup_us = 0, run_us = 0, asm_built = 0, warm_built = 0;
    uint64_t ckpt_stopped = 0, ckpt_resumed = 0, ckpt_written = 0;
    CellOutcome tmp;
    if (!extractU64(text, "failed", failed) ||
        !extractU64(text, "timed_out", timed_out) ||
        !extractU64(text, "setup_us", setup_us) ||
        !extractU64(text, "run_us", run_us) ||
        !extractU64(text, "asm_built", asm_built) ||
        !extractU64(text, "warm_built", warm_built) ||
        !extractU64(text, "ckpt_stopped", ckpt_stopped) ||
        !extractU64(text, "ckpt_resumed", ckpt_resumed) ||
        !extractU64(text, "ckpt_written", ckpt_written) ||
        !extractString(text, "input", tmp.workloadInput) ||
        !extractString(text, "error", tmp.error))
        return false;
    uint64_t prof_enabled = 0;
    bool prof_ok = extractU64(text, "prof_enabled", prof_enabled);
    forEachProfileField(tmp.profile,
                        [&](const char *name, uint64_t &v) {
                            std::string key = "prof_" + std::string(name);
                            prof_ok = prof_ok &&
                                      extractU64(text, key.c_str(), v);
                        });
    if (!prof_ok)
        return false;
    tmp.profile.enabled = prof_enabled != 0;
    size_t spos = text.find("\"stats\":");
    if (spos == std::string::npos ||
        !statsFromJson(text.substr(spos), tmp.stats))
        return false;
    tmp.failed = failed != 0;
    tmp.timedOut = timed_out != 0;
    tmp.setupSeconds = static_cast<double>(setup_us) / 1e6;
    tmp.runSeconds = static_cast<double>(run_us) / 1e6;
    tmp.asmBuilt = asm_built != 0;
    tmp.warmBuilt = warm_built != 0;
    tmp.ckptStopped = ckpt_stopped != 0;
    tmp.ckptResumed = ckpt_resumed != 0;
    tmp.ckptWritten = ckpt_written;
    out = std::move(tmp);
    return true;
}

void
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // parent gone (SIGPIPE would normally kill us)
        }
        off += static_cast<size_t>(n);
    }
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Drain available bytes; returns false once the fd reports EOF. */
bool
drainFd(int fd, std::string &buf, size_t cap)
{
    char chunk[4096];
    for (;;) {
        ssize_t n = read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buf.append(chunk, static_cast<size_t>(n));
            if (buf.size() > cap)
                buf.erase(0, buf.size() - cap);
            continue;
        }
        if (n == 0)
            return false;
        if (errno == EINTR)
            continue;
        return true; // EAGAIN: no more for now, fd still open
    }
}

std::string
stderrTail(const std::string &captured, size_t max = 2048)
{
    if (captured.empty())
        return "";
    std::string tail = captured.size() > max
                           ? "..." + captured.substr(captured.size() - max)
                           : captured;
    return "\n  child stderr tail:\n" + tail;
}

} // anonymous namespace

// ------------------------------------------------------- isolated mode

CellOutcome
runCellIsolated(const SweepCell &cell, const IsolationConfig &cfg,
                bool allow_resume,
                std::shared_ptr<const Workload> prebuilt_w,
                std::shared_ptr<const EmuSnapshot> prebuilt_snap)
{
    int res_pipe[2], err_pipe[2];
    if (pipe(res_pipe) != 0) {
        warn("VPIR_ISOLATE: pipe() failed (" +
             std::string(std::strerror(errno)) +
             "); running cell in-process");
        return computeCellOnce(cell, cfg.timeoutMs, allow_resume,
                               prebuilt_w, prebuilt_snap);
    }
    if (pipe(err_pipe) != 0) {
        warn("VPIR_ISOLATE: pipe() failed (" +
             std::string(std::strerror(errno)) +
             "); running cell in-process");
        close(res_pipe[0]);
        close(res_pipe[1]);
        return computeCellOnce(cell, cfg.timeoutMs, allow_resume,
                               prebuilt_w, prebuilt_snap);
    }

    pid_t pid = fork();
    if (pid < 0) {
        warn("VPIR_ISOLATE: fork() failed (" +
             std::string(std::strerror(errno)) +
             "); running cell in-process");
        close(res_pipe[0]);
        close(res_pipe[1]);
        close(err_pipe[0]);
        close(err_pipe[1]);
        return computeCellOnce(cell, cfg.timeoutMs, allow_resume,
                               prebuilt_w, prebuilt_snap);
    }

    if (pid == 0) {
        // Child: graceful stop arrives as SIGUSR1 from the parent (not
        // SIGINT/SIGTERM, which a terminal delivers to the whole
        // process group); install the handler *before* unmasking
        // anything so a stop racing the fork is never lost. The flag
        // is only acted on at checkpoint boundaries.
        clearCkptStopSignal();
        struct sigaction usr;
        std::memset(&usr, 0, sizeof(usr));
        usr.sa_handler = [](int) { noteCkptStopSignal(); };
        sigemptyset(&usr.sa_mask);
        usr.sa_flags = SA_RESTART;
        sigaction(SIGUSR1, &usr, nullptr);

        // Finish this cell even if a terminal ^C reaches the whole
        // process group — the parent coordinates shutdown; a
        // hard-killed parent leaves us to die on SIGPIPE at result
        // write. The parent enforces the wall-clock deadline with
        // SIGKILL, so no cooperative deadline is armed here.
        sigset_t block;
        sigemptyset(&block);
        sigaddset(&block, SIGINT);
        sigaddset(&block, SIGTERM);
        sigprocmask(SIG_BLOCK, &block, nullptr);

        close(res_pipe[0]);
        close(err_pipe[0]);
        dup2(err_pipe[1], STDERR_FILENO);
        close(err_pipe[1]);
        if (cfg.rlimitMb) {
            struct rlimit rl;
            rl.rlim_cur = rl.rlim_max =
                static_cast<rlim_t>(cfg.rlimitMb) << 20;
            setrlimit(RLIMIT_AS, &rl);
        }
        CellOutcome out;
        try {
            // Disarm any stop scope inherited from the forking worker
            // thread: the child listens to its own SIGUSR1 flag only.
            CkptStopScope child_scope(nullptr);
            out = computeCellOnce(cell, 0, allow_resume, prebuilt_w,
                                  prebuilt_snap);
        } catch (...) {
            out.failed = true;
            out.error = "unexpected exception in isolated cell worker";
            out.stats = CoreStats{};
        }
        writeAll(res_pipe[1], encodeOutcome(out));
        // _exit: never flush stdio buffers inherited from the parent
        // (a duplicate table header would break stdout determinism).
        _exit(0);
    }

    // Parent: drain both pipes until the child is reaped. EOF alone is
    // not a reliable end-of-child signal — a sibling worker's fork may
    // have inherited our write ends — so reap with WNOHANG in the
    // poll loop and stop once the child is gone and the pipes are dry.
    close(res_pipe[1]);
    close(err_pipe[1]);
    setNonBlocking(res_pipe[0]);
    setNonBlocking(err_pipe[0]);

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        cfg.timeoutMs ? cfg.timeoutMs : 0);
    bool timedOut = false;
    bool reaped = false;
    bool stopForwarded = false;
    int status = 0;
    std::string resultText, errText;
    constexpr size_t RESULT_CAP = 4u << 20;
    constexpr size_t STDERR_CAP = 64u << 10;

    while (!reaped) {
        // Engine stop: tell the child once; it drains to its next
        // checkpoint boundary and hands back a resumable outcome (or,
        // without persistence, simply finishes the cell).
        if (!stopForwarded && cfg.stopFlag && cfg.stopFlag->load()) {
            kill(pid, SIGUSR1);
            stopForwarded = true;
        }
        struct pollfd fds[2] = {{res_pipe[0], POLLIN, 0},
                                {err_pipe[0], POLLIN, 0}};
        int wait_ms = 100;
        if (cfg.timeoutMs && !timedOut) {
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
            if (left <= 0) {
                timedOut = true;
                kill(pid, SIGKILL);
            } else {
                wait_ms = static_cast<int>(
                    std::min<long long>(left, 100));
            }
        }
        poll(fds, 2, wait_ms);
        drainFd(res_pipe[0], resultText, RESULT_CAP);
        drainFd(err_pipe[0], errText, STDERR_CAP);

        pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid) {
            reaped = true;
            // Final drain: everything the child wrote is in the pipe
            // buffers by now.
            drainFd(res_pipe[0], resultText, RESULT_CAP);
            drainFd(err_pipe[0], errText, STDERR_CAP);
        } else if (r < 0 && errno != EINTR) {
            reaped = true; // should not happen; avoid spinning
        }
    }
    close(res_pipe[0]);
    close(err_pipe[0]);

    CellOutcome out;
    if (!timedOut && decodeOutcome(resultText, out)) {
        // Clean handoff (success or structured failure). Forward the
        // child's stderr (warn lines etc.) so the two modes look the
        // same on the console.
        if (!errText.empty())
            fwrite(errText.data(), 1, errText.size(), stderr);
        return out;
    }

    out = CellOutcome{};
    out.failed = true;
    out.timedOut = timedOut;
    out.stats = CoreStats{};
    if (timedOut) {
        out.error = "cell deadline exceeded (VPIR_CELL_TIMEOUT_MS=" +
                    std::to_string(cfg.timeoutMs) +
                    "): isolated worker killed with SIGKILL" +
                    cellReproInfo(cell) + stderrTail(errText);
    } else if (WIFSIGNALED(status)) {
        // The child died before it could attach its PanicContext
        // frames to anything, so the reproducibility info must be
        // synthesized here in the parent.
        out.error = "isolated cell worker killed by " +
                    signalName(WTERMSIG(status)) + cellReproInfo(cell) +
                    stderrTail(errText);
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        out.error = "isolated cell worker exited with code " +
                    std::to_string(WEXITSTATUS(status)) +
                    cellReproInfo(cell) + stderrTail(errText);
    } else {
        out.error =
            "isolated cell worker returned a truncated result payload" +
            stderrTail(errText);
    }
    return out;
}

} // namespace sweep
} // namespace vpir
