#include "sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "sim/warm_cache.hh"
#include "sweep/isolate.hh"
#include "sweep/stats_json.hh"

namespace vpir
{
namespace sweep
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // anonymous namespace

unsigned
defaultJobs()
{
    if (envSet("VPIR_JOBS")) {
        uint64_t v = parseEnvU64("VPIR_JOBS", 0);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("ignoring VPIR_JOBS=0");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::string
defaultCacheDir()
{
    if (const char *s = std::getenv("VPIR_RESULT_CACHE"))
        return s;
    return "";
}

// --------------------------------------------------------------- hash

namespace
{

constexpr uint64_t FNV_OFFSET = 0xcbf29ce484222325ull;
constexpr uint64_t FNV_PRIME = 0x100000001b3ull;

void
mix(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= FNV_PRIME;
    }
}

void
mixCache(uint64_t &h, const CacheParams &c)
{
    mix(h, c.sizeBytes);
    mix(h, c.ways);
    mix(h, c.lineBytes);
    mix(h, c.hitLatency);
    mix(h, c.missLatency);
}

} // anonymous namespace

uint64_t
hashParams(const CoreParams &p)
{
    // Every field of CoreParams (and its nested parameter structs)
    // must be mixed in: a skipped field is a latent stale-cache
    // collision. This guard fails to compile when CoreParams changes
    // size — update the field list below, then the constant.
    static_assert(sizeof(CoreParams) == 240,
                  "CoreParams changed: update hashParams()");

    uint64_t h = FNV_OFFSET;
    mix(h, p.fetchWidth);
    mix(h, p.fetchQueueSize);
    mix(h, p.dispatchWidth);
    mix(h, p.issueWidth);
    mix(h, p.commitWidth);
    mix(h, p.robEntries);
    mix(h, p.lsqEntries);
    mix(h, p.maxUnresolvedBranches);
    mix(h, p.dcachePorts);
    mixCache(h, p.icache);
    mixCache(h, p.dcache);
    mix(h, p.bpred.historyBits);
    mix(h, p.bpred.tableEntries);
    mix(h, p.bpred.btbEntries);
    mix(h, p.bpred.rasEntries);
    mix(h, static_cast<uint64_t>(p.technique));
    mix(h, p.vpt.entries);
    mix(h, p.vpt.ways);
    mix(h, static_cast<uint64_t>(p.vpt.scheme));
    mix(h, p.vpt.confidenceBits);
    mix(h, p.vpt.confidenceThreshold);
    mix(h, p.rb.entries);
    mix(h, p.rb.ways);
    mix(h, static_cast<uint64_t>(p.branchRes));
    mix(h, static_cast<uint64_t>(p.reexec));
    mix(h, p.vpVerifyLatency);
    mix(h, static_cast<uint64_t>(p.irValidation));
    mix(h, p.vpPredictResults ? 1 : 0);
    mix(h, p.vpPredictAddresses ? 1 : 0);
    mix(h, p.maxCycles);
    mix(h, p.maxInsts);
    mix(h, p.warmupInsts);
    mix(h, p.checkRetire ? 1 : 0);
    mix(h, p.irOracleCheck ? 1 : 0);
    mix(h, p.auditInvariants ? 1 : 0);
    mix(h, p.watchdogCycles);
    mix(h, p.ckptInsts);
    mix(h, p.faults.seed);
    auto mixDouble = [&h](double d) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        mix(h, bits);
    };
    mixDouble(p.faults.vptValueRate);
    mixDouble(p.faults.vptConfRate);
    mixDouble(p.faults.rbOperandRate);
    mixDouble(p.faults.rbResultRate);
    mixDouble(p.faults.rbLinkRate);
    mixDouble(p.faults.rbDropInvRate);
    return h;
}

uint64_t
cellHash(const SweepCell &cell)
{
    uint64_t h = hashParams(cell.params);
    for (char c : cell.workload) {
        h ^= static_cast<unsigned char>(c);
        h *= FNV_PRIME;
    }
    uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(cell.scale.factor),
                  "scale factor must be 64-bit");
    std::memcpy(&scale_bits, &cell.scale.factor, sizeof(scale_bits));
    mix(h, scale_bits);
    return h;
}

// -------------------------------------------------------------- engine

SweepEngine::SweepEngine(unsigned jobs, const std::string &cache_dir)
    : numJobs(jobs ? jobs : defaultJobs()), cacheDir(cache_dir),
      iso(isolationFromEnv())
{
    // Isolated cells observe the engine's graceful-stop flag through
    // the forking parent (SIGUSR1 forwarding, isolate.hh).
    iso.stopFlag = &stopSig;
    // Same crash-consistency policy as the result cache: a killed
    // process leaks its checkpoint tmp file between write and rename.
    if (const char *d = std::getenv("VPIR_CKPT_DIR"))
        scrubCkptTmpFiles(d);
    if (!cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir, ec);
        if (ec) {
            warn("cannot create VPIR_RESULT_CACHE dir '" + cacheDir +
                 "': " + ec.message() + "; disk cache disabled");
            cacheDir.clear();
        } else {
            scrubStaleTmpFiles();
        }
    }
}

void
SweepEngine::scrubStaleTmpFiles()
{
    // The atomic tmp+rename cache write leaks its tmp file when the
    // writing process is SIGKILLed between the two steps; a later
    // sweep must not let them accumulate. A tmp belonging to a
    // concurrently live sweep could in principle be scrubbed here too
    // — that sweep's rename then fails with a warning and the cell is
    // simply recomputed next run, so the race is benign.
    std::error_code ec;
    std::filesystem::directory_iterator it(cacheDir, ec), end;
    size_t scrubbed = 0;
    for (; !ec && it != end; it.increment(ec)) {
        if (it->path().filename().string().find(".json.tmp.") ==
            std::string::npos)
            continue;
        std::error_code rm_ec;
        if (std::filesystem::remove(it->path(), rm_ec))
            ++scrubbed;
    }
    if (scrubbed)
        warn("scrubbed " + std::to_string(scrubbed) +
             " stale .tmp file(s) left in result cache '" + cacheDir +
             "' by a killed process");
}

SweepEngine::~SweepEngine()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        shuttingDown = true;
    }
    workAvailable.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
SweepEngine::startWorkers()
{
    // Called with mu held, only in threaded mode.
    if (!workers.empty() || numJobs <= 1)
        return;
    workers.reserve(numJobs);
    for (unsigned i = 0; i < numJobs; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

SweepEngine::Record *
SweepEngine::findOrCreate(const SweepCell &cell)
{
    uint64_t key = cellHash(cell);
    auto it = cells.find(key);
    if (it != cells.end())
        return it->second.get();

    auto rec = std::make_unique<Record>();
    rec->cell = cell;
    rec->key = key;
    Record *raw = rec.get();
    cells.emplace(key, std::move(rec));
    submissionOrder.push_back(raw);
    queue.push_back(raw);
    ++pending;
    if (numJobs > 1) {
        startWorkers();
        workAvailable.notify_one();
    }
    return raw;
}

void
SweepEngine::prefetch(const SweepCell &cell)
{
    std::lock_guard<std::mutex> lk(mu);
    findOrCreate(cell);
}

void
SweepEngine::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        workAvailable.wait(
            lk, [&] { return shuttingDown || !queue.empty(); });
        if (shuttingDown)
            return;
        Record *r = queue.front();
        queue.pop_front();
        // Graceful stop: abandon queued cells unrun (in-flight ones
        // finish on their own threads); a rerun resumes them through
        // the disk cache.
        if (stopSig.load()) {
            r->skipped = true;
            r->done = true;
            --pending;
            cellFinished.notify_all();
            continue;
        }
        r->running = true;
        lk.unlock();
        runRecord(*r);
        lk.lock();
        r->running = false;
        r->done = true;
        --pending;
        cellFinished.notify_all();
    }
}

void
SweepEngine::drain()
{
    auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lk(mu);
    if (numJobs <= 1) {
        while (!queue.empty()) {
            Record *r = queue.front();
            queue.pop_front();
            if (stopSig.load()) {
                r->skipped = true;
                r->done = true;
                --pending;
                continue;
            }
            r->running = true;
            lk.unlock();
            runRecord(*r);
            lk.lock();
            r->running = false;
            r->done = true;
            --pending;
        }
    } else {
        cellFinished.wait(lk, [&] { return pending == 0; });
    }
    drainSeconds += secondsSince(t0);
    lk.unlock();
    maybeExitOnStop();
}

const CoreStats &
SweepEngine::get(const SweepCell &cell)
{
    std::unique_lock<std::mutex> lk(mu);
    Record *r = findOrCreate(cell);
    if (r->done)
        return r->stats;

    auto t0 = std::chrono::steady_clock::now();
    if (numJobs <= 1) {
        // Inline mode: run the requested cell now (FIFO position is
        // irrelevant — every cell eventually runs exactly once).
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (*it == r) {
                queue.erase(it);
                break;
            }
        }
        if (stopSig.load()) {
            r->skipped = true;
            r->done = true;
            --pending;
        } else {
            r->running = true;
            lk.unlock();
            runRecord(*r);
            lk.lock();
            r->running = false;
            r->done = true;
            --pending;
        }
    } else {
        cellFinished.wait(lk, [&] { return r->done; });
    }
    drainSeconds += secondsSince(t0);
    lk.unlock();
    maybeExitOnStop();
    return r->stats;
}

void
SweepEngine::runRecord(Record &rec)
{
    auto t0 = std::chrono::steady_clock::now();
    if (!cacheDir.empty() && tryLoadFromDisk(rec)) {
        rec.fromDiskCache = true;
        rec.wallSeconds = secondsSince(t0);
        return;
    }

    // Fault isolation: a failure inside this cell must not take down
    // the sweep. In-process, panic()/fatal() (simulator bug, watchdog,
    // lockstep divergence, bad workload name) become SimError inside
    // computeCellOnce(); under VPIR_ISOLATE=1 even a hard crash,
    // sanitizer abort, rlimit OOM, or deadline SIGKILL of the forked
    // worker is contained. Either way the cell is retried once and a
    // persistent failure is recorded in the result instead of
    // propagating.
    // Warm-start prewarm for the isolated mode: the forked child must
    // never touch the WarmStartCache (another worker thread could hold
    // its mutex at fork time), so the parent resolves the handles
    // here, on a plain thread, and hands them to the child via the
    // copied address space. A prewarm failure (bad workload name etc.)
    // is deliberately swallowed: the child retries cold and reports
    // the same error through the normal structured-failure path.
    std::shared_ptr<const Workload> pw;
    std::shared_ptr<const EmuSnapshot> psnap;
    bool prewarm_asm = false, prewarm_warm = false;
    if (iso.enabled && WarmStartCache::enabledFromEnv()) {
        PanicThrowScope throw_scope;
        try {
            WarmStartCache &cache = WarmStartCache::global();
            pw = cache.workload(rec.cell.workload, rec.cell.scale,
                                &prewarm_asm);
            psnap = cache.snapshot(rec.cell.workload, rec.cell.scale,
                                   rec.cell.params.warmupInsts,
                                   &prewarm_warm);
        } catch (const SimError &) {
            pw = nullptr;
            psnap = nullptr;
        }
    }

    // Escalation ladder: retry (with optional exponential backoff and
    // jitter) -> resume from the newest valid checkpoint -> cold
    // restart -> structured CellFailure. Intermediate rungs resume so
    // each retry makes forward progress past where the last attempt
    // died; the final rung starts cold in case the checkpoint itself
    // is what kills the cell. With one retry (the default) that means:
    // attempt 1 resumes (continuing an interrupted sweep), attempt 2
    // is the cold fallback.
    const bool ckptPersist = rec.cell.params.ckptInsts != 0 &&
                             std::getenv("VPIR_CKPT_DIR") != nullptr;
    const int max_attempts =
        1 + static_cast<int>(std::min<uint64_t>(
                parseEnvU64("VPIR_CELL_RETRIES", 1), 100));
    const uint64_t backoff_ms = parseEnvU64("VPIR_RETRY_BACKOFF_MS", 0);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        rec.attempts = attempt;
        if (attempt > 1 && backoff_ms) {
            // Bounded exponential backoff, plus deterministic jitter
            // derived from (cell key, attempt) so a fleet of workers
            // retrying simultaneously does not stampede in phase.
            uint64_t delay = backoff_ms;
            for (int i = 2; i < attempt && delay < 30000; ++i)
                delay *= 2;
            delay = std::min<uint64_t>(delay, 30000);
            Rng jitter(Rng::split(rec.key,
                                  static_cast<uint64_t>(attempt)));
            delay += jitter.below(delay / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
        const bool allow_resume =
            attempt == 1 || attempt < max_attempts;
        CellOutcome out =
            iso.enabled
                ? runCellIsolated(rec.cell, iso, allow_resume, pw,
                                  psnap)
                : [&] {
                      // In-process cells poll the engine stop flag at
                      // checkpoint boundaries (isolated ones get it
                      // forwarded as SIGUSR1).
                      CkptStopScope stop_scope(&stopSig);
                      return computeCellOnce(rec.cell, iso.timeoutMs,
                                             allow_resume);
                  }();
        rec.stats = out.stats;
        rec.workloadInput = std::move(out.workloadInput);
        rec.failed = out.failed;
        rec.timedOut = out.timedOut;
        rec.error = std::move(out.error);
        rec.setupSeconds = out.setupSeconds;
        rec.runSeconds = out.runSeconds;
        rec.profile = out.profile;
        rec.ckptResumed = out.ckptResumed;
        rec.ckptWritten = out.ckptWritten;
        // Attribute a parent-side prewarm build to this cell: the cell
        // that triggered the build is the one that paid for it, in
        // both execution modes.
        rec.asmBuilt = out.asmBuilt || prewarm_asm;
        rec.warmBuilt = out.warmBuilt || prewarm_warm;
        if (out.ckptStopped) {
            // Graceful stop honored at a checkpoint boundary: the cell
            // is unfinished but its progress is on disk. Report it
            // skipped (not failed, never cached) so a rerun resumes it.
            rec.skipped = true;
            rec.failed = false;
            rec.stats = CoreStats{};
            rec.wallSeconds = secondsSince(t0);
            return;
        }
        if (!rec.failed)
            break;
        // A deadline overrun is deterministic in time: retrying only
        // doubles the loss — unless checkpoints persist progress, in
        // which case each retry resumes past where the last one died.
        if (rec.timedOut && !ckptPersist)
            break;
    }
    rec.wallSeconds = secondsSince(t0);
    // Never cache a failed cell: a transient failure must not poison
    // later runs through the disk cache.
    if (!rec.failed && !cacheDir.empty())
        saveToDisk(rec);
}

// ---------------------------------------------------------- disk cache

std::string
SweepEngine::diskPath(const Record &rec) const
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, rec.key);
    return cacheDir + "/" + rec.cell.workload + "-" + hex + ".json";
}

bool
SweepEngine::tryLoadFromDisk(Record &rec)
{
    std::ifstream in(diskPath(rec));
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();

    // Validate the key: a file that does not carry the exact cell
    // hash (e.g. written by an incompatible version) is ignored.
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, rec.key);
    if (text.find(std::string("\"cell_hash\": \"") + hex + "\"") ==
        std::string::npos)
        return false;

    // Validate the stat schema: a file written by a binary with a
    // different stat field set must be rejected loudly up front, not
    // through a silent field-by-field parse failure.
    char sfp[17];
    std::snprintf(sfp, sizeof(sfp), "%016" PRIx64,
                  statsSchemaFingerprint());
    if (text.find(std::string("\"stats_schema\": \"") + sfp + "\"") ==
        std::string::npos) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("result cache file " + diskPath(rec) +
                 " carries a different stats schema (written by an "
                 "older binary?); recomputing affected cells");
        return false;
    }

    size_t spos = text.find("\"stats\":");
    if (spos == std::string::npos)
        return false;
    if (!statsFromJson(text.substr(spos), rec.stats))
        return false;

    size_t ipos = text.find("\"input\": \"");
    if (ipos != std::string::npos) {
        ipos += std::strlen("\"input\": \"");
        size_t end = text.find('"', ipos);
        if (end != std::string::npos)
            rec.workloadInput = text.substr(ipos, end - ipos);
    }
    return true;
}

void
SweepEngine::saveToDisk(const Record &rec)
{
    std::string path = diskPath(rec);
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<unsigned>(getpid()));
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("cannot write result cache file " + tmp);
            return;
        }
        char hex[17], phex[17], sfp[17];
        std::snprintf(hex, sizeof(hex), "%016" PRIx64, rec.key);
        std::snprintf(phex, sizeof(phex), "%016" PRIx64,
                      hashParams(rec.cell.params));
        std::snprintf(sfp, sizeof(sfp), "%016" PRIx64,
                      statsSchemaFingerprint());
        out << "{\n"
            << "  \"schema\": 2,\n"
            << "  \"stats_schema\": \"" << sfp << "\",\n"
            << "  \"workload\": \"" << rec.cell.workload << "\",\n"
            << "  \"label\": \"" << rec.cell.label << "\",\n"
            << "  \"input\": \"" << rec.workloadInput << "\",\n"
            << "  \"cell_hash\": \"" << hex << "\",\n"
            << "  \"params_hash\": \"" << phex << "\",\n"
            << "  \"max_insts\": " << rec.cell.params.maxInsts << ",\n"
            << "  \"scale\": " << rec.cell.scale.factor << ",\n"
            << "  \"stats\": " << statsToJson(rec.stats) << "\n"
            << "}\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("cannot publish result cache file " + path + ": " +
             ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

// ------------------------------------------------------- observability

std::vector<CellTiming>
SweepEngine::timings() const
{
    std::lock_guard<std::mutex> lk(mu);
    std::vector<CellTiming> out;
    out.reserve(submissionOrder.size());
    for (const Record *r : submissionOrder) {
        if (!r->done || r->failed || r->skipped)
            continue;
        CellTiming t;
        t.workload = r->cell.workload;
        t.label = r->cell.label;
        t.paramsHash = hashParams(r->cell.params);
        t.wallSeconds = r->wallSeconds;
        t.committedInsts = r->stats.committedInsts;
        t.fromDiskCache = r->fromDiskCache;
        t.setupSeconds = r->setupSeconds;
        t.runSeconds = r->runSeconds;
        t.assembled = r->asmBuilt;
        t.warmed = r->warmBuilt;
        t.attempts = r->attempts > 0 ? r->attempts : 1;
        t.ckptResumed = r->ckptResumed;
        t.ckptWritten = r->ckptWritten;
        t.profile = r->profile;
        out.push_back(std::move(t));
    }
    return out;
}

std::vector<CellFailure>
SweepEngine::failures() const
{
    std::lock_guard<std::mutex> lk(mu);
    std::vector<CellFailure> out;
    for (const Record *r : submissionOrder) {
        if (!r->done || !r->failed)
            continue;
        CellFailure f;
        f.workload = r->cell.workload;
        f.label = r->cell.label;
        f.paramsHash = hashParams(r->cell.params);
        f.attempts = r->attempts;
        f.timedOut = r->timedOut;
        f.error = r->error;
        out.push_back(std::move(f));
    }
    return out;
}

double
SweepEngine::sweepWallSeconds() const
{
    std::lock_guard<std::mutex> lk(mu);
    return drainSeconds;
}

size_t
SweepEngine::cellsComputed() const
{
    std::lock_guard<std::mutex> lk(mu);
    size_t n = 0;
    for (const Record *r : submissionOrder)
        if (r->done && !r->fromDiskCache && !r->skipped)
            ++n;
    return n;
}

size_t
SweepEngine::cellsSkipped() const
{
    std::lock_guard<std::mutex> lk(mu);
    size_t n = 0;
    for (const Record *r : submissionOrder)
        if (r->skipped)
            ++n;
    return n;
}

size_t
SweepEngine::cellsFromDiskCache() const
{
    std::lock_guard<std::mutex> lk(mu);
    size_t n = 0;
    for (const Record *r : submissionOrder)
        if (r->done && r->fromDiskCache)
            ++n;
    return n;
}

bool
SweepEngine::writeTimingJson(const std::string &path) const
{
    std::vector<CellTiming> ts = timings();
    double wall = sweepWallSeconds();
    double cpu = 0.0, setup = 0.0, run = 0.0;
    uint64_t insts = 0, exec_insts = 0;
    size_t disk_hits = 0, assembled = 0, warmed = 0;
    for (const CellTiming &t : ts) {
        cpu += t.wallSeconds;
        setup += t.setupSeconds;
        run += t.runSeconds;
        insts += t.committedInsts;
        if (t.fromDiskCache)
            ++disk_hits;
        else
            exec_insts += t.committedInsts;
        if (t.assembled)
            ++assembled;
        if (t.warmed)
            ++warmed;
    }
    WarmStartCache::Counters wc = WarmStartCache::global().counters();

    std::ofstream out(path);
    if (!out)
        return false;
    char buf[512];
    // Aggregate MIPS measures simulation speed, so it covers only the
    // cells this run actually simulated: a disk-cache hit contributes
    // instructions but almost no wall time, and folding it in used to
    // inflate the figure arbitrarily. With nothing executed there is
    // no speed to report — "mips" is null.
    char mips[32];
    if (disk_hits < ts.size() && wall > 0.0)
        std::snprintf(mips, sizeof(mips), "%.3f",
                      static_cast<double>(exec_insts) / wall / 1e6);
    else
        std::snprintf(mips, sizeof(mips), "null");
    out << "{\n  \"jobs\": " << numJobs << ",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"aggregate\": {\"cells\": %zu, "
                  "\"disk_cache_hits\": %zu, \"wall_s\": %.6f, "
                  "\"cpu_s\": %.6f, \"setup_s\": %.6f, "
                  "\"run_s\": %.6f, \"insts\": %" PRIu64
                  ", \"executed_insts\": %" PRIu64
                  ", \"mips\": %s},\n",
                  ts.size(), disk_hits, wall, cpu, setup, run, insts,
                  exec_insts, mips);
    out << buf;
    // Process-wide warm-start counters: "builds" should equal the
    // number of distinct (workload, scale[, warmup]) keys the process
    // ever touched, no matter how many cells ran.
    std::snprintf(buf, sizeof(buf),
                  "  \"warm_cache\": {\"enabled\": %s, "
                  "\"program_builds\": %" PRIu64
                  ", \"program_hits\": %" PRIu64
                  ", \"snapshot_builds\": %" PRIu64
                  ", \"snapshot_hits\": %" PRIu64
                  ", \"cells_assembled\": %zu, "
                  "\"cells_warmed\": %zu},\n",
                  WarmStartCache::enabledFromEnv() ? "true" : "false",
                  wc.programBuilds, wc.programHits, wc.snapshotBuilds,
                  wc.snapshotHits, assembled, warmed);
    out << buf << "  \"cells\": [\n";
    for (size_t i = 0; i < ts.size(); ++i) {
        const CellTiming &t = ts[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"workload\": \"%s\", \"label\": \"%s\", "
                      "\"params_hash\": \"%016" PRIx64
                      "\", \"wall_s\": %.6f, \"setup_s\": %.6f, "
                      "\"run_s\": %.6f, \"insts\": %" PRIu64
                      ", \"mips\": %.3f, \"disk_cache\": %s, "
                      "\"assembled\": %s, \"warmed\": %s, "
                      "\"attempts\": %d, \"ckpt_resumed\": %s, "
                      "\"ckpt_written\": %" PRIu64,
                      t.workload.c_str(), t.label.c_str(), t.paramsHash,
                      t.wallSeconds, t.setupSeconds, t.runSeconds,
                      t.committedInsts, t.mips(),
                      t.fromDiskCache ? "true" : "false",
                      t.assembled ? "true" : "false",
                      t.warmed ? "true" : "false",
                      t.attempts,
                      t.ckptResumed ? "true" : "false",
                      t.ckptWritten);
        out << buf;
        if (t.profile.enabled) {
            out << ", \"profile\": {";
            bool first = true;
            forEachProfileField(
                t.profile, [&](const char *name, const uint64_t &v) {
                    out << (first ? "" : ", ") << '"' << name
                        << "\": " << v;
                    first = false;
                });
            out << '}';
        }
        out << (i + 1 < ts.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    return out.good();
}

void
SweepEngine::printSummary(std::FILE *out) const
{
    std::vector<CellTiming> ts = timings();
    double wall = sweepWallSeconds();
    double cpu = 0.0;
    uint64_t insts = 0, exec_insts = 0;
    size_t disk_hits = 0;
    for (const CellTiming &t : ts) {
        cpu += t.wallSeconds;
        insts += t.committedInsts;
        if (t.fromDiskCache)
            ++disk_hits;
        else
            exec_insts += t.committedInsts;
    }
    // Like the JSON aggregate: MIPS over executed cells only; a
    // fully-cached run has no simulation speed to report.
    if (disk_hits < ts.size() && wall > 0.0) {
        std::fprintf(
            out,
            "[sweep] %zu cells (%zu from disk cache), jobs=%u: "
            "wall %.2fs, cpu %.2fs, %.2fM insts simulated, "
            "aggregate %.2f MIPS\n",
            ts.size(), disk_hits, numJobs, wall, cpu,
            static_cast<double>(insts) / 1e6,
            static_cast<double>(exec_insts) / wall / 1e6);
    } else {
        std::fprintf(
            out,
            "[sweep] %zu cells (%zu from disk cache), jobs=%u: "
            "wall %.2fs, cpu %.2fs, %.2fM insts simulated, "
            "aggregate n/a MIPS (no cell executed)\n",
            ts.size(), disk_hits, numJobs, wall, cpu,
            static_cast<double>(insts) / 1e6);
    }
    WarmStartCache::Counters wc = WarmStartCache::global().counters();
    if (wc.programBuilds + wc.programHits + wc.snapshotBuilds +
        wc.snapshotHits > 0) {
        std::fprintf(out,
                     "[sweep] warm-start cache: %" PRIu64
                     " program build(s) / %" PRIu64 " hit(s), %" PRIu64
                     " warmup snapshot(s) / %" PRIu64 " clone(s)\n",
                     wc.programBuilds, wc.programHits,
                     wc.snapshotBuilds, wc.snapshotHits);
    }
    std::vector<CellFailure> fails = failures();
    if (!fails.empty()) {
        std::fprintf(out, "[sweep] %zu cell(s) FAILED:\n",
                     fails.size());
        for (const CellFailure &f : fails) {
            std::fprintf(out,
                         "[sweep]   FAILED %s / %s (params %016" PRIx64
                         ", %d attempt%s):\n%s\n",
                         f.workload.c_str(), f.label.c_str(),
                         f.paramsHash, f.attempts,
                         f.attempts == 1 ? "" : "s", f.error.c_str());
        }
    }
    if (std::getenv("VPIR_TIMING_VERBOSE")) {
        for (const CellTiming &t : ts) {
            std::fprintf(out,
                         "[sweep]   %-10s %-18s %8.3fs %8.2f MIPS%s\n",
                         t.workload.c_str(), t.label.c_str(),
                         t.wallSeconds, t.mips(),
                         t.fromDiskCache ? " (disk cache)" : "");
        }
    }
}

// ------------------------------------------------- signals & interrupt

void
SweepEngine::requestStop(int sig)
{
    // Called from the signal handler: a lock-free atomic store is the
    // only thing allowed here. Workers observe the flag at their next
    // dequeue; drain()/get() observe it on completion.
    stopSig.store(sig);
}

void
SweepEngine::maybeExitOnStop()
{
    int sig = stopSig.load();
    if (!sig || !exitOnStop)
        return;

    // Let every in-flight cell finish (workers skip the rest of the
    // queue); completed cells were flushed to the disk cache as they
    // finished, so a rerun resumes exactly the missing ones.
    size_t total, done_cells;
    {
        std::unique_lock<std::mutex> lk(mu);
        if (numJobs <= 1) {
            while (!queue.empty()) {
                Record *r = queue.front();
                queue.pop_front();
                r->skipped = true;
                r->done = true;
                --pending;
            }
        } else {
            cellFinished.wait(lk, [&] { return pending == 0; });
        }
        total = submissionOrder.size();
        done_cells = 0;
        for (const Record *r : submissionOrder)
            if (r->done && !r->skipped)
                ++done_cells;
    }
    printSummary(stderr);
    std::fprintf(stderr,
                 "[sweep] interrupted by %s: %zu/%zu cells done, "
                 "rerun to resume%s\n",
                 signalName(sig).c_str(), done_cells, total,
                 cacheDir.empty()
                     ? " (set VPIR_RESULT_CACHE to make resumption "
                       "skip completed cells)"
                     : " (completed cells are in the result cache)");
    std::exit(128 + sig);
}

namespace
{

std::atomic<SweepEngine *> signalEngine{nullptr};
volatile std::sig_atomic_t signalSeen = 0;

void
sweepSignalHandler(int sig)
{
    // Second signal: the user means it — hard-kill immediately.
    if (signalSeen)
        _exit(128 + sig);
    signalSeen = 1;
    if (SweepEngine *e = signalEngine.load())
        e->requestStop(sig);
}

void
installSweepSignalHandlers(SweepEngine &eng)
{
    signalEngine.store(&eng);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = sweepSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    for (int sig : {SIGINT, SIGTERM}) {
        struct sigaction old;
        // Respect an inherited SIG_IGN (nohup convention).
        if (sigaction(sig, nullptr, &old) == 0 &&
            old.sa_handler == SIG_IGN)
            continue;
        sigaction(sig, &sa, nullptr);
    }
}

} // anonymous namespace

SweepEngine &
SweepEngine::global()
{
    static SweepEngine engine;
    // Graceful-shutdown signal handling belongs to the process-wide
    // engine only; test engines must neither install handlers nor
    // exit the test binary.
    static const bool installed = [] {
        engine.exitOnStop = true;
        installSweepSignalHandlers(engine);
        return true;
    }();
    (void)installed;
    return engine;
}

const std::string &
cellWorkloadInput(SweepEngine &eng, const SweepCell &cell)
{
    eng.get(cell);
    std::lock_guard<std::mutex> lk(eng.mu);
    return eng.cells.at(cellHash(cell))->workloadInput;
}

// --------------------------------------------------------- parallelFor

void
parallelFor(size_t n, const std::function<void(size_t)> &body,
            unsigned jobs)
{
    unsigned j = jobs ? jobs : defaultJobs();
    if (j <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    std::atomic<size_t> next{0};
    unsigned nthreads = static_cast<unsigned>(
        std::min<size_t>(j, n));
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    // An exception escaping body() on a worker thread would call
    // std::terminate; capture the first one and rethrow it on the
    // calling thread after every worker has drained.
    std::exception_ptr first_error;
    std::mutex error_mu;
    for (unsigned t = 0; t < nthreads; ++t) {
        threads.emplace_back([&] {
            for (;;) {
                size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(error_mu);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace sweep
} // namespace vpir
