/**
 * @file
 * SweepEngine: parallel execution of independent (workload, config)
 * simulation cells for full-table experiment runs.
 *
 * Every paper table/figure is a sweep of independent simulations;
 * each Simulator owns its core and workload with no shared mutable
 * state, so cells are embarrassingly parallel. The engine provides:
 *
 *  - a fixed-size std::thread pool with a FIFO work queue
 *    (VPIR_JOBS, default hardware_concurrency; 1 = run inline);
 *  - a thread-safe memoized result cache keyed by a stable hash of
 *    the *full* CoreParams plus workload and scale — two configs
 *    sharing a display label can never alias (the bench_util.hh
 *    stale-cache fix);
 *  - deterministic results independent of completion order: callers
 *    read results back by key in their own (program) order, so table
 *    output is byte-identical for any job count;
 *  - an optional on-disk JSON result cache (VPIR_RESULT_CACHE=<dir>)
 *    keyed by the same hash, so re-running a bench after an unrelated
 *    edit skips recomputation — and, because completed cells are
 *    persisted as they finish, a crashed or interrupted sweep resumes
 *    from exactly the missing cells on rerun;
 *  - per-cell and aggregate wall-time / simulated-MIPS records,
 *    exportable as machine-readable bench_timing JSON;
 *  - crash containment (VPIR_ISOLATE=1): each cell runs in a forked
 *    child with an optional address-space rlimit and wall-clock
 *    deadline, so a segfault, sanitizer abort, OOM, or hang in one
 *    cell becomes a structured CellFailure instead of killing the
 *    fleet (see isolate.hh);
 *  - graceful SIGINT/SIGTERM handling on the global engine: stop
 *    scheduling, let in-flight cells finish, flush completed cells to
 *    the disk cache, print a partial summary, exit 128+signal (a
 *    second signal hard-kills);
 *  - mid-cell drain-and-checkpoint (VPIR_CKPT_INSTS + VPIR_CKPT_DIR,
 *    see sim/checkpoint.hh): long cells persist resumable progress,
 *    a graceful stop drains in-flight cells to their next boundary,
 *    and the retry ladder (VPIR_CELL_RETRIES, VPIR_RETRY_BACKOFF_MS)
 *    resumes a crashed cell from its newest valid checkpoint before
 *    falling back to a cold restart.
 */

#ifndef VPIR_SWEEP_SWEEP_HH
#define VPIR_SWEEP_SWEEP_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/core_stats.hh"
#include "core/params.hh"
#include "sweep/isolate.hh"
#include "workload/workload.hh"

namespace vpir
{
namespace sweep
{

/** VPIR_JOBS, or hardware_concurrency when unset/invalid. */
unsigned defaultJobs();

/** VPIR_RESULT_CACHE directory ("" = disk cache disabled). */
std::string defaultCacheDir();

/**
 * Stable FNV-1a hash over every CoreParams field (machine geometry,
 * caches, predictor, technique knobs, run limits). Stable across
 * processes — safe as an on-disk cache key.
 */
uint64_t hashParams(const CoreParams &p);

/** One schedulable simulation: workload x configuration. */
struct SweepCell
{
    std::string workload;
    std::string label;   //!< display-only; not part of the cache key
    CoreParams params;
    WorkloadScale scale;
};

/** Full cache key: workload + params-hash + scale. */
uint64_t cellHash(const SweepCell &cell);

/** A cell whose simulation failed (after retry); see failures(). */
struct CellFailure
{
    std::string workload;
    std::string label;
    uint64_t paramsHash = 0;
    int attempts = 0;      //!< ladder rungs used (VPIR_CELL_RETRIES)
    bool timedOut = false; //!< killed by the per-cell deadline
    std::string error; //!< full panic/fatal message, context included;
                       //!< for an isolated crash: signal name, exit
                       //!< code, and captured child stderr tail
};

/** Timing/observability record for one executed cell. */
struct CellTiming
{
    std::string workload;
    std::string label;
    uint64_t paramsHash = 0;
    double wallSeconds = 0.0;
    uint64_t committedInsts = 0;
    bool fromDiskCache = false;

    // Phase breakdown (zero for disk-cache hits): where the wall time
    // went, and whether this cell paid the one-time assembly/warmup
    // for its (workload, scale, warmup) key. With VPIR_WARM_CACHE=1,
    // cells with assembled=true should equal the number of distinct
    // keys in the sweep — that is the warm-start win, made auditable.
    double setupSeconds = 0.0; //!< workload + core construction
    double runSeconds = 0.0;   //!< timed simulation proper
    bool assembled = false;    //!< this cell assembled the program
    bool warmed = false;       //!< this cell executed the warmup

    // Robustness provenance: how many ladder attempts the cell took,
    // and whether it continued from / persisted mid-run checkpoints.
    int attempts = 1;
    bool ckptResumed = false;
    uint64_t ckptWritten = 0;

    /** Per-stage cycle profile (VPIR_PROFILE=1; zeroed for disk-cache
     *  hits). Emitted per cell into the timing JSON when enabled. */
    SchedProfile profile;

    double
    mips() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(committedInsts) / wallSeconds /
                         1e6
                   : 0.0;
    }
};

/** The parallel sweep engine. */
class SweepEngine
{
  public:
    /**
     * @param jobs worker threads; 0 = defaultJobs(); 1 = inline (no
     *             threads spawned).
     * @param cache_dir on-disk cache directory; "" disables. Defaults
     *             to VPIR_RESULT_CACHE.
     */
    explicit SweepEngine(unsigned jobs = 0,
                         const std::string &cache_dir = defaultCacheDir());
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Schedule a cell (no-op if an identical cell is already known).
     *  Returns without blocking; workers may start immediately. */
    void prefetch(const SweepCell &cell);

    /** Block until every prefetched cell has a result. */
    void drain();

    /**
     * Memoized result lookup; schedules and waits as needed. The
     * returned reference stays valid for the engine's lifetime.
     */
    const CoreStats &get(const SweepCell &cell);

    /** Timing records in cell submission order (failed cells are
     *  excluded; see failures()). */
    std::vector<CellTiming> timings() const;

    /**
     * Cells whose simulation panicked (in submission order). A failing
     * cell climbs the retry ladder — up to VPIR_CELL_RETRIES retries
     * (default 1) with optional exponential backoff, resuming from its
     * newest checkpoint on intermediate rungs and cold-restarting on
     * the last — then is recorded here with its error message; the
     * rest of the sweep completes normally and get() returns zeroed
     * stats for the failed cell. Harnesses must report these and exit
     * non-zero.
     */
    std::vector<CellFailure> failures() const;

    /** Wall-clock seconds spent inside drain()/get() waits. */
    double sweepWallSeconds() const;

    unsigned jobs() const { return numJobs; }
    size_t cellsComputed() const;
    size_t cellsFromDiskCache() const;

    /** Cells abandoned unrun because a stop was requested. */
    size_t cellsSkipped() const;

    /**
     * Request a graceful stop (what the SIGINT/SIGTERM handler calls
     * on the global engine; async-signal-safe): queued cells are
     * skipped, in-flight cells finish and are flushed to the disk
     * cache. On the global engine the next drain()/get() then prints
     * the partial summary plus an "interrupted: N/M cells done" line
     * and exits 128+sig; test engines just return, with the skip
     * observable via cellsSkipped().
     */
    void requestStop(int sig);

    /** Signal of a pending stop request, or 0. */
    int stopRequestedSignal() const { return stopSig.load(); }

    /**
     * Write the timing records plus aggregate wall-time and
     * simulated-MIPS as machine-readable JSON. @return success.
     */
    bool writeTimingJson(const std::string &path) const;

    /** Print a one-paragraph aggregate summary to @p out (stderr by
     *  convention, keeping bench stdout byte-identical per job count). */
    void printSummary(std::FILE *out) const;

    /** Process-wide engine used by the bench Runner and vpirsim. */
    static SweepEngine &global();

  private:
    struct Record
    {
        SweepCell cell;
        uint64_t key = 0;
        CoreStats stats;
        std::string workloadInput; //!< Workload::input (for vpirsim)
        double wallSeconds = 0.0;
        double setupSeconds = 0.0;
        double runSeconds = 0.0;
        bool asmBuilt = false;
        bool warmBuilt = false;
        bool fromDiskCache = false;
        bool done = false;
        bool running = false;
        bool failed = false;  //!< simulation failed (ladder exhausted)
        bool timedOut = false; //!< failed by per-cell deadline
        bool skipped = false; //!< abandoned by a stop request — either
                              //!< unrun, or checkpointed mid-cell
        bool ckptResumed = false; //!< continued from a checkpoint
        uint64_t ckptWritten = 0; //!< checkpoints persisted
        int attempts = 0;
        std::string error;    //!< failure message, context included
        SchedProfile profile; //!< per-stage cycle profile (host side)
    };

    void runRecord(Record &rec); //!< compute (or disk-load) one cell
    void workerLoop();
    void startWorkers();
    Record *findOrCreate(const SweepCell &cell); //!< locked by caller
    bool tryLoadFromDisk(Record &rec);
    void saveToDisk(const Record &rec);
    std::string diskPath(const Record &rec) const;
    void scrubStaleTmpFiles(); //!< crash consistency on startup
    void maybeExitOnStop();    //!< global-engine interrupt epilogue

    unsigned numJobs;
    std::string cacheDir;
    IsolationConfig iso;
    std::atomic<int> stopSig{0};
    bool exitOnStop = false; //!< set on the global engine only

    mutable std::mutex mu;
    std::condition_variable workAvailable;
    std::condition_variable cellFinished;
    std::unordered_map<uint64_t, std::unique_ptr<Record>> cells;
    std::vector<Record *> submissionOrder;
    std::deque<Record *> queue;
    std::vector<std::thread> workers;
    bool shuttingDown = false;
    size_t pending = 0;      //!< queued or running cells
    double drainSeconds = 0.0;

    friend const std::string &cellWorkloadInput(SweepEngine &,
                                                const SweepCell &);
};

/** Workload::input of a completed cell (runs it if needed). */
const std::string &cellWorkloadInput(SweepEngine &eng,
                                     const SweepCell &cell);

/**
 * Deterministic parallel-for over [0, n): body(i) runs on the pool's
 * worker threads, but callers observe results via their own output
 * slots indexed by i, so ordering is caller-controlled. Used by the
 * analysis benches (fig8-10) that do not run the timing simulator.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body,
                 unsigned jobs = 0);

} // namespace sweep
} // namespace vpir

#endif // VPIR_SWEEP_SWEEP_HH
