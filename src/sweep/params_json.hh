/**
 * @file
 * Lossless JSON (de)serialization of CoreParams, used by the fuzz
 * repro bundles so a failing cell's exact machine configuration rides
 * inside the bundle. Mirrors stats_json: one macro-generated field
 * list shared by the serializer, the parser, and the schema
 * fingerprint, with a sizeof() tripwire so a new CoreParams field
 * cannot be forgotten silently.
 */

#ifndef VPIR_SWEEP_PARAMS_JSON_HH
#define VPIR_SWEEP_PARAMS_JSON_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "core/params.hh"

namespace vpir
{
namespace sweep
{

/**
 * Visit every scalar field of a CoreParams by name, flattened with
 * dotted names for the nested structs. Each field is proxied through
 * a uint64_t (doubles as raw bit patterns) and written back after the
 * visit, so one visitor serves both directions.
 */
template <typename Fn>
void
forEachParamField(CoreParams &p, Fn &&fn)
{
    static_assert(sizeof(CoreParams) == 240,
                  "CoreParams changed: update forEachParamField()");

    auto u64f = [&fn](const char *name, auto &v) {
        uint64_t u = static_cast<uint64_t>(v);
        fn(name, u);
        v = static_cast<std::decay_t<decltype(v)>>(u);
    };
    auto dblf = [&fn](const char *name, double &v) {
        uint64_t u;
        std::memcpy(&u, &v, sizeof(u));
        fn(name, u);
        std::memcpy(&v, &u, sizeof(u));
    };
#define VPIR_PARAM_FIELD(name) u64f(#name, p.name)
    VPIR_PARAM_FIELD(fetchWidth);
    VPIR_PARAM_FIELD(fetchQueueSize);
    VPIR_PARAM_FIELD(dispatchWidth);
    VPIR_PARAM_FIELD(issueWidth);
    VPIR_PARAM_FIELD(commitWidth);
    VPIR_PARAM_FIELD(robEntries);
    VPIR_PARAM_FIELD(lsqEntries);
    VPIR_PARAM_FIELD(maxUnresolvedBranches);
    VPIR_PARAM_FIELD(dcachePorts);
    VPIR_PARAM_FIELD(icache.sizeBytes);
    VPIR_PARAM_FIELD(icache.ways);
    VPIR_PARAM_FIELD(icache.lineBytes);
    VPIR_PARAM_FIELD(icache.hitLatency);
    VPIR_PARAM_FIELD(icache.missLatency);
    VPIR_PARAM_FIELD(dcache.sizeBytes);
    VPIR_PARAM_FIELD(dcache.ways);
    VPIR_PARAM_FIELD(dcache.lineBytes);
    VPIR_PARAM_FIELD(dcache.hitLatency);
    VPIR_PARAM_FIELD(dcache.missLatency);
    VPIR_PARAM_FIELD(bpred.historyBits);
    VPIR_PARAM_FIELD(bpred.tableEntries);
    VPIR_PARAM_FIELD(bpred.btbEntries);
    VPIR_PARAM_FIELD(bpred.rasEntries);
    VPIR_PARAM_FIELD(technique);
    VPIR_PARAM_FIELD(vpt.entries);
    VPIR_PARAM_FIELD(vpt.ways);
    VPIR_PARAM_FIELD(vpt.scheme);
    VPIR_PARAM_FIELD(vpt.confidenceBits);
    VPIR_PARAM_FIELD(vpt.confidenceThreshold);
    VPIR_PARAM_FIELD(rb.entries);
    VPIR_PARAM_FIELD(rb.ways);
    VPIR_PARAM_FIELD(branchRes);
    VPIR_PARAM_FIELD(reexec);
    VPIR_PARAM_FIELD(vpVerifyLatency);
    VPIR_PARAM_FIELD(irValidation);
    VPIR_PARAM_FIELD(vpPredictResults);
    VPIR_PARAM_FIELD(vpPredictAddresses);
    VPIR_PARAM_FIELD(maxCycles);
    VPIR_PARAM_FIELD(maxInsts);
    VPIR_PARAM_FIELD(warmupInsts);
    VPIR_PARAM_FIELD(checkRetire);
    VPIR_PARAM_FIELD(irOracleCheck);
    VPIR_PARAM_FIELD(auditInvariants);
    VPIR_PARAM_FIELD(watchdogCycles);
    VPIR_PARAM_FIELD(ckptInsts);
    VPIR_PARAM_FIELD(faults.seed);
#undef VPIR_PARAM_FIELD
    dblf("faults.vptValueRate", p.faults.vptValueRate);
    dblf("faults.vptConfRate", p.faults.vptConfRate);
    dblf("faults.rbOperandRate", p.faults.rbOperandRate);
    dblf("faults.rbResultRate", p.faults.rbResultRate);
    dblf("faults.rbLinkRate", p.faults.rbLinkRate);
    dblf("faults.rbDropInvRate", p.faults.rbDropInvRate);
}

/** FNV-1a fingerprint of the param schema (field names in order). */
uint64_t paramsSchemaFingerprint();

/** Render the configuration as a flat JSON object. Doubles are
 *  emitted as their raw 64-bit patterns, so the round trip is
 *  bit-exact. */
std::string paramsToJson(const CoreParams &p);

/** Parse a paramsToJson() object. @return false (leaving @p out
 *  untouched) on malformed input or any missing field. */
bool paramsFromJson(const std::string &json, CoreParams &out);

/** Exact equality over every field. */
bool paramsEqual(const CoreParams &a, const CoreParams &b);

} // namespace sweep
} // namespace vpir

#endif // VPIR_SWEEP_PARAMS_JSON_HH
