#include "sweep/stats_json.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace vpir
{
namespace sweep
{

uint64_t
statsSchemaFingerprint()
{
    static const uint64_t fp = [] {
        constexpr uint64_t FNV_OFFSET = 0xcbf29ce484222325ull;
        constexpr uint64_t FNV_PRIME = 0x100000001b3ull;
        uint64_t h = FNV_OFFSET;
        auto mixName = [&h, FNV_PRIME](const char *name) {
            for (const char *p = name; *p; ++p) {
                h ^= static_cast<unsigned char>(*p);
                h *= FNV_PRIME;
            }
            h ^= '\n'; // field separator: "ab","c" != "a","bc"
            h *= FNV_PRIME;
        };
        CoreStats tmp;
        forEachStatField(tmp,
                         [&](const char *name, uint64_t &) {
                             mixName(name);
                         });
        mixName("haltedCleanly");
        return h;
    }();
    return fp;
}

std::string
statsToJson(const CoreStats &st)
{
    std::string out = "{";
    bool first = true;
    auto emit = [&](const char *name, uint64_t v) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64,
                      first ? "" : ", ", name, v);
        out += buf;
        first = false;
    };
    forEachStatField(st, [&](const char *name, const uint64_t &v) {
        emit(name, v);
    });
    emit("haltedCleanly", st.haltedCleanly ? 1 : 0);
    out += "}";
    return out;
}

namespace
{

/** Scan "name": value pairs of a flat JSON object into the visitor's
 *  matching fields; counts how many fields were filled. */
class FlatJsonScanner
{
  public:
    explicit FlatJsonScanner(const std::string &text) : s(text) {}

    bool
    lookup(const char *name, uint64_t &out) const
    {
        std::string needle = std::string("\"") + name + "\"";
        size_t pos = s.find(needle);
        if (pos == std::string::npos)
            return false;
        pos += needle.size();
        while (pos < s.size() &&
               (s[pos] == ':' || std::isspace(
                                     static_cast<unsigned char>(s[pos]))))
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        uint64_t v = 0;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos]))) {
            v = v * 10 + static_cast<uint64_t>(s[pos] - '0');
            ++pos;
        }
        out = v;
        return true;
    }

  private:
    const std::string &s;
};

} // anonymous namespace

bool
statsFromJson(const std::string &json, CoreStats &out)
{
    FlatJsonScanner scan(json);
    CoreStats tmp;
    bool ok = true;
    forEachStatField(tmp, [&](const char *name, uint64_t &v) {
        if (!scan.lookup(name, v))
            ok = false;
    });
    uint64_t halted = 0;
    if (!scan.lookup("haltedCleanly", halted))
        ok = false;
    tmp.haltedCleanly = halted != 0;
    if (!ok)
        return false;
    out = tmp;
    return true;
}

bool
statsEqual(const CoreStats &a, const CoreStats &b)
{
    // The serialization covers every counter, so textual equality is
    // exact equality (and mismatches are easy to diff in test logs).
    return statsToJson(a) == statsToJson(b);
}

} // namespace sweep
} // namespace vpir
