/**
 * @file
 * Architectural register name space.
 *
 * The paper's machine architects 32 integer registers plus HI/LO, 32
 * floating point registers, and the FP condition code (Table 1). We
 * map all of them into one flat id space so that renaming, dependence
 * tracking, and the reuse buffer's register-name invalidation treat
 * every kind of register uniformly.
 */

#ifndef VPIR_ISA_REGS_HH
#define VPIR_ISA_REGS_HH

#include <cstdint>
#include <string>

namespace vpir
{

/** Flat architectural register id. */
using RegId = uint8_t;

constexpr RegId REG_ZERO = 0;    //!< integer r0, hardwired to 0
constexpr RegId REG_INT_BASE = 0;
constexpr unsigned NUM_INT_REGS = 32;

constexpr RegId REG_HI = 32;
constexpr RegId REG_LO = 33;

constexpr RegId REG_FP_BASE = 34;
constexpr unsigned NUM_FP_REGS = 32;

constexpr RegId REG_FCC = 66;    //!< FP condition code

constexpr unsigned NUM_ARCH_REGS = 67;

constexpr RegId REG_INVALID = 0xff;

/** ABI-ish aliases used by the workload kernels. */
constexpr RegId REG_SP = 29;     //!< stack pointer
constexpr RegId REG_RA = 31;     //!< return address (written by JAL)

/** Integer register id helper (r0..r31). */
constexpr RegId
intReg(unsigned n)
{
    return static_cast<RegId>(REG_INT_BASE + n);
}

/** FP register id helper (f0..f31). */
constexpr RegId
fpReg(unsigned n)
{
    return static_cast<RegId>(REG_FP_BASE + n);
}

/** True for integer register ids (including r0). */
constexpr bool
isIntReg(RegId r)
{
    return r < NUM_INT_REGS;
}

/** True for FP register ids. */
constexpr bool
isFpReg(RegId r)
{
    return r >= REG_FP_BASE && r < REG_FP_BASE + NUM_FP_REGS;
}

/** Printable register name. */
std::string regName(RegId r);

} // namespace vpir

#endif // VPIR_ISA_REGS_HH
