#include "isa/disasm.hh"

#include <cstdio>

#include "isa/decode.hh"

namespace vpir
{

std::string
regName(RegId r)
{
    char buf[16];
    if (isIntReg(r)) {
        std::snprintf(buf, sizeof(buf), "r%u", static_cast<unsigned>(r));
        return buf;
    }
    if (isFpReg(r)) {
        std::snprintf(buf, sizeof(buf), "f%u",
                      static_cast<unsigned>(r - REG_FP_BASE));
        return buf;
    }
    if (r == REG_HI)
        return "hi";
    if (r == REG_LO)
        return "lo";
    if (r == REG_FCC)
        return "fcc";
    return "r?";
}

std::string
opName(Op op)
{
    switch (op) {
      case Op::NOP: return "nop";
      case Op::ADD: return "add";
      case Op::SUB: return "sub";
      case Op::AND: return "and";
      case Op::OR: return "or";
      case Op::XOR: return "xor";
      case Op::NOR: return "nor";
      case Op::SLT: return "slt";
      case Op::SLTU: return "sltu";
      case Op::SLLV: return "sllv";
      case Op::SRLV: return "srlv";
      case Op::SRAV: return "srav";
      case Op::ADDI: return "addi";
      case Op::ANDI: return "andi";
      case Op::ORI: return "ori";
      case Op::XORI: return "xori";
      case Op::SLTI: return "slti";
      case Op::SLTIU: return "sltiu";
      case Op::SLL: return "sll";
      case Op::SRL: return "srl";
      case Op::SRA: return "sra";
      case Op::LUI: return "lui";
      case Op::LI: return "li";
      case Op::MULT: return "mult";
      case Op::MULTU: return "multu";
      case Op::DIV: return "div";
      case Op::DIVU: return "divu";
      case Op::MFHI: return "mfhi";
      case Op::MFLO: return "mflo";
      case Op::LB: return "lb";
      case Op::LBU: return "lbu";
      case Op::LH: return "lh";
      case Op::LHU: return "lhu";
      case Op::LW: return "lw";
      case Op::SB: return "sb";
      case Op::SH: return "sh";
      case Op::SW: return "sw";
      case Op::L_D: return "l.d";
      case Op::S_D: return "s.d";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLEZ: return "blez";
      case Op::BGTZ: return "bgtz";
      case Op::BLTZ: return "bltz";
      case Op::BGEZ: return "bgez";
      case Op::J: return "j";
      case Op::JAL: return "jal";
      case Op::JR: return "jr";
      case Op::JALR: return "jalr";
      case Op::BC1T: return "bc1t";
      case Op::BC1F: return "bc1f";
      case Op::ADD_D: return "add.d";
      case Op::SUB_D: return "sub.d";
      case Op::MUL_D: return "mul.d";
      case Op::DIV_D: return "div.d";
      case Op::SQRT_D: return "sqrt.d";
      case Op::MOV_D: return "mov.d";
      case Op::NEG_D: return "neg.d";
      case Op::C_EQ_D: return "c.eq.d";
      case Op::C_LT_D: return "c.lt.d";
      case Op::C_LE_D: return "c.le.d";
      case Op::CVT_D_W: return "cvt.d.w";
      case Op::CVT_W_D: return "cvt.w.d";
      case Op::HALT: return "halt";
      default: return "op?";
    }
}

std::string
disassemble(const Instr &inst)
{
    char buf[96];
    const std::string name = opName(inst.op);
    if (isMem(inst.op)) {
        if (isLoad(inst.op)) {
            std::snprintf(buf, sizeof(buf), "%-7s %s, %d(%s)", name.c_str(),
                          regName(inst.rd).c_str(), inst.imm,
                          regName(inst.rs).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%-7s %s, %d(%s)", name.c_str(),
                          regName(inst.rt).c_str(), inst.imm,
                          regName(inst.rs).c_str());
        }
        return buf;
    }
    if (isControl(inst.op)) {
        std::snprintf(buf, sizeof(buf), "%-7s %s,%s -> 0x%x", name.c_str(),
                      inst.rs == REG_INVALID ? "-"
                                             : regName(inst.rs).c_str(),
                      inst.rt == REG_INVALID ? "-"
                                             : regName(inst.rt).c_str(),
                      inst.target);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%-7s %s, %s, %s, imm=%d", name.c_str(),
                  inst.rd == REG_INVALID ? "-" : regName(inst.rd).c_str(),
                  inst.rs == REG_INVALID ? "-" : regName(inst.rs).c_str(),
                  inst.rt == REG_INVALID ? "-" : regName(inst.rt).c_str(),
                  inst.imm);
    return buf;
}

} // namespace vpir
