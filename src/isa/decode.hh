/**
 * @file
 * Static decode information: instruction class, functional unit
 * requirements and latencies (paper Table 1), source/destination
 * register extraction, and memory access attributes.
 */

#ifndef VPIR_ISA_DECODE_HH
#define VPIR_ISA_DECODE_HH

#include <array>
#include <cstdint>

#include "isa/instr.hh"

namespace vpir
{

/** Broad instruction classes used by scheduling and statistics. */
enum class InstClass : uint8_t
{
    Nop,
    IntAlu,
    IntMult,
    IntDiv,
    Load,
    Store,
    Branch,   //!< conditional branches (incl. BC1x)
    Jump,     //!< unconditional J/JAL/JR/JALR
    FpAdd,    //!< add/sub/compare/convert/move
    FpMult,
    FpDiv,
    FpSqrt,
    Halt,
};

/** Functional unit kinds, with pool sizes from Table 1. */
enum class FuType : uint8_t
{
    None,      //!< no FU needed (NOP/HALT)
    IntAlu,    //!< 8 units; also executes branches/jumps
    LoadStore, //!< 2 units
    FpAdder,   //!< 4 units
    IntMulDiv, //!< 1 unit
    FpMulDiv,  //!< 1 unit
    NUM_TYPES
};

/** Pool size for each FU type (Table 1). */
unsigned fuPoolSize(FuType t);

/** Per-opcode static information. */
struct DecodeInfo
{
    InstClass cls;
    FuType fu;
    uint8_t opLat;    //!< total execution latency, cycles
    uint8_t issueLat; //!< cycles before the FU accepts another op
};

/** Decode table lookup. */
const DecodeInfo &decodeInfo(Op op);

/** Up to two source registers (REG_INVALID when absent). */
struct SrcRegs
{
    RegId src[2];
};

/** Extract the architectural source registers of an instruction. */
SrcRegs srcRegs(const Instr &inst);

/** Up to two destination registers (REG_INVALID when absent). */
struct DstRegs
{
    RegId dst[2];
};

/** Extract the architectural destination registers. */
DstRegs dstRegs(const Instr &inst);

/** Memory access size in bytes (0 for non-memory ops). */
unsigned memSize(Op op);

inline bool
isLoad(Op op)
{
    return decodeInfo(op).cls == InstClass::Load;
}

inline bool
isStore(Op op)
{
    return decodeInfo(op).cls == InstClass::Store;
}

inline bool
isMem(Op op)
{
    return isLoad(op) || isStore(op);
}

inline bool
isCondBranch(Op op)
{
    return decodeInfo(op).cls == InstClass::Branch;
}

inline bool
isJump(Op op)
{
    return decodeInfo(op).cls == InstClass::Jump;
}

/** Any control transfer: conditional branch or jump. */
inline bool
isControl(Op op)
{
    return isCondBranch(op) || isJump(op);
}

/** True for JR/JALR whose target comes from a register. */
inline bool
isIndirectJump(Op op)
{
    return op == Op::JR || op == Op::JALR;
}

/** True for call-like ops that push the return address (JAL/JALR). */
inline bool
isCall(Op op)
{
    return op == Op::JAL || op == Op::JALR;
}

/** True for JR r31, i.e. a function return (by convention). */
inline bool
isReturn(const Instr &inst)
{
    return inst.op == Op::JR && inst.rs == REG_RA;
}

/** True when the instruction produces a register result. */
inline bool
producesResult(const Instr &inst)
{
    return inst.rd != REG_INVALID || inst.rd2 != REG_INVALID;
}

} // namespace vpir

#endif // VPIR_ISA_DECODE_HH
