/**
 * @file
 * Instruction set definition: opcodes and the decoded instruction
 * record the rest of the simulator operates on.
 *
 * The ISA is a MIPS-I-like RISC defined for this reproduction (the
 * original study used SimpleScalar's MIPS-I derivative; see DESIGN.md
 * for the substitution argument). Programs are stored pre-decoded:
 * one Instr per word-aligned PC.
 */

#ifndef VPIR_ISA_INSTR_HH
#define VPIR_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "isa/regs.hh"

namespace vpir
{

/** Word address type: byte address, instruction PCs are multiples of 4. */
using Addr = uint32_t;

/** Opcode set. */
enum class Op : uint8_t
{
    NOP,

    // Integer ALU, register forms.
    ADD, SUB, AND, OR, XOR, NOR, SLT, SLTU,
    SLLV, SRLV, SRAV,

    // Integer ALU, immediate forms (imm in Instr::imm).
    ADDI, ANDI, ORI, XORI, SLTI, SLTIU,
    SLL, SRL, SRA,       //!< shift by immediate (shamt in imm)
    LUI,                 //!< rd = imm << 16
    LI,                  //!< rd = imm (32-bit literal convenience op)

    // Multiply / divide (write HI and LO).
    MULT, MULTU, DIV, DIVU,
    MFHI, MFLO,

    // Memory.
    LB, LBU, LH, LHU, LW,
    SB, SH, SW,
    L_D, S_D,            //!< 8-byte FP load/store

    // Control.
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    J, JAL, JR, JALR,
    BC1T, BC1F,          //!< branch on FP condition code

    // Floating point (double precision).
    ADD_D, SUB_D, MUL_D, DIV_D, SQRT_D,
    MOV_D, NEG_D,
    C_EQ_D, C_LT_D, C_LE_D,  //!< compare, write FCC
    CVT_D_W,             //!< int reg -> double in FP reg
    CVT_W_D,             //!< double -> int reg (truncate)

    // Simulation control.
    HALT,

    NUM_OPS
};

/**
 * A decoded instruction. Fields not used by an opcode are
 * REG_INVALID / 0. Branch and jump targets are absolute byte
 * addresses resolved by the assembler.
 */
struct Instr
{
    Op op = Op::NOP;
    RegId rd = REG_INVALID;   //!< primary destination
    RegId rd2 = REG_INVALID;  //!< secondary destination (HI for mult/div)
    RegId rs = REG_INVALID;   //!< first source
    RegId rt = REG_INVALID;   //!< second source
    int32_t imm = 0;          //!< immediate / shift amount / displacement
    Addr target = 0;          //!< branch or jump target (byte address)
};

/** Opcode mnemonic. */
std::string opName(Op op);

} // namespace vpir

#endif // VPIR_ISA_INSTR_HH
