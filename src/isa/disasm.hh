/**
 * @file
 * Human-readable rendering of instructions, for debugging and the
 * assembler's listing output.
 */

#ifndef VPIR_ISA_DISASM_HH
#define VPIR_ISA_DISASM_HH

#include <string>

#include "isa/instr.hh"

namespace vpir
{

/** Render one instruction as assembly-like text. */
std::string disassemble(const Instr &inst);

} // namespace vpir

#endif // VPIR_ISA_DISASM_HH
