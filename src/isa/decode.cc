#include "isa/decode.hh"

#include "common/logging.hh"

namespace vpir
{

unsigned
fuPoolSize(FuType t)
{
    switch (t) {
      case FuType::None:      return 0;
      case FuType::IntAlu:    return 8;
      case FuType::LoadStore: return 2;
      case FuType::FpAdder:   return 4;
      case FuType::IntMulDiv: return 1;
      case FuType::FpMulDiv:  return 1;
      default: panic("bad FU type");
    }
}

namespace
{

/** Build the per-opcode decode table once (latencies from Table 1). */
std::array<DecodeInfo, static_cast<size_t>(Op::NUM_OPS)>
buildTable()
{
    using C = InstClass;
    using F = FuType;
    std::array<DecodeInfo, static_cast<size_t>(Op::NUM_OPS)> t{};

    auto set = [&t](Op op, C c, F f, uint8_t lat, uint8_t iss) {
        t[static_cast<size_t>(op)] = DecodeInfo{c, f, lat, iss};
    };

    set(Op::NOP, C::Nop, F::None, 0, 0);
    set(Op::HALT, C::Halt, F::None, 0, 0);

    for (Op op : {Op::ADD, Op::SUB, Op::AND, Op::OR, Op::XOR, Op::NOR,
                  Op::SLT, Op::SLTU, Op::SLLV, Op::SRLV, Op::SRAV,
                  Op::ADDI, Op::ANDI, Op::ORI, Op::XORI, Op::SLTI,
                  Op::SLTIU, Op::SLL, Op::SRL, Op::SRA, Op::LUI, Op::LI,
                  Op::MFHI, Op::MFLO}) {
        set(op, C::IntAlu, F::IntAlu, 1, 1);
    }

    for (Op op : {Op::MULT, Op::MULTU})
        set(op, C::IntMult, F::IntMulDiv, 3, 1);
    for (Op op : {Op::DIV, Op::DIVU})
        set(op, C::IntDiv, F::IntMulDiv, 20, 19);

    for (Op op : {Op::LB, Op::LBU, Op::LH, Op::LHU, Op::LW, Op::L_D})
        set(op, C::Load, F::LoadStore, 1, 1);
    for (Op op : {Op::SB, Op::SH, Op::SW, Op::S_D})
        set(op, C::Store, F::LoadStore, 1, 1);

    for (Op op : {Op::BEQ, Op::BNE, Op::BLEZ, Op::BGTZ, Op::BLTZ,
                  Op::BGEZ, Op::BC1T, Op::BC1F}) {
        set(op, C::Branch, F::IntAlu, 1, 1);
    }
    for (Op op : {Op::J, Op::JAL, Op::JR, Op::JALR})
        set(op, C::Jump, F::IntAlu, 1, 1);

    for (Op op : {Op::ADD_D, Op::SUB_D, Op::C_EQ_D, Op::C_LT_D,
                  Op::C_LE_D, Op::CVT_D_W, Op::CVT_W_D, Op::MOV_D,
                  Op::NEG_D}) {
        set(op, C::FpAdd, F::FpAdder, 2, 1);
    }
    set(Op::MUL_D, C::FpMult, F::FpMulDiv, 4, 1);
    set(Op::DIV_D, C::FpDiv, F::FpMulDiv, 12, 12);
    set(Op::SQRT_D, C::FpSqrt, F::FpMulDiv, 24, 24);

    return t;
}

const std::array<DecodeInfo, static_cast<size_t>(Op::NUM_OPS)> decodeTable =
    buildTable();

} // anonymous namespace

const DecodeInfo &
decodeInfo(Op op)
{
    return decodeTable[static_cast<size_t>(op)];
}

SrcRegs
srcRegs(const Instr &inst)
{
    SrcRegs s{{REG_INVALID, REG_INVALID}};
    switch (inst.op) {
      case Op::NOP:
      case Op::HALT:
      case Op::J:
      case Op::JAL:
      case Op::LUI:
      case Op::LI:
        break;

      case Op::BC1T:
      case Op::BC1F:
        s.src[0] = REG_FCC;
        break;

      case Op::MFHI:
        s.src[0] = REG_HI;
        break;
      case Op::MFLO:
        s.src[0] = REG_LO;
        break;

      // rs-only forms.
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLTI: case Op::SLTIU:
      case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
      case Op::JR: case Op::JALR:
      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::LW: case Op::L_D:
      case Op::CVT_D_W:
      case Op::MOV_D: case Op::NEG_D: case Op::SQRT_D:
      case Op::CVT_W_D:
        s.src[0] = inst.rs;
        break;

      // rs+rt forms.
      case Op::ADD: case Op::SUB: case Op::AND: case Op::OR:
      case Op::XOR: case Op::NOR: case Op::SLT: case Op::SLTU:
      case Op::SLLV: case Op::SRLV: case Op::SRAV:
      case Op::MULT: case Op::MULTU: case Op::DIV: case Op::DIVU:
      case Op::BEQ: case Op::BNE:
      case Op::SB: case Op::SH: case Op::SW: case Op::S_D:
      case Op::ADD_D: case Op::SUB_D: case Op::MUL_D: case Op::DIV_D:
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        s.src[0] = inst.rs;
        s.src[1] = inst.rt;
        break;

      default:
        panic("srcRegs: unhandled opcode");
    }
    // r0 reads are not dependences.
    for (RegId &r : s.src) {
        if (r == REG_ZERO)
            r = REG_INVALID;
    }
    return s;
}

DstRegs
dstRegs(const Instr &inst)
{
    DstRegs d{{inst.rd, inst.rd2}};
    // Writes to r0 are discarded.
    for (RegId &r : d.dst) {
        if (r == REG_ZERO)
            r = REG_INVALID;
    }
    return d;
}

unsigned
memSize(Op op)
{
    switch (op) {
      case Op::LB: case Op::LBU: case Op::SB: return 1;
      case Op::LH: case Op::LHU: case Op::SH: return 2;
      case Op::LW: case Op::SW: return 4;
      case Op::L_D: case Op::S_D: return 8;
      default: return 0;
    }
}

} // namespace vpir
