/**
 * @file
 * Fixed-capacity circular buffer.
 *
 * The core's per-cycle queues (LSQ, fetch queue, store queue) have
 * hard architectural bounds, yet were held in std::deque — which
 * allocates and frees chunks as the queue breathes, every cycle, in
 * the hottest loop of the simulator. Ring allocates its full capacity
 * once at reset() and never touches the allocator again; push/pop are
 * an index increment.
 */

#ifndef VPIR_COMMON_RING_HH
#define VPIR_COMMON_RING_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace vpir
{

/** Bounded FIFO/deque over preallocated storage. Capacity is fixed by
 *  reset(); exceeding it is a simulator bug (the callers all check
 *  their architectural limits before pushing). */
template <typename T>
class Ring
{
  public:
    Ring() = default;
    explicit Ring(size_t capacity) { reset(capacity); }

    /** (Re)allocate for @p capacity elements and clear. */
    void
    reset(size_t capacity)
    {
        buf.assign(capacity, T{});
        head = 0;
        count = 0;
    }

    size_t capacity() const { return buf.size(); }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Element @p i positions from the front (0 = oldest). */
    T &operator[](size_t i) { return buf[wrap(head + i)]; }
    const T &operator[](size_t i) const { return buf[wrap(head + i)]; }

    T &
    front()
    {
        VPIR_ASSERT(count > 0, "front() on empty ring");
        return buf[head];
    }

    const T &
    front() const
    {
        VPIR_ASSERT(count > 0, "front() on empty ring");
        return buf[head];
    }

    T &
    back()
    {
        VPIR_ASSERT(count > 0, "back() on empty ring");
        return buf[wrap(head + count - 1)];
    }

    const T &
    back() const
    {
        VPIR_ASSERT(count > 0, "back() on empty ring");
        return buf[wrap(head + count - 1)];
    }

    void
    push_back(const T &v)
    {
        VPIR_ASSERT(count < buf.size(), "ring overflow");
        buf[wrap(head + count)] = v;
        ++count;
    }

    /** Pops leave the slot's payload in place: a later push_back
     *  copy-assigns over it, so element-owned heap storage (e.g. a
     *  checkpoint's RAS vector) is reused instead of reallocated. */
    void
    pop_front()
    {
        VPIR_ASSERT(count > 0, "pop_front() on empty ring");
        head = wrap(head + 1);
        --count;
    }

    void
    pop_back()
    {
        VPIR_ASSERT(count > 0, "pop_back() on empty ring");
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Forward const iteration (front to back), for range-for. */
    class const_iterator
    {
      public:
        const_iterator(const Ring *r, size_t i) : ring(r), idx(i) {}
        const T &operator*() const { return (*ring)[idx]; }
        const T *operator->() const { return &(*ring)[idx]; }
        const_iterator &
        operator++()
        {
            ++idx;
            return *this;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return idx != o.idx;
        }

      private:
        const Ring *ring;
        size_t idx;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count); }

  private:
    size_t
    wrap(size_t i) const
    {
        return i >= buf.size() ? i - buf.size() : i;
    }

    std::vector<T> buf;
    size_t head = 0;
    size_t count = 0;
};

} // namespace vpir

#endif // VPIR_COMMON_RING_HH
