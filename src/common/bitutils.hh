/**
 * @file
 * Small bit/index helpers shared by the table-like hardware structures.
 */

#ifndef VPIR_COMMON_BITUTILS_HH
#define VPIR_COMMON_BITUTILS_HH

#include <cstdint>

namespace vpir
{

/** True if x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned l = 0;
    while (x > 1) {
        x >>= 1;
        ++l;
    }
    return l;
}

/** Sign-extend the low @p bits bits of @p v. */
constexpr int32_t
signExtend(uint32_t v, unsigned bits)
{
    uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((v ^ m) - m);
}

/** Sign-extend a byte to 32 bits. */
constexpr int32_t
signExtendByte(uint8_t v)
{
    return static_cast<int32_t>(static_cast<int8_t>(v));
}

/** Sign-extend a halfword to 32 bits. */
constexpr int32_t
signExtendHalf(uint16_t v)
{
    return static_cast<int32_t>(static_cast<int16_t>(v));
}

/** Fold a 32-bit PC into a table index of indexBits bits. */
constexpr uint32_t
foldPC(uint32_t pc, unsigned index_bits)
{
    uint32_t v = pc >> 2; // instructions are word aligned
    return (v ^ (v >> index_bits) ^ (v >> (2 * index_bits))) &
           ((1u << index_bits) - 1);
}

} // namespace vpir

#endif // VPIR_COMMON_BITUTILS_HH
