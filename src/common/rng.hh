/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xorshift64* generator is used instead of <random> so that
 * workload inputs are bit-identical across platforms and library
 * versions; reproducibility of the synthetic benchmarks depends on it.
 */

#ifndef VPIR_COMMON_RNG_HH
#define VPIR_COMMON_RNG_HH

#include <cstdint>

namespace vpir
{

/** xorshift64* generator with splitmix-style seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {
        // Scramble low-entropy seeds.
        next();
        next();
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t state;
};

} // namespace vpir

#endif // VPIR_COMMON_RNG_HH
