/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xorshift64* generator is used instead of <random> so that
 * workload inputs are bit-identical across platforms and library
 * versions; reproducibility of the synthetic benchmarks depends on it.
 */

#ifndef VPIR_COMMON_RNG_HH
#define VPIR_COMMON_RNG_HH

#include <cstdint>

namespace vpir
{

/** xorshift64* generator with splitmix-style seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {
        // Scramble low-entropy seeds.
        next();
        next();
    }

    /**
     * Derive an independent stream seed from (seed, stream) with the
     * splitmix64 finalizer. Consumers that fan work out across
     * parallel units (e.g. one fuzz cell per sweep worker) seed each
     * unit with split(base, index) so the draws a unit makes depend
     * only on its index, never on worker count or execution order.
     */
    static uint64_t
    split(uint64_t seed, uint64_t stream)
    {
        return mix64(seed ^ mix64(stream + 0x9e3779b97f4a7c15ull));
    }

    /** Convenience: generator for stream @p stream of seed @p seed. */
    Rng(uint64_t seed, uint64_t stream) : Rng(split(seed, stream)) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(uint64_t num, uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    // Raw generator state, for mid-run checkpoints: a restored stream
    // must continue exactly where the saved one stopped, so the state
    // is transported verbatim (never re-seeded, which would re-run the
    // low-entropy scramble).
    uint64_t rawState() const { return state; }
    void setRawState(uint64_t s) { state = s; }

  private:
    /** splitmix64 finalizer: a full-avalanche 64-bit mixing step. */
    static uint64_t
    mix64(uint64_t z)
    {
        z ^= z >> 30;
        z *= 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        z *= 0x94d049bb133111ebull;
        z ^= z >> 31;
        return z;
    }

    uint64_t state;
};

} // namespace vpir

#endif // VPIR_COMMON_RNG_HH
