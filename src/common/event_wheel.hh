/**
 * @file
 * Timing wheel for completion events.
 *
 * The core used to find finishing instructions by scanning the whole
 * ROB every cycle for completeAt <= now. The wheel indexes events by
 * their due cycle instead: near-future events (within WHEEL_SPAN
 * cycles) go into a power-of-two bucket array indexed by (at & mask),
 * far-future ones wait in a min-heap and migrate into the near wheel
 * as their cycle approaches. popDue() touches only the current
 * cycle's bucket; nextEventAt() gives the idle-cycle skipper an exact
 * lower bound on the next due event.
 *
 * Events are fire-and-forget: a squash does not remove events, the
 * consumer validates each popped event against live ROB state (slot
 * + sequence number) and discards stale ones. A bucket can hold
 * events one full wheel revolution apart (at and at + WHEEL_SPAN map
 * to the same index); popDue() filters on the exact due cycle and
 * leaves later laps in place.
 */

#ifndef VPIR_COMMON_EVENT_WHEEL_HH
#define VPIR_COMMON_EVENT_WHEEL_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace vpir
{

/** One scheduled wakeup: ROB slot plus the sequence number that
 *  occupied it at schedule time (staleness check on pop). */
struct WheelEvent
{
    /** What the consumer should do when the event fires. */
    enum class Kind : uint8_t
    {
        Complete, //!< an in-flight execution finishes this cycle
        Refinal,  //!< re-run the finalize check (producer finalizes)
    };

    uint64_t at = 0;
    uint64_t seq = 0;
    int slot = -1;
    Kind kind = Kind::Complete;
};

class EventWheel
{
  public:
    /** Near-wheel span in cycles; deltas beyond it go to the far
     *  heap. Covers every realistic completion latency (cache miss +
     *  verification) so the heap stays cold in practice. */
    static constexpr uint64_t WHEEL_SPAN = 256;

    EventWheel() : near(WHEEL_SPAN) {}

    size_t size() const { return n; }
    bool empty() const { return n == 0; }

    /** Schedule @p ev; @p now is the current cycle. Due cycles in the
     *  past are a caller bug. */
    void
    schedule(const WheelEvent &ev, uint64_t now)
    {
        VPIR_ASSERT(ev.at >= now, "scheduling an event in the past");
        if (ev.at - now < WHEEL_SPAN) {
            near[bucket(ev.at)].push_back(ev);
        } else {
            far.push_back(ev);
            std::push_heap(far.begin(), far.end(), farLater);
        }
        ++n;
    }

    /** Append every event due exactly at @p now to @p out and remove
     *  it from the wheel. Caller sorts/validates as needed. */
    void
    popDue(uint64_t now, std::vector<WheelEvent> &out)
    {
        migrate(now);
        std::vector<WheelEvent> &b = near[bucket(now)];
        size_t keep = 0;
        for (size_t i = 0; i < b.size(); ++i) {
            if (b[i].at == now) {
                out.push_back(b[i]);
                --n;
            } else {
                // A later lap of the wheel; leave it for its cycle.
                b[keep++] = b[i];
            }
        }
        b.resize(keep);
    }

    /** Due cycle of the earliest pending event, or UINT64_MAX when
     *  empty. @p now must be at or before every pending event. Only
     *  called on idle cycles, so the bounded bucket scan is off the
     *  hot path. */
    uint64_t
    nextEventAt(uint64_t now) const
    {
        if (n == 0)
            return UINT64_MAX;
        uint64_t best = far.empty() ? UINT64_MAX : far.front().at;
        for (uint64_t d = 0; d < WHEEL_SPAN && now + d < best; ++d) {
            for (const WheelEvent &ev : near[bucket(now + d)]) {
                VPIR_ASSERT(ev.at >= now, "stale event left in wheel");
                best = std::min(best, ev.at);
            }
            if (best == now + d)
                break; // nothing can beat an event due this scan slot
        }
        return best;
    }

    void
    clear()
    {
        for (std::vector<WheelEvent> &b : near)
            b.clear();
        far.clear();
        n = 0;
    }

  private:
    static size_t
    bucket(uint64_t at)
    {
        return static_cast<size_t>(at & (WHEEL_SPAN - 1));
    }

    static bool
    farLater(const WheelEvent &a, const WheelEvent &b)
    {
        return a.at > b.at; // min-heap on due cycle
    }

    /** Move far-heap events whose due cycle entered the near span. */
    void
    migrate(uint64_t now)
    {
        while (!far.empty() && far.front().at - now < WHEEL_SPAN) {
            std::pop_heap(far.begin(), far.end(), farLater);
            near[bucket(far.back().at)].push_back(far.back());
            far.pop_back();
        }
    }

    std::vector<std::vector<WheelEvent>> near;
    std::vector<WheelEvent> far; // min-heap by at
    size_t n = 0;
};

} // namespace vpir

#endif // VPIR_COMMON_EVENT_WHEEL_HH
