/**
 * @file
 * Fixed-capacity bitmask over small integer slot indices.
 *
 * The core's scheduling sets (ready set, unresolved-control set) are
 * subsets of ROB slots — at most a few hundred — and are consulted
 * every cycle. SlotSet packs membership into machine words: test,
 * insert, and erase are one masked word op, and iteration walks set
 * bits with ctz so an almost-empty set costs almost nothing.
 */

#ifndef VPIR_COMMON_SLOT_SET_HH
#define VPIR_COMMON_SLOT_SET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace vpir
{

/** Bounded set of slot indices [0, capacity). Capacity is fixed by
 *  reset(); membership ops are O(1), iteration O(words + popcount). */
class SlotSet
{
  public:
    SlotSet() = default;
    explicit SlotSet(size_t capacity) { reset(capacity); }

    /** (Re)size for @p capacity slots and clear. */
    void
    reset(size_t capacity)
    {
        cap = capacity;
        words.assign((capacity + 63) / 64, 0);
        n = 0;
    }

    size_t capacity() const { return cap; }
    size_t count() const { return n; }
    bool empty() const { return n == 0; }

    bool
    test(int slot) const
    {
        VPIR_ASSERT(inRange(slot), "slot-set index out of range");
        return (words[word(slot)] >> bit(slot)) & 1;
    }

    /** Idempotent: inserting a member is a no-op. */
    void
    insert(int slot)
    {
        VPIR_ASSERT(inRange(slot), "slot-set index out of range");
        uint64_t m = uint64_t{1} << bit(slot);
        uint64_t &w = words[word(slot)];
        n += !(w & m);
        w |= m;
    }

    /** Idempotent: erasing a non-member is a no-op. */
    void
    erase(int slot)
    {
        VPIR_ASSERT(inRange(slot), "slot-set index out of range");
        uint64_t m = uint64_t{1} << bit(slot);
        uint64_t &w = words[word(slot)];
        n -= !!(w & m);
        w &= ~m;
    }

    void
    clear()
    {
        for (uint64_t &w : words)
            w = 0;
        n = 0;
    }

    /** Visit members in ascending slot order; @p f returns false to
     *  stop early. */
    template <typename F>
    void
    forEach(F f) const
    {
        forEachRange(0, cap, f);
    }

    /** Visit members in ring order: ascending from @p start, wrapping
     *  at capacity. With ROB slots this is program order when @p start
     *  is the ROB head. */
    template <typename F>
    void
    forEachFrom(size_t start, F f) const
    {
        VPIR_ASSERT(start <= cap, "ring start beyond capacity");
        if (forEachRange(start, cap, f))
            forEachRange(0, start, f);
    }

  private:
    /** Visit members in [lo, hi); returns false on early stop. */
    template <typename F>
    bool
    forEachRange(size_t lo, size_t hi, F &f) const
    {
        if (lo >= hi)
            return true;
        size_t wlo = lo / 64;
        size_t whi = (hi - 1) / 64;
        for (size_t wi = wlo; wi <= whi; ++wi) {
            uint64_t w = words[wi];
            if (wi == wlo)
                w &= ~uint64_t{0} << (lo % 64);
            if (wi == whi && (hi % 64) != 0)
                w &= (uint64_t{1} << (hi % 64)) - 1;
            while (w) {
                int slot = static_cast<int>(wi * 64) +
                           __builtin_ctzll(w);
                if (!f(slot))
                    return false;
                w &= w - 1;
            }
        }
        return true;
    }

    bool
    inRange(int slot) const
    {
        return slot >= 0 && static_cast<size_t>(slot) < cap;
    }

    static size_t word(int slot) { return static_cast<size_t>(slot) / 64; }
    static unsigned bit(int slot) { return static_cast<unsigned>(slot) % 64; }

    std::vector<uint64_t> words;
    size_t cap = 0;
    size_t n = 0;
};

} // namespace vpir

#endif // VPIR_COMMON_SLOT_SET_HH
