/**
 * @file
 * LRU replacement state for small set-associative structures (caches,
 * VPT, reuse buffer). Tracks recency with per-way timestamps, which is
 * exact LRU and cheap at the associativities used here (2- and 4-way).
 */

#ifndef VPIR_COMMON_LRU_HH
#define VPIR_COMMON_LRU_HH

#include <cstdint>
#include <vector>

#include "common/ckpt_io.hh"
#include "common/logging.hh"

namespace vpir
{

/** LRU recency tracker for one set of @p ways ways. */
class LruSet
{
  public:
    explicit LruSet(unsigned ways = 4) : stamps(ways, 0), tick(0) {}

    /** Mark a way most-recently-used. */
    void
    touch(unsigned way)
    {
        VPIR_ASSERT(way < stamps.size(), "way out of range");
        stamps[way] = ++tick;
    }

    /** Way holding the least-recently-used entry. */
    unsigned
    victim() const
    {
        unsigned v = 0;
        for (unsigned w = 1; w < stamps.size(); ++w) {
            if (stamps[w] < stamps[v])
                v = w;
        }
        return v;
    }

    unsigned ways() const { return static_cast<unsigned>(stamps.size()); }

    /** Checkpoint the recency state (ways are fixed by geometry). */
    void
    serialize(CkptWriter &w) const
    {
        w.u64(tick);
        for (uint64_t s : stamps)
            w.u64(s);
    }

    /** Restore serialize()d state into an identically-sized set. */
    bool
    deserialize(CkptReader &r)
    {
        tick = r.u64();
        for (uint64_t &s : stamps)
            s = r.u64();
        return r.ok();
    }

  private:
    std::vector<uint64_t> stamps;
    uint64_t tick;
};

} // namespace vpir

#endif // VPIR_COMMON_LRU_HH
