/**
 * @file
 * Bounds-checked binary serialization primitives for mid-run
 * checkpoints (sim/checkpoint.hh).
 *
 * Every integer travels little-endian at a fixed width, regardless of
 * host endianness, so a checkpoint bundle is a stable byte sequence:
 * the CRC32 guard and the FNV fingerprints stamped into the header
 * stay meaningful across processes. The reader carries a sticky
 * failure flag instead of throwing — a truncated or corrupt payload
 * turns every subsequent read into a zero and ok() into false, and
 * the caller checks once at the end. That keeps the per-subsystem
 * deserializers simple while guaranteeing that no torn read is ever
 * silently accepted.
 */

#ifndef VPIR_COMMON_CKPT_IO_HH
#define VPIR_COMMON_CKPT_IO_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace vpir
{

/** CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range.
 *  Chain blocks by passing the previous return as @p seed. */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/** Append-only little-endian binary encoder. */
class CkptWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    bytes(const void *data, size_t len)
    {
        buf.append(static_cast<const char *>(data), len);
    }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::string &data() const { return buf; }
    size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/** Bounds-checked decoder over a borrowed byte range. */
class CkptReader
{
  public:
    CkptReader(const void *data, size_t size)
        : p(static_cast<const uint8_t *>(data)), len(size)
    {
    }

    explicit CkptReader(const std::string &s) : CkptReader(s.data(), s.size())
    {
    }

    uint8_t
    u8()
    {
        if (off + 1 > len) {
            failed = true;
            return 0;
        }
        return p[off++];
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(u8()) << (8 * i);
        return v;
    }

    bool b() { return u8() != 0; }

    bool
    bytes(void *out, size_t n)
    {
        if (off + n > len) {
            failed = true;
            std::memset(out, 0, n);
            return false;
        }
        std::memcpy(out, p + off, n);
        off += n;
        return true;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (failed || off + n > len) {
            failed = true;
            return "";
        }
        std::string s(reinterpret_cast<const char *>(p + off),
                      static_cast<size_t>(n));
        off += static_cast<size_t>(n);
        return s;
    }

    /** Mark externally-detected corruption (e.g. a failed geometry or
     *  invariant check inside a deserializer). */
    void fail() { failed = true; }

    bool ok() const { return !failed; }
    bool atEnd() const { return off == len; }
    size_t offset() const { return off; }
    size_t remaining() const { return len - off; }

  private:
    const uint8_t *p;
    size_t len;
    size_t off = 0;
    bool failed = false;
};

} // namespace vpir

#endif // VPIR_COMMON_CKPT_IO_HH
