/**
 * @file
 * Error and status reporting, in the gem5 sense: panic() for internal
 * simulator bugs, fatal() for user/configuration errors, warn() and
 * inform() for advisory output.
 */

#ifndef VPIR_COMMON_LOGGING_HH
#define VPIR_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace vpir
{

/** Print a message and abort; use for conditions that indicate a bug. */
[[noreturn]] void panic(const std::string &msg);

/** Print a message and exit(1); use for user/configuration errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning; simulation continues. */
void warn(const std::string &msg);

/** Print an informational message. */
void inform(const std::string &msg);

/**
 * Assert a simulator invariant; calls panic() with location info on
 * failure. Active in all build types (unlike assert()).
 */
#define VPIR_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vpir::panic(std::string("assertion failed at ") + __FILE__ + \
                          ":" + std::to_string(__LINE__) + ": " + (msg));   \
        }                                                                   \
    } while (0)

} // namespace vpir

#endif // VPIR_COMMON_LOGGING_HH
