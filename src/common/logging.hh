/**
 * @file
 * Error and status reporting, in the gem5 sense: panic() for internal
 * simulator bugs, fatal() for user/configuration errors, warn() and
 * inform() for advisory output.
 *
 * Two hardening hooks augment the basic report-and-abort model:
 *
 *  - PanicThrowScope converts panic()/fatal() on the current thread
 *    into a thrown SimError, so a sweep worker (or a test) can catch
 *    a failing simulation instead of taking the whole process down.
 *
 *  - PanicContext installs a thread-local context provider; panic()
 *    and fatal() append every active frame (workload, params hash,
 *    cycle, sequence number, ...) to the message, so an abort inside
 *    a 16-way sweep is attributable to its cell.
 */

#ifndef VPIR_COMMON_LOGGING_HH
#define VPIR_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

namespace vpir
{

/**
 * A recoverable simulation failure: raised by panic()/fatal() (and
 * therefore the watchdog and the lockstep checker) when a
 * PanicThrowScope is active on the current thread. Carries the full
 * composed message, context frames included.
 */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * While alive, panic()/fatal() on this thread throw SimError instead
 * of aborting/exiting. Scopes nest; the mode is restored on
 * destruction.
 */
class PanicThrowScope
{
  public:
    PanicThrowScope();
    ~PanicThrowScope();

    PanicThrowScope(const PanicThrowScope &) = delete;
    PanicThrowScope &operator=(const PanicThrowScope &) = delete;

  private:
    bool prev;
};

/**
 * Thread-local stack of context providers consulted by panic() and
 * fatal(). Each frame contributes one string (evaluated lazily, only
 * on failure); frames print outermost first.
 */
class PanicContext
{
  public:
    explicit PanicContext(std::function<std::string()> provider);
    ~PanicContext();

    PanicContext(const PanicContext &) = delete;
    PanicContext &operator=(const PanicContext &) = delete;

    /** All active frames on this thread, joined with "; ". */
    static std::string gather();

  private:
    std::function<std::string()> fn;
    PanicContext *prev;
};

/** Print a message and abort; use for conditions that indicate a bug.
 *  Throws SimError instead under an active PanicThrowScope. */
[[noreturn]] void panic(const std::string &msg);

/** Print a message and exit(1); use for user/configuration errors.
 *  Throws SimError instead under an active PanicThrowScope. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning; simulation continues. */
void warn(const std::string &msg);

/** Print an informational message. */
void inform(const std::string &msg);

/**
 * Assert a simulator invariant; calls panic() with location info on
 * failure. Active in all build types (unlike assert()).
 */
#define VPIR_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vpir::panic(std::string("assertion failed at ") + __FILE__ + \
                          ":" + std::to_string(__LINE__) + ": " + (msg));   \
        }                                                                   \
    } while (0)

} // namespace vpir

#endif // VPIR_COMMON_LOGGING_HH
