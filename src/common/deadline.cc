#include "common/deadline.hh"

namespace vpir
{

namespace
{

thread_local bool deadlineArmed = false;
thread_local std::chrono::steady_clock::time_point deadlineAt;

} // anonymous namespace

CellDeadlineScope::CellDeadlineScope(uint64_t timeout_ms)
    : armed(timeout_ms > 0), prevArmed(deadlineArmed),
      prevDeadline(deadlineAt)
{
    if (armed) {
        deadlineArmed = true;
        deadlineAt = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
    }
}

CellDeadlineScope::~CellDeadlineScope()
{
    if (armed) {
        deadlineArmed = prevArmed;
        deadlineAt = prevDeadline;
    }
}

bool
cellDeadlineArmed()
{
    return deadlineArmed;
}

bool
cellDeadlineExpired()
{
    return deadlineArmed &&
           std::chrono::steady_clock::now() >= deadlineAt;
}

} // namespace vpir
