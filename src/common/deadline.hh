/**
 * @file
 * Cooperative per-cell wall-clock deadline.
 *
 * The sweep engine's non-isolated mode cannot kill() a runaway cell
 * (it shares the process), so the core's cycle loop polls this
 * thread-local deadline every few thousand cycles and panics — which
 * a PanicThrowScope turns into a structured, attributable SimError —
 * once it expires. The isolated mode enforces the same budget
 * externally with SIGKILL; this is the in-process fallback.
 *
 * Scopes nest; an inner scope restores the outer deadline on
 * destruction. A timeout of 0 leaves the previous deadline (or none)
 * in effect.
 */

#ifndef VPIR_COMMON_DEADLINE_HH
#define VPIR_COMMON_DEADLINE_HH

#include <chrono>
#include <cstdint>

namespace vpir
{

/** Arms a wall-clock deadline @p timeout_ms from now on this thread. */
class CellDeadlineScope
{
  public:
    explicit CellDeadlineScope(uint64_t timeout_ms);
    ~CellDeadlineScope();

    CellDeadlineScope(const CellDeadlineScope &) = delete;
    CellDeadlineScope &operator=(const CellDeadlineScope &) = delete;

  private:
    bool armed;
    bool prevArmed;
    std::chrono::steady_clock::time_point prevDeadline;
};

/** Whether a deadline is armed on this thread. */
bool cellDeadlineArmed();

/** Whether the armed deadline has passed (false when unarmed). */
bool cellDeadlineExpired();

} // namespace vpir

#endif // VPIR_COMMON_DEADLINE_HH
