#include "common/logging.hh"

#include <cstdio>
#include <vector>

namespace vpir
{

namespace
{

thread_local bool panicThrows = false;
thread_local PanicContext *contextTop = nullptr;

/** Message plus every active context frame, ready to print or throw. */
std::string
compose(const char *kind, const std::string &msg)
{
    std::string full = std::string(kind) + ": " + msg;
    std::string ctx = PanicContext::gather();
    if (!ctx.empty())
        full += "\n  context: " + ctx;
    return full;
}

} // anonymous namespace

PanicThrowScope::PanicThrowScope() : prev(panicThrows)
{
    panicThrows = true;
}

PanicThrowScope::~PanicThrowScope()
{
    panicThrows = prev;
}

PanicContext::PanicContext(std::function<std::string()> provider)
    : fn(std::move(provider)), prev(contextTop)
{
    contextTop = this;
}

PanicContext::~PanicContext()
{
    contextTop = prev;
}

std::string
PanicContext::gather()
{
    // Collect innermost-first, print outermost-first.
    std::vector<const PanicContext *> frames;
    for (const PanicContext *f = contextTop; f; f = f->prev)
        frames.push_back(f);
    std::string out;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        if (!out.empty())
            out += "; ";
        out += (*it)->fn();
    }
    return out;
}

void
panic(const std::string &msg)
{
    std::string full = compose("panic", msg);
    if (panicThrows)
        throw SimError(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::string full = compose("fatal", msg);
    if (panicThrows)
        throw SimError(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace vpir
