#include "common/ckpt_io.hh"

namespace vpir
{

namespace
{

struct Crc32Table
{
    uint32_t t[256];

    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0u);
            t[i] = c;
        }
    }
};

const Crc32Table &
crcTable()
{
    static const Crc32Table table;
    return table;
}

} // anonymous namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const Crc32Table &tab = crcTable();
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = tab.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace vpir
