/**
 * @file
 * Strict environment-variable parsing.
 *
 * The bench knobs used to be read with strtoull/strtod and a null
 * endptr, so a typo like VPIR_BENCH_INSTS=10m silently ran zero
 * instructions. These helpers accept only a complete, well-formed
 * number; anything else (trailing garbage, empty string, overflow)
 * warns once and falls back to the caller's default.
 */

#ifndef VPIR_COMMON_ENV_HH
#define VPIR_COMMON_ENV_HH

#include <cstdint>

namespace vpir
{

/** Read an unsigned integer env var; warn and return @p def when the
 *  variable is set but not a complete non-negative decimal number. */
uint64_t parseEnvU64(const char *name, uint64_t def);

/** Read a floating-point env var; warn and return @p def when the
 *  variable is set but not a complete finite number. */
double parseEnvF64(const char *name, double def);

/** Whether the env var is set (any value, including empty). */
bool envSet(const char *name);

} // namespace vpir

#endif // VPIR_COMMON_ENV_HH
