/**
 * @file
 * Saturating counter, the workhorse of confidence estimation and
 * two-bit branch direction prediction.
 */

#ifndef VPIR_COMMON_SAT_COUNTER_HH
#define VPIR_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace vpir
{

/** An n-bit saturating up/down counter. */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..15).
     * @param initial Initial count.
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal((1u << bits) - 1), count(initial)
    {
        VPIR_ASSERT(bits >= 1 && bits <= 15, "bad counter width");
        VPIR_ASSERT(initial <= maxVal, "initial exceeds saturation");
    }

    /** Increment, saturating at max. */
    void
    increment()
    {
        if (count < maxVal)
            ++count;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (count > 0)
            --count;
    }

    /** Reset to a given value. */
    void
    reset(unsigned value = 0)
    {
        VPIR_ASSERT(value <= maxVal, "reset exceeds saturation");
        count = static_cast<uint16_t>(value);
    }

    unsigned value() const { return count; }
    unsigned max() const { return maxVal; }

    /** True when the count is in the upper half (e.g. taken for 2-bit). */
    bool isSet() const { return count > maxVal / 2; }

    /** True when the count is at or above the given threshold. */
    bool atLeast(unsigned threshold) const { return count >= threshold; }

  private:
    uint16_t maxVal;
    uint16_t count;
};

} // namespace vpir

#endif // VPIR_COMMON_SAT_COUNTER_HH
