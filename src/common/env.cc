#include "common/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace vpir
{

namespace
{

/** The full value must be consumed; stray characters mean the user
 *  typed something the parser ignored (the "10m" failure mode). */
bool
fullyParsed(const char *s, const char *end)
{
    return end != s && *end == '\0';
}

} // anonymous namespace

bool
envSet(const char *name)
{
    return std::getenv(name) != nullptr;
}

uint64_t
parseEnvU64(const char *name, uint64_t def)
{
    const char *s = std::getenv(name);
    if (!s)
        return def;
    // strtoull silently accepts a leading '-' by wrapping; reject it.
    const char *p = s;
    while (*p == ' ' || *p == '\t')
        ++p;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (*p == '-' || !fullyParsed(p, end) || errno == ERANGE) {
        warn(std::string(name) + "='" + s +
             "' is not a valid unsigned integer; using default " +
             std::to_string(def));
        return def;
    }
    return static_cast<uint64_t>(v);
}

double
parseEnvF64(const char *name, double def)
{
    const char *s = std::getenv(name);
    if (!s)
        return def;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (!fullyParsed(s, end) || errno == ERANGE || !std::isfinite(v)) {
        warn(std::string(name) + "='" + s +
             "' is not a valid number; using default " +
             std::to_string(def));
        return def;
    }
    return v;
}

} // namespace vpir
