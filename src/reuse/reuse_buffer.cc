#include "reuse/reuse_buffer.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace vpir
{

ReuseBuffer::ReuseBuffer(const RbParams &p) : params(p)
{
    VPIR_ASSERT(p.ways >= 1 && p.entries % p.ways == 0,
                "entries must divide into ways");
    numSets = p.entries / p.ways;
    VPIR_ASSERT(isPowerOf2(numSets), "set count not a power of two");
    entries.assign(p.entries, Entry());
    lru.assign(numSets, LruSet(p.ways));
    // One bucket per entry is a comfortable upper bound on distinct
    // load words tracked at once; avoids steady-state rehashing.
    loadIndex.reserve(p.entries);
}

uint32_t
ReuseBuffer::setIndex(Addr pc) const
{
    return foldPC(pc, floorLog2(numSets));
}

bool
ReuseBuffer::operandOk(const Operand &op, const RbOperandQuery &q) const
{
    if (op.reg == REG_INVALID)
        return true; // no operand, trivially matches
    if (q.reg != op.reg)
        return false; // different static instruction in this slot

    if (q.ready)
        return q.value == op.value;

    // Operand not available at decode: only a dependence-pointer chain
    // to an entry the in-flight producer was reused from can rescue it
    // (S_{n+d}'s same-cycle chain collapse).
    if (q.producerReuse.valid() && op.src.valid() &&
        q.producerReuse.idx == op.src.idx &&
        q.producerReuse.serial == op.src.serial) {
        // Exact link match implies the producer delivers exactly the
        // operand value this entry was computed with.
        return q.value == op.value;
    }
    return false;
}

RbProbeResult
ReuseBuffer::probe(Addr pc, const Instr &inst,
                   const RbOperandQuery ops_q[2]) const
{
    RbProbeResult r;
    uint32_t si = setIndex(pc);
    const bool is_ld = isLoad(inst.op);
    const bool is_st = isStore(inst.op);

    for (unsigned w = 0; w < params.ways; ++w) {
        const Entry &e = entries[si * params.ways + w];
        if (!e.valid || e.pc != pc || e.op != inst.op)
            continue;

        bool op0 = operandOk(e.ops[0], ops_q[0]);
        bool op1 = operandOk(e.ops[1], ops_q[1]);

        if (is_ld) {
            // Address part depends only on the base register (op 0).
            if (!op0)
                continue;
            r.addrReused = true;
            r.resultReused = e.memValid;
        } else if (is_st) {
            // Stores have no result; a base-operand match reuses the
            // address computation.
            if (!op0)
                continue;
            r.addrReused = true;
            r.resultReused = false;
        } else {
            if (!op0 || !op1)
                continue;
            r.resultReused = true;
        }

        r.entry = RbRef{static_cast<int>(si * params.ways + w), e.serial};
        r.result = e.result;
        r.result2 = e.result2;
        r.taken = e.taken;
        r.nextPC = e.nextPC;
        r.memAddr = e.memAddr;
        r.memValue = e.memValue;
        r.recoveredSquashedWork = e.fromSquashed;

        // Prefer a full-result hit; keep scanning only if this way gave
        // just an address hit and a later way might do better.
        if (r.resultReused || is_st)
            return r;
    }
    return r;
}

void
ReuseBuffer::noteReused(const RbProbeResult &hit, const Instr &inst)
{
    (void)inst;
    VPIR_ASSERT(hit.entry.valid(), "noteReused without a hit");
    Entry &e = entries[hit.entry.idx];
    if (e.serial != hit.entry.serial)
        return; // overwritten between probe and use; nothing to note
    lru[hit.entry.idx / params.ways].touch(hit.entry.idx % params.ways);
    if (e.fromSquashed)
        e.fromSquashed = false; // recovery credit consumed once
}

void
ReuseBuffer::registerLoad(int idx)
{
    const Entry &e = entries[idx];
    for (Addr a = e.memAddr & ~3u; a < e.memAddr + e.memSz; a += 4)
        loadIndex[a].push_back(idx);
}

void
ReuseBuffer::unregisterLoad(int idx)
{
    const Entry &e = entries[idx];
    for (Addr a = e.memAddr & ~3u; a < e.memAddr + e.memSz; a += 4) {
        auto it = loadIndex.find(a);
        if (it == loadIndex.end())
            continue;
        auto &v = it->second;
        v.erase(std::remove(v.begin(), v.end(), idx), v.end());
        if (v.empty())
            loadIndex.erase(it);
    }
}

RbRef
ReuseBuffer::insert(const RbInsertInfo &info)
{
    uint32_t si = setIndex(info.pc);

    // Refresh an existing instance with identical operands.
    int way = -1;
    for (unsigned w = 0; w < params.ways; ++w) {
        Entry &e = entries[si * params.ways + w];
        if (e.valid && e.pc == info.pc && e.op == info.inst.op &&
            e.ops[0].reg == info.srcReg[0] &&
            e.ops[1].reg == info.srcReg[1] &&
            (e.ops[0].reg == REG_INVALID ||
             e.ops[0].value == info.srcVal[0]) &&
            (e.ops[1].reg == REG_INVALID ||
             e.ops[1].value == info.srcVal[1])) {
            way = static_cast<int>(w);
            break;
        }
    }

    bool fresh = way < 0;
    if (fresh) {
        for (unsigned w = 0; w < params.ways; ++w) {
            if (!entries[si * params.ways + w].valid) {
                way = static_cast<int>(w);
                break;
            }
        }
        if (way < 0)
            way = static_cast<int>(lru[si].victim());
    }

    int idx = static_cast<int>(si * params.ways + way);
    Entry &e = entries[idx];

    const bool new_ld = isLoad(info.inst.op);
    const unsigned new_sz = memSize(info.inst.op);
    // A refreshed load covering the same span keeps its loadIndex
    // registrations; only a changed span pays the map updates.
    const bool same_span = e.valid && e.isLd && new_ld &&
                           e.memAddr == info.memAddr && e.memSz == new_sz;
    if (e.valid && e.isLd && !same_span)
        unregisterLoad(idx);

    if (fresh)
        e.serial = nextSerial++;
    e.valid = true;
    e.pc = info.pc;
    e.op = info.inst.op;
    for (int k = 0; k < 2; ++k) {
        e.ops[k].reg = info.srcReg[k];
        e.ops[k].value = info.srcVal[k];
        e.ops[k].src = RbRef{};
    }
    e.result = info.result;
    e.result2 = info.result2;
    e.taken = info.taken;
    e.nextPC = info.nextPC;
    e.memAddr = info.memAddr;
    e.memValue = info.memValue;
    e.memValid = new_ld;
    e.fromSquashed = false;
    e.isLd = new_ld;
    e.memSz = new_sz;

    if (new_ld && !same_span)
        registerLoad(idx);

    lru[si].touch(static_cast<unsigned>(way));
    return RbRef{idx, e.serial};
}

void
ReuseBuffer::linkSources(const RbRef &ref, const RbRef src_links[2])
{
    if (!ref.valid())
        return;
    Entry &e = entries[ref.idx];
    if (e.serial != ref.serial)
        return;
    for (int k = 0; k < 2; ++k)
        e.ops[k].src = src_links[k];
}

void
ReuseBuffer::storeInvalidate(Addr addr, unsigned size)
{
    for (Addr a = addr & ~3u; a < addr + size; a += 4) {
        auto it = loadIndex.find(a);
        if (it == loadIndex.end())
            continue;
        for (int idx : it->second)
            entries[idx].memValid = false;
    }
}

void
ReuseBuffer::markSquashed(const RbRef &ref)
{
    if (!ref.valid())
        return;
    Entry &e = entries[ref.idx];
    if (e.valid && e.serial == ref.serial)
        e.fromSquashed = true;
}

void
ReuseBuffer::reset()
{
    for (Entry &e : entries)
        e.valid = false;
    loadIndex.clear();
}

unsigned
ReuseBuffer::instancesFor(Addr pc) const
{
    uint32_t si = setIndex(pc);
    unsigned n = 0;
    for (unsigned w = 0; w < params.ways; ++w) {
        const Entry &e = entries[si * params.ways + w];
        if (e.valid && e.pc == pc)
            ++n;
    }
    return n;
}

std::string
ReuseBuffer::audit() const
{
    size_t expect_regs = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        if (!e.valid)
            continue;
        std::string at = "RB entry " + std::to_string(i) + " (pc " +
                         std::to_string(e.pc) + "): ";
        if (e.isLd != isLoad(e.op))
            return at + "cached isLd disagrees with opcode";
        if (e.memSz != memSize(e.op))
            return at + "cached memSz disagrees with opcode";
        if (e.serial == 0 || e.serial >= nextSerial)
            return at + "serial outside the issued range";
        if (setIndex(e.pc) != static_cast<uint32_t>(i) / params.ways)
            return at + "entry outside its PC's set";
        if (e.isLd) {
            // Every covered word must index back to this entry,
            // exactly once.
            for (Addr a = e.memAddr & ~3u; a < e.memAddr + e.memSz;
                 a += 4) {
                ++expect_regs;
                auto it = loadIndex.find(a);
                unsigned hits = 0;
                if (it != loadIndex.end()) {
                    for (int idx : it->second) {
                        if (idx == static_cast<int>(i))
                            ++hits;
                    }
                }
                if (hits != 1) {
                    return at + "load registered " +
                           std::to_string(hits) +
                           " times for a covered word";
                }
            }
        }
    }
    // No stale registrations: the index holds exactly the valid load
    // entries' covered words, nothing else.
    size_t total_regs = 0;
    for (const auto &kv : loadIndex)
        total_regs += kv.second.size();
    if (total_regs != expect_regs) {
        return "RB load index holds " + std::to_string(total_regs) +
               " registrations, entries imply " +
               std::to_string(expect_regs);
    }
    return "";
}

namespace
{

void
serializeRef(CkptWriter &w, const RbRef &ref)
{
    w.u64(static_cast<uint64_t>(static_cast<int64_t>(ref.idx)));
    w.u64(ref.serial);
}

RbRef
deserializeRef(CkptReader &r)
{
    RbRef ref;
    ref.idx = static_cast<int>(static_cast<int64_t>(r.u64()));
    ref.serial = r.u64();
    return ref;
}

} // anonymous namespace

void
ReuseBuffer::serialize(CkptWriter &w) const
{
    w.u64(entries.size());
    for (const Entry &e : entries) {
        w.b(e.valid);
        w.u64(e.pc);
        w.u8(static_cast<uint8_t>(e.op));
        for (const Operand &op : e.ops) {
            w.u32(static_cast<uint32_t>(op.reg));
            w.u64(op.value);
            serializeRef(w, op.src);
        }
        w.u64(e.result);
        w.u64(e.result2);
        w.b(e.taken);
        w.u64(e.nextPC);
        w.u64(e.memAddr);
        w.u64(e.memValue);
        w.b(e.memValid);
        w.b(e.fromSquashed);
        w.b(e.isLd);
        w.u32(e.memSz);
        w.u64(e.serial);
    }
    for (const LruSet &s : lru)
        s.serialize(w);
    w.u64(nextSerial);
    for (const RbRef &ref : regLink)
        serializeRef(w, ref);
}

bool
ReuseBuffer::deserialize(CkptReader &r)
{
    if (r.u64() != entries.size()) {
        r.fail();
        return false;
    }
    loadIndex.clear();
    for (Entry &e : entries) {
        e.valid = r.b();
        e.pc = r.u64();
        e.op = static_cast<Op>(r.u8());
        for (Operand &op : e.ops) {
            op.reg = static_cast<RegId>(r.u32());
            op.value = r.u64();
            op.src = deserializeRef(r);
        }
        e.result = r.u64();
        e.result2 = r.u64();
        e.taken = r.b();
        e.nextPC = r.u64();
        e.memAddr = r.u64();
        e.memValue = r.u64();
        e.memValid = r.b();
        e.fromSquashed = r.b();
        e.isLd = r.b();
        e.memSz = r.u32();
        e.serial = r.u64();
    }
    for (LruSet &s : lru) {
        if (!s.deserialize(r))
            return false;
    }
    nextSerial = r.u64();
    for (RbRef &ref : regLink)
        ref = deserializeRef(r);
    if (!r.ok())
        return false;
    // The load index is derived: rebuild it from the restored entries
    // (same registration rule as insert()).
    for (size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].valid && entries[i].isLd)
            registerLoad(static_cast<int>(i));
    }
    return true;
}

} // namespace vpir
