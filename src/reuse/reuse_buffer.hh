/**
 * @file
 * Reuse Buffer implementing scheme S_{n+d} (Sodani & Sohi, ISCA'97)
 * with the two augmentations of the MICRO'98 paper (§4.1.2):
 * operand values are stored with each entry, entries survive operand
 * overwrites with equal values, and entries whose operand values
 * become current again are revalidated. With those augmentations the
 * start-entry reuse test reduces to comparing stored operand values
 * against the current architectural register values — *when those are
 * available at decode*; unavailable operands fail the test unless a
 * dependence pointer links the entry to one reused in the same window
 * (the chain-collapse case).
 *
 * Geometry per the paper: 4K entries, 4-way set associative by PC,
 * LRU replacement; load entries keep separate address/result validity,
 * and stores invalidate the result (not address) part of matching
 * loads. Entries inserted by instructions that are later squashed stay
 * in the buffer: reusing one recovers squashed work (paper Table 5).
 */

#ifndef VPIR_REUSE_REUSE_BUFFER_HH
#define VPIR_REUSE_REUSE_BUFFER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ckpt_io.hh"
#include "common/lru.hh"
#include "isa/decode.hh"
#include "isa/instr.hh"

namespace vpir
{

/** Reuse buffer configuration. */
struct RbParams
{
    unsigned entries = 4 * 1024;
    unsigned ways = 4;
};

/** Reference to a specific version of an RB entry. */
struct RbRef
{
    int idx = -1;        //!< flat entry index, -1 = none
    uint64_t serial = 0; //!< version stamp at link/insert time

    bool valid() const { return idx >= 0; }
};

/** Per-operand inputs to the reuse test, provided by the core. */
struct RbOperandQuery
{
    RegId reg = REG_INVALID;
    bool ready = false;      //!< value available at decode time
    uint64_t value = 0;      //!< current architectural value (if ready)
    RbRef producerReuse;     //!< RB entry the in-flight producer of
                             //!< this register was reused from (if any)
};

/** Outcome of a reuse probe. */
struct RbProbeResult
{
    bool resultReused = false; //!< full result (or branch outcome) reuse
    bool addrReused = false;   //!< memory ops: address part reused
    RbRef entry;               //!< entry that hit
    uint64_t result = 0;
    uint64_t result2 = 0;
    bool taken = false;        //!< branches: stored outcome
    Addr nextPC = 0;
    Addr memAddr = 0;          //!< memory ops: stored effective address
    uint64_t memValue = 0;     //!< loads: stored loaded value
    bool recoveredSquashedWork = false;
};

/** Everything insert() needs about an executed instruction. */
struct RbInsertInfo
{
    Addr pc = 0;
    Instr inst;
    RegId srcReg[2] = {REG_INVALID, REG_INVALID};
    uint64_t srcVal[2] = {0, 0};
    uint64_t result = 0;
    uint64_t result2 = 0;
    bool taken = false;
    Addr nextPC = 0;
    Addr memAddr = 0;
    uint64_t memValue = 0;
};

/** The reuse buffer. */
class ReuseBuffer
{
  public:
    explicit ReuseBuffer(const RbParams &params = RbParams());

    /**
     * Reuse test for the instruction at @p pc. Pure lookup: no state
     * is modified. All instances of pc in the set are tested and the
     * first passing instance is returned (paper footnote 1).
     */
    RbProbeResult probe(Addr pc, const Instr &inst,
                        const RbOperandQuery ops[2]) const;

    /**
     * Commit to a probe hit: touches LRU, updates the register link
     * table so younger entries chain to this one, and consumes the
     * squashed-work-recovery credit.
     */
    void noteReused(const RbProbeResult &hit, const Instr &inst);

    /**
     * Insert (or refresh) an entry for an executed instruction.
     * Called at writeback, including for wrong-path instructions.
     * @return reference to the entry written.
     */
    RbRef insert(const RbInsertInfo &info);

    /**
     * Attach dependence pointers ('d') to an entry written by
     * insert(). The core resolves the links through the ROB (exact
     * program-order producers) and calls this right after insert().
     */
    void linkSources(const RbRef &ref, const RbRef src_links[2]);

    /** A store executed: clear result validity of overlapping loads. */
    void storeInvalidate(Addr addr, unsigned size);

    /** The instruction that wrote this entry was squashed after
     *  executing; reusing the entry later counts as recovered work. */
    void markSquashed(const RbRef &ref);

    /** Clear all entries. */
    void reset();

    /** Number of valid entries holding @p pc (test hook). */
    unsigned instancesFor(Addr pc) const;

    /**
     * Structural sanity sweep for VPIR_AUDIT: cached decode bits
     * match the opcode, serials are in range, entries sit in the set
     * their PC indexes to, and the load index and the entry array
     * agree bidirectionally. @return "" when clean, else a
     * description of the first violation. Does not inspect values:
     * injected value faults must stay invisible to the audit.
     */
    std::string audit() const;

    /** Checkpoint entries, LRU, serial counter, and register links.
     *  The load index is derived state and is rebuilt on restore. */
    void serialize(CkptWriter &w) const;
    /** Restore serialize()d state; false on geometry mismatch. */
    bool deserialize(CkptReader &r);

  private:
    struct Operand
    {
        RegId reg = REG_INVALID;
        uint64_t value = 0;
        RbRef src;       //!< dependence pointer (S_{n+d}'s 'd')
    };

    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Op op = Op::NOP;
        Operand ops[2];
        uint64_t result = 0;
        uint64_t result2 = 0;
        bool taken = false;
        Addr nextPC = 0;
        Addr memAddr = 0;
        uint64_t memValue = 0;
        bool memValid = false;     //!< loads: result not killed by store
        bool fromSquashed = false; //!< inserted by squashed instruction
        bool isLd = false;         //!< cached isLoad(op)
        unsigned memSz = 0;        //!< cached memSize(op), 0 if not mem
        uint64_t serial = 0;
    };

    uint32_t setIndex(Addr pc) const;
    bool operandOk(const Operand &op, const RbOperandQuery &q) const;
    void unregisterLoad(int idx);
    void registerLoad(int idx);

    RbParams params;
    uint32_t numSets;
    std::vector<Entry> entries;   //!< flat [set*ways + way]
    std::vector<LruSet> lru;
    uint64_t nextSerial = 1;

    /** Last RB entry whose instruction wrote each register ('n'+'d'
     *  link formation). */
    RbRef regLink[NUM_ARCH_REGS];

    /** word-address -> load entry indices covering it. */
    std::unordered_map<Addr, std::vector<int>> loadIndex;
};

} // namespace vpir

#endif // VPIR_REUSE_REUSE_BUFFER_HH
