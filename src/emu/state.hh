/**
 * @file
 * Architectural state with an undo journal.
 *
 * The simulator executes instructions functionally in dispatch order,
 * including down mispredicted paths (needed to model IR's recovery of
 * squashed work and VP's spurious branch redirects). Every register
 * and memory write is journaled; a squash rolls the journal back to
 * the offending branch's position, restoring the exact architectural
 * state the correct path must see.
 *
 * Memory pages are held behind shared_ptr and cloned copy-on-write:
 * copying an EmuState is O(pages-resident) pointer copies, and the
 * first write to a shared page clones just that page. This is what
 * makes post-warmup snapshots (sim/warm_cache.hh) cheap enough to
 * hand every sweep cell — and every lockstep checker — a private
 * state without re-executing the warmup. shared_ptr's atomic
 * refcounts make concurrent clones of one immutable snapshot safe:
 * writers clone before touching a page whose count exceeds one, and
 * a count of one means this state is the sole owner.
 */

#ifndef VPIR_EMU_STATE_HH
#define VPIR_EMU_STATE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/ckpt_io.hh"
#include "isa/instr.hh"
#include "isa/regs.hh"

namespace vpir
{

/** Position in the undo journal (monotonically increasing). */
using JournalMark = uint64_t;

/** Registers + sparse paged memory + undo journal. */
class EmuState
{
  public:
    EmuState();

    // --- registers ---------------------------------------------------
    /** Read a register (r0 reads as zero). */
    uint64_t readReg(RegId r) const;

    /** Journaled register write (writes to r0 are dropped). */
    void writeReg(RegId r, uint64_t value);

    /** Non-journaled write, for initialisation only. */
    void initReg(RegId r, uint64_t value);

    // --- memory --------------------------------------------------------
    /** Read size bytes little-endian (size 1, 2, 4 or 8). */
    uint64_t readMem(Addr addr, unsigned size) const;

    /** Journaled memory write. */
    void writeMem(Addr addr, unsigned size, uint64_t value);

    /** Non-journaled write, for loading the initial image. */
    void initMem(Addr addr, unsigned size, uint64_t value);

    /** Bulk non-journaled initialisation. */
    void initBytes(Addr addr, const uint8_t *data, size_t len);

    // --- journal -------------------------------------------------------
    /** Current journal position; instructions record this before
     *  executing so squashes can restore the state exactly. */
    JournalMark mark() const { return journalBase + journal.size(); }

    /** Undo all writes made at or after @p m. */
    void rollback(JournalMark m);

    /** Discard journal entries older than @p m (commit). */
    void retire(JournalMark m);

    /** Number of live journal records (test/diagnostic hook). */
    size_t journalDepth() const { return journal.size(); }

    // --- copy-on-write observability ---------------------------------
    /** Pages resident in this state's sparse map. */
    size_t residentPages() const { return pages.size(); }

    /** Pages currently shared with at least one other state. */
    size_t sharedPages() const;

    /** Write faults that cloned a shared page since construction
     *  (copies inherit the source's count; compare deltas). */
    uint64_t cowFaults() const { return cowFaults_; }

    // --- checkpointing -------------------------------------------------
    /**
     * Checkpoint registers and resident pages. Only callable at a
     * quiesced commit boundary: the undo journal must be empty (all
     * speculation retired or rolled back), so only architectural
     * state travels. Pages are emitted in sorted page-number order so
     * the bundle is a deterministic byte sequence.
     */
    void serialize(CkptWriter &w) const;

    /** Restore serialize()d state; existing pages are discarded. */
    bool deserialize(CkptReader &r);

  private:
    struct UndoRec
    {
        bool isReg;
        RegId reg;
        uint8_t size;   //!< bytes, memory records only
        Addr addr;
        uint64_t oldValue;
    };

    static constexpr unsigned pageBits = 12;
    static constexpr uint32_t pageSize = 1u << pageBits;
    using Page = std::array<uint8_t, pageSize>;

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr) const;

    uint64_t readMemRaw(Addr addr, unsigned size) const;
    void writeMemRaw(Addr addr, unsigned size, uint64_t value);

    std::array<uint64_t, NUM_ARCH_REGS> regs;
    /** shared_ptr, not unique_ptr: the default copy operations then
     *  implement the COW clone (pages shared until written). */
    std::unordered_map<uint32_t, std::shared_ptr<Page>> pages;
    std::deque<UndoRec> journal;
    JournalMark journalBase = 0;
    uint64_t cowFaults_ = 0;
};

} // namespace vpir

#endif // VPIR_EMU_STATE_HH
