#include "emu/state.hh"

#include <cstring>

#include "common/logging.hh"

namespace vpir
{

EmuState::EmuState()
{
    regs.fill(0);
}

uint64_t
EmuState::readReg(RegId r) const
{
    VPIR_ASSERT(r < NUM_ARCH_REGS, "register id out of range");
    if (r == REG_ZERO)
        return 0;
    return regs[r];
}

void
EmuState::writeReg(RegId r, uint64_t value)
{
    VPIR_ASSERT(r < NUM_ARCH_REGS, "register id out of range");
    if (r == REG_ZERO)
        return;
    journal.push_back(UndoRec{true, r, 0, 0, regs[r]});
    regs[r] = value;
}

void
EmuState::initReg(RegId r, uint64_t value)
{
    VPIR_ASSERT(r < NUM_ARCH_REGS, "register id out of range");
    if (r == REG_ZERO)
        return;
    regs[r] = value;
}

EmuState::Page &
EmuState::pageFor(Addr addr)
{
    uint32_t pn = addr >> pageBits;
    auto &p = pages[pn];
    if (!p) {
        p = std::make_unique<Page>();
        p->fill(0);
    }
    return *p;
}

const EmuState::Page *
EmuState::pageForRead(Addr addr) const
{
    auto it = pages.find(addr >> pageBits);
    return it == pages.end() ? nullptr : it->second.get();
}

uint64_t
EmuState::readMemRaw(Addr addr, unsigned size) const
{
    uint64_t v = 0;
    for (unsigned b = 0; b < size; ++b) {
        Addr a = addr + b;
        const Page *p = pageForRead(a);
        uint8_t byte = p ? (*p)[a & (pageSize - 1)] : 0;
        v |= static_cast<uint64_t>(byte) << (8 * b);
    }
    return v;
}

void
EmuState::writeMemRaw(Addr addr, unsigned size, uint64_t value)
{
    for (unsigned b = 0; b < size; ++b) {
        Addr a = addr + b;
        pageFor(a)[a & (pageSize - 1)] =
            static_cast<uint8_t>(value >> (8 * b));
    }
}

uint64_t
EmuState::readMem(Addr addr, unsigned size) const
{
    return readMemRaw(addr, size);
}

void
EmuState::writeMem(Addr addr, unsigned size, uint64_t value)
{
    VPIR_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad memory access size");
    journal.push_back(UndoRec{false, 0, static_cast<uint8_t>(size), addr,
                              readMemRaw(addr, size)});
    writeMemRaw(addr, size, value);
}

void
EmuState::initMem(Addr addr, unsigned size, uint64_t value)
{
    writeMemRaw(addr, size, value);
}

void
EmuState::initBytes(Addr addr, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        writeMemRaw(addr + static_cast<Addr>(i), 1, data[i]);
}

void
EmuState::rollback(JournalMark m)
{
    VPIR_ASSERT(m >= journalBase, "rollback past retired state");
    while (journalBase + journal.size() > m) {
        const UndoRec &u = journal.back();
        if (u.isReg)
            regs[u.reg] = u.oldValue;
        else
            writeMemRaw(u.addr, u.size, u.oldValue);
        journal.pop_back();
    }
}

void
EmuState::retire(JournalMark m)
{
    VPIR_ASSERT(m <= journalBase + journal.size(),
                "retire beyond journal head");
    while (journalBase < m) {
        journal.pop_front();
        ++journalBase;
    }
}

} // namespace vpir
