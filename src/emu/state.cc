#include "emu/state.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace vpir
{

EmuState::EmuState()
{
    regs.fill(0);
}

uint64_t
EmuState::readReg(RegId r) const
{
    VPIR_ASSERT(r < NUM_ARCH_REGS, "register id out of range");
    if (r == REG_ZERO)
        return 0;
    return regs[r];
}

void
EmuState::writeReg(RegId r, uint64_t value)
{
    VPIR_ASSERT(r < NUM_ARCH_REGS, "register id out of range");
    if (r == REG_ZERO)
        return;
    journal.push_back(UndoRec{true, r, 0, 0, regs[r]});
    regs[r] = value;
}

void
EmuState::initReg(RegId r, uint64_t value)
{
    VPIR_ASSERT(r < NUM_ARCH_REGS, "register id out of range");
    if (r == REG_ZERO)
        return;
    regs[r] = value;
}

EmuState::Page &
EmuState::pageFor(Addr addr)
{
    uint32_t pn = addr >> pageBits;
    auto &p = pages[pn];
    if (!p) {
        p = std::make_shared<Page>();
        p->fill(0);
    } else if (p.use_count() > 1) {
        // Write fault on a shared page: clone before mutating so every
        // other state sharing it keeps its snapshot intact. A stale
        // use_count read from a concurrent clone's release can only
        // cause a harmless extra copy, never a missed one: the count
        // cannot grow without this owner copying the state itself.
        p = std::make_shared<Page>(*p);
        ++cowFaults_;
    }
    return *p;
}

const EmuState::Page *
EmuState::pageForRead(Addr addr) const
{
    auto it = pages.find(addr >> pageBits);
    return it == pages.end() ? nullptr : it->second.get();
}

size_t
EmuState::sharedPages() const
{
    size_t n = 0;
    for (const auto &[pn, p] : pages)
        if (p.use_count() > 1)
            ++n;
    return n;
}

uint64_t
EmuState::readMemRaw(Addr addr, unsigned size) const
{
    uint32_t off = addr & (pageSize - 1);
    if (off + size <= pageSize) {
        // Single-page access (the overwhelming case): one map lookup
        // instead of one per byte.
        const Page *p = pageForRead(addr);
        if (!p)
            return 0;
        uint64_t v = 0;
        for (unsigned b = 0; b < size; ++b)
            v |= static_cast<uint64_t>((*p)[off + b]) << (8 * b);
        return v;
    }
    uint64_t v = 0;
    for (unsigned b = 0; b < size; ++b) {
        Addr a = addr + b;
        const Page *p = pageForRead(a);
        uint8_t byte = p ? (*p)[a & (pageSize - 1)] : 0;
        v |= static_cast<uint64_t>(byte) << (8 * b);
    }
    return v;
}

void
EmuState::writeMemRaw(Addr addr, unsigned size, uint64_t value)
{
    uint32_t off = addr & (pageSize - 1);
    if (off + size <= pageSize) {
        Page &p = pageFor(addr); // one lookup + at most one COW fault
        for (unsigned b = 0; b < size; ++b)
            p[off + b] = static_cast<uint8_t>(value >> (8 * b));
        return;
    }
    for (unsigned b = 0; b < size; ++b) {
        Addr a = addr + b;
        pageFor(a)[a & (pageSize - 1)] =
            static_cast<uint8_t>(value >> (8 * b));
    }
}

uint64_t
EmuState::readMem(Addr addr, unsigned size) const
{
    return readMemRaw(addr, size);
}

void
EmuState::writeMem(Addr addr, unsigned size, uint64_t value)
{
    VPIR_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad memory access size");
    journal.push_back(UndoRec{false, 0, static_cast<uint8_t>(size), addr,
                              readMemRaw(addr, size)});
    writeMemRaw(addr, size, value);
}

void
EmuState::initMem(Addr addr, unsigned size, uint64_t value)
{
    writeMemRaw(addr, size, value);
}

void
EmuState::initBytes(Addr addr, const uint8_t *data, size_t len)
{
    // Page-at-a-time: image loading is on the snapshot-build path.
    size_t i = 0;
    while (i < len) {
        Addr a = addr + static_cast<Addr>(i);
        uint32_t off = a & (pageSize - 1);
        size_t chunk = std::min<size_t>(len - i, pageSize - off);
        std::memcpy(pageFor(a).data() + off, data + i, chunk);
        i += chunk;
    }
}

void
EmuState::rollback(JournalMark m)
{
    VPIR_ASSERT(m >= journalBase, "rollback past retired state");
    while (journalBase + journal.size() > m) {
        const UndoRec &u = journal.back();
        if (u.isReg)
            regs[u.reg] = u.oldValue;
        else
            writeMemRaw(u.addr, u.size, u.oldValue);
        journal.pop_back();
    }
}

void
EmuState::retire(JournalMark m)
{
    VPIR_ASSERT(m <= journalBase + journal.size(),
                "retire beyond journal head");
    while (journalBase < m) {
        journal.pop_front();
        ++journalBase;
    }
}

void
EmuState::serialize(CkptWriter &w) const
{
    VPIR_ASSERT(journal.empty(),
                "checkpoint with live speculation in the journal");
    for (uint64_t r : regs)
        w.u64(r);
    w.u64(journalBase);
    // Sorted page order: the bundle must be a deterministic function
    // of the architectural state, not of hash-map iteration order.
    std::vector<uint32_t> nums;
    nums.reserve(pages.size());
    for (const auto &kv : pages)
        nums.push_back(kv.first);
    std::sort(nums.begin(), nums.end());
    w.u64(nums.size());
    for (uint32_t n : nums) {
        w.u32(n);
        w.bytes(pages.at(n)->data(), pageSize);
    }
}

bool
EmuState::deserialize(CkptReader &r)
{
    for (uint64_t &reg : regs)
        reg = r.u64();
    journalBase = r.u64();
    journal.clear();
    pages.clear();
    uint64_t count = r.u64();
    if (count > r.remaining() / pageSize) {
        r.fail();
        return false;
    }
    uint32_t prev = 0;
    for (uint64_t i = 0; i < count; ++i) {
        uint32_t n = r.u32();
        if (i > 0 && n <= prev) {
            r.fail(); // violates sorted-unique invariant: torn data
            return false;
        }
        prev = n;
        auto page = std::make_shared<Page>();
        if (!r.bytes(page->data(), pageSize))
            return false;
        pages.emplace(n, std::move(page));
    }
    return r.ok();
}

} // namespace vpir
