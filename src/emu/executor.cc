#include "emu/executor.hh"

#include <cmath>
#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace vpir
{

namespace
{

double
asDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

uint64_t
asBits(double d)
{
    uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

uint32_t
lo32(uint64_t v)
{
    return static_cast<uint32_t>(v);
}

int32_t
slo32(uint64_t v)
{
    return static_cast<int32_t>(lo32(v));
}

} // anonymous namespace

SemOut
evalInstr(const Instr &inst, Addr pc, uint64_t src0, uint64_t src1,
          const MemReadFn &mem)
{
    SemOut o;
    o.nextPC = pc + 4;

    const uint32_t a = lo32(src0);
    const uint32_t b = lo32(src1);
    const int32_t sa = slo32(src0);
    const int32_t sb = slo32(src1);
    const double fa = asDouble(src0);
    const double fb = asDouble(src1);

    switch (inst.op) {
      case Op::NOP:
        break;
      case Op::HALT:
        break;

      case Op::ADD: o.result = lo32(a + b); break;
      case Op::SUB: o.result = lo32(a - b); break;
      case Op::AND: o.result = a & b; break;
      case Op::OR: o.result = a | b; break;
      case Op::XOR: o.result = a ^ b; break;
      case Op::NOR: o.result = lo32(~(a | b)); break;
      case Op::SLT: o.result = sa < sb ? 1 : 0; break;
      case Op::SLTU: o.result = a < b ? 1 : 0; break;
      case Op::SLLV: o.result = lo32(a << (b & 31)); break;
      case Op::SRLV: o.result = a >> (b & 31); break;
      case Op::SRAV: o.result = lo32(static_cast<uint32_t>(
                         sa >> (b & 31))); break;

      case Op::ADDI:
        o.result = lo32(a + static_cast<uint32_t>(inst.imm));
        break;
      case Op::ANDI:
        o.result = a & static_cast<uint32_t>(inst.imm);
        break;
      case Op::ORI:
        o.result = a | static_cast<uint32_t>(inst.imm);
        break;
      case Op::XORI:
        o.result = a ^ static_cast<uint32_t>(inst.imm);
        break;
      case Op::SLTI: o.result = sa < inst.imm ? 1 : 0; break;
      case Op::SLTIU:
        o.result = a < static_cast<uint32_t>(inst.imm) ? 1 : 0;
        break;
      case Op::SLL: o.result = lo32(a << (inst.imm & 31)); break;
      case Op::SRL: o.result = a >> (inst.imm & 31); break;
      case Op::SRA:
        o.result = lo32(static_cast<uint32_t>(sa >> (inst.imm & 31)));
        break;
      case Op::LUI:
        o.result = lo32(static_cast<uint32_t>(inst.imm) << 16);
        break;
      case Op::LI:
        o.result = static_cast<uint32_t>(inst.imm);
        break;

      case Op::MULT: {
        int64_t p = static_cast<int64_t>(sa) * static_cast<int64_t>(sb);
        o.result = lo32(static_cast<uint64_t>(p));          // LO
        o.result2 = lo32(static_cast<uint64_t>(p) >> 32);   // HI
        break;
      }
      case Op::MULTU: {
        uint64_t p = static_cast<uint64_t>(a) * static_cast<uint64_t>(b);
        o.result = lo32(p);
        o.result2 = lo32(p >> 32);
        break;
      }
      case Op::DIV:
        if (sb == 0 || (sa == INT32_MIN && sb == -1)) {
            o.result = 0;
            o.result2 = lo32(static_cast<uint32_t>(sa));
        } else {
            o.result = lo32(static_cast<uint32_t>(sa / sb));  // LO
            o.result2 = lo32(static_cast<uint32_t>(sa % sb)); // HI
        }
        break;
      case Op::DIVU:
        if (b == 0) {
            o.result = 0;
            o.result2 = a;
        } else {
            o.result = a / b;
            o.result2 = a % b;
        }
        break;
      case Op::MFHI:
      case Op::MFLO:
        o.result = a; // source (HI or LO) arrives as src0
        break;

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::LW: case Op::L_D: {
        o.memAddr = a + static_cast<uint32_t>(inst.imm);
        unsigned sz = memSize(inst.op);
        uint64_t raw = mem ? mem(o.memAddr, sz) : 0;
        switch (inst.op) {
          case Op::LB:
            o.result = lo32(static_cast<uint32_t>(
                signExtendByte(static_cast<uint8_t>(raw))));
            break;
          case Op::LBU: o.result = raw & 0xff; break;
          case Op::LH:
            o.result = lo32(static_cast<uint32_t>(
                signExtendHalf(static_cast<uint16_t>(raw))));
            break;
          case Op::LHU: o.result = raw & 0xffff; break;
          case Op::LW: o.result = lo32(raw); break;
          case Op::L_D: o.result = raw; break;
          default: break;
        }
        break;
      }

      case Op::SB: case Op::SH: case Op::SW: case Op::S_D:
        o.memAddr = a + static_cast<uint32_t>(inst.imm);
        o.storeValue = inst.op == Op::S_D ? src1
                                          : static_cast<uint64_t>(b);
        break;

      case Op::BEQ: o.taken = a == b; break;
      case Op::BNE: o.taken = a != b; break;
      case Op::BLEZ: o.taken = sa <= 0; break;
      case Op::BGTZ: o.taken = sa > 0; break;
      case Op::BLTZ: o.taken = sa < 0; break;
      case Op::BGEZ: o.taken = sa >= 0; break;
      case Op::BC1T: o.taken = (src0 & 1) != 0; break;
      case Op::BC1F: o.taken = (src0 & 1) == 0; break;

      case Op::J:
        o.taken = true;
        break;
      case Op::JAL:
        o.taken = true;
        o.result = pc + 4; // link
        break;
      case Op::JR:
        o.taken = true;
        o.nextPC = a;
        break;
      case Op::JALR:
        o.taken = true;
        o.nextPC = a;
        o.result = pc + 4;
        break;

      case Op::ADD_D: o.result = asBits(fa + fb); break;
      case Op::SUB_D: o.result = asBits(fa - fb); break;
      case Op::MUL_D: o.result = asBits(fa * fb); break;
      case Op::DIV_D:
        o.result = asBits(fb != 0.0 ? fa / fb : 0.0);
        break;
      case Op::SQRT_D:
        o.result = asBits(fa >= 0.0 ? std::sqrt(fa) : 0.0);
        break;
      case Op::MOV_D: o.result = src0; break;
      case Op::NEG_D: o.result = asBits(-fa); break;
      case Op::C_EQ_D: o.result = fa == fb ? 1 : 0; break;
      case Op::C_LT_D: o.result = fa < fb ? 1 : 0; break;
      case Op::C_LE_D: o.result = fa <= fb ? 1 : 0; break;
      case Op::CVT_D_W: o.result = asBits(static_cast<double>(sa)); break;
      case Op::CVT_W_D:
        o.result = lo32(static_cast<uint32_t>(static_cast<int32_t>(fa)));
        break;

      default:
        panic("evalInstr: unhandled opcode");
    }

    // Direction-style control flow resolves against the encoded target.
    if (isCondBranch(inst.op)) {
        o.nextPC = o.taken ? inst.target : pc + 4;
    } else if (inst.op == Op::J || inst.op == Op::JAL) {
        o.nextPC = inst.target;
    }

    return o;
}

Emulator::Emulator(const Program &program, EmuState &state)
    : prog(program), st(state), curPC(program.entry)
{
}

void
Emulator::loadProgram(const Program &program, EmuState &state)
{
    for (const auto &[addr, bytes] : program.dataInit) {
        if (!bytes.empty())
            state.initBytes(addr, bytes.data(), bytes.size());
    }
    state.initReg(REG_SP, program.stackTop);
}

ExecResult
Emulator::stepAt(Addr pc)
{
    curPC = pc;
    return step();
}

ExecResult
Emulator::step()
{
    ExecResult r;
    r.pc = curPC;
    r.preMark = st.mark();

    const Instr *ip = prog.at(curPC);
    if (!ip) {
        // Off the end of text (wrong path): behaves as a halt; the
        // core never lets such instructions commit.
        r.inst.op = Op::HALT;
        r.halted = true;
        isHalted = true;
        return r;
    }
    r.inst = *ip;

    if (ip->op == Op::HALT) {
        r.halted = true;
        isHalted = true;
        return r;
    }

    SrcRegs s = srcRegs(*ip);
    r.srcVals[0] = s.src[0] != REG_INVALID ? st.readReg(s.src[0]) : 0;
    r.srcVals[1] = s.src[1] != REG_INVALID ? st.readReg(s.src[1]) : 0;

    MemReadFn mem = [this](Addr a, unsigned sz) {
        return st.readMem(a, sz);
    };
    r.out = evalInstr(*ip, curPC, r.srcVals[0], r.srcVals[1], mem);

    if (isStore(ip->op))
        st.writeMem(r.out.memAddr, memSize(ip->op), r.out.storeValue);

    DstRegs d = dstRegs(*ip);
    if (d.dst[0] != REG_INVALID)
        st.writeReg(d.dst[0], r.out.result);
    if (d.dst[1] != REG_INVALID)
        st.writeReg(d.dst[1], r.out.result2);

    curPC = r.out.nextPC;
    return r;
}

EmuSnapshot
makeWarmSnapshot(const Program &program, uint64_t warmupInsts)
{
    EmuSnapshot snap;
    Emulator emu(program, snap.state);
    Emulator::loadProgram(program, snap.state);
    // Must mirror the cold warmup loop in Core/LockstepChecker
    // instruction for instruction: a snapshot-started machine and a
    // cold-started one have to be bit-identical.
    for (uint64_t i = 0; i < warmupInsts && !emu.halted(); ++i) {
        emu.step();
        snap.state.retire(snap.state.mark());
    }
    snap.pc = emu.pc();
    snap.halted = emu.halted();
    snap.warmupInsts = warmupInsts;
    return snap;
}

} // namespace vpir
