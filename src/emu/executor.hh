/**
 * @file
 * Instruction semantics and the functional stepper.
 *
 * Semantics are factored into a pure evaluator (evalInstr) that maps
 * operand values to results, so the out-of-order core can re-evaluate
 * instructions with *speculative* operand values: this is how branches
 * executed with wrong value-predicted inputs compute genuinely wrong
 * outcomes (the paper's spurious mispredictions).
 */

#ifndef VPIR_EMU_EXECUTOR_HH
#define VPIR_EMU_EXECUTOR_HH

#include <functional>

#include "asm/assembler.hh"
#include "emu/state.hh"
#include "isa/decode.hh"
#include "isa/instr.hh"

namespace vpir
{

/** Outcome of evaluating one instruction's semantics. */
struct SemOut
{
    uint64_t result = 0;      //!< value for rd
    uint64_t result2 = 0;     //!< value for rd2 (HI)
    bool taken = false;       //!< control: branch/jump taken
    Addr nextPC = 0;          //!< control: next PC
    Addr memAddr = 0;         //!< memory: effective address
    uint64_t storeValue = 0;  //!< memory: value stored
};

/** Callback used by loads to read memory during evaluation. */
using MemReadFn = std::function<uint64_t(Addr, unsigned)>;

/**
 * Evaluate an instruction given its operand values.
 *
 * @param inst  The instruction.
 * @param pc    Its PC (for fall-through / link values).
 * @param src0  Value of srcRegs(inst).src[0] (0 if absent).
 * @param src1  Value of srcRegs(inst).src[1] (0 if absent).
 * @param mem   Memory reader for loads; when null, loads return 0.
 */
SemOut evalInstr(const Instr &inst, Addr pc, uint64_t src0, uint64_t src1,
                 const MemReadFn &mem);

/** A fully executed dynamic instruction, as seen by the dispatcher. */
struct ExecResult
{
    Addr pc = 0;
    Instr inst;
    SemOut out;
    uint64_t srcVals[2] = {0, 0}; //!< architectural operand values used
    JournalMark preMark = 0;      //!< journal position before the write
    bool halted = false;
};

/**
 * Functional stepper: fetches from a Program, executes on an EmuState,
 * applies journaled writes, and advances PC.
 */
class Emulator
{
  public:
    Emulator(const Program &program, EmuState &state);

    /** Execute the instruction at the current PC. */
    ExecResult step();

    /** Execute the instruction at an explicit PC (sets PC first). */
    ExecResult stepAt(Addr pc);

    Addr pc() const { return curPC; }
    void setPC(Addr pc) { curPC = pc; }
    bool halted() const { return isHalted; }
    void clearHalt() { isHalted = false; }

    // Checkpoint transport. The halt latch is sticky — a wrong-path
    // HALT executed speculatively at dispatch sets it and nothing
    // clears it mid-run — so a restored emulator must reproduce it
    // verbatim, halted or not.
    void setHalt(bool h) { isHalted = h; }

    const Program &program() const { return prog; }
    EmuState &state() { return st; }

    /** Load the program image and initial registers into the state. */
    static void loadProgram(const Program &program, EmuState &state);

  private:
    const Program &prog;
    EmuState &st;
    Addr curPC;
    bool isHalted = false;
};

/**
 * Frozen post-warmup machine state: the program image loaded and the
 * first warmupInsts instructions retired functionally. Built once per
 * (program, warmup) by the warm-start cache and cloned copy-on-write
 * (EmuState's copy is O(pages)) into every core and lockstep checker
 * that starts from the same point. Immutable after construction.
 */
struct EmuSnapshot
{
    EmuState state;         //!< post-load, post-warmup architecture
    Addr pc = 0;            //!< where the emulator stopped
    bool halted = false;    //!< warmup consumed the whole program
    uint64_t warmupInsts = 0; //!< requested warmup (key sanity check)
};

/**
 * Execute loadProgram + the functional warmup exactly as Core's and
 * LockstepChecker's cold constructors do, and freeze the result.
 */
EmuSnapshot makeWarmSnapshot(const Program &program, uint64_t warmupInsts);

} // namespace vpir

#endif // VPIR_EMU_EXECUTOR_HH
