#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace vpir
{

Cache::Cache(const CacheParams &p) : params(p)
{
    VPIR_ASSERT(isPowerOf2(p.lineBytes), "line size not a power of two");
    VPIR_ASSERT(p.ways >= 1, "need at least one way");
    numSets = p.sizeBytes / (p.lineBytes * p.ways);
    VPIR_ASSERT(isPowerOf2(numSets), "set count not a power of two");
    lines.assign(numSets, std::vector<Line>(p.ways));
    lru.assign(numSets, LruSet(p.ways));
}

uint32_t
Cache::setIndex(Addr addr) const
{
    return (addr / params.lineBytes) & (numSets - 1);
}

uint32_t
Cache::tagOf(Addr addr) const
{
    return (addr / params.lineBytes) / numSets;
}

bool
Cache::probe(Addr addr) const
{
    const auto &set = lines[setIndex(addr)];
    uint32_t tag = tagOf(addr);
    for (const Line &l : set) {
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

unsigned
Cache::access(Addr addr)
{
    ++nAccesses;
    uint32_t si = setIndex(addr);
    uint32_t tag = tagOf(addr);
    auto &set = lines[si];

    for (unsigned w = 0; w < set.size(); ++w) {
        if (set[w].valid && set[w].tag == tag) {
            lru[si].touch(w);
            return params.hitLatency;
        }
    }

    ++nMisses;
    unsigned victim = lru[si].victim();
    set[victim].valid = true;
    set[victim].tag = tag;
    lru[si].touch(victim);
    return params.hitLatency + params.missLatency;
}

void
Cache::reset()
{
    for (auto &set : lines) {
        for (Line &l : set)
            l.valid = false;
    }
    nAccesses = 0;
    nMisses = 0;
}

void
Cache::serialize(CkptWriter &w) const
{
    w.u32(numSets);
    w.u32(params.ways);
    for (const auto &set : lines) {
        for (const Line &l : set) {
            w.b(l.valid);
            w.u32(l.tag);
        }
    }
    for (const LruSet &s : lru)
        s.serialize(w);
    w.u64(nAccesses);
    w.u64(nMisses);
}

bool
Cache::deserialize(CkptReader &r)
{
    if (r.u32() != numSets || r.u32() != params.ways) {
        r.fail();
        return false;
    }
    for (auto &set : lines) {
        for (Line &l : set) {
            l.valid = r.b();
            l.tag = r.u32();
        }
    }
    for (LruSet &s : lru) {
        if (!s.deserialize(r))
            return false;
    }
    nAccesses = r.u64();
    nMisses = r.u64();
    return r.ok();
}

} // namespace vpir
