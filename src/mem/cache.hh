/**
 * @file
 * Set-associative cache timing model.
 *
 * Matches the paper's Table 1 memories: 64KB, 2-way, 32-byte lines,
 * 6-cycle miss latency, for both L1I and L1D (D is dual ported and
 * non-blocking). Only hit/miss timing is modelled — data always comes
 * from the emulator's architectural memory.
 */

#ifndef VPIR_MEM_CACHE_HH
#define VPIR_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/ckpt_io.hh"
#include "common/lru.hh"
#include "isa/instr.hh"

namespace vpir
{

/** Cache geometry and timing parameters. */
struct CacheParams
{
    uint32_t sizeBytes = 64 * 1024;
    unsigned ways = 2;
    uint32_t lineBytes = 32;
    unsigned hitLatency = 1;
    unsigned missLatency = 6;   //!< additional cycles on a miss
};

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params = CacheParams());

    /**
     * Access a line; allocates on miss.
     * @return total access latency in cycles.
     */
    unsigned access(Addr addr);

    /** Probe without allocating or touching LRU. */
    bool probe(Addr addr) const;

    /** Invalidate everything (between benchmark runs). */
    void reset();

    uint64_t accesses() const { return nAccesses; }
    uint64_t misses() const { return nMisses; }
    uint32_t lineBytes() const { return params.lineBytes; }

    /** True when two addresses share a cache line. */
    bool
    sameLine(Addr a, Addr b) const
    {
        return (a / params.lineBytes) == (b / params.lineBytes);
    }

    /** Checkpoint tags, LRU state, and counters (geometry is rebuilt
     *  from params by the constructor, so only contents travel). */
    void serialize(CkptWriter &w) const;
    /** Restore serialize()d state; false (and reader failure) on a
     *  geometry mismatch or torn payload. */
    bool deserialize(CkptReader &r);

  private:
    struct Line
    {
        bool valid = false;
        uint32_t tag = 0;
    };

    uint32_t setIndex(Addr addr) const;
    uint32_t tagOf(Addr addr) const;

    CacheParams params;
    uint32_t numSets;
    std::vector<std::vector<Line>> lines; //!< [set][way]
    std::vector<LruSet> lru;
    uint64_t nAccesses = 0;
    uint64_t nMisses = 0;
};

} // namespace vpir

#endif // VPIR_MEM_CACHE_HH
