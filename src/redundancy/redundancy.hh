/**
 * @file
 * Redundancy limit study (paper §4.3, Figures 8-10).
 *
 * Runs a program functionally, buffering up to 10K result instances
 * per static instruction, and classifies every result-producing
 * dynamic instruction as unique / repeated / derivable (stride) /
 * unaccounted. Repeated instructions are further decomposed by the
 * paper's input-readiness model (producers reused, unreused producers
 * >= 50 instructions ahead, unreused producers closer than that), and
 * the reusable fraction of all redundant instructions is estimated.
 */

#ifndef VPIR_REDUNDANCY_REDUNDANCY_HH
#define VPIR_REDUNDANCY_REDUNDANCY_HH

#include <cstdint>

#include "asm/assembler.hh"

namespace vpir
{

/** Limit-study knobs (paper values as defaults). */
struct RedundancyParams
{
    unsigned maxInstances = 10000;  //!< buffered results per static inst
    unsigned producerDistance = 50; //!< readiness horizon (paper §4.3)
    uint64_t maxInsts = 2000000;    //!< dynamic instructions analysed
};

/** Outcome of the limit study for one program. */
struct RedundancyStats
{
    uint64_t totalDynamic = 0;      //!< all dynamic instructions
    uint64_t resultProducing = 0;   //!< denominators for Figure 8

    // Figure 8 categories.
    uint64_t unique = 0;
    uint64_t repeated = 0;
    uint64_t derivable = 0;
    uint64_t unaccounted = 0;

    // Figure 9: repeated instructions by input readiness.
    uint64_t prodReused = 0;     //!< producers themselves reused
    uint64_t prodFar = 0;        //!< unreused producers >= horizon
    uint64_t prodNear = 0;       //!< unreused producers < horizon

    // Figure 10 inputs.
    uint64_t inputsDifferent = 0; //!< repeated result, unseen operands
    uint64_t reusable = 0;

    uint64_t redundant() const { return repeated + derivable; }

    double
    reusableFraction() const
    {
        uint64_t r = redundant();
        return r ? static_cast<double>(reusable) /
                   static_cast<double>(r)
                 : 0.0;
    }
};

/** Run the limit study over a program. */
RedundancyStats analyzeRedundancy(
    const Program &program,
    const RedundancyParams &params = RedundancyParams());

} // namespace vpir

#endif // VPIR_REDUNDANCY_REDUNDANCY_HH
