#include "redundancy/redundancy.hh"

#include <unordered_map>
#include <unordered_set>

#include "emu/executor.hh"
#include "emu/state.hh"
#include "isa/decode.hh"

namespace vpir
{

namespace
{

/** Mix two operand values into one lookup key. */
uint64_t
operandKey(uint64_t a, uint64_t b)
{
    uint64_t h = a * 0x9e3779b97f4a7c15ull;
    h ^= (b + 0x517cc1b727220a95ull) + (h << 6) + (h >> 2);
    return h;
}

/** Per-static-instruction history buffers. */
struct StaticHistory
{
    std::unordered_set<uint64_t> results;
    /** operand tuple -> last result computed from it. */
    std::unordered_map<uint64_t, uint64_t> byOperands;
    uint64_t lastResult = 0;
    uint64_t prevResult = 0;
    unsigned seen = 0;
};

/** Last writer of each architectural register. */
struct WriterInfo
{
    uint64_t index = 0;     //!< dynamic instruction number
    bool reused = false;    //!< that instance was itself reused
                            //!< (repeated with matching operands)
    bool valid = false;
};

} // anonymous namespace

RedundancyStats
analyzeRedundancy(const Program &program, const RedundancyParams &params)
{
    RedundancyStats out;
    EmuState state;
    Emulator emu(program, state);
    Emulator::loadProgram(program, state);

    std::unordered_map<Addr, StaticHistory> hist;
    WriterInfo writers[NUM_ARCH_REGS] = {};

    uint64_t idx = 0;
    while (!emu.halted() && idx < params.maxInsts) {
        ExecResult er = emu.step();
        if (er.halted)
            break;
        ++idx;
        ++out.totalDynamic;
        state.retire(state.mark()); // keep the journal bounded

        const Instr &inst = er.inst;
        bool produces = inst.rd != REG_INVALID &&
                        decodeInfo(inst.op).cls != InstClass::Nop;

        bool this_reused = false;
        if (produces) {
            ++out.resultProducing;
            StaticHistory &h = hist[er.pc];
            uint64_t result = er.out.result;

            bool is_repeated = h.results.count(result) > 0;
            bool is_derivable = false;
            if (!is_repeated && h.seen >= 2) {
                uint64_t stride = h.lastResult - h.prevResult;
                is_derivable = result == h.lastResult + stride;
            }

            // An instance is reused when it repeats a result that
            // was computed from the same operand values before
            // (paper §4.3: the operand-based reuse test succeeds).
            uint64_t key = operandKey(er.srcVals[0], er.srcVals[1]);
            auto op_it = h.byOperands.find(key);
            bool operands_seen =
                op_it != h.byOperands.end() && op_it->second == result;
            this_reused = is_repeated && operands_seen;

            if (is_repeated) {
                ++out.repeated;

                // Figure 9: producer readiness for this instance.
                // Inputs are ready when every producer is either
                // reused itself or at least `producerDistance`
                // instructions ahead (paper §4.3).
                SrcRegs s = srcRegs(inst);
                bool any_near = false;
                bool any_far = false;
                for (RegId r : s.src) {
                    if (r == REG_INVALID)
                        continue;
                    const WriterInfo &w = writers[r];
                    if (!w.valid)
                        continue; // architectural: long ago
                    if (w.reused)
                        continue;
                    if (idx - w.index < params.producerDistance)
                        any_near = true;
                    else
                        any_far = true;
                }
                if (any_near)
                    ++out.prodNear;
                else if (any_far)
                    ++out.prodFar;
                else
                    ++out.prodReused;

                if (!operands_seen)
                    ++out.inputsDifferent;
                if (operands_seen && !any_near)
                    ++out.reusable;
            } else if (is_derivable) {
                ++out.derivable;
            } else if (h.results.size() >= params.maxInstances) {
                ++out.unaccounted;
            } else {
                ++out.unique;
            }

            if (h.results.size() < params.maxInstances)
                h.results.insert(result);
            if (h.byOperands.size() < params.maxInstances) {
                h.byOperands[operandKey(er.srcVals[0],
                                        er.srcVals[1])] = result;
            }
            h.prevResult = h.lastResult;
            h.lastResult = result;
            ++h.seen;
        }

        // Track register writers for the readiness model.
        DstRegs d = dstRegs(inst);
        for (RegId r : d.dst) {
            if (r != REG_INVALID)
                writers[r] = WriterInfo{idx, this_reused, true};
        }
    }

    return out;
}

} // namespace vpir
