#include "bpred/bpred.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace vpir
{

BranchPredUnit::BranchPredUnit(const BpredParams &p)
    : params(p),
      table(p.tableEntries, SatCounter(2, 1)), // weakly not-taken
      ghr(0),
      btb(p.btbEntries),
      ras(p.rasEntries, 0),
      rasTop(0)
{
    VPIR_ASSERT(isPowerOf2(p.tableEntries), "table size not power of 2");
    VPIR_ASSERT(isPowerOf2(p.btbEntries), "btb size not power of 2");
}

uint32_t
BranchPredUnit::tableIndex(Addr pc, uint32_t hist) const
{
    unsigned bits = floorLog2(params.tableEntries);
    uint32_t pc_part = foldPC(pc, bits);
    // XOR the history into the high end of the index (gshare).
    uint32_t h = hist & ((1u << params.historyBits) - 1);
    return (pc_part ^ (h << (bits - params.historyBits))) &
           (params.tableEntries - 1);
}

uint32_t
BranchPredUnit::btbIndex(Addr pc) const
{
    return foldPC(pc, floorLog2(params.btbEntries));
}

void
BranchPredUnit::rasPush(Addr ret)
{
    ras[rasTop] = ret;
    rasTop = (rasTop + 1) % params.rasEntries;
}

Addr
BranchPredUnit::rasPop()
{
    rasTop = (rasTop + params.rasEntries - 1) % params.rasEntries;
    return ras[rasTop];
}

BpredCheckpoint
BranchPredUnit::checkpoint() const
{
    BpredCheckpoint cp;
    cp.ghr = ghr;
    cp.rasTop = rasTop;
    cp.ras = ras;
    return cp;
}

void
BranchPredUnit::restore(const BpredCheckpoint &cp)
{
    ghr = cp.ghr;
    rasTop = cp.rasTop;
    ras = cp.ras;
}

BpredLookup
BranchPredUnit::predict(Addr pc, const Instr &inst)
{
    VPIR_ASSERT(isControl(inst.op), "predict() on non-control op");
    BpredLookup r;
    r.ghrUsed = ghr;

    if (isCondBranch(inst.op)) {
        uint32_t idx = tableIndex(pc, ghr);
        r.predTaken = table[idx].isSet();
        r.predTarget = inst.target;
        // Speculative history update with the predicted direction.
        ghr = ((ghr << 1) | (r.predTaken ? 1u : 0u)) &
              ((1u << params.historyBits) - 1);
        return r;
    }

    // Unconditional control.
    r.predTaken = true;
    if (isCall(inst.op))
        rasPush(pc + 4);

    if (isReturn(inst)) {
        r.predTarget = rasPop();
        r.fromRas = true;
    } else if (isIndirectJump(inst.op)) {
        const BtbEntry &e = btb[btbIndex(pc)];
        r.predTarget = (e.valid && e.pc == pc) ? e.target : pc + 4;
    } else {
        r.predTarget = inst.target; // direct J/JAL: decoded target
    }
    return r;
}

void
BranchPredUnit::forceHistoryBit(bool taken)
{
    ghr = ((ghr << 1) | (taken ? 1u : 0u)) &
          ((1u << params.historyBits) - 1);
}

void
BranchPredUnit::update(Addr pc, const Instr &inst, bool taken, Addr target,
                       uint32_t ghr_used)
{
    if (isCondBranch(inst.op)) {
        uint32_t idx = tableIndex(pc, ghr_used);
        if (taken)
            table[idx].increment();
        else
            table[idx].decrement();
        return;
    }
    if (isIndirectJump(inst.op) && !isReturn(inst)) {
        BtbEntry &e = btb[btbIndex(pc)];
        e.valid = true;
        e.pc = pc;
        e.target = target;
    }
}

void
BranchPredUnit::serialize(CkptWriter &w) const
{
    w.u64(table.size());
    for (const SatCounter &c : table)
        w.u8(static_cast<uint8_t>(c.value()));
    w.u32(ghr);
    w.u64(btb.size());
    for (const BtbEntry &e : btb) {
        w.b(e.valid);
        w.u64(e.pc);
        w.u64(e.target);
    }
    w.u64(ras.size());
    for (Addr a : ras)
        w.u64(a);
    w.u32(rasTop);
}

bool
BranchPredUnit::deserialize(CkptReader &r)
{
    if (r.u64() != table.size()) {
        r.fail();
        return false;
    }
    for (SatCounter &c : table) {
        unsigned v = r.u8();
        if (v > c.max()) {
            r.fail();
            return false;
        }
        c.reset(v);
    }
    ghr = r.u32();
    if (r.u64() != btb.size()) {
        r.fail();
        return false;
    }
    for (BtbEntry &e : btb) {
        e.valid = r.b();
        e.pc = r.u64();
        e.target = r.u64();
    }
    if (r.u64() != ras.size()) {
        r.fail();
        return false;
    }
    for (Addr &a : ras)
        a = r.u64();
    rasTop = r.u32();
    if (rasTop >= ras.size()) {
        // rasTop wraps modulo rasEntries; anything beyond is torn data.
        r.fail();
        return false;
    }
    return r.ok();
}

} // namespace vpir
