/**
 * @file
 * Branch prediction unit: gshare direction predictor (McFarling),
 * branch target buffer for indirect jumps, and a return address stack.
 *
 * Table 1: gshare with a 10-bit global history register and a 16K
 * entry 2-bit counter table. History is updated speculatively at fetch
 * and repaired on squash via per-branch checkpoints; the RAS is
 * checkpointed the same way, which is how the paper's near-100% return
 * prediction rates (Table 2) are achievable in the presence of wrong
 * path fetch.
 */

#ifndef VPIR_BPRED_BPRED_HH
#define VPIR_BPRED_BPRED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/ckpt_io.hh"
#include "common/sat_counter.hh"
#include "isa/decode.hh"
#include "isa/instr.hh"

namespace vpir
{

/** Gshare configuration. */
struct BpredParams
{
    unsigned historyBits = 10;
    unsigned tableEntries = 16 * 1024;
    unsigned btbEntries = 2048;
    unsigned rasEntries = 16;
};

/** Snapshot of the speculative predictor state taken at each fetched
 *  control instruction; restored when that instruction squashes. */
struct BpredCheckpoint
{
    uint32_t ghr = 0;
    unsigned rasTop = 0;
    std::vector<Addr> ras;
};

/** What fetch learns about a control instruction. */
struct BpredLookup
{
    bool predTaken = false;   //!< predicted direction
    Addr predTarget = 0;      //!< predicted next PC when taken
    uint32_t ghrUsed = 0;     //!< history value the counters were read with
    bool fromRas = false;     //!< target came from the return stack
};

/** The full branch prediction unit. */
class BranchPredUnit
{
  public:
    explicit BranchPredUnit(const BpredParams &params = BpredParams());

    /**
     * Predict a fetched control instruction and speculatively update
     * history/RAS. Non-control instructions must not be passed here.
     */
    BpredLookup predict(Addr pc, const Instr &inst);

    /** Snapshot speculative state (call before predict()). */
    BpredCheckpoint checkpoint() const;

    /** Restore speculative state after a squash. */
    void restore(const BpredCheckpoint &cp);

    /**
     * Train the direction counters and BTB with the resolved outcome.
     * @param ghr_used History value recorded by the earlier predict().
     */
    void update(Addr pc, const Instr &inst, bool taken, Addr target,
                uint32_t ghr_used);

    /** Direction-table index for a pc/history pair (exposed for tests). */
    uint32_t tableIndex(Addr pc, uint32_t ghr) const;

    /**
     * Squash repair: after restore(), re-apply the squashing branch's
     * own effect on the speculative state with its (re)computed
     * outcome.
     */
    void forceHistoryBit(bool taken);
    /** Squash repair for a surviving call: redo its RAS push. */
    void redoCall(Addr ret) { rasPush(ret); }
    /** Squash repair for a surviving return: redo its RAS pop. */
    void redoReturn() { rasPop(); }

    /** Checkpoint counters, history, BTB, and RAS. */
    void serialize(CkptWriter &w) const;
    /** Restore serialize()d state; false on geometry mismatch. */
    bool deserialize(CkptReader &r);

  private:
    BpredParams params;
    std::vector<SatCounter> table;
    uint32_t ghr;

    struct BtbEntry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
    };
    std::vector<BtbEntry> btb;

    std::vector<Addr> ras;
    unsigned rasTop; //!< index of next push slot

    void rasPush(Addr ret);
    Addr rasPop();
    uint32_t btbIndex(Addr pc) const;
};

} // namespace vpir

#endif // VPIR_BPRED_BPRED_HH
