/**
 * @file
 * Fuzz campaigns: N differential cells, each a generated program run
 * under a seed-derived configuration, executed on the sweep engine's
 * worker pool. Per-cell seeds come from splittable RNG streams
 * (Rng::split(baseSeed, i)), and results are reported strictly in
 * cell-index order, so a campaign's output is byte-identical for any
 * VPIR_JOBS. Failing cells are delta-debugged to a minimal program
 * and published as self-contained repro bundles.
 */

#ifndef VPIR_FUZZ_CAMPAIGN_HH
#define VPIR_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fuzz/differential.hh"
#include "fuzz/shrink.hh"

namespace vpir
{
namespace fuzz
{

struct FuzzCampaignOptions
{
    uint64_t baseSeed = 0x5eedf00d; //!< VPIR_FUZZ_SEED
    unsigned cells = 20;            //!< VPIR_FUZZ_CELLS
    std::string reproDir = ".";     //!< where bundles are published
    uint64_t shrinkMaxEvals = 4000;
    bool shrink = true;             //!< minimize failures before bundling
    unsigned jobs = 0;              //!< 0 = VPIR_JOBS default
};

/** Read VPIR_FUZZ_SEED / VPIR_FUZZ_CELLS over the defaults. */
FuzzCampaignOptions campaignOptionsFromEnv();

/** One cell's outcome, in campaign index order. */
struct FuzzCellResult
{
    uint64_t seed = 0;
    std::string workload;     //!< "fuzz:<16-hex-seed>"
    DiffOutcome outcome;      //!< of the original (unshrunk) run
    ShrinkResult shrunk;      //!< populated when diverged
    std::string bundlePath;   //!< written bundle ("" if none)
};

struct FuzzCampaignResult
{
    std::vector<FuzzCellResult> cells;
    unsigned failures = 0;
};

/**
 * Run the campaign: generate, differentiate, shrink, bundle. Progress
 * and failure reports go to @p log (nullptr silences them) strictly
 * in index order. Environment fault knobs (VPIR_FAULT_*) are merged
 * into every cell's configuration, so a planted fault cocktail fuzzes
 * the whole campaign.
 */
FuzzCampaignResult runFuzzCampaign(const FuzzCampaignOptions &opt,
                                   std::FILE *log);

} // namespace fuzz
} // namespace vpir

#endif // VPIR_FUZZ_CAMPAIGN_HH
