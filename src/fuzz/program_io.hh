/**
 * @file
 * Exact, line-based serialization of assembled programs.
 *
 * Repro bundles must replay byte-identically years later, so the
 * serialized form is the *pre-decoded* Program — one line per Instr
 * field tuple plus the raw data image — rather than assembly source,
 * which would need a full parser and could drift with pseudo-op
 * expansion. Round-tripping is exact: parse(emit(p)) == p field by
 * field, and emit(parse(t)) == t for canonical text.
 */

#ifndef VPIR_FUZZ_PROGRAM_IO_HH
#define VPIR_FUZZ_PROGRAM_IO_HH

#include <string>

#include "asm/assembler.hh"

namespace vpir
{
namespace fuzz
{

/** Serialize @p p to the "vpir-program v1" text form. Each
 *  instruction line carries a trailing "# disasm" comment. */
std::string programToText(const Program &p);

/** Parse text produced by programToText. @return false (with @p err
 *  set) on any malformed line; @p out is untouched on failure. */
bool programFromText(const std::string &text, Program &out,
                     std::string &err);

} // namespace fuzz
} // namespace vpir

#endif // VPIR_FUZZ_PROGRAM_IO_HH
