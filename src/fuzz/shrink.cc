#include "fuzz/shrink.hh"

#include <algorithm>
#include <vector>

namespace vpir
{
namespace fuzz
{

namespace
{

bool
isNop(const Instr &i)
{
    return i.op == Op::NOP;
}

/** NOP out every instruction whose text index is in @p kill. */
Program
withNops(const Program &base, const std::vector<size_t> &kill)
{
    Program p = base;
    for (size_t idx : kill)
        p.text[idx] = Instr{}; // default-constructed == NOP
    return p;
}

} // namespace

size_t
countActiveInstrs(const Program &program)
{
    size_t n = 0;
    for (const Instr &i : program.text)
        if (!isNop(i))
            ++n;
    return n;
}

ShrinkResult
shrinkFailure(const Program &program, const CoreParams &params,
              const DiffOutcome &failure, const ShrinkOptions &opt)
{
    ShrinkResult res;
    res.program = program;
    res.params = params;
    res.outcome = failure;
    res.instrsBefore = countActiveInstrs(program);

    const std::string kind = failure.kind;
    auto stillFails = [&](const Program &cand,
                          const CoreParams &p) -> bool {
        if (res.evals >= opt.maxEvals)
            return false;
        ++res.evals;
        DiffOutcome d = runDifferential(cand, p);
        if (d.diverged && d.kind == kind) {
            res.outcome = d;
            return true;
        }
        return false;
    };

    // Phase 1 — canonicalize the fault cocktail so the repro is sharp:
    // each armed rate becomes 0 if the failure survives without it,
    // else 1 (fires on every opportunity) if that preserves the kind.
    {
        double *rates[] = {
            &res.params.faults.vptValueRate,
            &res.params.faults.vptConfRate,
            &res.params.faults.rbOperandRate,
            &res.params.faults.rbResultRate,
            &res.params.faults.rbLinkRate,
            &res.params.faults.rbDropInvRate,
        };
        for (double *rate : rates) {
            if (*rate <= 0.0)
                continue;
            double orig = *rate;
            *rate = 0.0;
            if (stillFails(res.program, res.params))
                continue;
            *rate = 1.0;
            if (stillFails(res.program, res.params))
                continue;
            *rate = orig;
        }
    }

    // Phase 2 — ddmin over the instructions that still do something.
    // "Removing" an instruction means NOPping it in place: every PC,
    // branch offset, and jump target stays valid, so any subset is a
    // well-formed program. HALTs are pinned (termination must remain
    // reachable; a candidate that loops forever trips the watchdog or
    // a cap and simply fails the predicate).
    std::vector<size_t> active;
    for (size_t i = 0; i < res.program.text.size(); ++i) {
        const Instr &inst = res.program.text[i];
        if (!isNop(inst) && inst.op != Op::HALT)
            active.push_back(i);
    }

    size_t n = 2;
    while (active.size() >= 2 && res.evals < opt.maxEvals) {
        bool reduced = false;
        size_t chunk = (active.size() + n - 1) / n;

        // Try keeping only one chunk (NOP the complement)...
        for (size_t c = 0; c < n && !reduced; ++c) {
            size_t lo = c * chunk;
            size_t hi = std::min(lo + chunk, active.size());
            if (lo >= hi || hi - lo == active.size())
                continue;
            std::vector<size_t> kill;
            kill.reserve(active.size() - (hi - lo));
            for (size_t k = 0; k < active.size(); ++k)
                if (k < lo || k >= hi)
                    kill.push_back(active[k]);
            Program cand = withNops(res.program, kill);
            if (stillFails(cand, res.params)) {
                res.program = std::move(cand);
                active.assign(active.begin() + lo, active.begin() + hi);
                n = 2;
                reduced = true;
            }
        }
        if (reduced)
            continue;

        // ...then NOPping one chunk at a time.
        for (size_t c = 0; c < n && !reduced; ++c) {
            size_t lo = c * chunk;
            size_t hi = std::min(lo + chunk, active.size());
            if (lo >= hi || hi - lo == active.size())
                continue;
            std::vector<size_t> kill(active.begin() + lo,
                                     active.begin() + hi);
            Program cand = withNops(res.program, kill);
            if (stillFails(cand, res.params)) {
                res.program = std::move(cand);
                active.erase(active.begin() + lo, active.begin() + hi);
                n = std::max<size_t>(n - 1, 2);
                reduced = true;
            }
        }
        if (reduced)
            continue;

        if (n >= active.size())
            break;
        n = std::min(n * 2, active.size());
    }

    res.instrsAfter = countActiveInstrs(res.program);
    return res;
}

} // namespace fuzz
} // namespace vpir
