#include "fuzz/campaign.hh"

#include <cinttypes>
#include <filesystem>

#include "check/fault.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "fuzz/generator.hh"
#include "fuzz/repro.hh"
#include "sweep/sweep.hh"

namespace vpir
{
namespace fuzz
{

FuzzCampaignOptions
campaignOptionsFromEnv()
{
    FuzzCampaignOptions opt;
    opt.baseSeed = parseEnvU64("VPIR_FUZZ_SEED", opt.baseSeed);
    opt.cells = static_cast<unsigned>(
        parseEnvU64("VPIR_FUZZ_CELLS", opt.cells));
    return opt;
}

FuzzCampaignResult
runFuzzCampaign(const FuzzCampaignOptions &opt, std::FILE *log)
{
    FuzzCampaignResult res;
    res.cells.resize(opt.cells);

    std::error_code dir_ec;
    std::filesystem::create_directories(opt.reproDir, dir_ec);
    if (unsigned n = scrubStaleReproTmp(opt.reproDir)) {
        if (log) {
            std::fprintf(log,
                         "fuzz: scrubbed %u stale repro tmp file(s) in "
                         "'%s'\n",
                         n, opt.reproDir.c_str());
        }
    }

    const std::string env_echo = captureHardeningEnv();
    const FaultPlan env_faults = faultPlanFromEnv(FaultPlan{});

    // Phase 1 — generate + differentiate, in parallel. Each cell's
    // seed is an independent split stream of the base seed, and every
    // result lands in its own index slot: the outcome vector (and
    // hence everything printed below) is identical for any job count.
    sweep::parallelFor(
        opt.cells,
        [&](size_t i) {
            FuzzCellResult &cell = res.cells[i];
            cell.seed = Rng::split(opt.baseSeed, i);
            cell.workload = fuzzWorkloadName(cell.seed);

            Program program = generateProgram(cell.seed, GenOptions{});
            CoreParams params = fuzzParamsForSeed(cell.seed);
            // Merge the environment's fault cocktail (a planted
            // VPIR_FAULT_* knob fuzzes the whole campaign). RB faults
            // model hardware that trusts its reuse buffer, so the
            // dispatch-time oracle self-check must step aside and let
            // the retire checker catch the escapes.
            params.faults = faultPlanFromEnv(params.faults);
            if (env_faults.any())
                params.faults.seed = Rng::split(params.faults.seed, i);
            if (params.faults.anyRb())
                params.irOracleCheck = false;

            cell.outcome = runDifferential(program, params);

            if (cell.outcome.diverged && opt.shrink) {
                ShrinkOptions sopt;
                sopt.maxEvals = opt.shrinkMaxEvals;
                cell.shrunk = shrinkFailure(program, params,
                                            cell.outcome, sopt);
            } else if (cell.outcome.diverged) {
                cell.shrunk.program = program;
                cell.shrunk.params = params;
                cell.shrunk.outcome = cell.outcome;
                cell.shrunk.instrsBefore = countActiveInstrs(program);
                cell.shrunk.instrsAfter = cell.shrunk.instrsBefore;
            }
        },
        opt.jobs);

    // Phase 2 — report + publish bundles, strictly in index order.
    for (size_t i = 0; i < res.cells.size(); ++i) {
        FuzzCellResult &cell = res.cells[i];
        if (!cell.outcome.diverged) {
            if (log) {
                std::fprintf(log,
                             "fuzz: cell %zu %s ok (%" PRIu64
                             " insts, %" PRIu64 " cycles)\n",
                             i, cell.workload.c_str(),
                             cell.outcome.stats.committedInsts,
                             cell.outcome.stats.cycles);
            }
            continue;
        }
        ++res.failures;

        ReproBundle b;
        b.generatorRevision = GENERATOR_REVISION;
        b.seed = cell.seed;
        b.workload = cell.workload;
        b.kind = cell.shrunk.outcome.kind;
        b.detail = cell.shrunk.outcome.detail;
        b.env = env_echo;
        b.params = cell.shrunk.params;
        b.program = cell.shrunk.program;

        std::string fname = cell.workload;
        for (char &c : fname) {
            if (c == ':')
                c = '-';
        }
        std::string path = opt.reproDir + "/" + fname + ".repro.json";
        std::string err;
        if (writeReproBundle(b, path, err)) {
            cell.bundlePath = path;
        } else if (log) {
            std::fprintf(log, "fuzz: cannot write repro bundle: %s\n",
                         err.c_str());
        }

        if (log) {
            std::fprintf(log,
                         "fuzz: cell %zu %s FAILED [%s] %s\n"
                         "fuzz:   shrunk %zu -> %zu insts in %" PRIu64
                         " evals%s%s\n",
                         i, cell.workload.c_str(),
                         cell.shrunk.outcome.kind.c_str(),
                         cell.shrunk.outcome.detail.c_str(),
                         cell.shrunk.instrsBefore,
                         cell.shrunk.instrsAfter, cell.shrunk.evals,
                         cell.bundlePath.empty() ? "" : ", bundle ",
                         cell.bundlePath.c_str());
        }
    }
    return res;
}

} // namespace fuzz
} // namespace vpir
