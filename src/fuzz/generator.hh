/**
 * @file
 * Seeded random program generator for the differential fuzzing
 * harness.
 *
 * Emits valid, terminating programs in the repo's ISA, biased toward
 * the paper's hard cases: predictable-value chains (VP fodder),
 * reusable dependence chains with loop-invariant operands (IR
 * fodder), store/load aliasing including sub-word partial overlaps,
 * tight counted loops with data-dependent branches (squash storms),
 * branch-heavy straight-line blocks, and direct/indirect calls.
 *
 * Every random draw comes from one Rng(seed) stream, so a given
 * (seed, options, GENERATOR_REVISION) triple always produces the
 * bit-identical program. Termination is by construction: the only
 * backward edges are counted loops whose counters no body gadget can
 * write.
 */

#ifndef VPIR_FUZZ_GENERATOR_HH
#define VPIR_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>

#include "asm/assembler.hh"

namespace vpir
{
namespace fuzz
{

/**
 * Bump whenever generateProgram()'s output for a given seed can
 * change (new gadgets, reweighting, skeleton edits). Repro bundles
 * and crash reports carry this so a stored seed is only trusted to
 * regenerate the same program against the matching revision.
 */
constexpr int GENERATOR_REVISION = 1;

/** Knobs for program shape; defaults give a few-thousand-instruction
 *  run. The sweep's WorkloadScale multiplies outerIters. */
struct GenOptions
{
    unsigned outerIters = 24; //!< trip count of the outer loop
    unsigned gadgets = 40;    //!< random gadgets per loop body
};

/** Generate the program for @p seed. Deterministic. */
Program generateProgram(uint64_t seed, const GenOptions &opt = {});

/** True for "fuzz:<16-hex-digit-seed>" workload names. */
bool isFuzzWorkloadName(const std::string &name);

/** Parse the seed out of a fuzz workload name (fatal if malformed). */
uint64_t fuzzSeedFromName(const std::string &name);

/** Canonical workload name for a seed: "fuzz:%016x". */
std::string fuzzWorkloadName(uint64_t seed);

} // namespace fuzz
} // namespace vpir

#endif // VPIR_FUZZ_GENERATOR_HH
