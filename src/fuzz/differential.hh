/**
 * @file
 * The differential driver: run one program through the timing Core
 * under a randomized configuration with the lockstep checker and
 * cycle-level audits armed, and classify every way the run can
 * disagree with the functional reference — a checker divergence, an
 * audit panic, a watchdog fire, a stats conservation-law violation,
 * or an end-of-run architectural state mismatch against a fresh
 * Emulator execution.
 */

#ifndef VPIR_FUZZ_DIFFERENTIAL_HH
#define VPIR_FUZZ_DIFFERENTIAL_HH

#include <cstdint>
#include <string>

#include "asm/assembler.hh"
#include "core/core_stats.hh"
#include "core/params.hh"

namespace vpir
{
namespace fuzz
{

/** What a differential run produced. */
struct DiffOutcome
{
    bool diverged = false;
    /** Failure class: "checker", "audit", "watchdog", "deadline",
     *  "panic", "conservation", "end-state", "no-halt"; "" on a
     *  clean run. Stable across shrinking (details may move, the
     *  kind must not). */
    std::string kind;
    /** First line of the failure message / description. */
    std::string detail;
    CoreStats stats;
};

/** Signature used to compare two divergences: "kind|detail". */
std::string divergenceSignature(const DiffOutcome &d);

/**
 * Run @p program on a Core built from @p params, under a panic-throw
 * scope, and cross-check everything (see file header). Deterministic
 * for fixed inputs.
 */
DiffOutcome runDifferential(const Program &program,
                            const CoreParams &params);

/**
 * Stats conservation laws: identities and bounds any correct run
 * satisfies (predicted == correct + wrong, memOps == loads + stores,
 * checker coverage under checkRetire, hist sums, ...).
 * @return "" when all hold, else the first violated law.
 */
std::string checkStatsConservation(const CoreStats &st,
                                   const CoreParams &params);

/**
 * Derive the randomized machine configuration for a fuzz cell:
 * technique, branch-resolution/re-execution policy, verify latency,
 * occasional geometry jitter, and (for VP configs) an absorbable VPT
 * fault cocktail. Always enables checkRetire + auditInvariants + a
 * watchdog. Pure function of the seed.
 */
CoreParams fuzzParamsForSeed(uint64_t seed);

} // namespace fuzz
} // namespace vpir

#endif // VPIR_FUZZ_DIFFERENTIAL_HH
