#include "fuzz/generator.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{
namespace fuzz
{

namespace
{

using namespace wreg;

/** Registers gadgets may freely clobber. Everything structural —
 *  S0/S2/S6 (data bases), S1 (outer counter), S4 (inner counter,
 *  owned by the squash-loop gadget), RA, T8/T9 (leaf temps) — is
 *  deliberately absent, which is what makes termination provable. */
constexpr RegId IPOOL[] = {T0, T1, T2, T3, T4, T5, T6, T7,
                           V0, V1, A0, A1, A2, A3};
constexpr unsigned IPOOL_N = sizeof(IPOOL) / sizeof(IPOOL[0]);
constexpr unsigned FPOOL_N = 8; //!< f0..f7

constexpr unsigned SCRATCH_BYTES = 1024; //!< 256 words
constexpr unsigned FPDATA_DWORDS = 16;

/** Gadget emitter: owns the label counter and the one Rng stream. */
struct Gen
{
    Assembler &a;
    Rng rng;

    unsigned labelN = 0;

    explicit Gen(Assembler &as, uint64_t seed) : a(as), rng(seed) {}

    std::string
    lbl(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(labelN++);
    }

    RegId ir() { return IPOOL[rng.below(IPOOL_N)]; }
    RegId fr() { return fpReg(static_cast<unsigned>(rng.below(FPOOL_N))); }

    int32_t byteOff() { return static_cast<int32_t>(rng.below(SCRATCH_BYTES)); }
    int32_t halfOff() { return byteOff() & ~1; }
    int32_t wordOff() { return byteOff() & ~3; }
    int32_t dwordOff() { return static_cast<int32_t>(rng.below(FPDATA_DWORDS)) * 8; }

    int32_t smallImm() { return static_cast<int32_t>(rng.range(-512, 512)); }

    // --- gadgets ------------------------------------------------------

    /** Random integer ALU register ops. */
    void
    aluReg()
    {
        unsigned n = static_cast<unsigned>(rng.range(2, 5));
        for (unsigned i = 0; i < n; ++i) {
            RegId d = ir(), s = ir(), t = ir();
            switch (rng.below(8)) {
              case 0: a.add(d, s, t); break;
              case 1: a.sub(d, s, t); break;
              case 2: a.and_(d, s, t); break;
              case 3: a.or_(d, s, t); break;
              case 4: a.xor_(d, s, t); break;
              case 5: a.nor(d, s, t); break;
              case 6: a.slt(d, s, t); break;
              default: a.sltu(d, s, t); break;
            }
        }
    }

    /** Random integer ALU immediate ops. */
    void
    aluImm()
    {
        unsigned n = static_cast<unsigned>(rng.range(2, 4));
        for (unsigned i = 0; i < n; ++i) {
            RegId d = ir(), s = ir();
            switch (rng.below(8)) {
              case 0: a.addi(d, s, smallImm()); break;
              case 1: a.andi(d, s, static_cast<int32_t>(rng.below(0xffff))); break;
              case 2: a.ori(d, s, static_cast<int32_t>(rng.below(0xffff))); break;
              case 3: a.xori(d, s, static_cast<int32_t>(rng.below(0xffff))); break;
              case 4: a.slti(d, s, smallImm()); break;
              case 5: a.sltiu(d, s, smallImm()); break;
              case 6: a.lui(d, static_cast<int32_t>(rng.below(0xffff))); break;
              default: a.li(d, static_cast<int32_t>(rng.next())); break;
            }
        }
    }

    /** Immediate and variable shifts (executor masks amounts to 5 bits). */
    void
    shifts()
    {
        RegId d = ir(), s = ir();
        switch (rng.below(6)) {
          case 0: a.sll(d, s, static_cast<unsigned>(rng.below(32))); break;
          case 1: a.srl(d, s, static_cast<unsigned>(rng.below(32))); break;
          case 2: a.sra(d, s, static_cast<unsigned>(rng.below(32))); break;
          case 3: a.sllv(d, s, ir()); break;
          case 4: a.srlv(d, s, ir()); break;
          default: a.srav(d, s, ir()); break;
        }
    }

    /** VP fodder: a constant-stride accumulator spilled to a fixed
     *  slot and reloaded — last-value/stride predictable on both the
     *  register result and the load. */
    void
    predictChain()
    {
        RegId r = ir();
        int32_t k = static_cast<int32_t>(rng.range(1, 7));
        int32_t slot = wordOff();
        a.li(r, static_cast<int32_t>(rng.below(1000)));
        unsigned n = static_cast<unsigned>(rng.range(2, 5));
        for (unsigned i = 0; i < n; ++i)
            a.addi(r, r, k);
        a.sw(r, S0, slot);
        a.lw(ir(), S0, slot);
    }

    /** IR fodder: a dependence chain whose operands are re-materialised
     *  from constants, so every outer iteration presents the reuse
     *  buffer with identical (pc, operands) instances. */
    void
    reuseChain()
    {
        RegId x = ir(), y = ir();
        a.li(x, static_cast<int32_t>(rng.below(256)));
        a.li(y, static_cast<int32_t>(rng.below(256)));
        RegId d1 = ir(), d2 = ir(), d3 = ir();
        a.add(d1, x, y);
        a.xor_(d2, d1, y);
        a.slt(d3, d2, x);
        if (rng.chance(1, 2))
            a.sw(d1, S0, wordOff());
    }

    /** Random-width memory traffic over the scratch array. */
    void
    memMix()
    {
        unsigned n = static_cast<unsigned>(rng.range(3, 6));
        for (unsigned i = 0; i < n; ++i) {
            RegId r = ir();
            switch (rng.below(10)) {
              case 0: a.lb(r, S0, byteOff()); break;
              case 1: a.lbu(r, S0, byteOff()); break;
              case 2: a.lh(r, S0, halfOff()); break;
              case 3: a.lhu(r, S0, halfOff()); break;
              case 4: a.lw(r, S0, wordOff()); break;
              case 5: a.sb(r, S0, byteOff()); break;
              case 6: a.sh(r, S0, halfOff()); break;
              case 7: a.sw(r, S0, wordOff()); break;
              case 8: a.ld(fr(), S2, dwordOff()); break;
              default: a.sd(fr(), S2, dwordOff()); break;
            }
        }
    }

    /** Store/load aliasing: same-word and sub-word partial overlaps
     *  in close succession, the reuse buffer's invalidation and the
     *  LSQ's disambiguation worst case. */
    void
    aliasing()
    {
        int32_t w = wordOff();
        a.sw(ir(), S0, w);
        switch (rng.below(3)) {
          case 0: a.sb(ir(), S0, w + static_cast<int32_t>(rng.below(4))); break;
          case 1: a.sh(ir(), S0, w + (rng.chance(1, 2) ? 2 : 0)); break;
          default: a.sw(ir(), S0, w); break;
        }
        a.lw(ir(), S0, w);
        if (rng.chance(1, 2))
            a.lhu(ir(), S0, w + 2);
        if (rng.chance(1, 3)) {
            // Load, overwrite, reload: a stale reuse of the first
            // load's value is an early-validation bug.
            a.lbu(ir(), S0, w + 1);
            a.sb(ir(), S0, w + 1);
            a.lbu(ir(), S0, w + 1);
        }
    }

    /** Multiply/divide and HI/LO reads (div-by-zero is defined). */
    void
    mulDiv()
    {
        RegId s = ir(), t = ir();
        switch (rng.below(4)) {
          case 0: a.mult(s, t); break;
          case 1: a.multu(s, t); break;
          case 2: a.div(s, t); break;
          default: a.divu(s, t); break;
        }
        if (rng.chance(2, 3))
            a.mfhi(ir());
        a.mflo(ir());
    }

    /** Double-precision arithmetic over the FP pool. Values may run
     *  off to inf/NaN — fine for FP ops and compares; only the cvt
     *  gadget converts to int, and only from bounded values. */
    void
    fpArith()
    {
        if (rng.chance(1, 2))
            a.ld(fr(), S2, dwordOff());
        unsigned n = static_cast<unsigned>(rng.range(2, 4));
        for (unsigned i = 0; i < n; ++i) {
            RegId d = fr(), s = fr(), t = fr();
            switch (rng.below(6)) {
              case 0: a.add_d(d, s, t); break;
              case 1: a.sub_d(d, s, t); break;
              case 2: a.mul_d(d, s, t); break;
              case 3: a.div_d(d, s, t); break;
              case 4: a.mov_d(d, s); break;
              default: a.neg_d(d, s); break;
            }
        }
        if (rng.chance(1, 2))
            a.sd(fr(), S2, dwordOff());
    }

    /** FP compare + branch on the condition code. */
    void
    fpCmpBranch()
    {
        std::string skip = lbl("fcb");
        switch (rng.below(3)) {
          case 0: a.c_eq_d(fr(), fr()); break;
          case 1: a.c_lt_d(fr(), fr()); break;
          default: a.c_le_d(fr(), fr()); break;
        }
        if (rng.chance(1, 2))
            a.bc1t(skip);
        else
            a.bc1f(skip);
        a.add_d(fr(), fr(), fr());
        a.addi(ir(), ir(), smallImm());
        a.label(skip);
    }

    /** Int<->double conversion round trip, bounded so CVT_W_D never
     *  sees an unrepresentable double. */
    void
    cvt()
    {
        RegId f = fr();
        a.andi(S5, ir(), 1023);
        a.cvt_d_w(f, S5);
        if (rng.chance(1, 3))
            a.sqrt_d(f, f);
        a.cvt_w_d(ir(), f);
    }

    /** Conditional forward branch over a short block. */
    void
    condBranch()
    {
        std::string skip = lbl("cb");
        RegId s = ir(), t = ir();
        switch (rng.below(6)) {
          case 0: a.beq(s, t, skip); break;
          case 1: a.bne(s, t, skip); break;
          case 2: a.blez(s, skip); break;
          case 3: a.bgtz(s, skip); break;
          case 4: a.bltz(s, skip); break;
          default: a.bgez(s, skip); break;
        }
        unsigned n = static_cast<unsigned>(rng.range(1, 3));
        for (unsigned i = 0; i < n; ++i) {
            if (rng.chance(1, 4))
                a.sw(ir(), S0, wordOff());
            else
                a.addi(ir(), ir(), smallImm());
        }
        a.label(skip);
    }

    /** Unconditional jump over a dead block: the block is only ever
     *  fetched on the wrong path, stressing squash/rollback. */
    void
    jumpSkip()
    {
        std::string skip = lbl("js");
        a.j(skip);
        unsigned n = static_cast<unsigned>(rng.range(1, 3));
        for (unsigned i = 0; i < n; ++i) {
            switch (rng.below(3)) {
              case 0: a.lw(ir(), S0, wordOff()); break;
              case 1: a.sw(ir(), S0, wordOff()); break;
              default: a.addi(ir(), ir(), smallImm()); break;
            }
        }
        a.label(skip);
    }

    /** Direct call to a leaf. */
    void
    call()
    {
        a.jal(rng.chance(1, 2) ? "leaf_a" : "leaf_b");
    }

    /** Indirect call through the patched jump table. */
    void
    indirectCall()
    {
        a.lw(T9, S6, static_cast<int32_t>(rng.below(2)) * 4);
        a.jalr(RA, T9);
    }

    /** Tight counted loop with a data-dependent branch inside: the
     *  paper's squash storm. S4 is this gadget's private counter. */
    void
    squashLoop()
    {
        std::string top = lbl("sq"), skip = lbl("sqs");
        int32_t slot = wordOff();
        a.li(S4, static_cast<int32_t>(rng.range(2, 5)));
        a.label(top);
        if (rng.chance(1, 2))
            a.lw(S5, S0, slot);
        else
            a.lbu(S5, S0, byteOff());
        a.andi(S5, S5, 1);
        if (rng.chance(1, 2))
            a.bne(S5, ZERO, skip);
        else
            a.beq(S5, ZERO, skip);
        a.addi(ir(), ir(), static_cast<int32_t>(rng.range(1, 9)));
        a.sw(ir(), S0, slot); // perturb the tested value
        a.label(skip);
        a.addi(S4, S4, -1);
        a.bgtz(S4, top);
    }

    /** Pipeline bubbles. */
    void
    nopFill()
    {
        unsigned n = static_cast<unsigned>(rng.range(1, 2));
        for (unsigned i = 0; i < n; ++i)
            a.nop();
    }

    /** Emit one weighted-random gadget. */
    void
    emitGadget()
    {
        uint64_t w = rng.below(100);
        if (w < 12) aluReg();
        else if (w < 22) aluImm();
        else if (w < 27) shifts();
        else if (w < 35) predictChain();
        else if (w < 43) reuseChain();
        else if (w < 53) memMix();
        else if (w < 61) aliasing();
        else if (w < 66) mulDiv();
        else if (w < 73) fpArith();
        else if (w < 79) fpCmpBranch();
        else if (w < 83) cvt();
        else if (w < 91) condBranch();
        else if (w < 94) jumpSkip();
        else if (w < 97) call();
        else if (w < 99) indirectCall();
        else nopFill();
    }
};

/**
 * A fixed straight-line block that exercises every opcode once with
 * safe values, emitted before the random loop. This guarantees full
 * static Op coverage in every generated program regardless of seed —
 * the round-trip tests rely on it — and doubles as a smoke path.
 */
void
emitCoverageBlock(Gen &g)
{
    Assembler &a = g.a;
    a.add(T2, T0, T1); a.sub(T3, T0, T1); a.and_(T4, T0, T1);
    a.or_(T5, T0, T1); a.xor_(T6, T0, T1); a.nor(T7, T0, T1);
    a.slt(V0, T0, T1); a.sltu(V1, T0, T1);
    a.sllv(A0, T0, T1); a.srlv(A1, T0, T1); a.srav(A2, T0, T1);
    a.addi(A3, T0, 17); a.andi(T2, T0, 0xff); a.ori(T3, T0, 0x10);
    a.xori(T4, T0, 0x3c); a.slti(T5, T0, 5); a.sltiu(T6, T0, 5);
    a.sll(T7, T0, 3); a.srl(V0, T0, 2); a.sra(V1, T0, 1);
    a.lui(A0, 0x1234); a.li(A1, 0x7654321);
    a.mult(T0, T1); a.mfhi(A2); a.mflo(A3);
    a.multu(T0, T1); a.div(T0, T1); a.divu(T0, T1); a.mflo(T2);
    a.lb(T3, S0, 1); a.lbu(T4, S0, 2); a.lh(T5, S0, 4);
    a.lhu(T6, S0, 6); a.lw(T7, S0, 8);
    a.sb(T3, S0, 12); a.sh(T5, S0, 14); a.sw(T7, S0, 16);
    a.ld(fpReg(0), S2, 0); a.sd(fpReg(0), S2, 8);
    a.add_d(fpReg(1), fpReg(0), fpReg(0));
    a.sub_d(fpReg(2), fpReg(1), fpReg(0));
    a.mul_d(fpReg(3), fpReg(1), fpReg(2));
    a.div_d(fpReg(4), fpReg(3), fpReg(1));
    a.sqrt_d(fpReg(5), fpReg(4));
    a.mov_d(fpReg(6), fpReg(5)); a.neg_d(fpReg(7), fpReg(6));
    a.c_eq_d(fpReg(0), fpReg(1)); a.bc1t("cov_t"); a.nop();
    a.label("cov_t");
    a.c_lt_d(fpReg(0), fpReg(1)); a.bc1f("cov_f"); a.nop();
    a.label("cov_f");
    a.c_le_d(fpReg(0), fpReg(1));
    a.andi(S5, T0, 1023);
    a.cvt_d_w(fpReg(1), S5); a.cvt_w_d(T2, fpReg(1));
    a.beq(ZERO, ZERO, "cov_beq"); a.nop(); a.label("cov_beq");
    a.bne(T0, T0, "cov_bne"); a.label("cov_bne");
    a.blez(ZERO, "cov_blez"); a.nop(); a.label("cov_blez");
    a.bgtz(ZERO, "cov_bgtz"); a.label("cov_bgtz");
    a.bltz(ZERO, "cov_bltz"); a.label("cov_bltz");
    a.bgez(ZERO, "cov_bgez"); a.nop(); a.label("cov_bgez");
    a.j("cov_j"); a.nop(); a.label("cov_j");
    a.jal("leaf_a");                 // JAL + the leaf's JR
    a.lw(T9, S6, 0); a.jalr(RA, T9); // JALR via the jump table
}

void
emitLeaves(Assembler &a)
{
    a.label("leaf_a");
    a.addi(T8, T8, 3);
    a.lw(T9, S0, 64);
    a.xor_(T8, T8, T9);
    a.jr(RA);

    a.label("leaf_b");
    a.sll(T9, T8, 2);
    a.sub(T8, T9, T8);
    a.jr(RA);

    a.label("leaf_c");
    a.addi(T8, T8, 1);
    a.lbu(T9, S0, 5);
    a.jr(RA);

    a.label("leaf_d");
    a.add(T8, T8, T9);
    a.sw(T8, S0, 96);
    a.jr(RA);
}

} // anonymous namespace

Program
generateProgram(uint64_t seed, const GenOptions &opt)
{
    Assembler a;
    Gen g(a, seed);

    // Data: scratch words, FP doubles, and the indirect-call table.
    a.dataLabel("scratch");
    for (unsigned i = 0; i < SCRATCH_BYTES / 4; ++i)
        a.word(static_cast<uint32_t>(g.rng.next()));
    a.align(8);
    a.dataLabel("fpdata");
    for (unsigned i = 0; i < FPDATA_DWORDS; ++i)
        a.dword(1.0 + static_cast<double>(g.rng.below(4000)) / 8.0);
    a.dataLabel("jumptab");
    a.word(0); // patched with leaf_c
    a.word(0); // patched with leaf_d

    // Prologue: bases, counters, pool seeds.
    a.la(S0, "scratch");
    a.la(S2, "fpdata");
    a.la(S6, "jumptab");
    a.li(T8, 0);
    a.li(T9, 0);
    for (unsigned i = 0; i < IPOOL_N; ++i)
        a.li(IPOOL[i], static_cast<int32_t>(g.rng.next()));
    for (unsigned i = 0; i < FPOOL_N; ++i)
        a.ld(fpReg(i), S2, static_cast<int32_t>(i % FPDATA_DWORDS) * 8);

    emitCoverageBlock(g);

    // The random loop body. The only registers that can steer a
    // backward branch (S1, S4) are never written by a gadget body.
    unsigned iters = opt.outerIters ? opt.outerIters : 1;
    a.li(S1, static_cast<int32_t>(iters));
    a.label("outer");
    for (unsigned i = 0; i < opt.gadgets; ++i)
        g.emitGadget();
    a.addi(S1, S1, -1);
    a.bgtz(S1, "outer");
    a.halt();

    emitLeaves(a);

    a.patchWord(a.dataAddr("jumptab"), a.labelPC("leaf_c"));
    a.patchWord(a.dataAddr("jumptab") + 4, a.labelPC("leaf_d"));

    return a.finish();
}

bool
isFuzzWorkloadName(const std::string &name)
{
    if (name.size() != 5 + 16 || name.compare(0, 5, "fuzz:") != 0)
        return false;
    for (size_t i = 5; i < name.size(); ++i) {
        char c = name[i];
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

uint64_t
fuzzSeedFromName(const std::string &name)
{
    if (!isFuzzWorkloadName(name))
        fatal("malformed fuzz workload name: " + name);
    return std::strtoull(name.c_str() + 5, nullptr, 16);
}

std::string
fuzzWorkloadName(uint64_t seed)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fuzz:%016llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

} // namespace fuzz
} // namespace vpir
