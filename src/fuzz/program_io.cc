#include "fuzz/program_io.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "isa/disasm.hh"

namespace vpir
{
namespace fuzz
{

namespace
{

/** Reverse of opName(), built once over the whole opcode set. */
const std::map<std::string, Op> &
opTable()
{
    static const std::map<std::string, Op> table = [] {
        std::map<std::string, Op> t;
        for (unsigned i = 0; i < static_cast<unsigned>(Op::NUM_OPS); ++i) {
            Op op = static_cast<Op>(i);
            t.emplace(opName(op), op);
        }
        return t;
    }();
    return table;
}

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Split a line into whitespace-separated tokens, dropping any
 *  trailing "# ..." comment. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (c == ' ' || c == '\t') {
            if (!cur.empty()) {
                toks.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        toks.push_back(cur);
    return toks;
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseI64(const std::string &s, int64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(s.c_str(), &end, 0);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

} // anonymous namespace

std::string
programToText(const Program &p)
{
    std::ostringstream os;
    os << "vpir-program v1\n";
    os << "textbase " << hex(p.textBase) << "\n";
    os << "entry " << hex(p.entry) << "\n";
    os << "stacktop " << hex(p.stackTop) << "\n";
    for (const Instr &in : p.text) {
        os << "i " << opName(in.op)
           << " " << static_cast<unsigned>(in.rd)
           << " " << static_cast<unsigned>(in.rd2)
           << " " << static_cast<unsigned>(in.rs)
           << " " << static_cast<unsigned>(in.rt)
           << " " << in.imm
           << " " << hex(in.target)
           << "  # " << disassemble(in) << "\n";
    }
    for (const auto &seg : p.dataInit) {
        os << "data " << hex(seg.first) << " ";
        static const char digits[] = "0123456789abcdef";
        for (uint8_t b : seg.second) {
            os << digits[b >> 4] << digits[b & 0xf];
        }
        os << "\n";
    }
    os << "end\n";
    return os.str();
}

bool
programFromText(const std::string &text, Program &out, std::string &err)
{
    Program p;
    p.dataInit.clear();
    bool sawHeader = false, sawEnd = false;
    std::istringstream is(text);
    std::string line;
    unsigned lineNo = 0;

    auto fail = [&](const std::string &what) {
        err = "program text line " + std::to_string(lineNo) + ": " + what;
        return false;
    };

    while (std::getline(is, line)) {
        ++lineNo;
        std::vector<std::string> t = tokenize(line);
        if (t.empty())
            continue;
        if (!sawHeader) {
            if (t.size() != 2 || t[0] != "vpir-program" || t[1] != "v1")
                return fail("expected 'vpir-program v1' header");
            sawHeader = true;
            continue;
        }
        if (sawEnd)
            return fail("content after 'end'");
        uint64_t u;
        if (t[0] == "textbase" || t[0] == "entry" || t[0] == "stacktop") {
            if (t.size() != 2 || !parseU64(t[1], u) || u > UINT32_MAX)
                return fail("bad " + t[0] + " line");
            if (t[0] == "textbase")
                p.textBase = static_cast<Addr>(u);
            else if (t[0] == "entry")
                p.entry = static_cast<Addr>(u);
            else
                p.stackTop = static_cast<Addr>(u);
        } else if (t[0] == "i") {
            if (t.size() != 8)
                return fail("instruction line needs 7 fields");
            auto it = opTable().find(t[1]);
            if (it == opTable().end())
                return fail("unknown opcode '" + t[1] + "'");
            Instr in;
            in.op = it->second;
            uint64_t regs[4];
            for (int k = 0; k < 4; ++k) {
                if (!parseU64(t[2 + k], regs[k]) || regs[k] > 0xff)
                    return fail("bad register field '" + t[2 + k] + "'");
            }
            in.rd = static_cast<RegId>(regs[0]);
            in.rd2 = static_cast<RegId>(regs[1]);
            in.rs = static_cast<RegId>(regs[2]);
            in.rt = static_cast<RegId>(regs[3]);
            int64_t imm;
            if (!parseI64(t[6], imm) || imm < INT32_MIN || imm > INT32_MAX)
                return fail("bad immediate '" + t[6] + "'");
            in.imm = static_cast<int32_t>(imm);
            if (!parseU64(t[7], u) || u > UINT32_MAX)
                return fail("bad target '" + t[7] + "'");
            in.target = static_cast<Addr>(u);
            p.text.push_back(in);
        } else if (t[0] == "data") {
            if (t.size() != 3 || !parseU64(t[1], u) || u > UINT32_MAX)
                return fail("bad data line");
            const std::string &hx = t[2];
            if (hx.size() % 2)
                return fail("odd hex digit count in data line");
            std::vector<uint8_t> bytes;
            bytes.reserve(hx.size() / 2);
            for (size_t i = 0; i < hx.size(); i += 2) {
                int hi = hexNibble(hx[i]), lo = hexNibble(hx[i + 1]);
                if (hi < 0 || lo < 0)
                    return fail("bad hex digit in data line");
                bytes.push_back(static_cast<uint8_t>((hi << 4) | lo));
            }
            p.dataInit.emplace_back(static_cast<Addr>(u), std::move(bytes));
        } else if (t[0] == "end") {
            sawEnd = true;
        } else {
            return fail("unknown directive '" + t[0] + "'");
        }
    }
    if (!sawHeader)
        return fail("missing 'vpir-program v1' header");
    if (!sawEnd)
        return fail("missing 'end' line");
    if (p.text.empty())
        return fail("program has no instructions");
    out = std::move(p);
    err.clear();
    return true;
}

} // namespace fuzz
} // namespace vpir
