/**
 * @file
 * Delta-debugging shrinker for failing differential runs. Minimizes a
 * failing program by NOP-substitution (PCs and branch targets stay
 * valid by construction) and canonicalizes the fault cocktail, under
 * the predicate "the divergence KIND is preserved" — details (cycle
 * numbers, checksums) legitimately drift as the program shrinks, the
 * failure class must not.
 */

#ifndef VPIR_FUZZ_SHRINK_HH
#define VPIR_FUZZ_SHRINK_HH

#include <cstdint>

#include "fuzz/differential.hh"

namespace vpir
{
namespace fuzz
{

struct ShrinkOptions
{
    /** Hard cap on differential re-runs; the shrinker returns its
     *  best-so-far when exhausted. */
    uint64_t maxEvals = 4000;
};

struct ShrinkResult
{
    Program program;     //!< minimized program (NOPs left in place)
    CoreParams params;   //!< canonicalized configuration
    DiffOutcome outcome; //!< divergence of the minimized case
    uint64_t evals = 0;  //!< differential runs spent
    size_t instrsBefore = 0; //!< non-NOP instructions going in
    size_t instrsAfter = 0;  //!< non-NOP instructions coming out
};

/** Count the instructions that still do something. */
size_t countActiveInstrs(const Program &program);

/**
 * Shrink @p program / @p params to a minimal case that still diverges
 * with the same kind as @p failure. Deterministic.
 */
ShrinkResult shrinkFailure(const Program &program,
                           const CoreParams &params,
                           const DiffOutcome &failure,
                           const ShrinkOptions &opt = {});

} // namespace fuzz
} // namespace vpir

#endif // VPIR_FUZZ_SHRINK_HH
