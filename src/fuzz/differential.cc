#include "fuzz/differential.hh"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "emu/executor.hh"
#include "emu/state.hh"
#include "sim/configs.hh"

namespace vpir
{
namespace fuzz
{

namespace
{

/** First line of a (possibly multi-line) panic message. */
std::string
firstLine(const std::string &s)
{
    size_t nl = s.find('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
}

/** Map a SimError message onto a stable failure class. */
std::string
classifyPanic(const std::string &msg)
{
    if (msg.find("lockstep divergence") != std::string::npos)
        return "checker";
    if (msg.find("audit:") != std::string::npos)
        return "audit";
    if (msg.find("watchdog:") != std::string::npos)
        return "watchdog";
    if (msg.find("deadline exceeded") != std::string::npos)
        return "deadline";
    return "panic";
}

/** FNV-1a over the architectural registers and the program's
 *  statically initialised data spans. Generated programs only ever
 *  store inside their own data section, so this covers the full
 *  observable end state. */
uint64_t
archChecksum(const EmuState &st, const Program &program)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (unsigned r = 1; r < NUM_ARCH_REGS; ++r)
        mix(st.readReg(static_cast<RegId>(r)));
    for (const auto &seg : program.dataInit) {
        Addr base = seg.first & ~3u;
        Addr end = seg.first + static_cast<Addr>(seg.second.size());
        for (Addr a = base; a < end; a += 4)
            mix(st.readMem(a, 4));
    }
    return h;
}

std::string
hex64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

} // namespace

std::string
divergenceSignature(const DiffOutcome &d)
{
    return d.kind + "|" + d.detail;
}

std::string
checkStatsConservation(const CoreStats &st, const CoreParams &params)
{
    auto eq = [](const char *law, uint64_t a, uint64_t b) {
        return std::string(law) + " (" + std::to_string(a) +
               " != " + std::to_string(b) + ")";
    };
    auto le = [](const char *law, uint64_t a, uint64_t b) {
        return std::string(law) + " (" + std::to_string(a) + " > " +
               std::to_string(b) + ")";
    };

    if (st.committedMemOps != st.committedLoads + st.committedStores)
        return eq("memOps == loads + stores", st.committedMemOps,
                  st.committedLoads + st.committedStores);
    if (st.committedMemOps > st.committedInsts)
        return le("memOps <= committed", st.committedMemOps,
                  st.committedInsts);
    if (st.vpResultPredicted != st.vpResultCorrect + st.vpResultWrong)
        return eq("vpResultPredicted == correct + wrong",
                  st.vpResultPredicted,
                  st.vpResultCorrect + st.vpResultWrong);
    if (st.vpAddrPredicted != st.vpAddrCorrect + st.vpAddrWrong)
        return eq("vpAddrPredicted == correct + wrong",
                  st.vpAddrPredicted, st.vpAddrCorrect + st.vpAddrWrong);
    if (st.condMispredicted > st.condBranches)
        return le("condMispredicted <= condBranches",
                  st.condMispredicted, st.condBranches);
    if (st.returnMispredicted > st.returns)
        return le("returnMispredicted <= returns", st.returnMispredicted,
                  st.returns);
    if (st.reusedControl > st.resolvableControl)
        return le("reusedControl <= resolvableControl", st.reusedControl,
                  st.resolvableControl);
    if (st.resolvableControl > st.committedInsts)
        return le("resolvableControl <= committed", st.resolvableControl,
                  st.committedInsts);
    if (st.spuriousSquashes > st.branchSquashes)
        return le("spuriousSquashes <= branchSquashes",
                  st.spuriousSquashes, st.branchSquashes);
    if (st.squashedExecuted > st.executedInsts)
        return le("squashedExecuted <= executed", st.squashedExecuted,
                  st.executedInsts);
    uint64_t hist = 0;
    for (uint64_t b : st.execCountHist)
        hist += b;
    if (hist > st.committedInsts)
        return le("sum(execCountHist) <= committed", hist,
                  st.committedInsts);
    if (hist > st.executedInsts)
        return le("sum(execCountHist) <= executed", hist,
                  st.executedInsts);
    if (st.resourceDenied > st.resourceRequests)
        return le("resourceDenied <= resourceRequests", st.resourceDenied,
                  st.resourceRequests);
    if (st.icacheMisses > st.icacheAccesses)
        return le("icacheMisses <= accesses", st.icacheMisses,
                  st.icacheAccesses);
    if (st.dcacheMisses > st.dcacheAccesses)
        return le("dcacheMisses <= accesses", st.dcacheMisses,
                  st.dcacheAccesses);
    if (st.branchResCount > st.resolvableControl)
        return le("branchResCount <= resolvableControl",
                  st.branchResCount, st.resolvableControl);
    if (st.cycles > params.maxCycles)
        return le("cycles <= maxCycles", st.cycles, params.maxCycles);
    if (st.committedInsts > params.maxInsts)
        return le("committed <= maxInsts", st.committedInsts,
                  params.maxInsts);

    // The checker validates every retirement when armed.
    if (params.checkRetire && st.checkedInsts != st.committedInsts)
        return eq("checkRetire: checked == committed", st.checkedInsts,
                  st.committedInsts);

    // Technique gating: counters for absent structures must be zero.
    uint64_t reuse_ct = st.reusedResults + st.reusedAddrs +
                        st.reusedControl + st.squashedRecovered;
    uint64_t vp_ct = st.vpResultPredicted + st.vpAddrPredicted;
    if (params.technique == Technique::None && reuse_ct + vp_ct != 0)
        return eq("technique None has no reuse/VP events",
                  reuse_ct + vp_ct, 0);
    if (params.technique == Technique::IR && vp_ct != 0)
        return eq("technique IR has no VP events", vp_ct, 0);
    if (params.technique == Technique::VP && reuse_ct != 0)
        return eq("technique VP has no reuse events", reuse_ct, 0);

    // Fault counters only fire where a rate is armed.
    if (params.faults.vptValueRate <= 0.0 && st.faultsVptValue != 0)
        return eq("no VPT value faults armed", st.faultsVptValue, 0);
    if (params.faults.vptConfRate <= 0.0 && st.faultsVptConf != 0)
        return eq("no VPT conf faults armed", st.faultsVptConf, 0);
    if (!params.faults.anyRb() &&
        st.faultsRbOperand + st.faultsRbResult + st.faultsRbLink +
                st.faultsRbDropInv !=
            0) {
        return eq("no RB faults armed",
                  st.faultsRbOperand + st.faultsRbResult +
                      st.faultsRbLink + st.faultsRbDropInv,
                  0);
    }
    return "";
}

DiffOutcome
runDifferential(const Program &program, const CoreParams &params)
{
    DiffOutcome out;
    PanicThrowScope throws;
    try {
        Core core(params, program);
        out.stats = core.run();

        std::string law = checkStatsConservation(out.stats, params);
        if (!law.empty()) {
            out.diverged = true;
            out.kind = "conservation";
            out.detail = law;
            return out;
        }

        if (!out.stats.haltedCleanly) {
            // A capped run (insts or cycles) is a legitimate clean
            // outcome; anything else means the program lost its way.
            if (out.stats.committedInsts < params.maxInsts &&
                out.stats.cycles < params.maxCycles) {
                out.diverged = true;
                out.kind = "no-halt";
                out.detail = "run stopped uncapped and unhalted after " +
                             std::to_string(out.stats.committedInsts) +
                             " insts";
            }
            return out;
        }

        // End-state cross-check: replay the program on a fresh
        // functional reference and compare the architectural result.
        EmuState ref;
        Emulator::loadProgram(program, ref);
        Emulator emu(program, ref);
        uint64_t steps = 0;
        const uint64_t cap = out.stats.committedInsts + 16;
        while (!emu.halted() && steps < cap) {
            emu.step();
            ref.retire(ref.mark()); // keep the undo journal empty
            ++steps;
        }
        if (!emu.halted()) {
            out.diverged = true;
            out.kind = "end-state";
            out.detail = "reference did not halt within " +
                         std::to_string(cap) + " steps (core committed " +
                         std::to_string(out.stats.committedInsts) + ")";
            return out;
        }
        if (steps != out.stats.committedInsts) {
            out.diverged = true;
            out.kind = "end-state";
            out.detail = "instruction count: core committed " +
                         std::to_string(out.stats.committedInsts) +
                         ", reference retired " + std::to_string(steps);
            return out;
        }
        uint64_t want = archChecksum(ref, program);
        uint64_t got = archChecksum(core.emuState(), program);
        if (want != got) {
            out.diverged = true;
            out.kind = "end-state";
            out.detail = "architectural checksum " + hex64(got) +
                         ", reference " + hex64(want);
        }
        return out;
    } catch (const SimError &e) {
        out.diverged = true;
        out.kind = classifyPanic(e.what());
        out.detail = firstLine(e.what());
        return out;
    }
}

CoreParams
fuzzParamsForSeed(uint64_t seed)
{
    Rng r(seed, /*stream=*/0xc0f1);

    CoreParams p;
    switch (r.below(8)) {
      case 0:
        p = baseConfig();
        break;
      case 1:
        p = irConfig(IrValidation::Early);
        break;
      case 2:
        p = irConfig(IrValidation::Late);
        break;
      case 3:
      case 4: {
        VpScheme scheme =
            r.below(2) ? VpScheme::Magic : VpScheme::Lvp;
        ReexecPolicy reexec =
            r.below(2) ? ReexecPolicy::Multiple : ReexecPolicy::Single;
        BranchResolution br = r.below(2)
                                  ? BranchResolution::Speculative
                                  : BranchResolution::NonSpeculative;
        p = vpConfig(scheme, reexec, br,
                     static_cast<unsigned>(r.below(2)));
        break;
      }
      default: {
        VpScheme scheme =
            r.below(2) ? VpScheme::Magic : VpScheme::Lvp;
        BranchResolution br = r.below(2)
                                  ? BranchResolution::Speculative
                                  : BranchResolution::NonSpeculative;
        p = hybridConfig(scheme, br, static_cast<unsigned>(r.below(2)));
        break;
      }
    }

    // Occasional geometry jitter: small structures reach the squash /
    // occupancy corner cases a Table 1 machine never sees.
    if (r.below(4) == 0) {
        static const unsigned robs[] = {16, 32, 64};
        p.robEntries = robs[r.below(3)];
        p.lsqEntries = r.below(2) ? 16 : 32;
        p.fetchQueueSize = r.below(2) ? 4 : 8;
        p.maxUnresolvedBranches = r.below(2) ? 4 : 8;
    }

    // Absorbable fault cocktail on ~1/3 of VPT-bearing cells: value
    // and confidence corruption are speculation-safe (the machine must
    // recover, never diverge), so they stress-test recovery paths.
    if (p.technique == Technique::VP ||
        p.technique == Technique::Hybrid) {
        if (r.below(3) == 0) {
            p.faults.seed = Rng::split(seed, 0xbead);
            p.faults.vptValueRate = 0.002 * (1 + r.below(5));
            if (r.below(2))
                p.faults.vptConfRate = 0.002 * (1 + r.below(5));
        }
    }

    // Every fuzz cell runs fully armed.
    p.checkRetire = true;
    p.auditInvariants = true;
    p.watchdogCycles = 100000;
    p.maxInsts = 400000;
    p.maxCycles = 20000000;
    return p;
}

} // namespace fuzz
} // namespace vpir
