#include "fuzz/repro.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "fuzz/program_io.hh"
#include "sweep/params_json.hh"
#include "sweep/stats_json.hh"

namespace vpir
{
namespace fuzz
{

namespace
{

constexpr const char *FORMAT = "vpir-repro v1";

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Find "key" at top level and return the raw value text: a quoted
 *  string (unescaped into @p out), a number, or a {...} object. */
bool
extractString(const std::string &s, const char *key, std::string &out)
{
    std::string needle = std::string("\"") + key + "\"";
    size_t pos = s.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < s.size() &&
           (s[pos] == ':' ||
            std::isspace(static_cast<unsigned char>(s[pos]))))
        ++pos;
    if (pos >= s.size() || s[pos] != '"')
        return false;
    ++pos;
    out.clear();
    while (pos < s.size() && s[pos] != '"') {
        char c = s[pos];
        if (c == '\\' && pos + 1 < s.size()) {
            char e = s[pos + 1];
            pos += 2;
            switch (e) {
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'u': {
                if (pos + 4 > s.size())
                    return false;
                unsigned v = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s[pos + k];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                pos += 4;
                out += static_cast<char>(v & 0xff);
                break;
              }
              default:
                return false;
            }
        } else {
            out += c;
            ++pos;
        }
    }
    return pos < s.size();
}

bool
extractU64(const std::string &s, const char *key, uint64_t &out)
{
    std::string needle = std::string("\"") + key + "\"";
    size_t pos = s.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < s.size() &&
           (s[pos] == ':' ||
            std::isspace(static_cast<unsigned char>(s[pos]))))
        ++pos;
    if (pos >= s.size() ||
        !std::isdigit(static_cast<unsigned char>(s[pos])))
        return false;
    uint64_t v = 0;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
        v = v * 10 + static_cast<uint64_t>(s[pos] - '0');
        ++pos;
    }
    out = v;
    return true;
}

/** Extract the balanced {...} object value of @p key. */
bool
extractObject(const std::string &s, const char *key, std::string &out)
{
    std::string needle = std::string("\"") + key + "\"";
    size_t pos = s.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < s.size() &&
           (s[pos] == ':' ||
            std::isspace(static_cast<unsigned char>(s[pos]))))
        ++pos;
    if (pos >= s.size() || s[pos] != '{')
        return false;
    size_t start = pos;
    int depth = 0;
    bool in_str = false;
    for (; pos < s.size(); ++pos) {
        char c = s[pos];
        if (in_str) {
            if (c == '\\')
                ++pos;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{')
            ++depth;
        else if (c == '}' && --depth == 0) {
            out = s.substr(start, pos - start + 1);
            return true;
        }
    }
    return false;
}

std::string
hex16(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

} // namespace

std::string
captureHardeningEnv()
{
    static const char *const knobs[] = {
        "VPIR_CHECK",           "VPIR_AUDIT",
        "VPIR_WATCHDOG_CYCLES", "VPIR_FAULT_SEED",
        "VPIR_FAULT_VPT_VALUE", "VPIR_FAULT_VPT_CONF",
        "VPIR_FAULT_RB_OPERAND", "VPIR_FAULT_RB_RESULT",
        "VPIR_FAULT_RB_LINK",   "VPIR_FAULT_RB_DROPINV",
        "VPIR_FUZZ_SEED",       "VPIR_FUZZ_CELLS",
    };
    std::string out;
    for (const char *k : knobs) {
        const char *v = std::getenv(k);
        if (!v)
            continue;
        if (!out.empty())
            out += " ";
        out += std::string(k) + "=" + v;
    }
    return out;
}

std::string
bundleToJson(const ReproBundle &b)
{
    std::string text =
        b.programText.empty() ? programToText(b.program) : b.programText;
    std::ostringstream out;
    out << "{\n"
        << "  \"format\": \"" << FORMAT << "\",\n"
        << "  \"stats_schema\": \""
        << hex16(sweep::statsSchemaFingerprint()) << "\",\n"
        << "  \"params_schema\": \""
        << hex16(sweep::paramsSchemaFingerprint()) << "\",\n"
        << "  \"generator_revision\": " << b.generatorRevision << ",\n"
        << "  \"seed\": " << b.seed << ",\n"
        << "  \"workload\": \"" << jsonEscape(b.workload) << "\",\n"
        << "  \"kind\": \"" << jsonEscape(b.kind) << "\",\n"
        << "  \"detail\": \"" << jsonEscape(b.detail) << "\",\n"
        << "  \"env\": \"" << jsonEscape(b.env) << "\",\n"
        << "  \"params\": " << sweep::paramsToJson(b.params) << ",\n"
        << "  \"program\": \"" << jsonEscape(text) << "\"\n"
        << "}\n";
    return out.str();
}

bool
bundleFromJson(const std::string &json, ReproBundle &out,
               std::string &err)
{
    std::string fmt;
    if (!extractString(json, "format", fmt) || fmt != FORMAT) {
        err = "not a " + std::string(FORMAT) + " bundle (format: '" +
              fmt + "')";
        return false;
    }
    std::string sfp, pfp;
    if (!extractString(json, "stats_schema", sfp) ||
        !extractString(json, "params_schema", pfp)) {
        err = "bundle is missing its schema fingerprints";
        return false;
    }
    if (sfp != hex16(sweep::statsSchemaFingerprint())) {
        err = "stats-schema fingerprint mismatch: bundle " + sfp +
              ", this binary " +
              hex16(sweep::statsSchemaFingerprint()) +
              " — the bundle was produced by an incompatible build; "
              "refusing to replay";
        return false;
    }
    if (pfp != hex16(sweep::paramsSchemaFingerprint())) {
        err = "params-schema fingerprint mismatch: bundle " + pfp +
              ", this binary " +
              hex16(sweep::paramsSchemaFingerprint()) +
              " — the bundle was produced by an incompatible build; "
              "refusing to replay";
        return false;
    }

    ReproBundle b;
    extractU64(json, "generator_revision", b.generatorRevision);
    extractU64(json, "seed", b.seed);
    extractString(json, "workload", b.workload);
    if (!extractString(json, "kind", b.kind)) {
        err = "bundle has no expected divergence kind";
        return false;
    }
    extractString(json, "detail", b.detail);
    extractString(json, "env", b.env);

    std::string pjson;
    if (!extractObject(json, "params", pjson) ||
        !sweep::paramsFromJson(pjson, b.params)) {
        err = "bundle params object is missing or malformed";
        return false;
    }
    if (!extractString(json, "program", b.programText)) {
        err = "bundle has no program text";
        return false;
    }
    std::string perr;
    if (!programFromText(b.programText, b.program, perr)) {
        err = "bundle program does not parse: " + perr;
        return false;
    }
    out = std::move(b);
    return true;
}

bool
writeReproBundle(const ReproBundle &b, const std::string &path,
                 std::string &err)
{
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f) {
            err = "cannot open " + tmp + " for writing";
            return false;
        }
        f << bundleToJson(b);
        f.flush();
        if (!f) {
            err = "short write to " + tmp;
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        err = "cannot publish " + path + ": " + ec.message();
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
loadReproBundle(const std::string &path, ReproBundle &out,
                std::string &err)
{
    std::ifstream f(path);
    if (!f) {
        err = "cannot read repro bundle '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return bundleFromJson(ss.str(), out, err);
}

DiffOutcome
replayBundle(const ReproBundle &b)
{
    return runDifferential(b.program, b.params);
}

unsigned
scrubStaleReproTmp(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec), end;
    unsigned scrubbed = 0;
    for (; !ec && it != end; it.increment(ec)) {
        if (it->path().filename().string().find(".repro.json.tmp.") ==
            std::string::npos)
            continue;
        std::error_code rm_ec;
        if (std::filesystem::remove(it->path(), rm_ec))
            ++scrubbed;
    }
    return scrubbed;
}

} // namespace fuzz
} // namespace vpir
