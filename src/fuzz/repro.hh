/**
 * @file
 * Self-contained repro bundles: everything needed to replay a fuzz
 * divergence on another checkout in one JSON file — the program text,
 * the generator seed and revision, the full machine configuration,
 * the hardening env knobs in effect, and the expected divergence.
 * Bundles are stamped with the stats- and params-schema fingerprints
 * and refused loudly on mismatch (a bundle from an incompatible build
 * must not "replay clean" by accident). Writes are atomic
 * (.repro.json.tmp.<pid> + rename) and stale tmp files are scrubbed
 * at campaign startup.
 */

#ifndef VPIR_FUZZ_REPRO_HH
#define VPIR_FUZZ_REPRO_HH

#include <cstdint>
#include <string>

#include "fuzz/differential.hh"

namespace vpir
{
namespace fuzz
{

struct ReproBundle
{
    uint64_t generatorRevision = 0; //!< 0: program not generator-made
    uint64_t seed = 0;              //!< generator seed (when made)
    std::string workload;           //!< cell name, e.g. "fuzz:<hex>"
    std::string kind;               //!< expected divergence class
    std::string detail;             //!< divergence detail at capture
    std::string env;                //!< VPIR_* knobs in effect
    CoreParams params;
    Program program;
    std::string programText;        //!< canonical text form
};

/** Serialize (program is rendered to its text form first). */
std::string bundleToJson(const ReproBundle &b);

/**
 * Parse a bundle, verifying the format marker and both schema
 * fingerprints. @return false with a loud reason in @p err on any
 * mismatch or malformed content.
 */
bool bundleFromJson(const std::string &json, ReproBundle &out,
                    std::string &err);

/** Atomically write @p b to @p path (tmp + rename). */
bool writeReproBundle(const ReproBundle &b, const std::string &path,
                      std::string &err);

/** Read + parse + fingerprint-check a bundle file. */
bool loadReproBundle(const std::string &path, ReproBundle &out,
                     std::string &err);

/** Re-run the bundled program under the bundled configuration. */
DiffOutcome replayBundle(const ReproBundle &b);

/** Remove stale *.repro.json.tmp.* files left by killed processes.
 *  @return number removed. */
unsigned scrubStaleReproTmp(const std::string &dir);

/** Echo of the fault/hardening env knobs currently set (for the
 *  bundle's "env" field). */
std::string captureHardeningEnv();

} // namespace fuzz
} // namespace vpir

#endif // VPIR_FUZZ_REPRO_HH
