/**
 * @file
 * Plain-text table rendering used by the benchmark harnesses to print
 * rows in the shape of the paper's tables and figure series.
 */

#ifndef VPIR_STATS_TABLE_HH
#define VPIR_STATS_TABLE_HH

#include <string>
#include <vector>

namespace vpir
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p decimals decimals. */
    static std::string num(double v, int decimals = 2);

    /** Render with padding and a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace vpir

#endif // VPIR_STATS_TABLE_HH
