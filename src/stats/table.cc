#include "stats/table.hh"

#include <cstdio>

#include "common/logging.hh"

namespace vpir
{

TextTable::TextTable(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    VPIR_ASSERT(row.size() == rows.front().size(),
                "row arity mismatch");
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(rows.front().size(), 0);
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
        }
    }

    std::string out;
    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < rows[r].size(); ++c) {
            const std::string &cell = rows[r][c];
            out += cell;
            if (c + 1 < rows[r].size())
                out += std::string(widths[c] - cell.size() + 2, ' ');
        }
        out += '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out += std::string(total, '-');
            out += '\n';
        }
    }
    return out;
}

} // namespace vpir
