/**
 * @file
 * Statistics infrastructure: named scalar counters, distributions, and
 * derived ratios, collected into a registry that can be dumped or
 * queried by name. Mirrors (in miniature) the role of the SimpleScalar
 * stats package the paper's simulator used.
 */

#ifndef VPIR_STATS_STATS_HH
#define VPIR_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vpir
{

/** A scalar event counter. */
class Counter
{
  public:
    Counter() : val(0) {}

    void inc(uint64_t n = 1) { val += n; }
    void set(uint64_t v) { val = v; }
    uint64_t value() const { return val; }

  private:
    uint64_t val;
};

/** A small fixed-bucket histogram (bucket i counts value == i; the last
 *  bucket also absorbs overflow). */
class Histogram
{
  public:
    explicit Histogram(unsigned buckets = 8) : counts(buckets, 0) {}

    void
    sample(unsigned v, uint64_t n = 1)
    {
        unsigned b = v < counts.size() ? v
                                       : static_cast<unsigned>(
                                             counts.size() - 1);
        counts[b] += n;
    }

    uint64_t bucket(unsigned i) const { return counts.at(i); }
    unsigned buckets() const { return static_cast<unsigned>(counts.size()); }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t c : counts)
            t += c;
        return t;
    }

    /** Fraction of samples in bucket i (0 if empty). */
    double
    fraction(unsigned i) const
    {
        uint64_t t = total();
        return t ? static_cast<double>(bucket(i)) / static_cast<double>(t)
                 : 0.0;
    }

  private:
    std::vector<uint64_t> counts;
};

/** Harmonic mean of a series of positive values (paper's HM bars). */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean. */
double arithmeticMean(const std::vector<double> &values);

/** Percentage helper: 100 * num / den, 0 when den == 0. */
double pct(double num, double den);

/** Ratio helper: num / den, 0 when den == 0. */
double ratio(double num, double den);

/**
 * A registry of named scalar statistics. The simulator fills one of
 * these per run; benches read values by name.
 */
class StatSet
{
  public:
    /** Set (or overwrite) a named value. */
    void set(const std::string &name, double value);

    /** Add to a named value (creating it at zero). */
    void add(const std::string &name, double value);

    /** Read a value; returns 0 and does not create it when missing. */
    double get(const std::string &name) const;

    /** True if a value of this name has been recorded. */
    bool has(const std::string &name) const;

    /** All entries in name order. */
    const std::map<std::string, double> &entries() const { return vals; }

    /** Render "name value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, double> vals;
};

} // namespace vpir

#endif // VPIR_STATS_STATS_HH
