#include "stats/stats.hh"

#include <cstdio>

namespace vpir
{

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
pct(double num, double den)
{
    return den != 0.0 ? 100.0 * num / den : 0.0;
}

double
ratio(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

void
StatSet::set(const std::string &name, double value)
{
    vals[name] = value;
}

void
StatSet::add(const std::string &name, double value)
{
    vals[name] += value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = vals.find(name);
    return it == vals.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return vals.find(name) != vals.end();
}

std::string
StatSet::dump() const
{
    std::string out;
    char line[160];
    for (const auto &kv : vals) {
        std::snprintf(line, sizeof(line), "%-40s %.6g\n", kv.first.c_str(),
                      kv.second);
        out += line;
    }
    return out;
}

} // namespace vpir
