/**
 * @file
 * Top-level simulation facade: build a workload, run it on a
 * configured core, collect stats. This is the primary public entry
 * point for examples and benches.
 */

#ifndef VPIR_SIM_SIMULATOR_HH
#define VPIR_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "core/core.hh"
#include "sim/configs.hh"
#include "workload/workload.hh"

namespace vpir
{

/** Owns (or shares) a program and owns a core; runs to completion. */
class Simulator
{
  public:
    /** Take sole ownership of an already-assembled program. */
    Simulator(const CoreParams &params, Program program);

    /**
     * Share a cached workload (and optionally a post-warmup snapshot
     * for params.warmupInsts) with other simulators — see
     * sim/warm_cache.hh. The snapshot skips the functional warmup via
     * a copy-on-write clone; results are bit-identical either way.
     */
    Simulator(const CoreParams &params,
              std::shared_ptr<const Workload> workload,
              std::shared_ptr<const EmuSnapshot> warm = nullptr);

    /** Run until halt or configured limits. */
    const CoreStats &run();

    const CoreStats &stats() const { return core_->stats(); }
    Core &core() { return *core_; }
    const Program &program() const { return wl->program; }

    /**
     * Discard the core and rebuild it from scratch (same params,
     * program, and warm snapshot). Used by checkpoint resume when a
     * restore fails partway: a half-restored core is torn state and
     * must not run. @return the fresh core.
     */
    Core &resetCore();

  private:
    CoreParams params_;
    std::shared_ptr<const Workload> wl;
    std::shared_ptr<const EmuSnapshot> warm_;
    std::unique_ptr<Core> core_;
};

/** One-shot helper: build the named workload and simulate it. */
CoreStats runWorkload(const std::string &name, const CoreParams &params,
                      const WorkloadScale &scale = WorkloadScale());

/**
 * Default per-benchmark run length used by the bench harnesses; keeps
 * a full table sweep to a few minutes (see DESIGN.md §2 on scaling).
 * Override with the VPIR_BENCH_INSTS environment variable.
 */
uint64_t benchInstLimit();

/** Workload scale used by benches (VPIR_BENCH_SCALE, default 1.0). */
WorkloadScale benchScale();

} // namespace vpir

#endif // VPIR_SIM_SIMULATOR_HH
