#include "sim/checkpoint.hh"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "check/fault.hh"
#include "common/ckpt_io.hh"
#include "common/env.hh"
#include "common/logging.hh"
// Header-only stat-field visitor: the checkpoint's own stats schema
// fingerprint is derived from the same field list the result cache
// uses, without linking vpir_sweep into vpir_sim.
#include "sweep/stats_json.hh"

namespace vpir
{

namespace fs = std::filesystem;

namespace
{

constexpr char CKPT_MAGIC[8] = {'V', 'P', 'I', 'R', 'C', 'K', 'P', 'T'};
constexpr uint32_t CKPT_VERSION = 1;

constexpr uint64_t FNV_OFFSET = 0xcbf29ce484222325ull;
constexpr uint64_t FNV_PRIME = 0x100000001b3ull;

void
fnvMix(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= FNV_PRIME;
    }
}

/** FNV-1a over the CoreStats field names (same construction as
 *  sweep::statsSchemaFingerprint): a checkpoint written by a binary
 *  with a different stat layout must be rejected, not misparsed. */
uint64_t
ckptStatsSchemaFp()
{
    static const uint64_t fp = [] {
        uint64_t h = FNV_OFFSET;
        auto mixName = [&h](const char *name) {
            for (const char *p = name; *p; ++p) {
                h ^= static_cast<unsigned char>(*p);
                h *= FNV_PRIME;
            }
            h ^= '\n';
            h *= FNV_PRIME;
        };
        CoreStats tmp;
        sweep::forEachStatField(
            tmp, [&](const char *name, uint64_t &) { mixName(name); });
        mixName("haltedCleanly");
        return h;
    }();
    return fp;
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Workload names are simple identifiers, but never trust a string
 *  that ends up in a filename. */
std::string
sanitizeName(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out.empty() ? "cell" : out;
}

/** `<workload>-<cellkey hex>.` — everything for one cell shares it. */
std::string
cellPrefix(const CkptCellId &id)
{
    return sanitizeName(id.workload) + "-" + hex16(id.cellKey) + ".";
}

/** `<prefix><insts, zero-padded>.ckpt` — zero padding makes lexical
 *  and numeric order agree for direct inspection; loads sort by the
 *  parsed number regardless. */
std::string
ckptFileName(const CkptCellId &id, uint64_t insts)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(insts));
    return cellPrefix(id) + buf + ".ckpt";
}

struct CkptCandidate
{
    uint64_t insts = 0;
    fs::path path;
};

/** All `.ckpt` files for this cell, newest (highest insts) first. */
std::vector<CkptCandidate>
listCheckpoints(const CkptConfig &cfg, const CkptCellId &id)
{
    std::vector<CkptCandidate> out;
    const std::string prefix = cellPrefix(id);
    const std::string suffix = ".ckpt";
    std::error_code ec;
    fs::directory_iterator it(cfg.dir, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        std::string name = it->path().filename().string();
        if (name.size() <= prefix.size() + suffix.size() ||
            name.compare(0, prefix.size(), prefix) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        std::string num = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        uint64_t insts = 0;
        bool numeric = !num.empty();
        for (char c : num) {
            if (c < '0' || c > '9') {
                numeric = false;
                break;
            }
            insts = insts * 10 + static_cast<uint64_t>(c - '0');
        }
        if (!numeric)
            continue;
        out.push_back({insts, it->path()});
    }
    std::sort(out.begin(), out.end(),
              [](const CkptCandidate &a, const CkptCandidate &b) {
                  return a.insts > b.insts;
              });
    return out;
}

void
quarantine(const fs::path &path, const std::string &why)
{
    fs::path bad = path;
    bad += ".bad";
    std::error_code ec;
    fs::rename(path, bad, ec);
    std::fprintf(stderr,
                 "[ckpt] corrupt checkpoint %s: %s; quarantined to %s\n",
                 path.string().c_str(), why.c_str(),
                 ec ? "(rename failed)" : bad.string().c_str());
    if (ec)
        fs::remove(path, ec); // at least get it out of the resume path
}

/** Serialize the quiesced core into a full bundle (header + payload +
 *  CRC), optionally applying planted corruption. */
std::string
buildBundle(const CkptCellId &id, uint64_t prog_fp, const Core &core)
{
    CkptWriter payload;
    core.saveCheckpoint(payload);

    CkptWriter w;
    w.bytes(CKPT_MAGIC, sizeof(CKPT_MAGIC));
    w.u32(CKPT_VERSION);
    w.u64(ckptStatsSchemaFp());
    w.u64(id.paramsHash);
    w.u64(prog_fp);
    w.u64(id.cellKey);
    w.u64(id.warmupInsts);
    w.u64(core.stats().committedInsts);
    w.u64(core.now());
    w.str(payload.data());
    // CRC travels last, over every preceding byte: any truncation or
    // flip anywhere in the file fails this one check.
    w.u32(crc32(w.data().data(), w.size()));
    return w.data();
}

bool
writeCheckpoint(const CkptConfig &cfg, const CkptCellId &id,
                uint64_t prog_fp, const CkptFaultPlan &faults,
                const Core &core)
{
    std::string bundle = buildBundle(id, prog_fp, core);
    if (applyCkptFaults(faults, bundle, core.stats().committedInsts)) {
        std::fprintf(stderr,
                     "[ckpt] fault injection corrupted checkpoint at "
                     "%llu insts\n",
                     static_cast<unsigned long long>(
                         core.stats().committedInsts));
    }

    fs::path final_path =
        fs::path(cfg.dir) / ckptFileName(id, core.stats().committedInsts);
    fs::path tmp = final_path;
    tmp += ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("[ckpt] cannot open " + tmp.string() + " for writing");
            return false;
        }
        os.write(bundle.data(),
                 static_cast<std::streamsize>(bundle.size()));
        if (!os) {
            warn("[ckpt] short write to " + tmp.string());
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    if (ec) {
        warn("[ckpt] cannot publish " + final_path.string() + ": " +
             ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

void
rotateCheckpoints(const CkptConfig &cfg, const CkptCellId &id)
{
    std::vector<CkptCandidate> all = listCheckpoints(cfg, id);
    for (size_t i = cfg.keep; i < all.size(); ++i) {
        std::error_code ec;
        fs::remove(all[i].path, ec);
    }
}

/**
 * Validate and restore one checkpoint file. On success the core holds
 * the restored machine. On failure the core may be TORN — the caller
 * must sim.resetCore() before running or trying another candidate.
 */
bool
tryRestore(Core &core, const fs::path &path, const CkptCellId &id,
           uint64_t prog_fp, std::string &why)
{
    std::string data;
    {
        std::ifstream is(path, std::ios::binary);
        if (!is) {
            why = "cannot open";
            return false;
        }
        std::ostringstream ss;
        ss << is.rdbuf();
        data = ss.str();
    }
    // CRC first: one check rejects every byte-level corruption,
    // before any field is even looked at.
    if (data.size() < sizeof(CKPT_MAGIC) + 4) {
        why = "truncated below minimum size";
        return false;
    }
    CkptReader tail(data.data() + data.size() - 4, 4);
    uint32_t stored_crc = tail.u32();
    if (crc32(data.data(), data.size() - 4) != stored_crc) {
        why = "CRC32 mismatch";
        return false;
    }

    CkptReader r(data.data(), data.size() - 4);
    char magic[sizeof(CKPT_MAGIC)];
    r.bytes(magic, sizeof(magic));
    if (!r.ok() || std::memcmp(magic, CKPT_MAGIC, sizeof(magic)) != 0) {
        why = "bad magic";
        return false;
    }
    if (uint32_t v = r.u32(); v != CKPT_VERSION) {
        why = "format version " + std::to_string(v) + ", expected " +
              std::to_string(CKPT_VERSION);
        return false;
    }
    if (r.u64() != ckptStatsSchemaFp()) {
        why = "stats schema fingerprint mismatch (different binary)";
        return false;
    }
    if (r.u64() != id.paramsHash) {
        why = "params hash mismatch (stale cell)";
        return false;
    }
    if (r.u64() != prog_fp) {
        why = "program fingerprint mismatch (different workload build)";
        return false;
    }
    if (r.u64() != id.cellKey) {
        why = "cell key mismatch";
        return false;
    }
    if (r.u64() != id.warmupInsts) {
        why = "warmup provenance mismatch";
        return false;
    }
    r.u64(); // committedInsts: informational (also the filename)
    r.u64(); // cycle: informational
    std::string payload = r.str();
    if (!r.ok() || !r.atEnd()) {
        why = "malformed header/payload framing";
        return false;
    }
    CkptReader pr(payload);
    if (!core.restoreCheckpoint(pr) || !pr.atEnd()) {
        why = "payload rejected by a subsystem deserializer";
        return false;
    }
    return true;
}

// --- graceful-stop plumbing ------------------------------------------

thread_local const std::atomic<int> *t_stopFlag = nullptr;
volatile std::sig_atomic_t g_sigStop = 0;

} // anonymous namespace

CkptStopScope::CkptStopScope(const std::atomic<int> *flag) : prev(t_stopFlag)
{
    t_stopFlag = flag;
}

CkptStopScope::~CkptStopScope() { t_stopFlag = prev; }

bool
ckptStopRequested()
{
    if (g_sigStop)
        return true;
    const std::atomic<int> *f = t_stopFlag;
    return f && f->load(std::memory_order_relaxed) != 0;
}

void
noteCkptStopSignal()
{
    g_sigStop = 1;
}

void
clearCkptStopSignal()
{
    g_sigStop = 0;
}

// --- public entry points ---------------------------------------------

CkptConfig
ckptConfigFromEnv(uint64_t ckpt_insts)
{
    CkptConfig cfg;
    cfg.insts = ckpt_insts;
    if (const char *d = std::getenv("VPIR_CKPT_DIR"))
        cfg.dir = d;
    cfg.keep = static_cast<unsigned>(parseEnvU64("VPIR_CKPT_KEEP", cfg.keep));
    if (cfg.keep == 0)
        cfg.keep = 1; // keeping zero checkpoints defeats the feature
    cfg.resume = parseEnvU64("VPIR_CKPT_RESUME", 1) != 0;
    cfg.mustResume = parseEnvU64("VPIR_CKPT_MUST_RESUME", 0) != 0;
    return cfg;
}

uint64_t
programFingerprint(const Program &prog)
{
    uint64_t h = FNV_OFFSET;
    fnvMix(h, prog.textBase);
    fnvMix(h, prog.entry);
    fnvMix(h, prog.stackTop);
    fnvMix(h, prog.text.size());
    for (const Instr &i : prog.text) {
        fnvMix(h, static_cast<uint64_t>(i.op));
        fnvMix(h, (static_cast<uint64_t>(i.rd) << 24) |
                      (static_cast<uint64_t>(i.rd2) << 16) |
                      (static_cast<uint64_t>(i.rs) << 8) |
                      static_cast<uint64_t>(i.rt));
        fnvMix(h, static_cast<uint64_t>(static_cast<uint32_t>(i.imm)));
        fnvMix(h, i.target);
    }
    fnvMix(h, prog.dataInit.size());
    for (const auto &blk : prog.dataInit) {
        fnvMix(h, blk.first);
        fnvMix(h, blk.second.size());
        for (uint8_t b : blk.second) {
            h ^= b;
            h *= FNV_PRIME;
        }
    }
    return h;
}

void
scrubCkptTmpFiles(const std::string &dir)
{
    if (dir.empty())
        return;
    std::error_code ec;
    fs::directory_iterator it(dir, ec), end;
    size_t scrubbed = 0;
    for (; !ec && it != end; it.increment(ec)) {
        if (it->path().filename().string().find(".ckpt.tmp.") ==
            std::string::npos)
            continue;
        std::error_code rm_ec;
        if (fs::remove(it->path(), rm_ec))
            ++scrubbed;
    }
    if (scrubbed) {
        warn("scrubbed " + std::to_string(scrubbed) +
             " stale checkpoint tmp file(s) in '" + dir +
             "' left by a killed process");
    }
}

void
removeCheckpoints(const CkptConfig &cfg, const CkptCellId &id)
{
    // Only the good `.ckpt` files: quarantined `.bad` bundles stay on
    // disk as evidence until someone inspects and deletes them.
    for (const CkptCandidate &c : listCheckpoints(cfg, id)) {
        std::error_code ec;
        fs::remove(c.path, ec);
    }
}

CkptRunResult
runWithCheckpoints(Simulator &sim, const CkptConfig &cfg,
                   const CkptCellId &id, bool allow_resume)
{
    CkptRunResult res;
    if (!cfg.persistent()) {
        // Drains (if any) still happen inside cycle(); there is just
        // nothing to persist, so graceful stops cannot be honored
        // mid-cell either.
        sim.run();
        return res;
    }

    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec) {
        warn("[ckpt] cannot create checkpoint dir '" + cfg.dir + "': " +
             ec.message() + "; persistence disabled for this run");
        sim.run();
        return res;
    }

    const uint64_t prog_fp = programFingerprint(sim.program());

    if (cfg.resume && allow_resume) {
        for (const CkptCandidate &cand : listCheckpoints(cfg, id)) {
            std::string why;
            if (tryRestore(sim.core(), cand.path, id, prog_fp, why)) {
                res.resumed = true;
                res.resumedFromInsts = cand.insts;
                std::fprintf(
                    stderr, "[ckpt] resumed %s from %s (%llu insts)\n",
                    id.workload.c_str(), cand.path.string().c_str(),
                    static_cast<unsigned long long>(cand.insts));
                break;
            }
            quarantine(cand.path, why);
            // A failed restore can leave the core torn; rebuild
            // before trying the next-newest candidate (or cold).
            sim.resetCore();
        }
    }
    if (cfg.mustResume && !res.resumed) {
        panic("[ckpt] VPIR_CKPT_MUST_RESUME=1 but no valid checkpoint "
              "could be restored for cell " +
              hex16(id.cellKey) + " (" + id.workload + ")");
    }

    const CkptFaultPlan faults = ckptFaultPlanFromEnv();
    Core &core = sim.core();
    while (core.cycle()) {
        if (!core.atCkptBoundary())
            continue;
        if (writeCheckpoint(cfg, id, prog_fp, faults, core))
            ++res.checkpointsWritten;
        rotateCheckpoints(cfg, id);
        if (ckptStopRequested()) {
            // Stop exactly at the boundary just persisted: the next
            // run restores it and continues byte-identically.
            res.stopped = true;
            return res;
        }
    }
    core.finishStats();
    removeCheckpoints(cfg, id);
    return res;
}

} // namespace vpir
