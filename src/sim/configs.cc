#include "sim/configs.hh"

#include "check/fault.hh"
#include "common/env.hh"

namespace vpir
{

CoreParams
baseConfig()
{
    CoreParams p;
    // Everything defaults to Table 1 already; be explicit about the
    // memories.
    p.icache = CacheParams{64 * 1024, 2, 32, 1, 6};
    p.dcache = CacheParams{64 * 1024, 2, 32, 1, 6};
    p.technique = Technique::None;
    return p;
}

CoreParams
irConfig(IrValidation validation)
{
    CoreParams p = baseConfig();
    p.technique = Technique::IR;
    p.rb = RbParams{4 * 1024, 4};
    p.irValidation = validation;
    return p;
}

CoreParams
vpConfig(VpScheme scheme, ReexecPolicy reexec,
         BranchResolution branch_res, unsigned verify_latency)
{
    CoreParams p = baseConfig();
    p.technique = Technique::VP;
    p.vpt = VptParams{16 * 1024, 4, scheme, 2, 2};
    p.reexec = reexec;
    p.branchRes = branch_res;
    p.vpVerifyLatency = verify_latency;
    return p;
}

CoreParams
hybridConfig(VpScheme scheme, BranchResolution branch_res,
             unsigned verify_latency)
{
    CoreParams p = baseConfig();
    p.technique = Technique::Hybrid;
    p.vpt = VptParams{16 * 1024, 4, scheme, 2, 2};
    p.rb = RbParams{4 * 1024, 4};
    p.branchRes = branch_res;
    p.vpVerifyLatency = verify_latency;
    return p;
}

std::string
vpConfigLabel(ReexecPolicy reexec, BranchResolution branch_res)
{
    std::string s = reexec == ReexecPolicy::Multiple ? "ME" : "NME";
    s += branch_res == BranchResolution::Speculative ? "-SB" : "-NSB";
    return s;
}

CoreParams
withLimits(CoreParams p, uint64_t max_insts, uint64_t max_cycles)
{
    p.maxInsts = max_insts;
    p.maxCycles = max_cycles;
    return p;
}

void
applyHardeningEnv(CoreParams &p)
{
    p.checkRetire = parseEnvU64("VPIR_CHECK", p.checkRetire ? 1 : 0) != 0;
    p.auditInvariants =
        parseEnvU64("VPIR_AUDIT", p.auditInvariants ? 1 : 0) != 0;
    // Checked runs get a progress watchdog by default: a deadlocked
    // pipeline would otherwise spin to maxCycles silently.
    uint64_t wd_default = p.checkRetire ? 100000 : p.watchdogCycles;
    p.watchdogCycles = parseEnvU64("VPIR_WATCHDOG_CYCLES", wd_default);
    // Drain interval is a machine parameter (it perturbs timing and is
    // hashed into the cell key); persistence knobs live in
    // ckptConfigFromEnv().
    p.ckptInsts = parseEnvU64("VPIR_CKPT_INSTS", p.ckptInsts);
    // Window-size overrides. Machine parameters like ckptInsts: they
    // perturb timing and are hashed into the cell key. The perf
    // harness uses them to compare schedulers at large windows, where
    // per-cycle full-window scans stop being cheap.
    p.robEntries = static_cast<unsigned>(
        parseEnvU64("VPIR_ROB_ENTRIES", p.robEntries));
    p.lsqEntries = static_cast<unsigned>(
        parseEnvU64("VPIR_LSQ_ENTRIES", p.lsqEntries));
    // Memory-system overrides, same contract as the window knobs: the
    // perf harness disables the caches (single line, direct mapped, so
    // every new line pays the miss latency) and stretches the miss
    // penalty to put the pipeline in the stall-heavy regime where
    // event-driven scheduling has something to skip.
    if (parseEnvU64("VPIR_CACHE_DISABLE", 0) != 0) {
        p.icache.ways = 1;
        p.icache.sizeBytes = p.icache.lineBytes;
        p.dcache.ways = 1;
        p.dcache.sizeBytes = p.dcache.lineBytes;
    }
    unsigned miss = static_cast<unsigned>(
        parseEnvU64("VPIR_MISS_LATENCY", p.dcache.missLatency));
    p.icache.missLatency = miss;
    p.dcache.missLatency = miss;
    p.faults = faultPlanFromEnv(p.faults);
}

} // namespace vpir
