/**
 * @file
 * Named machine configurations matching the paper's experimental
 * setup (§4.1): the Table 1 base machine, the IR machine (4K-entry RB,
 * early or late validation), and the four VP configurations
 * {ME,NME} x {SB,NSB} for each predictor scheme and verification
 * latency.
 */

#ifndef VPIR_SIM_CONFIGS_HH
#define VPIR_SIM_CONFIGS_HH

#include <string>

#include "core/params.hh"

namespace vpir
{

/** Table 1 base machine (no VP, no IR). */
CoreParams baseConfig();

/** IR machine: S_{n+d} reuse buffer, 4K entries, 4-way. */
CoreParams irConfig(IrValidation validation = IrValidation::Early);

/** VP machine: 16K-entry 4-way VPT with the given knobs. */
CoreParams vpConfig(VpScheme scheme, ReexecPolicy reexec,
                    BranchResolution branch_res,
                    unsigned verify_latency);

/**
 * Hybrid machine (the paper's suggested future direction): the reuse
 * buffer is probed first and a value prediction fills in when the
 * operand-based test fails. Carries both structures.
 */
CoreParams hybridConfig(VpScheme scheme = VpScheme::Magic,
                        BranchResolution branch_res =
                            BranchResolution::Speculative,
                        unsigned verify_latency = 0);

/** "ME-SB" style label for a VP configuration. */
std::string vpConfigLabel(ReexecPolicy reexec,
                          BranchResolution branch_res);

/** Apply a run-length limit to any configuration. */
CoreParams withLimits(CoreParams p, uint64_t max_insts,
                      uint64_t max_cycles = UINT64_MAX);

/**
 * Apply the hardening environment knobs to a configuration:
 *
 *   VPIR_CHECK=1             enable the lockstep retire checker
 *   VPIR_WATCHDOG_CYCLES=N   commit-progress watchdog (default 100000
 *                            when VPIR_CHECK is on, else off)
 *   VPIR_FAULT_SEED / VPIR_FAULT_VPT_VALUE / VPIR_FAULT_VPT_CONF /
 *   VPIR_FAULT_RB_OPERAND / VPIR_FAULT_RB_RESULT / VPIR_FAULT_RB_LINK
 *   / VPIR_FAULT_RB_DROPINV  deterministic fault injection rates
 *
 * Called by the bench Runner and vpirsim on every cell's params, so
 * any experiment can run self-verifying without a rebuild.
 */
void applyHardeningEnv(CoreParams &p);

} // namespace vpir

#endif // VPIR_SIM_CONFIGS_HH
