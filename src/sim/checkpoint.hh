/**
 * @file
 * Mid-cell drain-and-checkpoint with corruption-proof resume.
 *
 * Every params.ckptInsts committed instructions the core drains to a
 * quiesced commit boundary (core/core.hh); when a checkpoint directory
 * is configured, this module serializes the quiesced machine into a
 * versioned, fingerprinted, CRC32-guarded bundle via tmp+rename, and
 * on the next run of the same cell key restores the newest valid one
 * and continues. The drain schedule is a pure function of commit
 * progress and the drain interval is part of the cell key, so a
 * resumed run produces final stats byte-identical to an uninterrupted
 * run.
 *
 * Corruption model: a checkpoint file can be truncated (killed
 * mid-write despite tmp+rename — e.g. torn at the filesystem level),
 * bit-flipped (disk/memory corruption), or stale (written by a
 * different binary, cell, or program). Every load validates, in
 * order: magic, format version, CRC32 over the whole file, stats
 * schema fingerprint, params hash, program fingerprint, cell key, and
 * warmup provenance — then the per-subsystem deserializers check
 * their own geometry invariants. Any failure quarantines the file to
 * `<name>.bad` with a loud warning and falls back to the next-newest
 * checkpoint, then to a cold start (unless VPIR_CKPT_MUST_RESUME
 * demands otherwise, which the corruption-proof test uses).
 */

#ifndef VPIR_SIM_CHECKPOINT_HH
#define VPIR_SIM_CHECKPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/simulator.hh"

namespace vpir
{

/** Checkpoint persistence configuration (VPIR_CKPT_* knobs). */
struct CkptConfig
{
    /** Drain interval in committed instructions; mirrors
     *  CoreParams::ckptInsts (0 = draining off). */
    uint64_t insts = 0;
    /** Directory for checkpoint bundles; empty = drains happen (if
     *  insts != 0) but nothing is persisted. */
    std::string dir;
    /** Newest checkpoints kept per cell; older ones are rotated out
     *  after each successful write. */
    unsigned keep = 2;
    /** Restore the newest valid checkpoint at run start. */
    bool resume = true;
    /** Fail the run loudly instead of cold-starting when no valid
     *  checkpoint can be restored. Test knob: turns silent fallback
     *  into a detectable failure for the corruption-proof. */
    bool mustResume = false;

    /** Checkpoints are written/restored only when both the interval
     *  and a directory are configured. */
    bool persistent() const { return insts != 0 && !dir.empty(); }
};

/** Read VPIR_CKPT_DIR / VPIR_CKPT_KEEP / VPIR_CKPT_RESUME /
 *  VPIR_CKPT_MUST_RESUME (strict parsing, common/env.hh). The drain
 *  interval is passed in because it lives in CoreParams — it is part
 *  of the simulated machine, not of persistence policy. */
CkptConfig ckptConfigFromEnv(uint64_t ckpt_insts);

/** Identity of the cell a checkpoint belongs to. A plain struct so
 *  sim does not depend on sweep; the sweep engine fills it from its
 *  own cellHash()/hashParams(). */
struct CkptCellId
{
    std::string workload;    //!< workload name (file naming only)
    uint64_t cellKey = 0;    //!< full cell hash (workload+scale+params)
    uint64_t paramsHash = 0; //!< CoreParams hash (stale-binary check)
    uint64_t warmupInsts = 0; //!< warmup provenance
};

/** What runWithCheckpoints() did. */
struct CkptRunResult
{
    /** A graceful stop was requested and honored at a checkpoint
     *  boundary: the run is NOT finished and its stats are partial.
     *  Only ever true when persistence is on (otherwise there is
     *  nothing to resume from, so the run completes). */
    bool stopped = false;
    bool resumed = false;            //!< continued from a checkpoint
    uint64_t resumedFromInsts = 0;   //!< commit count restored to
    uint64_t checkpointsWritten = 0;
};

/**
 * Run the simulator to completion (or to a graceful stop), writing a
 * checkpoint at every drain boundary and — when @p allow_resume —
 * first restoring the newest valid checkpoint for @p id.
 *
 * Without persistence (cfg.persistent() false) this is exactly
 * sim.run(): the drain bubbles still occur when the interval is set,
 * keeping timing identical across persistence modes.
 */
CkptRunResult runWithCheckpoints(Simulator &sim, const CkptConfig &cfg,
                                 const CkptCellId &id, bool allow_resume);

/** Delete this cell's `.ckpt` files after it completes cleanly.
 *  Quarantined `.bad` files are left on disk as evidence. */
void removeCheckpoints(const CkptConfig &cfg, const CkptCellId &id);

/** Remove stale `.ckpt.tmp.<pid>` files left in @p dir by killed
 *  processes (same policy as the result-cache tmp scrub). */
void scrubCkptTmpFiles(const std::string &dir);

/** FNV-1a fingerprint of a program image (text, data init, entry,
 *  stack top): detects a checkpoint from a different workload build
 *  even when the cell key collides. */
uint64_t programFingerprint(const Program &prog);

// --- graceful-stop plumbing ------------------------------------------
//
// Two producers feed one consumer:
//  - in-process sweeps: the engine's signal flag, armed around the
//    cell computation via CkptStopScope;
//  - isolated (forked) cells: SIGUSR1 from the parent, recorded by
//    noteCkptStopSignal() from the child's signal handler.
// runWithCheckpoints() polls ckptStopRequested() at each boundary and
// stops only there — never mid-pipeline — so a stopped cell's
// checkpoint is always a normal, schedule-aligned one.

/** Arms checkpoint stop-polling with an external atomic flag (nonzero
 *  = stop requested) for the current thread. RAII: restores the
 *  previous flag on destruction. */
class CkptStopScope
{
  public:
    explicit CkptStopScope(const std::atomic<int> *flag);
    ~CkptStopScope();

    CkptStopScope(const CkptStopScope &) = delete;
    CkptStopScope &operator=(const CkptStopScope &) = delete;

  private:
    const std::atomic<int> *prev;
};

/** True when a graceful stop was requested via the armed scope flag
 *  or via noteCkptStopSignal(). */
bool ckptStopRequested();

/** Record a stop request. Async-signal-safe; called from the
 *  isolated child's SIGUSR1 handler. */
void noteCkptStopSignal();

/** Clear the process-wide signal stop flag (between isolated cells
 *  within one process, and in tests). */
void clearCkptStopSignal();

} // namespace vpir

#endif // VPIR_SIM_CHECKPOINT_HH
