/**
 * @file
 * Warm-start cache: assembled programs and post-warmup emulator
 * snapshots shared across sweep cells.
 *
 * A parameter sweep runs hundreds of cells, but only a handful of
 * distinct (workload, scale) programs and (workload, scale, warmup)
 * functional states exist among them. Before this cache every cell
 * re-assembled its workload and re-executed the warmup from scratch;
 * now the first cell needing a key builds it once and every later
 * cell clones it — the program by shared_ptr, the emulator state by a
 * copy-on-write page-table copy (see emu/state.hh).
 *
 * Thread safety: keyed std::call_once slots, so concurrent sweep
 * workers asking for the same key block on one build instead of
 * racing duplicates. A build that panics (SimError under
 * PanicThrowScope) leaves the slot unbuilt; the next caller retries
 * and observes the same error.
 *
 * Fork safety: under VPIR_ISOLATE the parent must populate the cache
 * *before* forking a cell child (SweepEngine does) — a child forked
 * while another worker holds a cache mutex would deadlock on it.
 *
 * Disabled with VPIR_WARM_CACHE=0 (default on), in which case callers
 * fall back to per-cell assembly/warmup and results must be
 * byte-identical.
 */

#ifndef VPIR_SIM_WARM_CACHE_HH
#define VPIR_SIM_WARM_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "emu/executor.hh"
#include "workload/workload.hh"

namespace vpir
{

/** Process-wide cache of assembled workloads and warm snapshots. */
class WarmStartCache
{
  public:
    /** Lifetime build/hit counters (monotone; clear() resets). */
    struct Counters
    {
        uint64_t programBuilds = 0;
        uint64_t programHits = 0;
        uint64_t snapshotBuilds = 0;
        uint64_t snapshotHits = 0;
    };

    /** The VPIR_WARM_CACHE knob (default on). Read per call so tests
     *  can toggle it with an env guard mid-process. */
    static bool enabledFromEnv();

    static WarmStartCache &global();

    /**
     * The assembled workload for (name, scale), built at most once.
     * @param built  When non-null, set true iff *this call* performed
     *               the build (per-call attribution; the global
     *               counters are racy to diff under concurrency).
     */
    std::shared_ptr<const Workload> workload(const std::string &name,
                                             const WorkloadScale &scale,
                                             bool *built = nullptr);

    /**
     * The post-warmup snapshot for (name, scale, warmupInsts), built
     * at most once via makeWarmSnapshot() on the cached workload's
     * program (building that first if needed — a snapshot build with
     * @p built set does not also report the program build).
     */
    std::shared_ptr<const EmuSnapshot>
    snapshot(const std::string &name, const WorkloadScale &scale,
             uint64_t warmupInsts, bool *built = nullptr);

    Counters counters() const;

    /** Drop every entry and zero the counters (test hook). */
    void clear();

  private:
    template <typename T>
    struct Slot
    {
        std::once_flag once;
        std::shared_ptr<const T> value;
    };

    template <typename T>
    std::shared_ptr<Slot<T>> slotFor(std::map<std::string,
                                              std::shared_ptr<Slot<T>>> &m,
                                     const std::string &key);

    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<Slot<Workload>>> programs;
    std::map<std::string, std::shared_ptr<Slot<EmuSnapshot>>> snapshots;
    Counters ctr;
};

} // namespace vpir

#endif // VPIR_SIM_WARM_CACHE_HH
