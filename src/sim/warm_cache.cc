#include "sim/warm_cache.hh"

#include <cstdio>
#include <cstring>

#include "common/env.hh"

namespace vpir
{

namespace
{

/** Stable cache key; the scale factor is keyed by its exact bit
 *  pattern so 0.1 and 0.1000…1 never alias. */
std::string
scaleKey(const std::string &name, const WorkloadScale &scale)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(scale.factor),
                  "scale factor must be a 64-bit float");
    std::memcpy(&bits, &scale.factor, sizeof(bits));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "@%016llx",
                  static_cast<unsigned long long>(bits));
    return name + buf;
}

} // namespace

bool
WarmStartCache::enabledFromEnv()
{
    return parseEnvU64("VPIR_WARM_CACHE", 1) != 0;
}

WarmStartCache &
WarmStartCache::global()
{
    static WarmStartCache cache;
    return cache;
}

template <typename T>
std::shared_ptr<WarmStartCache::Slot<T>>
WarmStartCache::slotFor(
    std::map<std::string, std::shared_ptr<Slot<T>>> &m,
    const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu);
    auto &slot = m[key];
    if (!slot)
        slot = std::make_shared<Slot<T>>();
    return slot;
}

std::shared_ptr<const Workload>
WarmStartCache::workload(const std::string &name,
                         const WorkloadScale &scale, bool *built)
{
    auto slot = slotFor(programs, scaleKey(name, scale));
    // Build outside the map lock: assembly can take a while and other
    // keys must not serialize behind it. A panic (SimError) escapes
    // with the once_flag unset, so a later caller re-attempts and hits
    // the same failure.
    bool did_build = false;
    std::call_once(slot->once, [&] {
        slot->value =
            std::make_shared<const Workload>(makeWorkload(name, scale));
        did_build = true;
    });
    if (built)
        *built = did_build;
    {
        std::lock_guard<std::mutex> lk(mu);
        if (did_build)
            ++ctr.programBuilds;
        else
            ++ctr.programHits;
    }
    return slot->value;
}

std::shared_ptr<const EmuSnapshot>
WarmStartCache::snapshot(const std::string &name,
                         const WorkloadScale &scale, uint64_t warmupInsts,
                         bool *built)
{
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "#%llu",
                  static_cast<unsigned long long>(warmupInsts));
    auto slot = slotFor(snapshots, scaleKey(name, scale) + suffix);
    bool did_build = false;
    std::call_once(slot->once, [&] {
        std::shared_ptr<const Workload> w = workload(name, scale);
        slot->value = std::make_shared<EmuSnapshot>(
            makeWarmSnapshot(w->program, warmupInsts));
        did_build = true;
    });
    if (built)
        *built = did_build;
    {
        std::lock_guard<std::mutex> lk(mu);
        if (did_build)
            ++ctr.snapshotBuilds;
        else
            ++ctr.snapshotHits;
    }
    return slot->value;
}

WarmStartCache::Counters
WarmStartCache::counters() const
{
    std::lock_guard<std::mutex> lk(mu);
    return ctr;
}

void
WarmStartCache::clear()
{
    std::lock_guard<std::mutex> lk(mu);
    programs.clear();
    snapshots.clear();
    ctr = Counters{};
}

} // namespace vpir
