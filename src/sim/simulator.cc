#include "sim/simulator.hh"

#include "common/env.hh"
#include "sim/warm_cache.hh"

namespace vpir
{

Simulator::Simulator(const CoreParams &params, Program program)
    : params_(params)
{
    auto w = std::make_shared<Workload>();
    w->program = std::move(program);
    wl = std::move(w);
    core_ = std::make_unique<Core>(params_, wl->program);
}

Simulator::Simulator(const CoreParams &params,
                     std::shared_ptr<const Workload> workload,
                     std::shared_ptr<const EmuSnapshot> warm)
    : params_(params), wl(std::move(workload)), warm_(std::move(warm))
{
    core_ = std::make_unique<Core>(params_, wl->program, warm_.get());
}

const CoreStats &
Simulator::run()
{
    return core_->run();
}

Core &
Simulator::resetCore()
{
    core_ = std::make_unique<Core>(params_, wl->program, warm_.get());
    return *core_;
}

CoreStats
runWorkload(const std::string &name, const CoreParams &params,
            const WorkloadScale &scale)
{
    if (WarmStartCache::enabledFromEnv()) {
        WarmStartCache &cache = WarmStartCache::global();
        auto w = cache.workload(name, scale);
        auto snap = cache.snapshot(name, scale, params.warmupInsts);
        Simulator sim(params, std::move(w), std::move(snap));
        return sim.run();
    }
    Workload w = makeWorkload(name, scale);
    Simulator sim(params, std::move(w.program));
    return sim.run();
}

uint64_t
benchInstLimit()
{
    // Strict parsing: "10m" or "1e6" must not silently truncate to 10
    // resp. 1 — a misparse here invalidates a whole table run.
    return parseEnvU64("VPIR_BENCH_INSTS", 400000);
}

WorkloadScale
benchScale()
{
    WorkloadScale sc;
    sc.factor = parseEnvF64("VPIR_BENCH_SCALE", sc.factor);
    return sc;
}

} // namespace vpir
