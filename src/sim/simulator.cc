#include "sim/simulator.hh"

#include "common/env.hh"

namespace vpir
{

Simulator::Simulator(const CoreParams &params, Program program)
    : prog(std::move(program))
{
    core_ = std::make_unique<Core>(params, prog);
}

const CoreStats &
Simulator::run()
{
    return core_->run();
}

CoreStats
runWorkload(const std::string &name, const CoreParams &params,
            const WorkloadScale &scale)
{
    Workload w = makeWorkload(name, scale);
    Simulator sim(params, std::move(w.program));
    return sim.run();
}

uint64_t
benchInstLimit()
{
    // Strict parsing: "10m" or "1e6" must not silently truncate to 10
    // resp. 1 — a misparse here invalidates a whole table run.
    return parseEnvU64("VPIR_BENCH_INSTS", 400000);
}

WorkloadScale
benchScale()
{
    WorkloadScale sc;
    sc.factor = parseEnvF64("VPIR_BENCH_SCALE", sc.factor);
    return sc;
}

} // namespace vpir
