#include "sim/simulator.hh"

#include <cstdlib>

namespace vpir
{

Simulator::Simulator(const CoreParams &params, Program program)
    : prog(std::move(program))
{
    core_ = std::make_unique<Core>(params, prog);
}

const CoreStats &
Simulator::run()
{
    return core_->run();
}

CoreStats
runWorkload(const std::string &name, const CoreParams &params,
            const WorkloadScale &scale)
{
    Workload w = makeWorkload(name, scale);
    Simulator sim(params, std::move(w.program));
    return sim.run();
}

uint64_t
benchInstLimit()
{
    if (const char *s = std::getenv("VPIR_BENCH_INSTS"))
        return std::strtoull(s, nullptr, 10);
    return 400000;
}

WorkloadScale
benchScale()
{
    WorkloadScale sc;
    if (const char *s = std::getenv("VPIR_BENCH_SCALE"))
        sc.factor = std::strtod(s, nullptr);
    return sc;
}

} // namespace vpir
