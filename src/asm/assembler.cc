#include "asm/assembler.hh"

#include <cstring>

#include "common/logging.hh"

namespace vpir
{

Assembler::Assembler(Addr text_base, Addr data_base)
    : dataPos(data_base)
{
    prog.textBase = text_base;
    prog.entry = text_base;
    prog.dataInit.emplace_back(data_base, std::vector<uint8_t>());
}

Addr
Assembler::herePC() const
{
    return prog.textBase + static_cast<Addr>(prog.text.size()) * 4;
}

void
Assembler::emit(Instr inst)
{
    VPIR_ASSERT(!finished, "emit after finish()");
    prog.text.push_back(inst);
}

void
Assembler::emitBranch(Instr inst, const std::string &target)
{
    fixups.emplace_back(prog.text.size(), target);
    emit(inst);
}

void
Assembler::label(const std::string &name)
{
    VPIR_ASSERT(!codeLabels.count(name), "duplicate code label " + name);
    codeLabels[name] = herePC();
}

Addr
Assembler::labelPC(const std::string &name) const
{
    auto it = codeLabels.find(name);
    VPIR_ASSERT(it != codeLabels.end(), "undefined code label " + name);
    return it->second;
}

// ---------------------------------------------------------------- ALU

namespace
{

Instr
rType(Op op, RegId rd, RegId rs, RegId rt)
{
    Instr i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    return i;
}

Instr
iType(Op op, RegId rd, RegId rs, int32_t imm)
{
    Instr i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.imm = imm;
    return i;
}

} // anonymous namespace

void Assembler::add(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::ADD, rd, rs, rt)); }
void Assembler::sub(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::SUB, rd, rs, rt)); }
void Assembler::and_(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::AND, rd, rs, rt)); }
void Assembler::or_(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::OR, rd, rs, rt)); }
void Assembler::xor_(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::XOR, rd, rs, rt)); }
void Assembler::nor(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::NOR, rd, rs, rt)); }
void Assembler::slt(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::SLT, rd, rs, rt)); }
void Assembler::sltu(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::SLTU, rd, rs, rt)); }
void Assembler::sllv(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::SLLV, rd, rs, rt)); }
void Assembler::srlv(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::SRLV, rd, rs, rt)); }
void Assembler::srav(RegId rd, RegId rs, RegId rt)
{ emit(rType(Op::SRAV, rd, rs, rt)); }

void Assembler::addi(RegId rd, RegId rs, int32_t imm)
{ emit(iType(Op::ADDI, rd, rs, imm)); }
void Assembler::andi(RegId rd, RegId rs, int32_t imm)
{ emit(iType(Op::ANDI, rd, rs, imm)); }
void Assembler::ori(RegId rd, RegId rs, int32_t imm)
{ emit(iType(Op::ORI, rd, rs, imm)); }
void Assembler::xori(RegId rd, RegId rs, int32_t imm)
{ emit(iType(Op::XORI, rd, rs, imm)); }
void Assembler::slti(RegId rd, RegId rs, int32_t imm)
{ emit(iType(Op::SLTI, rd, rs, imm)); }
void Assembler::sltiu(RegId rd, RegId rs, int32_t imm)
{ emit(iType(Op::SLTIU, rd, rs, imm)); }

void
Assembler::sll(RegId rd, RegId rs, unsigned shamt)
{
    VPIR_ASSERT(shamt < 32, "bad shift amount");
    emit(iType(Op::SLL, rd, rs, static_cast<int32_t>(shamt)));
}

void
Assembler::srl(RegId rd, RegId rs, unsigned shamt)
{
    VPIR_ASSERT(shamt < 32, "bad shift amount");
    emit(iType(Op::SRL, rd, rs, static_cast<int32_t>(shamt)));
}

void
Assembler::sra(RegId rd, RegId rs, unsigned shamt)
{
    VPIR_ASSERT(shamt < 32, "bad shift amount");
    emit(iType(Op::SRA, rd, rs, static_cast<int32_t>(shamt)));
}

void Assembler::lui(RegId rd, int32_t imm)
{ emit(iType(Op::LUI, rd, REG_INVALID, imm)); }
void Assembler::li(RegId rd, int32_t imm)
{ emit(iType(Op::LI, rd, REG_INVALID, imm)); }
void Assembler::move(RegId rd, RegId rs)
{ emit(iType(Op::ORI, rd, rs, 0)); }
void Assembler::nop()
{ emit(Instr{}); }

// -------------------------------------------------------- mult / div

void
Assembler::mult(RegId rs, RegId rt)
{
    Instr i = rType(Op::MULT, REG_LO, rs, rt);
    i.rd2 = REG_HI;
    emit(i);
}

void
Assembler::multu(RegId rs, RegId rt)
{
    Instr i = rType(Op::MULTU, REG_LO, rs, rt);
    i.rd2 = REG_HI;
    emit(i);
}

void
Assembler::div(RegId rs, RegId rt)
{
    Instr i = rType(Op::DIV, REG_LO, rs, rt);
    i.rd2 = REG_HI;
    emit(i);
}

void
Assembler::divu(RegId rs, RegId rt)
{
    Instr i = rType(Op::DIVU, REG_LO, rs, rt);
    i.rd2 = REG_HI;
    emit(i);
}

void Assembler::mfhi(RegId rd)
{ emit(iType(Op::MFHI, rd, REG_INVALID, 0)); }
void Assembler::mflo(RegId rd)
{ emit(iType(Op::MFLO, rd, REG_INVALID, 0)); }

// ------------------------------------------------------------- memory

namespace
{

Instr
loadType(Op op, RegId rd, RegId base, int32_t off)
{
    Instr i;
    i.op = op;
    i.rd = rd;
    i.rs = base;
    i.imm = off;
    return i;
}

Instr
storeType(Op op, RegId rt, RegId base, int32_t off)
{
    Instr i;
    i.op = op;
    i.rs = base;
    i.rt = rt;
    i.imm = off;
    return i;
}

} // anonymous namespace

void Assembler::lb(RegId rd, RegId base, int32_t off)
{ emit(loadType(Op::LB, rd, base, off)); }
void Assembler::lbu(RegId rd, RegId base, int32_t off)
{ emit(loadType(Op::LBU, rd, base, off)); }
void Assembler::lh(RegId rd, RegId base, int32_t off)
{ emit(loadType(Op::LH, rd, base, off)); }
void Assembler::lhu(RegId rd, RegId base, int32_t off)
{ emit(loadType(Op::LHU, rd, base, off)); }
void Assembler::lw(RegId rd, RegId base, int32_t off)
{ emit(loadType(Op::LW, rd, base, off)); }
void Assembler::sb(RegId rt, RegId base, int32_t off)
{ emit(storeType(Op::SB, rt, base, off)); }
void Assembler::sh(RegId rt, RegId base, int32_t off)
{ emit(storeType(Op::SH, rt, base, off)); }
void Assembler::sw(RegId rt, RegId base, int32_t off)
{ emit(storeType(Op::SW, rt, base, off)); }
void Assembler::ld(RegId fd, RegId base, int32_t off)
{ emit(loadType(Op::L_D, fd, base, off)); }
void Assembler::sd(RegId ft, RegId base, int32_t off)
{ emit(storeType(Op::S_D, ft, base, off)); }

// ------------------------------------------------------------ control

void
Assembler::beq(RegId rs, RegId rt, const std::string &target)
{
    emitBranch(rType(Op::BEQ, REG_INVALID, rs, rt), target);
}

void
Assembler::bne(RegId rs, RegId rt, const std::string &target)
{
    emitBranch(rType(Op::BNE, REG_INVALID, rs, rt), target);
}

void
Assembler::blez(RegId rs, const std::string &target)
{
    emitBranch(iType(Op::BLEZ, REG_INVALID, rs, 0), target);
}

void
Assembler::bgtz(RegId rs, const std::string &target)
{
    emitBranch(iType(Op::BGTZ, REG_INVALID, rs, 0), target);
}

void
Assembler::bltz(RegId rs, const std::string &target)
{
    emitBranch(iType(Op::BLTZ, REG_INVALID, rs, 0), target);
}

void
Assembler::bgez(RegId rs, const std::string &target)
{
    emitBranch(iType(Op::BGEZ, REG_INVALID, rs, 0), target);
}

void
Assembler::bc1t(const std::string &target)
{
    emitBranch(iType(Op::BC1T, REG_INVALID, REG_INVALID, 0), target);
}

void
Assembler::bc1f(const std::string &target)
{
    emitBranch(iType(Op::BC1F, REG_INVALID, REG_INVALID, 0), target);
}

void
Assembler::j(const std::string &target)
{
    emitBranch(iType(Op::J, REG_INVALID, REG_INVALID, 0), target);
}

void
Assembler::jal(const std::string &target)
{
    emitBranch(iType(Op::JAL, REG_RA, REG_INVALID, 0), target);
}

void
Assembler::jr(RegId rs)
{
    emit(iType(Op::JR, REG_INVALID, rs, 0));
}

void
Assembler::jalr(RegId rd, RegId rs)
{
    emit(iType(Op::JALR, rd, rs, 0));
}

void
Assembler::halt()
{
    Instr i;
    i.op = Op::HALT;
    emit(i);
}

// ----------------------------------------------------- floating point

void Assembler::add_d(RegId fd, RegId fs, RegId ft)
{ emit(rType(Op::ADD_D, fd, fs, ft)); }
void Assembler::sub_d(RegId fd, RegId fs, RegId ft)
{ emit(rType(Op::SUB_D, fd, fs, ft)); }
void Assembler::mul_d(RegId fd, RegId fs, RegId ft)
{ emit(rType(Op::MUL_D, fd, fs, ft)); }
void Assembler::div_d(RegId fd, RegId fs, RegId ft)
{ emit(rType(Op::DIV_D, fd, fs, ft)); }
void Assembler::sqrt_d(RegId fd, RegId fs)
{ emit(iType(Op::SQRT_D, fd, fs, 0)); }
void Assembler::mov_d(RegId fd, RegId fs)
{ emit(iType(Op::MOV_D, fd, fs, 0)); }
void Assembler::neg_d(RegId fd, RegId fs)
{ emit(iType(Op::NEG_D, fd, fs, 0)); }

void
Assembler::c_eq_d(RegId fs, RegId ft)
{
    emit(rType(Op::C_EQ_D, REG_FCC, fs, ft));
}

void
Assembler::c_lt_d(RegId fs, RegId ft)
{
    emit(rType(Op::C_LT_D, REG_FCC, fs, ft));
}

void
Assembler::c_le_d(RegId fs, RegId ft)
{
    emit(rType(Op::C_LE_D, REG_FCC, fs, ft));
}

void
Assembler::cvt_d_w(RegId fd, RegId rs)
{
    emit(iType(Op::CVT_D_W, fd, rs, 0));
}

void
Assembler::cvt_w_d(RegId rd, RegId fs)
{
    emit(iType(Op::CVT_W_D, rd, fs, 0));
}

// ---------------------------------------------------------------- data

void
Assembler::dataLabel(const std::string &name)
{
    VPIR_ASSERT(!dataLabels.count(name), "duplicate data label " + name);
    dataLabels[name] = dataPos;
}

Addr
Assembler::dataAddr(const std::string &name) const
{
    auto it = dataLabels.find(name);
    VPIR_ASSERT(it != dataLabels.end(), "undefined data label " + name);
    return it->second;
}

void
Assembler::word(uint32_t value)
{
    auto &seg = prog.dataInit.back().second;
    for (int b = 0; b < 4; ++b)
        seg.push_back(static_cast<uint8_t>(value >> (8 * b)));
    dataPos += 4;
}

void
Assembler::words(const std::vector<uint32_t> &values)
{
    for (uint32_t v : values)
        word(v);
}

void
Assembler::bytes(const std::vector<uint8_t> &values)
{
    auto &seg = prog.dataInit.back().second;
    seg.insert(seg.end(), values.begin(), values.end());
    dataPos += static_cast<Addr>(values.size());
}

void
Assembler::dword(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    auto &seg = prog.dataInit.back().second;
    for (int b = 0; b < 8; ++b)
        seg.push_back(static_cast<uint8_t>(bits >> (8 * b)));
    dataPos += 8;
}

void
Assembler::space(uint32_t n)
{
    auto &seg = prog.dataInit.back().second;
    seg.insert(seg.end(), n, 0);
    dataPos += n;
}

void
Assembler::align(uint32_t boundary)
{
    VPIR_ASSERT(boundary && !(boundary & (boundary - 1)),
                "alignment not a power of two");
    while (dataPos & (boundary - 1))
        space(1);
}

void
Assembler::la(RegId rd, const std::string &data_label)
{
    li(rd, static_cast<int32_t>(dataAddr(data_label)));
}

void
Assembler::patchWord(Addr addr, uint32_t value)
{
    for (auto &[base, seg] : prog.dataInit) {
        if (addr >= base && addr + 4 <= base + seg.size()) {
            for (int b = 0; b < 4; ++b)
                seg[addr - base + b] =
                    static_cast<uint8_t>(value >> (8 * b));
            return;
        }
    }
    panic("patchWord outside initialised data");
}

// ------------------------------------------------------------- finish

Program
Assembler::finish()
{
    VPIR_ASSERT(!finished, "finish() called twice");
    for (const auto &[idx, name] : fixups) {
        auto it = codeLabels.find(name);
        VPIR_ASSERT(it != codeLabels.end(),
                    "undefined code label " + name);
        prog.text[idx].target = it->second;
    }
    finished = true;
    return prog;
}

} // namespace vpir
