/**
 * @file
 * Embedded assembler used to author the synthetic workloads.
 *
 * Programs are built with one call per instruction; labels may be used
 * before they are defined and are resolved by finish(). A data segment
 * builder initialises memory (word tables, byte strings, zero fill)
 * and exposes data labels to the code via la().
 */

#ifndef VPIR_ASM_ASSEMBLER_HH
#define VPIR_ASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace vpir
{

/** A fully assembled program plus its initial memory image. */
struct Program
{
    Addr textBase = 0x1000;              //!< PC of text[0]
    std::vector<Instr> text;             //!< pre-decoded instructions
    std::vector<std::pair<Addr, std::vector<uint8_t>>> dataInit;
    Addr entry = 0x1000;                 //!< initial PC
    Addr stackTop = 0x7ff000;            //!< initial r29

    /** PC of the last text word + 4. */
    Addr textEnd() const
    {
        return textBase + static_cast<Addr>(text.size()) * 4;
    }

    /** Instruction at a PC, or nullptr when outside the text. */
    const Instr *
    at(Addr pc) const
    {
        if (pc < textBase || pc >= textEnd() || (pc & 3))
            return nullptr;
        return &text[(pc - textBase) / 4];
    }
};

/**
 * Fluent program builder. Register arguments are flat RegIds (use
 * intReg()/fpReg()); immediate-form branches take label strings.
 */
class Assembler
{
  public:
    explicit Assembler(Addr text_base = 0x1000, Addr data_base = 0x100000);

    // --- labels ------------------------------------------------------
    /** Define a code label at the next instruction. */
    void label(const std::string &name);
    /** PC a code label resolves to (label must already be defined). */
    Addr labelPC(const std::string &name) const;

    // --- integer ALU -------------------------------------------------
    void add(RegId rd, RegId rs, RegId rt);
    void sub(RegId rd, RegId rs, RegId rt);
    void and_(RegId rd, RegId rs, RegId rt);
    void or_(RegId rd, RegId rs, RegId rt);
    void xor_(RegId rd, RegId rs, RegId rt);
    void nor(RegId rd, RegId rs, RegId rt);
    void slt(RegId rd, RegId rs, RegId rt);
    void sltu(RegId rd, RegId rs, RegId rt);
    void sllv(RegId rd, RegId rs, RegId rt);
    void srlv(RegId rd, RegId rs, RegId rt);
    void srav(RegId rd, RegId rs, RegId rt);
    void addi(RegId rd, RegId rs, int32_t imm);
    void andi(RegId rd, RegId rs, int32_t imm);
    void ori(RegId rd, RegId rs, int32_t imm);
    void xori(RegId rd, RegId rs, int32_t imm);
    void slti(RegId rd, RegId rs, int32_t imm);
    void sltiu(RegId rd, RegId rs, int32_t imm);
    void sll(RegId rd, RegId rs, unsigned shamt);
    void srl(RegId rd, RegId rs, unsigned shamt);
    void sra(RegId rd, RegId rs, unsigned shamt);
    void lui(RegId rd, int32_t imm);
    void li(RegId rd, int32_t imm);
    /** Pseudo: rd = rs (implemented as ORI rd, rs, 0). */
    void move(RegId rd, RegId rs);
    void nop();

    // --- multiply / divide --------------------------------------------
    void mult(RegId rs, RegId rt);
    void multu(RegId rs, RegId rt);
    void div(RegId rs, RegId rt);
    void divu(RegId rs, RegId rt);
    void mfhi(RegId rd);
    void mflo(RegId rd);

    // --- memory --------------------------------------------------------
    void lb(RegId rd, RegId base, int32_t off);
    void lbu(RegId rd, RegId base, int32_t off);
    void lh(RegId rd, RegId base, int32_t off);
    void lhu(RegId rd, RegId base, int32_t off);
    void lw(RegId rd, RegId base, int32_t off);
    void sb(RegId rt, RegId base, int32_t off);
    void sh(RegId rt, RegId base, int32_t off);
    void sw(RegId rt, RegId base, int32_t off);
    void ld(RegId fd, RegId base, int32_t off);   //!< L_D
    void sd(RegId ft, RegId base, int32_t off);   //!< S_D

    // --- control --------------------------------------------------------
    void beq(RegId rs, RegId rt, const std::string &target);
    void bne(RegId rs, RegId rt, const std::string &target);
    void blez(RegId rs, const std::string &target);
    void bgtz(RegId rs, const std::string &target);
    void bltz(RegId rs, const std::string &target);
    void bgez(RegId rs, const std::string &target);
    void bc1t(const std::string &target);
    void bc1f(const std::string &target);
    void j(const std::string &target);
    void jal(const std::string &target);
    void jr(RegId rs);
    void jalr(RegId rd, RegId rs);
    void halt();

    // --- floating point ---------------------------------------------
    void add_d(RegId fd, RegId fs, RegId ft);
    void sub_d(RegId fd, RegId fs, RegId ft);
    void mul_d(RegId fd, RegId fs, RegId ft);
    void div_d(RegId fd, RegId fs, RegId ft);
    void sqrt_d(RegId fd, RegId fs);
    void mov_d(RegId fd, RegId fs);
    void neg_d(RegId fd, RegId fs);
    void c_eq_d(RegId fs, RegId ft);
    void c_lt_d(RegId fs, RegId ft);
    void c_le_d(RegId fs, RegId ft);
    void cvt_d_w(RegId fd, RegId rs);
    void cvt_w_d(RegId rd, RegId fs);

    // --- data segment -------------------------------------------------
    /** Define a data label at the current data cursor. */
    void dataLabel(const std::string &name);
    /** Address a data label resolves to. */
    Addr dataAddr(const std::string &name) const;
    /** Append a 32-bit word. */
    void word(uint32_t value);
    /** Append n 32-bit words. */
    void words(const std::vector<uint32_t> &values);
    /** Append raw bytes. */
    void bytes(const std::vector<uint8_t> &values);
    /** Append a 64-bit IEEE double. */
    void dword(double value);
    /** Reserve n zero bytes. */
    void space(uint32_t n);
    /** Align the data cursor to a power-of-two boundary. */
    void align(uint32_t boundary);
    /** Current data cursor address. */
    Addr dataCursor() const { return dataPos; }

    /** Pseudo: load the address of a data label. */
    void la(RegId rd, const std::string &data_label);

    /**
     * Overwrite a previously emitted data word; used to fill jump
     * tables with code label addresses after the code is assembled.
     */
    void patchWord(Addr addr, uint32_t value);

    // --- completion -----------------------------------------------------
    /** Resolve all label references and produce the Program. */
    Program finish();

    /** Number of instructions emitted so far. */
    size_t size() const { return prog.text.size(); }

  private:
    void emit(Instr inst);
    void emitBranch(Instr inst, const std::string &target);
    Addr herePC() const;

    Program prog;
    Addr dataPos;
    std::map<std::string, Addr> codeLabels;
    std::map<std::string, Addr> dataLabels;
    std::vector<std::pair<size_t, std::string>> fixups;
    bool finished = false;
};

} // namespace vpir

#endif // VPIR_ASM_ASSEMBLER_HH
