/**
 * @file
 * Synthetic SPECint95-like workloads.
 *
 * The paper evaluates on seven SPECint95 programs; those binaries and
 * inputs are not redistributable, so each is replaced by a synthetic
 * kernel (written in this repo's ISA via the embedded assembler) that
 * mimics the computational character the study depends on: branch
 * predictability, value/reuse locality, call behaviour, and load/store
 * mix. See DESIGN.md §2 for the substitution rationale and
 * EXPERIMENTS.md for the measured-vs-paper characteristics.
 */

#ifndef VPIR_WORKLOAD_WORKLOAD_HH
#define VPIR_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "asm/assembler.hh"

namespace vpir
{

/** A named, assembled workload. */
struct Workload
{
    std::string name;       //!< paper benchmark it stands in for
    std::string input;      //!< paper's input set (documentation)
    Program program;
};

/**
 * Scale factor for all workloads: 1.0 gives roughly 1-2M committed
 * instructions per benchmark. Benches use the default; tests use
 * smaller scales.
 */
struct WorkloadScale
{
    double factor = 1.0;

    unsigned
    scaled(unsigned base) const
    {
        unsigned v = static_cast<unsigned>(base * factor);
        return v > 1 ? v : 1;
    }
};

/** go: game tree search / board evaluation; branchy, ~76% bpred. */
Workload makeGo(const WorkloadScale &scale = WorkloadScale());
/** m88ksim: CPU simulator dispatch loop; highly redundant. */
Workload makeM88ksim(const WorkloadScale &scale = WorkloadScale());
/** ijpeg: blocked DCT-like image codec; little redundancy. */
Workload makeIjpeg(const WorkloadScale &scale = WorkloadScale());
/** perl: bytecode interpreter with hashing; moderate redundancy. */
Workload makePerl(const WorkloadScale &scale = WorkloadScale());
/** vortex: object database; call heavy, ~98% bpred. */
Workload makeVortex(const WorkloadScale &scale = WorkloadScale());
/** gcc: compiler-pass-like IR walks; mixed behaviour. */
Workload makeGcc(const WorkloadScale &scale = WorkloadScale());
/** compress: LZW with hash probing; high *address* reuse. */
Workload makeCompress(const WorkloadScale &scale = WorkloadScale());

/** All seven benchmark names in the paper's order. */
const std::vector<std::string> &workloadNames();

/** Build a workload by name (fatal on unknown names). */
Workload makeWorkload(const std::string &name,
                      const WorkloadScale &scale = WorkloadScale());

} // namespace vpir

#endif // VPIR_WORKLOAD_WORKLOAD_HH
