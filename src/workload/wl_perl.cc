/**
 * @file
 * "perl" stand-in: a bytecode interpreter scoring a word list
 * (scrabble-like), with hashing and bucketed accumulation.
 *
 * Character reproduced: interpreter dispatch plus per-word character
 * loops whose computations repeat whenever a word repeats (moderate
 * redundancy, ~20% reuse / ~35% prediction), high but not perfect
 * branch predictability (~96%), and plenty of byte loads.
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

Workload
makePerl(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x7065726c); // "perl"

    constexpr unsigned numWords = 96;
    constexpr unsigned slotBytes = 12;
    static_assert(slotBytes >= 10, "words must fit their slots");
    const unsigned iterations = scale.scaled(8000);

    // --- data ---------------------------------------------------------
    a.dataLabel("letter_vals");
    for (unsigned i = 0; i < 26; ++i)
        a.word(static_cast<uint32_t>(1 + rng.below(4)));

    a.dataLabel("words");
    for (unsigned i = 0; i < numWords; ++i) {
        unsigned len = rng.chance(7, 10)
                           ? 7
                           : 5 + static_cast<unsigned>(rng.below(5));
        std::vector<uint8_t> slot(slotBytes, 0);
        for (unsigned c = 0; c < len; ++c)
            slot[c] = static_cast<uint8_t>('a' + rng.below(26));
        a.bytes(slot);
    }
    a.dataLabel("words_end");

    a.dataLabel("buckets");
    a.space(64 * 4);

    // Bytecode program: NEXT HASH SCORECOMMIT LOOP.
    a.dataLabel("bytecode");
    a.words({0, 1, 2, 3});

    a.dataLabel("vm_handlers");
    Addr handler_table = a.dataCursor();
    a.space(8 * 4);

    // --- interpreter ----------------------------------------------------
    // S0 bytecode, S1 handlers, S2 vm pc, S3 letter values,
    // S4 iteration counter, S5 word pointer, S6 hash, S7 score,
    // FP running total.
    a.la(S0, "bytecode");
    a.la(S1, "vm_handlers");
    a.li(S2, 0);
    a.la(S3, "letter_vals");
    a.li(S4, static_cast<int32_t>(iterations));
    a.la(S5, "words");
    a.li(FP, 0);

    a.label("iloop");
    a.slti(T0, S2, 4);
    a.beq(T0, ZERO, "vm_done");
    a.sll(T0, S2, 2);
    a.add(T0, S0, T0);
    a.lw(T0, T0, 0);        // opcode
    a.sll(T0, T0, 2);
    a.add(T0, S1, T0);
    a.lw(T0, T0, 0);        // handler
    a.jalr(RA, T0);
    a.j("iloop");
    a.label("vm_done");
    a.halt();

    // --- handlers -------------------------------------------------------
    a.label("op_next"); // advance to the next word, wrapping
    a.addi(S5, S5, slotBytes);
    a.la(T0, "words_end");
    a.slt(T1, S5, T0);
    a.bne(T1, ZERO, "next_ok");
    a.la(S5, "words");
    a.label("next_ok");
    a.addi(S2, S2, 1);
    a.jr(RA);

    a.label("op_hash"); // h = h*31 + c over the word's characters
    a.addi(SP, SP, -16);
    a.sw(RA, SP, 0);      // frame traffic: constant addresses
    a.sw(S5, SP, 4);
    a.li(S6, 0);
    a.move(T0, S5);
    a.label("hash_loop");
    a.lbu(T1, T0, 0);
    a.beq(T1, ZERO, "hash_done");
    a.sltiu(T4, T1, 110);   // char class flag: VP-only redundancy
    a.add(GP, GP, T4);
    a.sll(T2, S6, 5);
    a.sub(T2, T2, S6);
    a.add(S6, T2, T1);
    a.andi(T5, S6, 1);      // running parity: operand in flight, so
    a.add(GP, GP, T5);      // VP captures it and IR cannot (§3.1)
    a.addi(T0, T0, 1);
    a.j("hash_loop");
    a.label("hash_done");
    a.lw(RA, SP, 0);
    a.lw(T3, SP, 4);      // reload word pointer (spill slot)
    a.addi(SP, SP, 16);
    a.addi(S2, S2, 1);
    a.jr(RA);

    a.label("op_score"); // sum letter values
    a.addi(SP, SP, -16);
    a.sw(RA, SP, 0);
    a.sw(S6, SP, 4);      // spill the hash across the loop
    a.li(S7, 0);
    a.move(T0, S5);
    a.label("score_loop");
    a.lbu(T1, T0, 0);
    a.beq(T1, ZERO, "score_done");
    a.addi(T1, T1, -97); // 'a'
    a.sll(T1, T1, 2);
    a.add(T1, S3, T1);
    a.lw(T2, T1, 0);
    a.andi(T5, T2, 1);      // letter value parity (VP captures)
    a.add(GP, GP, T5);
    a.add(S7, S7, T2);
    a.andi(T6, S7, 3);      // running score class (in-flight operand)
    a.add(GP, GP, T6);
    a.addi(T0, T0, 1);
    a.j("score_loop");
    a.label("score_done");
    a.lw(RA, SP, 0);
    a.lw(S6, SP, 4);      // reload the hash
    a.addi(SP, SP, 16);
    // Commit phase: conditional accumulate + bucket update.
    a.andi(T0, S6, 3);
    a.beq(T0, ZERO, "commit_skip"); // multiple-of-4 hash: no accum
    a.add(FP, FP, S7);
    a.label("commit_skip");
    a.andi(T0, S6, 63);
    a.sll(T0, T0, 2);
    a.la(T1, "buckets");
    a.add(T0, T1, T0);
    a.lw(T2, T0, 0);
    a.add(T2, T2, S7);
    a.sw(T2, T0, 0);
    a.addi(S2, S2, 1);
    a.jr(RA);

    a.label("op_loop"); // restart the bytecode or fall off the end
    a.addi(S4, S4, -1);
    a.blez(S4, "loop_done");
    a.li(S2, 0);
    a.jr(RA);
    a.label("loop_done");
    a.addi(S2, S2, 1);
    a.jr(RA);

    const char *names[4] = {"op_next", "op_hash", "op_score",
                            "op_loop"};
    for (unsigned i = 0; i < 4; ++i)
        a.patchWord(handler_table + 4 * i, a.labelPC(names[i]));

    Workload w;
    w.name = "perl";
    w.input = "scrabble.in (train)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
