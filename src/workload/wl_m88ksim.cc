/**
 * @file
 * "m88ksim" stand-in: a direct-threaded instruction-set simulator
 * interpreting an encoded guest program.
 *
 * Character reproduced: the fetch/decode/dispatch chain re-executes
 * with identical operand values every time a guest instruction
 * repeats, giving the paper's highest reuse and prediction rates;
 * conditional-branch predictability around 95% (a guest loop with a
 * data-dependent retry branch); and indirect-jump dispatch. The
 * interpreter is direct-threaded — every handler ends with its own
 * dispatch — which gives each indirect jump the target locality a
 * compiled simulator's dispatch sites have.
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

namespace
{

/** Guest instruction encoding: op(14:12) rd(11:8) rs(7:4) rt(3:0). */
uint32_t
enc(unsigned op, unsigned rd, unsigned rs, unsigned rt)
{
    return (op << 12) | (rd << 8) | (rs << 4) | rt;
}

constexpr unsigned G_ADD = 0;
constexpr unsigned G_SUB = 1;
constexpr unsigned G_AND = 2;
constexpr unsigned G_OR = 3;
constexpr unsigned G_SHL = 4;
constexpr unsigned G_LI = 5;
constexpr unsigned G_BNZ = 6; //!< branch back rd*16+rt words if rs != 0
constexpr unsigned G_LD = 7;  //!< rd = guestmem[(rs + rt) & 63]

} // anonymous namespace

Workload
makeM88ksim(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x6d38386b); // "m88k"
    const unsigned guestInsts = scale.scaled(90000);

    // --- guest program ------------------------------------------------
    // A generated guest kernel: a preamble seeding constant registers
    // (r3, r10, r11 and friends), then an inner loop whose body mixes
    // constant-fed operations (reusable interpretation work), slowly
    // varying accumulators, guest memory loads through a cursor, and
    // a data-dependent retry branch. The body size controls how many
    // distinct guest words funnel through each handler dispatch site,
    // which is what sets the interpreter's reuse level.
    constexpr unsigned bodyOps = 14;
    std::vector<uint32_t> guest;
    guest.push_back(enc(G_LI, 3, 0, 3));   // r3 = 3 (constant)
    guest.push_back(enc(G_LI, 10, 0, 1));  // r10 = 1 (constant)
    guest.push_back(enc(G_LI, 11, 0, 7));  // r11 = 7 (constant)
    guest.push_back(enc(G_LI, 2, 0, 6));   // r2 = trip count
    guest.push_back(enc(G_ADD, 1, 1, 10)); // r1++ (accumulator)
    const unsigned loop_start = static_cast<unsigned>(guest.size());
    guest.push_back(enc(G_ADD, 13, 13, 10)); // cursor++
    guest.push_back(enc(G_LD, 8, 13, 0));    // r8 = random byte
    guest.push_back(enc(G_AND, 6, 8, 10));   // r6 = coin flip
    {
        Rng grng(0x67656e31); // guest body generator
        const unsigned alu[4] = {G_ADD, G_SUB, G_AND, G_OR};
        // Destinations avoid the loop-control registers (r2 count,
        // r6 coin, r8 byte, r13 cursor).
        const unsigned dests[4] = {4, 7, 9, 14};
        for (unsigned i = 0; i < bodyOps; ++i) {
            uint64_t k = grng.below(100);
            unsigned rd = dests[grng.below(4)];
            if (k < 30) {
                // constant-fed op (reusable when re-interpreted)
                guest.push_back(enc(alu[grng.below(4)], rd,
                                    3, 11));
            } else if (k < 55) {
                // accumulator-fed op (values drift)
                unsigned rs = 12 + static_cast<unsigned>(
                    grng.below(2));
                guest.push_back(enc(alu[grng.below(4)], rd, rs,
                                    static_cast<unsigned>(
                                        4 + grng.below(6))));
            } else if (k < 70) {
                guest.push_back(enc(G_LI, rd, 0,
                                    static_cast<unsigned>(
                                        grng.below(16))));
            } else if (k < 85) {
                // guest load: constant or cursor addressing
                bool fixed = grng.chance(1, 2);
                guest.push_back(enc(G_LD, rd, fixed ? 5 : 13,
                                    static_cast<unsigned>(
                                        grng.below(16))));
            } else if (k < 93) {
                guest.push_back(enc(G_SHL, rd, 3, 10));
            } else {
                // advance an accumulator
                unsigned acc = 12 + static_cast<unsigned>(
                    grng.below(2));
                guest.push_back(enc(G_ADD, acc, acc, 10));
            }
        }
    }
    // mid-body coin refresh + retry, then the tail retry, countdown
    // and restart.
    {
        unsigned mid_start = static_cast<unsigned>(guest.size());
        guest.push_back(enc(G_ADD, 13, 13, 10)); // cursor++
        guest.push_back(enc(G_LD, 8, 13, 0));
        guest.push_back(enc(G_AND, 6, 8, 10));
        unsigned here = static_cast<unsigned>(guest.size());
        unsigned off = here - mid_start;
        guest.push_back(enc(G_BNZ, off / 16, 6, off % 16));
        here = static_cast<unsigned>(guest.size());
        off = here - loop_start;
        guest.push_back(enc(G_BNZ, off / 16, 6, off % 16));
        guest.push_back(enc(G_SUB, 2, 2, 10));
        here = static_cast<unsigned>(guest.size());
        off = here - loop_start;
        guest.push_back(enc(G_BNZ, off / 16, 2, off % 16));
        here = static_cast<unsigned>(guest.size());
        guest.push_back(enc(G_BNZ, here / 16, 10, here % 16));
    }

    a.dataLabel("guest_prog");
    a.words(guest);
    a.dataLabel("simregs");
    a.space(16 * 4);
    a.dataLabel("guestmem");
    for (unsigned i = 0; i < 1024; ++i)
        a.word(static_cast<uint32_t>(rng.below(4)));
    a.dataLabel("sim_globals"); // [0] mode word (0), [1] tick count
    a.space(4 * 4);
    a.dataLabel("op_histo"); // per-guest-pc profile (64 counters)
    a.space(64 * 4);
    a.dataLabel("tracebuf"); // rotating interpreter trace (256 slots)
    a.space(256 * 4);
    a.dataLabel("handlers");
    Addr handler_table = a.dataCursor();
    a.space(8 * 4);

    // --- interpreter ----------------------------------------------------
    // S0 guest text, S1 guest registers, S2 guest pc (word index),
    // S3 handler table, S4 instruction budget, S5 guest data memory,
    // S6 globals.
    a.la(S0, "guest_prog");
    a.la(S1, "simregs");
    a.li(S2, 0);
    a.la(S3, "handlers");
    a.li(S4, static_cast<int32_t>(guestInsts));
    a.la(S5, "guestmem");
    a.la(S6, "sim_globals");

    // Direct-threaded dispatch, emitted at the end of every handler:
    // budget check, guest fetch, opcode decode, per-opcode statistics,
    // and an indirect jump to the next handler. Each handler's copy is
    // its own dispatch site, giving the BTB per-site target locality.
    auto dispatch = [&]() {
        a.addi(S4, S4, -1);
        a.blez(S4, "interp_done");
        a.lw(T6, S6, 0);        // mode word: invariant load
        a.add(GP, GP, T6);
        a.sll(T7, S2, 2);
        a.add(T7, S0, T7);
        a.lw(T0, T7, 0);        // fetch guest word
        a.srl(T1, T0, 12);
        a.andi(T1, T1, 7);      // op (fields decode in the handlers)
        a.sll(T5, T1, 2);
        a.add(T5, S3, T5);
        a.lw(T5, T5, 0);        // handler address
        a.la(T6, "op_histo");   // per-guest-pc profile counters
        a.andi(T8, S2, 63);
        a.sll(T8, T8, 2);
        a.add(T6, T6, T8);
        a.lw(T8, T6, 0);
        a.addi(T8, T8, 1);
        a.sw(T8, T6, 0);
        a.jal("trace_log");     // per-instruction logging helper
        a.jr(T5);
    };

    dispatch(); // enter the guest
    a.label("interp_done");
    a.halt();

    // trace_log: record the guest word in a rotating trace buffer
    // (varying addresses), as simulators' per-instruction hooks do.
    a.label("trace_log");
    a.andi(T8, S4, 255);
    a.sll(T8, T8, 2);
    a.la(T6, "tracebuf");
    a.add(T6, T6, T8);
    a.sw(T0, T6, 0);
    a.jr(RA);

    // Handler bodies. Each reads guest regs rs/rt, writes rd,
    // advances the guest pc, and dispatches the next instruction.
    auto decode_fields = [&]() {
        a.srl(T2, T0, 8);
        a.andi(T2, T2, 15); // rd
        a.srl(T3, T0, 4);
        a.andi(T3, T3, 15); // rs
        a.andi(T4, T0, 15); // rt
    };
    auto load_vs_vt = [&]() {
        decode_fields();
        a.sll(T5, T3, 2);
        a.add(T5, S1, T5);
        a.lw(T5, T5, 0);    // vs
        a.sll(T6, T4, 2);
        a.add(T6, S1, T6);
        a.lw(T6, T6, 0);    // vt
    };
    auto store_rd_and_dispatch = [&]() {
        a.sll(T6, T2, 2);
        a.add(T6, S1, T6);
        a.sw(T5, T6, 0);
        a.addi(S2, S2, 1);
        dispatch();
    };

    a.label("h_add");
    load_vs_vt();
    a.add(T5, T5, T6);
    store_rd_and_dispatch();

    a.label("h_sub");
    load_vs_vt();
    a.sub(T5, T5, T6);
    store_rd_and_dispatch();

    a.label("h_and");
    load_vs_vt();
    a.and_(T5, T5, T6);
    store_rd_and_dispatch();

    a.label("h_or");
    load_vs_vt();
    a.or_(T5, T5, T6);
    store_rd_and_dispatch();

    a.label("h_shl");
    load_vs_vt();
    a.sllv(T5, T5, T6);
    store_rd_and_dispatch();

    a.label("h_li");
    decode_fields();
    a.move(T5, T4);         // immediate value from rt field
    store_rd_and_dispatch();

    a.label("h_bnz");
    decode_fields();
    a.sll(T5, T3, 2);
    a.add(T5, S1, T5);
    a.lw(T5, T5, 0);        // vs
    a.sll(T6, T2, 4);
    a.add(T6, T6, T4);      // offset = rd*16 + rt
    a.beq(T5, ZERO, "bnz_nt");
    a.sub(S2, S2, T6);
    dispatch();             // taken-path dispatch site
    a.label("bnz_nt");
    a.addi(S2, S2, 1);
    dispatch();             // fall-through dispatch site

    a.label("h_ld");        // rd = guestmem[(vs + rt) & 1023]
    decode_fields();
    a.sll(T5, T3, 2);
    a.add(T5, S1, T5);
    a.lw(T5, T5, 0);        // vs
    a.add(T5, T5, T4);
    a.andi(T5, T5, 1023);
    a.sll(T5, T5, 2);
    a.add(T5, S5, T5);
    a.lw(T5, T5, 0);
    store_rd_and_dispatch();

    // Fill the dispatch table with handler code addresses.
    const char *names[8] = {"h_add", "h_sub", "h_and", "h_or",
                            "h_shl", "h_li", "h_bnz", "h_ld"};
    for (unsigned i = 0; i < 8; ++i)
        a.patchWord(handler_table + 4 * i, a.labelPC(names[i]));

    Workload w;
    w.name = "m88ksim";
    w.input = "ctl.in (ref)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
