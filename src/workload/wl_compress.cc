/**
 * @file
 * "compress" stand-in: LZW-style compression with open-addressing
 * hash probing over a repetitive synthetic text.
 *
 * Character reproduced: the paper's outlier — hash addresses
 * recompute from heavily repeating (prefix, char) pairs, so *address*
 * reuse/prediction is very high (~65%/43%) while table contents keep
 * changing, keeping *result* reuse low (~17%/21%); probe loops give
 * a mid-pack branch prediction rate (~89%).
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

Workload
makeCompress(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x636d7072); // "cmpr"

    constexpr unsigned inputBytes = 16384;
    constexpr unsigned tableSize = 4096; // power of two
    const unsigned passes = scale.scaled(6);

    // Synthetic text: phrases from a tiny dictionary with occasional
    // random bytes — repetitive, as compress inputs are.
    const char *phrases[6] = {"the quick brown ", "fox jumps over ",
                              "a lazy dog and ", "compress works ",
                              "with hash tables ", "again and again "};
    {
        std::vector<uint8_t> text;
        text.reserve(inputBytes);
        while (text.size() < inputBytes) {
            const char *p = phrases[rng.below(6)];
            for (const char *c = p; *c && text.size() < inputBytes; ++c)
                text.push_back(static_cast<uint8_t>(*c));
            if (rng.chance(1, 50) && text.size() < inputBytes)
                text.push_back(
                    static_cast<uint8_t>(33 + rng.below(90)));
        }
        a.dataLabel("input");
        a.bytes(text);
    }
    a.dataLabel("htab"); // keys; 0 = empty
    a.space(tableSize * 4);
    a.dataLabel("ctab"); // codes
    a.space(tableSize * 4);
    a.dataLabel("cstats");
    a.space(4 * 4);
    a.word(4);              // [4]: hash shift config (invariant)
    a.space(3 * 4);

    // --- code ----------------------------------------------------------
    // S0 input, S1 htab, S2 ctab, S3 stats, S4 pass counter,
    // S5 input cursor, S6 prefix code, S7 next free code.
    a.la(S0, "input");
    a.la(S1, "htab");
    a.la(S2, "ctab");
    a.la(S3, "cstats");
    a.li(S4, static_cast<int32_t>(passes));
    a.li(S7, 256);

    a.label("pass_loop");
    a.move(S5, S0);
    a.li(T9, inputBytes);
    a.lbu(S6, S5, 0);       // prefix = first char
    a.addi(S5, S5, 1);
    a.addi(T9, T9, -1);

    a.label("char_loop");
    a.lbu(T0, S5, 0);       // c
    a.addi(S5, S5, 1);
    a.sw(T0, SP, -4);       // spill c (stack local: constant address)
    a.sw(S6, SP, -8);       // spill the prefix
    a.lw(T6, S3, 16);       // invariant: hash shift "config"
    a.sltiu(T7, T0, 110);   // char class flag (VP-only redundancy)
    a.add(T7, T7, T6);
    a.sw(T7, S3, 20);       // constant-address store
    a.andi(T8, T0, 0x60);   // char group (few values, VP-friendly)
    a.andi(T7, T9, 3);      // position class: operand in flight
    a.add(T8, T8, T7);
    a.sw(T8, S3, 24);
    a.bltz(T9, "cl_oob");   // bounds guard: never taken
    a.label("cl_oob_ret");
    a.blez(S7, "cl_badcode"); // code-space guard: never taken
    a.label("cl_badcode_ret");
    // key = (c << 16) | prefix ; h = (c << 4) ^ prefix, masked
    a.sll(T1, T0, 16);
    a.or_(T1, T1, S6);      // key
    a.sll(T2, T0, 4);
    a.xor_(T2, T2, S6);
    a.andi(T2, T2, tableSize - 1); // h

    a.label("probe_loop");
    a.sll(T3, T2, 2);
    a.add(T4, S1, T3);
    a.lw(T5, T4, 0);        // htab[h]
    a.beq(T5, T1, "probe_hit");
    a.beq(T5, ZERO, "probe_empty");
    a.addi(T2, T2, 1);      // linear reprobe
    a.andi(T2, T2, tableSize - 1);
    a.j("probe_loop");

    a.label("probe_hit");   // extend the prefix
    a.add(T6, S2, T3);
    a.lw(S6, T6, 0);        // prefix = ctab[h]
    a.jal("note_match");    // bookkeeping helper (call traffic)
    a.j("char_next");

    a.label("probe_empty"); // emit code, insert, restart prefix
    a.sw(T1, T4, 0);        // htab[h] = key
    a.add(T6, S2, T3);
    a.sw(S7, T6, 0);        // ctab[h] = nextcode
    a.addi(S7, S7, 1);
    a.lw(T7, S3, 0);
    a.lw(T8, SP, -8);       // reload the prefix (stack local)
    a.add(T7, T7, T8);      // "output" the prefix code
    a.sw(T7, S3, 0);
    a.lw(S6, SP, -4);       // prefix = c (reload the spill)

    // Reset the dictionary when the code space fills (as compress
    // does on ratio decay) — keeps table contents churning.
    a.li(T7, 4000);
    a.slt(T8, T7, S7);
    a.beq(T8, ZERO, "char_next");
    a.jal("clear_table");

    a.label("char_next");
    a.addi(T9, T9, -1);
    a.bgtz(T9, "char_loop");

    a.addi(S4, S4, -1);
    a.bgtz(S4, "pass_loop");
    a.halt();

    a.label("cl_oob");      // unreachable guards
    a.j("cl_oob_ret");
    a.label("cl_badcode");
    a.j("cl_badcode_ret");

    // note_match: bump the match statistic (constant-address RMW).
    a.label("note_match");
    a.lw(T8, S3, 12);
    a.addi(T8, T8, 1);
    a.sw(T8, S3, 12);
    a.jr(RA);

    // clear_table: zero htab and restart the code space.
    a.label("clear_table");
    a.move(T0, S1);
    a.li(T1, tableSize);
    a.label("clr_loop");
    a.sw(ZERO, T0, 0);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, -1);
    a.bgtz(T1, "clr_loop");
    a.li(S7, 256);
    a.lw(T2, S3, 4);
    a.addi(T2, T2, 1);
    a.sw(T2, S3, 4);        // stats[1]: resets
    a.jr(RA);

    Workload w;
    w.name = "compress";
    w.input = "bigtest.in (ref)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
