/**
 * @file
 * "go" stand-in: board evaluation + shallow move search.
 *
 * Character reproduced from the original: heavily data-dependent
 * branching on irregular board contents (the paper's lowest branch
 * prediction rate, ~76%), moderate value redundancy from repeated
 * positional evaluation over a mostly-stable board, call/return
 * traffic with stack frames (compiled-code-like constant-address
 * memory operations), and almost no floating point.
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

Workload
makeGo(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x676f5f31); // "go_1"

    constexpr unsigned boardDim = 19;
    constexpr unsigned boardCells = boardDim * boardDim; // 361
    constexpr unsigned numMoves = 64;
    constexpr unsigned numMutations = 4096;
    const unsigned games = scale.scaled(150);

    // --- data ---------------------------------------------------------
    a.dataLabel("board");
    for (unsigned i = 0; i < boardCells; ++i)
        a.word(static_cast<uint32_t>(rng.below(8)));
    a.dataLabel("weights");
    for (unsigned i = 0; i < 8; ++i)
        a.word(static_cast<uint32_t>(1 + rng.below(13)));
    a.dataLabel("moves");
    for (unsigned i = 0; i < numMoves; ++i)
        a.word(static_cast<uint32_t>(rng.below(1u << 16)));
    // Mutation schedule: (cell, value) pairs consumed round-robin so
    // the board drifts between games (limits branch memorisation).
    a.dataLabel("mutations");
    for (unsigned i = 0; i < numMutations; ++i) {
        a.word(static_cast<uint32_t>(rng.below(boardCells)));
        a.word(static_cast<uint32_t>(rng.below(8)));
    }
    a.dataLabel("go_globals"); // [0] score total, [1] pairs, [2] depth
    a.space(8 * 4);

    // --- code ----------------------------------------------------------
    // S0 board, S1 weights, S2 moves, S3 mutation cursor, S4 games,
    // S5 score, S6 pairs, S7 minimax value.
    a.la(S0, "board");
    a.la(S1, "weights");
    a.la(S2, "moves");
    a.la(S3, "mutations");
    a.li(S4, static_cast<int32_t>(games));

    a.label("game_loop");
    a.li(S5, 0);
    a.li(S6, 0);

    // ---- board scan: data-dependent branching on cell contents ----
    a.addi(T8, S0, 4);        // cell pointer (skip the edge cell)
    a.li(T9, boardCells - 21);
    a.label("scan_loop");
    a.lw(A0, T8, 0);          // v = board[p]
    a.beq(A0, ZERO, "scan_next");      // empty cell (1/8)
    a.lw(A1, T8, 4);          // right neighbour
    a.lw(A2, T8, -4);         // left neighbour
    a.lw(A3, T8, 19 * 4);     // below neighbour
    a.jal("eval_cell");       // V0 = cell score
    a.add(S5, S5, V0);
    a.label("scan_next");
    a.addi(T8, T8, 4);
    a.addi(T9, T9, -1);
    a.bgtz(T9, "scan_loop");

    // ---- shallow minimax over the move list ----
    a.li(S7, 0);
    a.move(T8, S2);
    a.li(T9, numMoves);
    a.label("move_loop");
    a.lw(T2, T8, 0);          // m
    a.andi(T3, T2, 1);
    a.beq(T3, ZERO, "minimize");       // ~50/50 on move bits
    a.slt(T4, S7, T2);
    a.beq(T4, ZERO, "move_next");      // data dependent
    a.move(S7, T2);
    a.j("move_next");
    a.label("minimize");
    a.slt(T4, T2, S7);
    a.beq(T4, ZERO, "move_next");      // data dependent
    a.srl(T5, T2, 1);
    a.move(S7, T5);
    a.label("move_next");
    a.addi(T8, T8, 4);
    a.addi(T9, T9, -1);
    a.bgtz(T9, "move_loop");

    // ---- record totals and mutate part of the board ----
    a.la(T0, "go_globals");
    a.lw(T1, T0, 0);
    a.add(T1, T1, S5);
    a.sw(T1, T0, 0);          // constant-address RMW
    a.lw(T1, T0, 4);
    a.add(T1, T1, S6);
    a.sw(T1, T0, 4);
    a.lw(T1, T0, 8);
    a.add(T1, T1, S7);
    a.sw(T1, T0, 8);

    a.li(T9, 96);             // mutations per game
    a.label("mutate_loop");
    a.lw(T2, S3, 0);
    a.lw(T3, S3, 4);
    a.addi(S3, S3, 8);
    a.sll(T2, T2, 2);
    a.add(T2, S0, T2);
    a.sw(T3, T2, 0);
    a.addi(T9, T9, -1);
    a.bgtz(T9, "mutate_loop");
    a.la(T4, "mutations");
    a.li(T5, static_cast<int32_t>(numMutations * 8 - 96 * 8));
    a.add(T5, T4, T5);
    a.slt(T6, T5, S3);
    a.beq(T6, ZERO, "no_wrap");
    a.move(S3, T4);
    a.label("no_wrap");

    a.addi(S4, S4, -1);
    a.bgtz(S4, "game_loop");
    a.halt();

    // ---- eval_cell(A0 = v != 0, A1 = neighbour) -> V0 ----
    // A leaf with a real stack frame: the saves/reloads are the
    // compiled-code constant-address traffic go's evaluator has.
    a.label("eval_cell");
    a.addi(SP, SP, -8);
    a.sw(RA, SP, 0);
    a.sll(T0, A0, 2);
    a.add(T0, S1, T0);
    a.lw(V0, T0, 0);          // w = weights[v] (stable values)
    a.andi(T1, A0, 1);
    a.beq(T1, ZERO, "ec_even");        // ~50/50 on cell value
    a.sll(T2, A0, 1);
    a.add(V0, V0, T2);        // odd stones score extra
    a.label("ec_even");
    a.andi(T5, A1, 2);
    a.beq(T5, ZERO, "ec_lib");         // ~50/50 on neighbour value
    a.addi(V0, V0, 1);
    a.label("ec_lib");
    a.add(T6, A2, A3);        // neighbour pressure
    a.slt(T7, T6, A0);
    a.beq(T7, ZERO, "ec_safe");        // data dependent
    a.addi(V0, V0, 2);
    a.label("ec_safe");
    a.bne(A1, A0, "ec_done");          // pair bonus (data dependent)
    a.addi(S6, S6, 1);
    a.addi(V0, V0, 3);
    a.label("ec_done");
    a.lw(RA, SP, 0);
    a.addi(SP, SP, 8);
    a.jr(RA);

    Workload w;
    w.name = "go";
    w.input = "null.in (ref)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
