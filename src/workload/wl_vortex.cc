/**
 * @file
 * "vortex" stand-in: an in-memory object database with hashed record
 * chains and a call-heavy operation mix.
 *
 * Character reproduced: very regular control (the paper's highest
 * branch prediction rate, ~98%), perfect return prediction from deep
 * call/return traffic, and moderate redundancy from skewed key reuse
 * (repeated lookups re-traverse identical chains).
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

Workload
makeVortex(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x766f7278); // "vorx"

    constexpr unsigned numRecords = 4096;
    constexpr unsigned recWords = 8; // key type f1 f2 next pad pad pad
    constexpr unsigned numBuckets = 1024;
    constexpr unsigned numOps = 2048;
    const unsigned passes = scale.scaled(9);

    // Build the database: records chained into hash buckets by key.
    std::vector<uint32_t> keys(numRecords);
    std::vector<uint32_t> recs(numRecords * recWords, 0);
    std::vector<uint32_t> heads(numBuckets, 0); // record index + 1
    for (unsigned i = 0; i < numRecords; ++i) {
        uint32_t key = 1 + static_cast<uint32_t>(rng.below(1u << 20));
        keys[i] = key;
        unsigned b = key & (numBuckets - 1);
        recs[i * recWords + 0] = key;
        recs[i * recWords + 1] = rng.chance(31, 32) ? 1 : 2;
        recs[i * recWords + 2] = static_cast<uint32_t>(rng.below(1000));
        recs[i * recWords + 3] = static_cast<uint32_t>(rng.below(1000));
        recs[i * recWords + 4] = heads[b]; // next (index+1, 0 = null)
        heads[b] = i + 1;
    }

    // Hot set: keys whose records sit at a fixed shallow depth (1)
    // in their chains, so hot traversals have a deterministic branch
    // pattern (vortex's near-perfect prediction rate).
    std::vector<uint32_t> hotKeys;
    for (unsigned b = 0; b < numBuckets && hotKeys.size() < 48; ++b) {
        uint32_t head = heads[b];
        if (!head)
            continue;
        uint32_t second = recs[(head - 1) * recWords + 4];
        if (second)
            hotKeys.push_back(recs[(second - 1) * recWords + 0]);
    }

    // Operation schedule: skewed key popularity (80% from a hot set).
    a.dataLabel("ops");
    for (unsigned i = 0; i < numOps; ++i) {
        bool hot = rng.chance(9, 10);
        uint32_t key;
        if (hot && rng.chance(4, 5))
            key = hotKeys[rng.below(4)];        // top-4 dominate
        else if (hot)
            key = hotKeys[rng.below(hotKeys.size())];
        else
            key = keys[rng.below(numRecords)];
        uint32_t opcode = (i % 32) == 0 ? 1 : 0; // rare updates
        a.word(opcode);
        a.word(key);
    }
    a.dataLabel("records");
    a.words(recs);
    a.dataLabel("heads");
    a.words(heads);
    a.dataLabel("db_stats");
    a.space(8 * 4);

    // --- code ----------------------------------------------------------
    // S0 ops base, S1 records, S2 heads, S3 stats, S4 pass counter,
    // S5 op cursor, S6 ops remaining.
    a.la(S0, "ops");
    a.la(S1, "records");
    a.la(S2, "heads");
    a.la(S3, "db_stats");
    a.li(S4, static_cast<int32_t>(passes));

    a.label("pass_loop");
    a.move(S5, S0);
    a.li(S6, numOps);

    a.label("op_loop");
    a.lw(A1, S5, 0);        // opcode
    a.lw(A0, S5, 4);        // key
    a.addi(S5, S5, 8);
    a.jal("db_lookup");     // V0 = record pointer or 0
    a.beq(V0, ZERO, "op_miss");
    a.move(A0, V0);
    a.jal("db_validate");   // V0 = checksum
    a.add(FP, FP, V0);      // checksum total in a register
    a.bne(A1, ZERO, "do_update");
    a.j("op_next");
    a.label("do_update");
    a.move(A0, V0);         // (checksum unused as address; reload rec)
    a.jal("db_touch");
    a.j("op_next");
    a.label("op_miss");
    a.lw(T0, S3, 4);
    a.addi(T0, T0, 1);
    a.sw(T0, S3, 4);        // stats[1]: misses
    a.label("op_next");
    a.addi(S6, S6, -1);
    a.bgtz(S6, "op_loop");

    a.addi(S4, S4, -1);
    a.bgtz(S4, "pass_loop");
    a.halt();

    // --- subroutines ------------------------------------------------
    // db_lookup(A0=key) -> V0 = record byte pointer, or 0. Also
    // leaves the record pointer in A2 for db_touch.
    a.label("db_lookup");
    a.addi(SP, SP, -8);
    a.sw(RA, SP, 0);
    a.andi(T0, A0, numBuckets - 1);
    a.sll(T0, T0, 2);
    a.add(T0, S2, T0);
    a.lw(T1, T0, 0);        // head: index + 1
    a.label("lk_loop");
    a.beq(T1, ZERO, "lk_miss");
    a.addi(T1, T1, -1);
    a.sll(T2, T1, 5);       // recWords * 4 = 32 bytes
    a.add(T2, S1, T2);      // record pointer
    a.lw(T3, T2, 0);        // record key
    a.sltu(T4, T3, A0);     // comparison flag (VP captures, IR not)
    a.beq(T3, A0, "lk_hit");
    a.lw(T1, T2, 16);       // next (index + 1)
    a.j("lk_loop");
    a.label("lk_hit");
    a.move(V0, T2);
    a.move(A2, T2);
    a.lw(RA, SP, 0);
    a.addi(SP, SP, 8);
    a.jr(RA);
    a.label("lk_miss");
    a.li(V0, 0);
    a.lw(RA, SP, 0);
    a.addi(SP, SP, 8);
    a.jr(RA);

    // db_validate(A0=record ptr) -> V0 checksum; type-dependent path.
    a.label("db_validate");
    a.lw(T0, A0, 4);        // type (90% are 1: predictable)
    a.lw(T1, A0, 8);        // f1
    a.lw(T2, A0, 12);       // f2
    a.li(T3, 1);
    a.bne(T0, T3, "val_rare");
    a.add(V0, T1, T2);
    a.sltu(T4, T1, T2);     // flag on varying data: VP-only redundancy
    a.add(GP, GP, T4);
    a.jr(RA);
    a.label("val_rare");
    a.sub(V0, T1, T2);
    a.sll(V0, V0, 1);
    a.jr(RA);

    // db_touch: bump f1 of the record found by the last lookup (A2).
    a.label("db_touch");
    a.lw(T0, A2, 8);
    a.addi(T0, T0, 1);
    a.sw(T0, A2, 8);
    a.lw(T1, S3, 8);
    a.addi(T1, T1, 1);
    a.sw(T1, S3, 8);        // stats[2]: updates
    a.jr(RA);

    Workload w;
    w.name = "vortex";
    w.input = "vortex.in (train)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
