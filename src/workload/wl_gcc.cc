/**
 * @file
 * "gcc" stand-in: repeated compiler-like passes (constant folding,
 * liveness accumulation) over an IR node array.
 *
 * Character reproduced: a skewed operator distribution driving
 * moderately predictable compare-chains (~92% bpred), re-folding of
 * mostly-unchanged nodes across passes (moderate redundancy), and a
 * slow mutation stream that keeps a fraction of the work fresh.
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

Workload
makeGcc(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x67636331); // "gcc1"

    constexpr unsigned numNodes = 1024;
    constexpr unsigned nodeWords = 4; // op a1 a2 flags
    constexpr unsigned numMutations = 4096;
    const unsigned passes = scale.scaled(52);

    // Skewed op distribution: 0 (add) dominates, like real IR.
    auto pick_op = [&rng]() -> uint32_t {
        uint64_t r = rng.below(100);
        if (r < 70)
            return 0; // add dominates, as in real IR
        if (r < 85)
            return 1; // sub
        if (r < 92)
            return 2; // and
        if (r < 96)
            return 3; // or
        if (r < 98)
            return 4; // shift
        return 5;     // xor
    };

    a.dataLabel("nodes");
    for (unsigned i = 0; i < numNodes; ++i) {
        a.word(pick_op());
        a.word(static_cast<uint32_t>(rng.below(4096)));
        a.word(static_cast<uint32_t>(rng.below(4096)));
        a.word(0);
    }
    a.dataLabel("folded");
    a.space(numNodes * 4);
    a.dataLabel("gcc_mutations"); // (node, delta) pairs
    for (unsigned i = 0; i < numMutations; ++i) {
        a.word(static_cast<uint32_t>(rng.below(numNodes)));
        a.word(static_cast<uint32_t>(1 + rng.below(7)));
    }
    a.dataLabel("gcc_stats");
    a.space(8 * 4);
    a.dataLabel("fold_table");
    Addr fold_table = a.dataCursor();
    a.space(8 * 4);

    // --- code ----------------------------------------------------------
    // S0 nodes, S1 folded, S2 mutation cursor, S3 stats,
    // S4 pass counter, S5 node cursor, S6 node counter, S7 liveness.
    a.la(S0, "nodes");
    a.la(S1, "folded");
    a.la(S2, "gcc_mutations");
    a.la(S3, "gcc_stats");
    a.li(S4, static_cast<int32_t>(passes));

    a.label("pass_loop");

    // ---- pass 1: constant folding via a compare chain ----
    a.move(S5, S0);
    a.move(T9, S1);
    a.li(S6, numNodes);
    a.label("fold_loop");
    a.jal("fold_node");     // T3 = folded value of node at S5
    a.j("fold_store_ret");
    a.label("fold_node");
    a.addi(SP, SP, -8);
    a.sw(RA, SP, 0);        // frame traffic: constant addresses
    a.lw(T0, S5, 0);        // op
    a.lw(T1, S5, 4);        // a1
    a.lw(T2, S5, 8);        // a2
    a.bltz(S6, "node_dirty");          // guard: never taken
    a.label("node_clean");
    a.slt(T7, T1, T2);      // comparison flag on varying operands
    a.add(GP, GP, T7);      // (VP captures it, IR cannot)
    // Operator dispatch through a jump table, as compiled switches
    // are; the indirect jump mispredicts in the BTB, not the gshare.
    a.la(T4, "fold_table");
    a.sll(T5, T0, 2);
    a.add(T4, T4, T5);
    a.lw(T4, T4, 0);
    a.jalr(RA, T4);
    a.label("fold_store");
    a.lw(RA, SP, 0);
    a.addi(SP, SP, 8);
    a.jr(RA);
    a.label("node_dirty");  // unreachable
    a.j("node_clean");

    a.label("f_add");
    a.add(T3, T1, T2);
    a.jr(RA);
    a.label("f_sub");
    a.sub(T3, T1, T2);
    a.jr(RA);
    a.label("f_and");
    a.and_(T3, T1, T2);
    a.jr(RA);
    a.label("f_or");
    a.or_(T3, T1, T2);
    a.jr(RA);
    a.label("f_shift");
    a.andi(T5, T2, 15);
    a.sllv(T3, T1, T5);
    a.jr(RA);
    a.label("f_xor");
    a.xor_(T3, T1, T2);
    a.jr(RA);
    a.label("fold_store_ret");
    a.xor_(T5, T3, S6);
    a.srl(T5, T5, 3);
    a.add(FP, FP, T5);      // varying checksum (dilutes redundancy)
    a.sll(T6, T3, 2);
    a.sub(T6, T6, S6);
    a.xor_(FP, FP, T6);     // second varying mix
    a.sw(T3, T9, 0);
    a.addi(S5, S5, nodeWords * 4);
    a.addi(T9, T9, 4);
    a.addi(S6, S6, -1);
    a.bgtz(S6, "fold_loop");

    // ---- pass 2: liveness-like bit accumulation over results ----
    a.li(S7, 0);
    a.move(T9, S1);
    a.li(S6, numNodes);
    a.li(T8, 0);            // popcount-ish tally
    a.label("live_loop");
    a.lw(T0, T9, 0);
    a.andi(T1, T0, 3);
    a.sll(S7, S7, 1);
    a.or_(S7, S7, T1);
    a.andi(S7, S7, 0xffff);
    a.bne(T1, ZERO, "live_next"); // biased: taken ~75% of the time
    a.addi(T8, T8, 1);
    // Normalisation mini-loop: fixed trip count, fully predictable.
    a.li(T2, 2);
    a.label("norm_loop");
    a.srl(T0, T0, 1);
    a.addi(T2, T2, -1);
    a.bgtz(T2, "norm_loop");
    a.add(T8, T8, T0);
    a.label("live_next");
    a.addi(T9, T9, 4);
    a.addi(S6, S6, -1);
    a.bgtz(S6, "live_loop");
    a.lw(T0, S3, 0);
    a.add(T0, T0, T8);
    a.sw(T0, S3, 0);
    a.lw(T0, S3, 4);
    a.add(T0, T0, S7);
    a.sw(T0, S3, 4);

    // ---- mutate a handful of nodes so later passes see fresh data ----
    a.li(T7, 8);
    a.label("gm_loop");
    a.lw(T0, S2, 0);        // node index
    a.lw(T1, S2, 4);        // delta
    a.addi(S2, S2, 8);
    a.sll(T0, T0, 4);       // nodeWords * 4
    a.add(T0, S0, T0);
    a.lw(T2, T0, 8);        // a2
    a.add(T2, T2, T1);
    a.andi(T2, T2, 4095);
    a.sw(T2, T0, 8);
    a.addi(T7, T7, -1);
    a.bgtz(T7, "gm_loop");
    // Wrap the mutation cursor.
    a.la(T3, "gcc_mutations");
    a.li(T4, static_cast<int32_t>(numMutations * 8 - 64));
    a.add(T4, T3, T4);
    a.slt(T5, T4, S2);
    a.beq(T5, ZERO, "gm_nowrap");
    a.move(S2, T3);
    a.label("gm_nowrap");

    a.addi(S4, S4, -1);
    a.bgtz(S4, "pass_loop");
    a.halt();

    const char *fnames[6] = {"f_add", "f_sub", "f_and",
                             "f_or", "f_shift", "f_xor"};
    for (unsigned i = 0; i < 6; ++i)
        a.patchWord(fold_table + 4 * i, a.labelPC(fnames[i]));
    a.patchWord(fold_table + 4 * 6, a.labelPC("f_xor"));
    a.patchWord(fold_table + 4 * 7, a.labelPC("f_xor"));

    Workload w;
    w.name = "gcc";
    w.input = "reload.i (ref)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
