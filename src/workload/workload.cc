#include "workload/workload.hh"

#include "common/logging.hh"
#include "fuzz/generator.hh"

namespace vpir
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "go", "m88ksim", "ijpeg", "perl", "vortex", "gcc", "compress",
    };
    return names;
}

Workload
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    if (name == "go")
        return makeGo(scale);
    if (name == "m88ksim")
        return makeM88ksim(scale);
    if (name == "ijpeg")
        return makeIjpeg(scale);
    if (name == "perl")
        return makePerl(scale);
    if (name == "vortex")
        return makeVortex(scale);
    if (name == "gcc")
        return makeGcc(scale);
    if (name == "compress")
        return makeCompress(scale);
    if (fuzz::isFuzzWorkloadName(name)) {
        // Generated fuzz programs ride the whole sweep stack
        // (isolation, deadlines, result cache) as ordinary workload
        // names; the seed in the name fully determines the program.
        uint64_t seed = fuzz::fuzzSeedFromName(name);
        fuzz::GenOptions opt;
        opt.outerIters = scale.scaled(opt.outerIters);
        Workload w;
        w.name = name;
        w.input = "generated (rev " +
                  std::to_string(fuzz::GENERATOR_REVISION) + ")";
        w.program = fuzz::generateProgram(seed, opt);
        return w;
    }
    fatal("unknown workload: " + name);
}

} // namespace vpir
