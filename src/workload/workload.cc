#include "workload/workload.hh"

#include "common/logging.hh"

namespace vpir
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "go", "m88ksim", "ijpeg", "perl", "vortex", "gcc", "compress",
    };
    return names;
}

Workload
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    if (name == "go")
        return makeGo(scale);
    if (name == "m88ksim")
        return makeM88ksim(scale);
    if (name == "ijpeg")
        return makeIjpeg(scale);
    if (name == "perl")
        return makePerl(scale);
    if (name == "vortex")
        return makeVortex(scale);
    if (name == "gcc")
        return makeGcc(scale);
    if (name == "compress")
        return makeCompress(scale);
    fatal("unknown workload: " + name);
}

} // namespace vpir
