/**
 * @file
 * "ijpeg" stand-in: blocked 8x8 separable transform + quantisation
 * over a synthetic image.
 *
 * Character reproduced: loop-dominated integer DCT-like arithmetic on
 * ever-changing pixel data — the paper's *lowest* redundancy benchmark
 * (~11% result reuse) with high loop predictability diluted by
 * data-dependent quantisation branches (~89% bpred), plus a healthy
 * integer multiply mix.
 */

#include "workload/workload.hh"

#include "common/rng.hh"
#include "workload/wregs.hh"

namespace vpir
{

using namespace wreg;

Workload
makeIjpeg(const WorkloadScale &scale)
{
    Assembler a;
    Rng rng(0x6a706567); // "jpeg"

    constexpr unsigned dim = 64;               // image is dim x dim
    constexpr unsigned blocks = (dim / 8) * (dim / 8);
    const unsigned passes = scale.scaled(28);

    // --- data ---------------------------------------------------------
    a.dataLabel("image");
    for (unsigned i = 0; i < dim * dim; ++i)
        a.word(static_cast<uint32_t>(rng.below(256)));
    a.dataLabel("coef");
    for (unsigned i = 0; i < 8; ++i)
        a.word(static_cast<uint32_t>(3 + rng.below(13)));
    a.dataLabel("quant");
    for (unsigned i = 0; i < 8; ++i)
        a.word(static_cast<uint32_t>(1 + rng.below(4)));
    a.dataLabel("qscale");
    a.word(3);
    a.dataLabel("out");
    a.space(dim * dim * 4);
    a.dataLabel("histogram");
    a.space(16 * 4);

    // --- code ----------------------------------------------------------
    // S0 image, S1 coef, S2 quant, S3 out, S4 pass counter,
    // S5 block counter, S6 block base offset, S7 histogram.
    a.la(S0, "image");
    a.la(S1, "coef");
    a.la(S2, "quant");
    a.la(S3, "out");
    a.la(S7, "histogram");
    a.li(S4, static_cast<int32_t>(passes));

    a.label("pass_loop");
    a.li(S5, blocks);
    a.li(S6, 0); // byte offset of current block row start

    a.label("block_loop");
    // ---- per block: 8 rows, each row a coef-weighted reduction ----
    a.li(T8, 8);            // row counter
    a.move(T9, S6);         // row offset
    a.label("row_loop");
    a.addi(SP, SP, -16);
    a.sw(T9, SP, 0);        // spill the row offset (frame traffic)
    a.sw(T8, SP, 4);        // spill the row counter
    a.li(T0, 0);            // acc
    a.li(T1, 8);            // col counter
    a.move(T2, T9);         // element offset
    a.move(T3, S1);         // coef pointer
    a.label("col_loop");
    a.add(T4, S0, T2);
    a.lw(T4, T4, 0);        // pixel
    a.lw(T5, T3, 0);        // coefficient (repeats: reusable load)
    a.mult(T4, T5);
    a.mflo(T4);
    a.add(T0, T0, T4);      // acc += pixel * coef
    a.addi(T2, T2, 4);
    a.addi(T3, T3, 4);
    a.addi(T1, T1, -1);
    a.bgtz(T1, "col_loop");

    // ---- quantise the row sum via a helper call ----
    a.move(A0, T0);
    a.jal("quantize");      // V0 = quantised value
    a.move(T0, V0);
    a.lw(T9, SP, 0);        // reload the row offset
    a.lw(T8, SP, 4);        // reload the row counter
    a.addi(SP, SP, 16);
    a.andi(T5, T0, 15);
    a.sll(T5, T5, 2);
    a.add(T5, S7, T5);
    a.lw(T6, T5, 0);        // histogram bin
    a.addi(T6, T6, 1);
    a.sw(T6, T5, 0);
    a.add(T4, S3, T9);
    a.sw(T0, T4, 0);        // out[row base] = quantised sum

    a.addi(T9, T9, dim * 4); // next row of the block
    a.addi(T8, T8, -1);
    a.bgtz(T8, "row_loop");

    // ---- feed a little of the output back into the image so pixel
    // values drift between passes (keeps redundancy low) ----
    a.add(T0, S3, S6);
    a.lw(T1, T0, 0);
    a.andi(T1, T1, 255);
    a.add(T2, S0, S6);
    a.sw(T1, T2, 0);

    // ---- advance to the next 8x8 block ----
    a.addi(S6, S6, 8 * 4);
    // When the block start crosses a row of blocks, jump 7 rows down.
    a.li(T0, dim * 4);
    a.divu(S6, T0);
    a.mfhi(T1);             // S6 % row bytes
    a.bne(T1, ZERO, "no_rowskip");
    a.addi(S6, S6, dim * 4 * 7);
    a.label("no_rowskip");
    a.addi(S5, S5, -1);
    a.bgtz(S5, "block_loop");

    a.addi(S4, S4, -1);
    a.bgtz(S4, "pass_loop");
    a.halt();

    // quantize(A0 = row sum) -> V0: data-dependent rounding and
    // shifting, like ijpeg's quantisation helpers.
    a.label("quantize");
    a.andi(T7, A0, 3);      // acc class flag (VP-friendly small range)
    a.add(GP, GP, T7);
    a.andi(T7, A0, 12);
    a.beq(T7, ZERO, "no_round");       // biased ~75% taken
    a.addi(A0, A0, 2);
    a.label("no_round");
    a.li(T6, 3);
    a.andi(T7, A0, 7);      // low bits of acc: irregular
    a.slt(T5, T6, T7);
    a.beq(T5, ZERO, "quant_small");
    a.sra(A0, A0, 2);       // large path
    a.j("quant_done");
    a.label("quant_small");
    a.sra(A0, A0, 1);
    a.label("quant_done");
    a.la(T6, "qscale");
    a.lw(T6, T6, 0);        // invariant scale (reusable load)
    a.add(V0, A0, T6);
    a.jr(RA);

    Workload w;
    w.name = "ijpeg";
    w.input = "vigo.ppm (train)";
    w.program = a.finish();
    return w;
}

} // namespace vpir
