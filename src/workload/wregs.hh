/**
 * @file
 * MIPS-flavoured register aliases used by the workload kernels.
 */

#ifndef VPIR_WORKLOAD_WREGS_HH
#define VPIR_WORKLOAD_WREGS_HH

#include "isa/regs.hh"

namespace vpir
{
namespace wreg
{

constexpr RegId ZERO = intReg(0);
constexpr RegId V0 = intReg(2);
constexpr RegId V1 = intReg(3);
constexpr RegId A0 = intReg(4);
constexpr RegId A1 = intReg(5);
constexpr RegId A2 = intReg(6);
constexpr RegId A3 = intReg(7);
constexpr RegId T0 = intReg(8);
constexpr RegId T1 = intReg(9);
constexpr RegId T2 = intReg(10);
constexpr RegId T3 = intReg(11);
constexpr RegId T4 = intReg(12);
constexpr RegId T5 = intReg(13);
constexpr RegId T6 = intReg(14);
constexpr RegId T7 = intReg(15);
constexpr RegId S0 = intReg(16);
constexpr RegId S1 = intReg(17);
constexpr RegId S2 = intReg(18);
constexpr RegId S3 = intReg(19);
constexpr RegId S4 = intReg(20);
constexpr RegId S5 = intReg(21);
constexpr RegId S6 = intReg(22);
constexpr RegId S7 = intReg(23);
constexpr RegId T8 = intReg(24);
constexpr RegId T9 = intReg(25);
constexpr RegId GP = intReg(28);
constexpr RegId SP = intReg(29);
constexpr RegId FP = intReg(30);
constexpr RegId RA = intReg(31);

} // namespace wreg
} // namespace vpir

#endif // VPIR_WORKLOAD_WREGS_HH
