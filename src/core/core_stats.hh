/**
 * @file
 * Raw event counters collected by the core, covering every quantity
 * the paper's tables and figures report. Benches derive percentages
 * and normalised series from these.
 */

#ifndef VPIR_CORE_CORE_STATS_HH
#define VPIR_CORE_CORE_STATS_HH

#include <cstdint>

#include "stats/stats.hh"

namespace vpir
{

/** Everything a single simulation run counts. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t committedInsts = 0;
    uint64_t committedMemOps = 0;
    uint64_t committedLoads = 0;
    uint64_t committedStores = 0;

    /** Distinct dynamic instructions that occupied an FU at least
     *  once, wrong path included (Table 5 "Inst Executed"). */
    uint64_t executedInsts = 0;
    /** Executed instructions later squashed by a control squash. */
    uint64_t squashedExecuted = 0;
    /** Squashed-then-reused work recovered through the RB (Table 5). */
    uint64_t squashedRecovered = 0;

    /** Control squash events and their classification (Table 4). */
    uint64_t branchSquashes = 0;
    uint64_t spuriousSquashes = 0; //!< due to value-speculative operands

    /** Conditional branch direction accuracy (Table 2). */
    uint64_t condBranches = 0;
    uint64_t condMispredicted = 0;
    /** Return target accuracy (Table 2). */
    uint64_t returns = 0;
    uint64_t returnMispredicted = 0;

    /** Branch resolution latency, decode -> final action (Figure 4),
     *  accumulated over committed resolvable control instructions. */
    uint64_t branchResLatSum = 0;
    uint64_t branchResCount = 0;

    /** Resource contention (Figure 5): execution resources denied to
     *  ready instructions over total requests. */
    uint64_t resourceRequests = 0;
    uint64_t resourceDenied = 0;

    /** Committed instructions by number of executions, buckets
     *  1,2,3,>=4 (Table 6); non-executing (reused) insts excluded. */
    uint64_t execCountHist[4] = {0, 0, 0, 0};

    /** IR rates (Table 3), counted at commit. */
    uint64_t reusedResults = 0;
    uint64_t reusedAddrs = 0;
    /** Reused control instructions (resolve at decode). */
    uint64_t reusedControl = 0;
    /** Committed resolvable control instructions. */
    uint64_t resolvableControl = 0;

    /** VP rates (Table 3), counted at commit. */
    uint64_t vpResultPredicted = 0;
    uint64_t vpResultCorrect = 0;
    uint64_t vpResultWrong = 0;
    uint64_t vpAddrPredicted = 0;
    uint64_t vpAddrCorrect = 0;
    uint64_t vpAddrWrong = 0;

    /** Value misprediction recovery events (any re-execution cause). */
    uint64_t valueMispredictEvents = 0;

    /** Cache behaviour. */
    uint64_t icacheAccesses = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheAccesses = 0;
    uint64_t dcacheMisses = 0;

    /** Hardening: retired instructions cross-validated by the
     *  lockstep checker (0 when the checker is off). */
    uint64_t checkedInsts = 0;

    /** Hardening: injected faults by site (see FaultPlan). */
    uint64_t faultsVptValue = 0;
    uint64_t faultsVptConf = 0;
    uint64_t faultsRbOperand = 0;
    uint64_t faultsRbResult = 0;
    uint64_t faultsRbLink = 0;
    uint64_t faultsRbDropInv = 0;

    bool haltedCleanly = false;

    double ipc() const
    {
        return cycles ? static_cast<double>(committedInsts) /
                        static_cast<double>(cycles)
                      : 0.0;
    }

    /** Export every counter into a named StatSet. */
    void exportTo(StatSet &out) const;
};

} // namespace vpir

#endif // VPIR_CORE_CORE_STATS_HH
