/**
 * @file
 * Functional unit pool with Table 1 latencies: units are busy for
 * their issue latency (non-pipelined units like dividers block for
 * nearly their whole operation latency).
 */

#ifndef VPIR_CORE_FU_POOL_HH
#define VPIR_CORE_FU_POOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/ckpt_io.hh"
#include "isa/decode.hh"

namespace vpir
{

/** All functional units of the machine. */
class FuPool
{
  public:
    FuPool()
    {
        for (unsigned t = 0; t < static_cast<unsigned>(FuType::NUM_TYPES);
             ++t) {
            busyUntil[t].assign(fuPoolSize(static_cast<FuType>(t)), 0);
        }
    }

    /** True when a unit of this type is free at @p now. */
    bool
    available(FuType t, uint64_t now) const
    {
        if (t == FuType::None)
            return true;
        for (uint64_t b : busyUntil[static_cast<unsigned>(t)]) {
            if (b <= now)
                return true;
        }
        return false;
    }

    /**
     * Occupy a unit from @p now for @p issue_lat cycles.
     * @return false when no unit is free.
     */
    bool
    acquire(FuType t, uint64_t now, unsigned issue_lat)
    {
        if (t == FuType::None)
            return true;
        for (uint64_t &b : busyUntil[static_cast<unsigned>(t)]) {
            if (b <= now) {
                b = now + issue_lat;
                return true;
            }
        }
        return false;
    }

    /** Free all units (used after a full pipeline flush in tests). */
    void
    reset()
    {
        for (auto &v : busyUntil) {
            for (uint64_t &b : v)
                b = 0;
        }
    }

    /** Checkpoint unit busy times. All units are free at a quiesced
     *  commit boundary, but the exact times still travel as insurance
     *  against a future latency model where they are not. */
    void
    serialize(CkptWriter &w) const
    {
        for (const auto &v : busyUntil) {
            w.u64(v.size());
            for (uint64_t b : v)
                w.u64(b);
        }
    }

    /** Restore serialize()d state; false on geometry mismatch. */
    bool
    deserialize(CkptReader &r)
    {
        for (auto &v : busyUntil) {
            if (r.u64() != v.size()) {
                r.fail();
                return false;
            }
            for (uint64_t &b : v)
                b = r.u64();
        }
        return r.ok();
    }

  private:
    std::array<std::vector<uint64_t>,
               static_cast<unsigned>(FuType::NUM_TYPES)> busyUntil;
};

} // namespace vpir

#endif // VPIR_CORE_FU_POOL_HH
