/**
 * @file
 * Core configuration: machine widths and sizes (paper Table 1) and the
 * technique knobs studied in the evaluation (§4.1.4): VP vs IR,
 * speculative vs non-speculative branch resolution (SB/NSB), multiple
 * vs single re-execution (ME/NME), 0/1-cycle VP-verification latency,
 * and IR early vs late validation (Figure 3).
 */

#ifndef VPIR_CORE_PARAMS_HH
#define VPIR_CORE_PARAMS_HH

#include <cstdint>

#include "bpred/bpred.hh"
#include "check/fault.hh"
#include "mem/cache.hh"
#include "reuse/reuse_buffer.hh"
#include "vp/vpt.hh"

namespace vpir
{

/** Redundancy-exploiting technique plugged into the pipeline. */
enum class Technique : uint8_t
{
    None,   //!< base superscalar
    VP,     //!< value prediction
    IR,     //!< instruction reuse
    Hybrid, //!< IR first, VP as the fallback (the paper's §1/§5
            //!< "possibly hybrid of VP and IR" future direction)
};

/** How branches with value-speculative operands are resolved (§3.2). */
enum class BranchResolution : uint8_t
{
    Speculative,    //!< SB: act as soon as the branch executes
    NonSpeculative, //!< NSB: act only once operands are non-speculative
};

/** Re-execution policy under value misprediction (§4.1.4). */
enum class ReexecPolicy : uint8_t
{
    Multiple, //!< ME: re-execute on every new input value
    Single,   //!< NME: re-execute once, after correct operands known
};

/** When IR validates results (Figure 3). */
enum class IrValidation : uint8_t
{
    Early, //!< at decode (real IR)
    Late,  //!< at execute (reuse hits act as correct value predictions)
};

/** Full machine + technique configuration. */
struct CoreParams
{
    // Table 1 machine.
    unsigned fetchWidth = 4;
    unsigned fetchQueueSize = 8;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robEntries = 32;
    unsigned lsqEntries = 32;
    unsigned maxUnresolvedBranches = 8;
    unsigned dcachePorts = 2;

    CacheParams icache;
    CacheParams dcache;
    BpredParams bpred;

    // Technique under study.
    Technique technique = Technique::None;
    VptParams vpt;                 //!< scheme field selects Magic/LVP
    RbParams rb;
    BranchResolution branchRes = BranchResolution::Speculative;
    ReexecPolicy reexec = ReexecPolicy::Multiple;
    unsigned vpVerifyLatency = 0;  //!< 0 or 1 cycles (§4.1.4)
    IrValidation irValidation = IrValidation::Early;

    // Ablation knobs (not part of the paper's configurations).
    bool vpPredictResults = true;   //!< VP: predict register results
    bool vpPredictAddresses = true; //!< VP: predict load addresses

    // Run limits.
    uint64_t maxCycles = UINT64_MAX;
    uint64_t maxInsts = UINT64_MAX;

    /** Functional fast-forward before timing starts (the paper skips
     *  1-2.5B instructions this way, §4.1.5). */
    uint64_t warmupInsts = 0;

    // Hardening / self-verification knobs.

    /** Replay every retired instruction on an independent functional
     *  machine and panic on any architectural divergence. */
    bool checkRetire = false;

    /** Cross-check reuse-buffer hits against the oracle execution at
     *  dispatch (a simulator self-test, not hardware). Turned off to
     *  model hardware that trusts its RB, e.g. under fault injection
     *  where escapes must instead be caught by the retire checker. */
    bool irOracleCheck = true;

    /** Audit pipeline invariants every cycle (instruction
     *  conservation, ROB/LSQ occupancy bounds, no commit with an
     *  unvalidated prediction, periodic RB/VPT entry sanity) and
     *  panic at the cycle of first corruption. */
    bool auditInvariants = false;

    /** Panic with a pipeline dump if no instruction commits for this
     *  many cycles (0 disables the watchdog). */
    uint64_t watchdogCycles = 0;

    /**
     * Drain the pipeline to a quiesced commit boundary every this many
     * committed instructions (0 disables draining). The drain bubbles
     * perturb timing, so the interval is part of the simulated machine:
     * it is hashed into the cell key, and a run resumed from a
     * checkpoint is byte-identical to an uninterrupted run at the same
     * interval. Checkpoint *persistence* additionally requires
     * VPIR_CKPT_DIR (sim/checkpoint.hh).
     */
    uint64_t ckptInsts = 0;

    /** Deterministic fault injection into VPT / reuse buffer. */
    FaultPlan faults;
};

} // namespace vpir

#endif // VPIR_CORE_PARAMS_HH
