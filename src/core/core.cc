#include "core/core.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "common/deadline.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "isa/disasm.hh"
// Header-only stat-field visitor (no vpir_sweep link dependency);
// checkpoints serialize CoreStats through the same single field list
// the result cache uses, so the two cannot drift apart.
#include "sweep/stats_json.hh"

namespace vpir
{

Core::Core(const CoreParams &p, const Program &program,
           const EmuSnapshot *warm)
    : params(p),
      prog(program),
      emu(program, state),
      icache(p.icache),
      dcache(p.dcache),
      bpred(p.bpred),
      vptResult(p.vpt),
      vptAddr(p.vpt),
      rb(p.rb),
      injector(p.faults),
      rob(p.robEntries),
      lsq(p.lsqEntries),
      fetchQueue(p.fetchQueueSize),
      storeQ(p.lsqEntries),
      fetchPC(program.entry)
{
    if (p.checkRetire)
        checker = std::make_unique<LockstepChecker>(program, p.warmupInsts,
                                                    warm);
    for (auto &r : regProducer)
        r = RobRef{};
    lsqXcheck = parseEnvU64("VPIR_LSQ_XCHECK", 0) != 0;
    auditClobberCycle = parseEnvU64("VPIR_TEST_AUDIT_CLOBBER", UINT64_MAX);
    if (parseEnvU64("VPIR_SCHED_XCHECK", 0) != 0)
        schedMode = SchedMode::Xcheck;
    else if (parseEnvU64("VPIR_SCHED_BRUTE", 0) != 0)
        schedMode = SchedMode::Brute;
    prof.enabled = parseEnvU64("VPIR_PROFILE", 0) != 0;
    if (p.ckptInsts)
        nextCkptAt = p.ckptInsts;
    readySet.reset(p.robEntries);
    ctrlSet.reset(p.robEntries);
    finalCand.reset(p.robEntries);
    waiters.assign(2 * p.robEntries, OpWaiter{});
    finWaiters.assign(2 * p.robEntries, OpWaiter{});
    schedScratch.reserve(p.robEntries);
    dueScratch.reserve(p.robEntries);
    xcheckScratch.reserve(p.robEntries);

    // One decode-table lookup per *static* instruction; the pipeline
    // reads the cached pointer for every dynamic instance.
    decodeCache.reserve(program.text.size());
    for (const Instr &i : program.text)
        decodeCache.push_back(&decodeInfo(i.op));
    // 2x capacity: orderHead compaction runs only when the consumed
    // prefix reaches robEntries, so the vector never reallocates.
    orderList.reserve(2 * p.robEntries);

    if (warm) {
        // Warm start: clone the shared post-warmup snapshot instead of
        // loading the image and replaying the warmup. The clone is
        // O(pages-resident) pointer copies; writes fault private pages
        // (see emu/state.hh). Must end bit-identical to the cold path
        // below, warning included.
        VPIR_ASSERT(warm->warmupInsts == p.warmupInsts,
                    "warm snapshot built for a different warmup length");
        state = warm->state;
        fetchPC = warm->halted ? prog.entry : warm->pc;
        if (warm->halted)
            warn("warmup consumed the whole program");
        return;
    }

    Emulator::loadProgram(program, state);
    // Functional fast-forward (paper §4.1.5): execute the first
    // warmupInsts instructions on the emulator alone, then start the
    // timing simulation from wherever the program got to.
    for (uint64_t i = 0; i < p.warmupInsts && !emu.halted(); ++i) {
        emu.step();
        state.retire(state.mark());
    }
    fetchPC = emu.halted() ? prog.entry : emu.pc();
    if (emu.halted())
        warn("warmup consumed the whole program");
}

// ------------------------------------------------------------ helpers

bool
Core::refAlive(const RobRef &r) const
{
    return r.valid() && rob[r.slot].valid && rob[r.slot].seq == r.seq;
}

int
Core::allocRob()
{
    if (robUsed == params.robEntries)
        return -1;
    int slot = robTail;
    robTail = (robTail + 1) % static_cast<int>(params.robEntries);
    ++robUsed;
    return slot;
}

uint64_t
Core::entryValueFor(const RobEntry &e, RegId reg) const
{
    if (e.inst.rd2 != REG_INVALID && reg == e.inst.rd2)
        return e.curResult2;
    return e.curResult;
}

bool
Core::entryValueAvail(const RobEntry &e, RegId reg, uint64_t t) const
{
    if (e.inst.rd2 != REG_INVALID && reg == e.inst.rd2)
        return e.curResult2Valid && e.readyTime <= t;
    return e.hasValue && e.readyTime <= t;
}

Core::OperandView
Core::operandView(int slot, int k, uint64_t t) const
{
    const RobEntry &e = at(slot);
    OperandView v;
    if (e.srcReg[k] == REG_INVALID) {
        v.avail = true;
        v.final = true;
        v.value = 0;
        return v;
    }
    const RobRef &ref = e.srcRob[k];
    if (!refAlive(ref)) {
        // Producer committed (or value was architectural at dispatch):
        // the value is final and equals the oracle operand.
        v.avail = true;
        v.final = true;
        v.value = e.exec.srcVals[k];
        return v;
    }
    const RobEntry &p = at(ref.slot);
    v.avail = entryValueAvail(p, e.srcReg[k], t);
    v.value = entryValueFor(p, e.srcReg[k]);
    v.final = v.avail && p.finalized && p.finalizeAt <= t;
    // Idle-skip bound: the only way this view changes without an
    // event is the producer's verification delay elapsing.
    if (v.avail && p.finalized && p.finalizeAt > t)
        noteWake(p.finalizeAt);
    return v;
}

void
Core::noteStoreAddrReady()
{
    while (storeAddrPrefix < storeQ.size()) {
        const RobRef &r = storeQ[storeAddrPrefix];
        if (!refAlive(r) || !at(r.slot).storeAddrReady)
            break;
        ++storeAddrPrefix;
    }
}

uint64_t
Core::oldestUnknownStoreSeq() const
{
    uint64_t wm = storeAddrPrefix < storeQ.size()
                      ? storeQ[storeAddrPrefix].seq
                      : UINT64_MAX;
    if (lsqXcheck) {
        // Brute-force cross-check against the scan the watermark
        // replaced: first in-order store with an unknown address.
        uint64_t ref = UINT64_MAX;
        for (const LsqEntry &le : lsq) {
            if (le.isLoad || !refAlive(le.rob))
                continue;
            if (!at(le.rob.slot).storeAddrReady) {
                ref = le.rob.seq;
                break;
            }
        }
        VPIR_ASSERT(wm == ref,
                    "store-address watermark diverged from LSQ scan");
    }
    return wm;
}

unsigned
Core::unresolvedBranches() const
{
    unsigned n = robUnresolvedCtrl + fqResolvable;
    if (schedMode == SchedMode::Xcheck) {
        // Brute-force cross-check against the walks the counters
        // replaced.
        unsigned ref = 0;
        forEachInOrder([&](int slot) {
            const RobEntry &e = at(slot);
            if (e.isCtrl && e.resolvable && !e.resolvedForFetch)
                ++ref;
            return true;
        });
        for (const FetchedInst &f : fetchQueue) {
            if (f.resolvable)
                ++ref;
        }
        VPIR_ASSERT(n == ref,
                    "unresolved-branch counter diverged from the "
                    "ROB/fetch-queue walk");
    }
    return n;
}

// -------------------------------------------------------------- fetch

void
Core::fetchStage()
{
    if (done || fetchHalted || ckptDraining ||
        curCycle < fetchResumeCycle || icacheStallUntil > curCycle) {
        // Time-gated stalls bound the idle skip; the other gates only
        // clear on events (squash, drain completion) that are
        // activity in their own cycle.
        if (!done && !fetchHalted && !ckptDraining) {
            if (curCycle < fetchResumeCycle)
                noteWake(fetchResumeCycle);
            else
                noteWake(icacheStallUntil);
        }
        return;
    }

    unsigned budget = params.fetchWidth;
    bool first = true;
    Addr line_pc = fetchPC;

    while (budget > 0 && fetchQueue.size() < params.fetchQueueSize) {
        const Instr *ip = prog.at(fetchPC);
        if (!ip) {
            fetchHalted = true; // off the text segment; wait for squash
            cycleHadWork = true;
            break;
        }
        if (!icache.sameLine(fetchPC, line_pc))
            break; // cannot fetch across a cache line boundary

        if (first) {
            unsigned lat = icache.access(fetchPC);
            cycleHadWork = true; // cache state/stats advanced
            if (lat > params.icache.hitLatency) {
                icacheStallUntil = curCycle + lat;
                return;
            }
            first = false;
        }

        FetchedInst f;
        f.pc = fetchPC;
        f.inst = *ip;
        f.di = decodeAt(fetchPC);
        f.isCtrl = f.di->cls == InstClass::Branch ||
                   f.di->cls == InstClass::Jump;
        f.resolvable = f.di->cls == InstClass::Branch ||
                       isIndirectJump(ip->op);

        if (ip->op == Op::HALT) {
            f.predNextPC = fetchPC; // fetch stops here
            fetchQueue.push_back(f);
            fqResolvable += f.resolvable;
            fetchHalted = true;
            break;
        }

        bool taken_stop = false;
        if (f.isCtrl) {
            if (f.resolvable &&
                unresolvedBranches() >= params.maxUnresolvedBranches) {
                break; // Table 1: max 8 unresolved branches
            }
            f.bpCp = bpred.checkpoint();
            BpredLookup look = bpred.predict(fetchPC, *ip);
            f.predTaken = look.predTaken;
            f.ghrUsed = look.ghrUsed;
            f.fromRas = look.fromRas;
            f.predNextPC = look.predTaken ? look.predTarget
                                          : fetchPC + 4;
            taken_stop = look.predTaken; // one taken branch per cycle
        } else {
            f.predNextPC = fetchPC + 4;
        }

        fetchQueue.push_back(f);
        fqResolvable += f.resolvable;
        fetchPC = f.predNextPC;
        --budget;
        if (taken_stop)
            break;
    }
}

// ----------------------------------------------------------- dispatch

void
Core::tryDispatchPredict(int slot)
{
    RobEntry &e = at(slot);

    if (params.vpPredictResults && producesResult(e.inst) &&
        !e.isSt && e.inst.rd != REG_INVALID) {
        e.madePred = vptResult.predict(e.pc, e.exec.out.result);
        // Injected VPT faults: corrupt the predicted value and/or flip
        // the confidence gate. Both must be absorbed by the normal
        // late-validation path (squash + re-execute), never escaping
        // to architectural state.
        if (e.madePred.valid && injector.fireVptValue())
            e.madePred.value = injector.corrupt(e.madePred.value);
        if (injector.fireVptConf())
            e.madePred.valid = !e.madePred.valid;
        if (e.madePred.valid) {
            e.predicted = true;
            e.predValue = e.madePred.value;
            e.curResult = e.madePred.value;
            e.hasValue = true;
            e.readyTime = curCycle;
        }
    }
    // Hybrid: a load that already reused its address carries a
    // *validated* address; overwriting it with a VPT guess would both
    // degrade it to a speculation and (before the addr-stale re-issue
    // existed) silently time the cache access at the wrong line.
    if (params.vpPredictAddresses && (e.isLd || e.isSt) &&
        !e.addrReused) {
        e.madeAddrPred = vptAddr.predict(e.pc, e.exec.out.memAddr);
        if (e.madeAddrPred.valid && injector.fireVptValue())
            e.madeAddrPred.value = injector.corrupt(e.madeAddrPred.value);
        if (e.madeAddrPred.valid) {
            e.addrPredicted = true;
            e.addrPredValue = e.madeAddrPred.value;
            if (e.isLd) {
                // Loads may access the cache with the predicted
                // (speculative) address without waiting for the base
                // register. Store address predictions are recorded
                // (Table 3) but not used for disambiguation.
                e.curMemAddr = static_cast<Addr>(e.madeAddrPred.value);
                e.memAddrKnown = true;
            }
        }
    }
}

void
Core::tryDispatchReuse(int slot)
{
    RobEntry &e = at(slot);
    if (e.cls == InstClass::Nop || e.isHalt)
        return;

    // Build the operand queries for the reuse test: current
    // architectural values (oracle for this path) plus decode-time
    // availability and producer reuse chaining information.
    RbOperandQuery q[2];
    for (int k = 0; k < 2; ++k) {
        q[k].reg = e.srcReg[k];
        q[k].value = e.exec.srcVals[k];
        if (q[k].reg == REG_INVALID)
            continue;
        const RobRef &ref = e.srcRob[k];
        if (!refAlive(ref)) {
            q[k].ready = true;
        } else {
            const RobEntry &p = at(ref.slot);
            q[k].ready = entryValueAvail(p, q[k].reg, curCycle) &&
                         p.finalized;
            // Chains probe through reused producers; in late mode the
            // hit set must match early mode (only validation timing
            // differs), so late-reused producers chain as well.
            if (p.reused || p.reusedLate)
                q[k].producerReuse = p.rbEntry;
        }
    }

    RbProbeResult hit = rb.probe(e.pc, e.inst, q);
    if (!hit.entry.valid())
        return;

    bool result_ok = hit.resultReused;

    if (e.isLd && result_ok) {
        // Precision check standing in for exact invalidation: the
        // stored value must still be what memory holds for this path.
        // With the oracle cross-check disabled the core trusts the
        // RB's own address-range invalidation, like real hardware; an
        // escape is then the retire checker's to catch.
        if (params.irOracleCheck && hit.memValue != e.exec.out.result)
            result_ok = false;
        // Non-speculative gate: all older stores must have known,
        // non-overlapping addresses (Table 1's conservative loads).
        // Readiness is O(1) against the store-address watermark; the
        // overlap walk only runs once every address is known, and
        // only visits stores.
        if (result_ok && oldestUnknownStoreSeq() < e.seq)
            result_ok = false;
        if (result_ok) {
            Addr lo = e.exec.out.memAddr;
            for (const RobRef &ref : storeQ) {
                if (ref.seq >= e.seq)
                    break;
                const RobEntry &s = at(ref.slot);
                Addr s_lo = s.curMemAddr;
                if (lo < s_lo + s.memSz && s_lo < lo + e.memSz) {
                    result_ok = false;
                    break;
                }
            }
        }
    }

    if (result_ok && params.irValidation == IrValidation::Late) {
        // Figure 3 "late": the hit behaves as a correct value
        // prediction — the value flows at decode but the instruction
        // still executes, uses resources, and resolves at execute.
        e.reusedLate = true;
        if (producesResult(e.inst) && e.inst.rd != REG_INVALID &&
            !e.isSt) {
            e.predicted = true;
            e.predValue = e.exec.out.result;
            e.curResult = e.predValue;
            e.hasValue = true;
            e.readyTime = curCycle;
        }
        if (hit.recoveredSquashedWork)
            ++st.squashedRecovered;
        rb.noteReused(hit, e.inst);
        e.rbEntry = hit.entry;
        return;
    }

    if (result_ok) {
        e.reused = true;
        e.needsExec = false;
        e.rbEntry = hit.entry;
        e.curResult = producesResult(e.inst)
                          ? (e.isLd ? hit.memValue : hit.result)
                          : 0;
        e.curResult2 = hit.result2;
        e.curResult2Valid = true;
        e.curTaken = e.exec.out.taken;
        e.curNextPC = e.exec.out.nextPC;
        e.hasValue = producesResult(e.inst);
        e.readyTime = curCycle;
        e.finalized = true;
        e.finalizeAt = curCycle;
        if (e.isLd) {
            e.curMemAddr = e.exec.out.memAddr;
            e.memAddrKnown = true;
        }
        if (hit.recoveredSquashedWork)
            ++st.squashedRecovered;
        rb.noteReused(hit, e.inst);
        if (params.irOracleCheck) {
            VPIR_ASSERT(!producesResult(e.inst) ||
                            e.curResult == e.exec.out.result,
                        "reuse delivered a wrong value");
        }
        return;
    }

    if (hit.addrReused && (e.isLd || e.isSt)) {
        if (params.irOracleCheck) {
            VPIR_ASSERT(hit.memAddr == e.exec.out.memAddr,
                        "address reuse delivered a wrong address");
        }
        e.addrReused = true;
        e.curMemAddr = hit.memAddr;
        e.memAddrKnown = true;
        if (e.isSt) {
            e.storeAddrReady = true; // unblocks younger loads early
            noteStoreAddrReady();
        }
        rb.noteReused(hit, e.inst);
        if (hit.recoveredSquashedWork)
            ++st.squashedRecovered;
    }
}

void
Core::dispatchStage()
{
    unsigned dispatched = 0;
    while (dispatched < params.dispatchWidth && !fetchQueue.empty()) {
        const FetchedInst &f = fetchQueue.front();
        const DecodeInfo &di = *f.di;
        bool is_mem = di.cls == InstClass::Load ||
                      di.cls == InstClass::Store;
        if (is_mem && lsq.size() >= params.lsqEntries)
            break;
        int slot = allocRob();
        if (slot < 0)
            break;

        ExecResult er = emu.stepAt(f.pc);

        RobEntry &e = at(slot);
        e = RobEntry{};
        e.valid = true;
        e.seq = nextSeq++;
        e.pc = f.pc;
        e.inst = er.inst;
        e.cls = di.cls;
        e.di = f.di;
        e.exec = er;
        e.postMark = state.mark();
        e.dispatchCycle = curCycle;
        e.isHalt = er.halted;
        e.isLd = di.cls == InstClass::Load;
        e.isSt = di.cls == InstClass::Store;
        e.memSz = memSize(er.inst.op);
        e.isCtrl = f.isCtrl;
        e.resolvable = f.resolvable;
        e.predTaken = f.predTaken;
        e.predNextPC = f.predNextPC;
        e.followedNextPC = f.predNextPC;
        e.ghrUsed = f.ghrUsed;
        e.fromRas = f.fromRas;
        e.bpCp = f.bpCp;
        orderList.push_back(slot);

        // Rename sources against in-flight producers.
        SrcRegs s = srcRegs(er.inst);
        for (int k = 0; k < 2; ++k) {
            e.srcReg[k] = s.src[k];
            if (s.src[k] != REG_INVALID &&
                refAlive(regProducer[s.src[k]])) {
                e.srcRob[k] = regProducer[s.src[k]];
            }
        }

        if (e.cls == InstClass::Nop || e.isHalt) {
            e.needsExec = false;
            e.finalized = true;
            e.finalizeAt = curCycle;
        }

        if (is_mem) {
            LsqEntry le;
            le.rob = RobRef{slot, e.seq};
            le.isLoad = e.isLd;
            lsq.push_back(le);
            // Stores also enter the disambiguation queue; appending an
            // address-unknown store keeps the watermark invariant (it
            // sits at or beyond storeAddrPrefix).
            if (e.isSt)
                storeQ.push_back(le.rob);
        }

        if (!e.isHalt && e.cls != InstClass::Nop) {
            if (params.technique == Technique::IR) {
                tryDispatchReuse(slot);
            } else if (params.technique == Technique::VP) {
                tryDispatchPredict(slot);
            } else if (params.technique == Technique::Hybrid) {
                // Hybrid: the non-speculative reuse test first; fall
                // back to a value prediction when the result was not
                // reused (the redundancy VP can capture but IR's
                // operand test cannot).
                tryDispatchReuse(slot);
                if (!e.reused)
                    tryDispatchPredict(slot);
            }
        }

        // Claim destinations after the reuse probe (which must see the
        // *previous* producers of our destination registers).
        DstRegs d = dstRegs(er.inst);
        for (RegId r : d.dst) {
            if (r != REG_INVALID)
                regProducer[r] = RobRef{slot, e.seq};
        }

        schedOnDispatch(slot);
        fqResolvable -= f.resolvable;
        fetchQueue.pop_front();
        ++dispatched;
        cycleHadWork = true;

        // A reused control instruction resolves at decode: resolution
        // latency zero, and an immediate redirect on a bpred miss.
        if (e.reused && e.isCtrl) {
            noteResolvedForFetch(e);
            e.finalActionDone = true;
            ctrlSet.erase(slot);
            if (e.correctResolveAt == UINT64_MAX)
                e.correctResolveAt = curCycle;
            if (e.curNextPC != e.followedNextPC) {
                squashAfter(slot, e.curNextPC);
                break; // fetch queue flushed
            }
        }
    }
}

// ----------------------------------------- incremental scheduling

void
Core::linkWaiter(int cslot, int k, int pslot)
{
    int id = cslot * 2 + k;
    OpWaiter &w = waiters[id];
    VPIR_ASSERT(w.prodSlot < 0, "re-linking a linked waiter node");
    w.prodSlot = pslot;
    w.prev = -1;
    w.next = at(pslot).waiterHead;
    if (w.next >= 0)
        waiters[w.next].prev = id;
    at(pslot).waiterHead = id;
}

void
Core::unlinkWaiter(int cslot, int k)
{
    int id = cslot * 2 + k;
    OpWaiter &w = waiters[id];
    if (w.prodSlot < 0)
        return;
    if (w.prev >= 0)
        waiters[w.prev].next = w.next;
    else
        at(w.prodSlot).waiterHead = w.next;
    if (w.next >= 0)
        waiters[w.next].prev = w.prev;
    w = OpWaiter{};
}

void
Core::wakeWaiters(int prodSlot)
{
    const RobEntry &p = at(prodSlot);
    int id = p.waiterHead;
    while (id >= 0) {
        int next = waiters[id].next;
        int cslot = id / 2;
        int k = id % 2;
        RobEntry &c = at(cslot);
        if (entryValueAvail(p, c.srcReg[k], curCycle)) {
            OpWaiter &w = waiters[id];
            if (!w.availSeen) {
                // First availability: monotone per ROB incarnation,
                // so pendingOps decrements for good. The link stays —
                // later publications of a *different* value must
                // re-wake the consumer for re-execution.
                w.availSeen = true;
                if (--c.pendingOps == 0)
                    readySet.insert(cslot);
            } else if (c.executedOnce
                           ? entryValueFor(p, c.srcReg[k]) !=
                                 c.usedVals[k]
                           : c.pendingOps == 0) {
                // Re-publication of an already-available operand: the
                // consumer is an issue candidate again, but only when
                // this publication actually changed the value it last
                // consumed (the issue scan's changed test is exactly
                // per-operand value-vs-used). A not-yet-executed
                // consumer is already a member whenever its operands
                // are all available.
                readySet.insert(cslot);
            }
        }
        id = next;
    }
}

void
Core::linkFinWaiter(int cslot, int k, int pslot)
{
    int id = cslot * 2 + k;
    OpWaiter &w = finWaiters[id];
    VPIR_ASSERT(w.prodSlot < 0, "re-linking a linked finalize waiter");
    w.prodSlot = pslot;
    w.prev = -1;
    w.next = at(pslot).finWaiterHead;
    if (w.next >= 0)
        finWaiters[w.next].prev = id;
    at(pslot).finWaiterHead = id;
}

void
Core::unlinkFinWaiter(int cslot, int k)
{
    int id = cslot * 2 + k;
    OpWaiter &w = finWaiters[id];
    if (w.prodSlot < 0)
        return;
    if (w.prev >= 0)
        finWaiters[w.prev].next = w.next;
    else
        at(w.prodSlot).finWaiterHead = w.next;
    if (w.next >= 0)
        finWaiters[w.next].prev = w.prev;
    w = OpWaiter{};
}

void
Core::scheduleRefinal(int slot, uint64_t at_cycle)
{
    WheelEvent ev;
    ev.at = at_cycle;
    ev.seq = at(slot).seq;
    ev.slot = slot;
    ev.kind = WheelEvent::Kind::Refinal;
    wheel.schedule(ev, curCycle);
}

void
Core::noteResolvedForFetch(RobEntry &e)
{
    if (e.isCtrl && e.resolvable && !e.resolvedForFetch) {
        VPIR_ASSERT(robUnresolvedCtrl > 0,
                    "unresolved-control counter underflow");
        --robUnresolvedCtrl;
    }
    e.resolvedForFetch = true;
}

void
Core::schedOnDispatch(int slot)
{
    RobEntry &e = at(slot);
    // Slot reuse: any residue from the previous occupant is a bug in
    // the unlink discipline, but clearing is O(1) and keeps a
    // dangling node from corrupting a live producer's list.
    unlinkWaiter(slot, 0);
    unlinkWaiter(slot, 1);
    unlinkFinWaiter(slot, 0);
    unlinkFinWaiter(slot, 1);

    if (e.isCtrl && e.resolvable) {
        ++robUnresolvedCtrl;
        if (!e.finalActionDone)
            ctrlSet.insert(slot);
    }
    if (!e.needsExec)
        return; // reused/nop/halt: never issues
    e.pendingOps = 0;
    for (int k = 0; k < 2; ++k) {
        if (e.srcReg[k] == REG_INVALID || !refAlive(e.srcRob[k]))
            continue;
        // Link every live-producer operand, available or not: the
        // link is the re-publication wake channel that lets the issue
        // scan drop quiescent entries from the ready set.
        const RobEntry &p = at(e.srcRob[k].slot);
        bool avail = entryValueAvail(p, e.srcReg[k], curCycle);
        linkWaiter(slot, k, e.srcRob[k].slot);
        waiters[slot * 2 + k].availSeen = avail;
        if (!avail)
            ++e.pendingOps;
    }
    bool addr_ready_load =
        e.isLd && e.memAddrKnown && (e.addrReused || e.addrPredicted);
    if (e.pendingOps == 0 || addr_ready_load)
        readySet.insert(slot);
}

void
Core::collectInOrder(const SlotSet &s, std::vector<int> &out) const
{
    // ROB slots are allocated in ring order, so walking the bitmask
    // from the head (with wraparound) yields program order directly —
    // no sort.
    out.clear();
    s.forEachFrom(static_cast<size_t>(robHead), [&](int slot) {
        out.push_back(slot);
        return true;
    });
}

// -------------------------------------------------------------- issue

bool
Core::loadMayAccess(int slot, bool &forward, RobRef &conflict) const
{
    const RobEntry &e = at(slot);
    forward = false;
    conflict = RobRef{};
    // All older stores must have known addresses (Table 1): O(1)
    // against the store-address watermark. When one is still unknown
    // the load waits on it; otherwise the overlap walk below visits
    // only stores, every address known.
    if (oldestUnknownStoreSeq() < e.seq) {
        conflict = storeQ[storeAddrPrefix];
        return false;
    }
    const RobEntry *fwd_store = nullptr;
    Addr l_lo = e.curMemAddr;
    for (const RobRef &ref : storeQ) {
        if (ref.seq >= e.seq)
            break;
        const RobEntry &s = at(ref.slot);
        Addr s_lo = s.curMemAddr;
        unsigned s_sz = s.memSz;
        if (l_lo < s_lo + s_sz && s_lo < l_lo + e.memSz) {
            if (s_lo == l_lo && s_sz == e.memSz) {
                fwd_store = &s; // youngest matching store wins
                conflict = ref;
            } else {
                // Partial overlap: wait until the store commits.
                conflict = ref;
                return false;
            }
        }
    }
    if (fwd_store)
        forward = true;
    return true;
}

void
Core::issueEntry(int slot)
{
    RobEntry &e = at(slot);
    OperandView v0 = operandView(slot, 0, curCycle);
    OperandView v1 = operandView(slot, 1, curCycle);

    e.usedVals[0] = v0.value;
    e.usedVals[1] = v1.value;
    e.usedFinal[0] = v0.final;
    e.usedFinal[1] = v1.final;
    ++e.execCount;
    if (!e.executedOnce)
        ++st.executedInsts;

    bool oracle_inputs = v0.value == e.exec.srcVals[0] &&
                         v1.value == e.exec.srcVals[1];

    if (oracle_inputs) {
        e.pendResult = e.exec.out.result;
        e.pendResult2 = e.exec.out.result2;
        e.pendTaken = e.exec.out.taken;
        e.pendNextPC = e.exec.out.nextPC;
        e.pendMemAddr = e.exec.out.memAddr;
    } else {
        // Speculative inputs: genuinely evaluate with the wrong
        // values (this is what makes spurious outcomes possible).
        MemReadFn mem = [this](Addr a, unsigned sz) {
            return state.readMem(a, sz);
        };
        SemOut o = evalInstr(e.inst, e.pc, v0.value, v1.value, mem);
        e.pendResult = o.result;
        e.pendResult2 = o.result2;
        e.pendTaken = o.taken;
        e.pendNextPC = o.nextPC;
        e.pendMemAddr = o.memAddr;
    }

    const DecodeInfo &di = *e.di;
    uint64_t complete = curCycle + di.opLat;

    if (e.isLd) {
        bool skip_agen = e.addrReused || (e.addrPredicted &&
                                          !v0.avail);
        // Loads that did AGEN use the freshly computed address; the
        // others carry the reused/predicted one.
        if (!skip_agen)
            e.curMemAddr = static_cast<Addr>(e.pendMemAddr);
        bool fwd = false;
        RobRef dep;
        if (loadMayAccess(slot, fwd, dep) && !fwd) {
            unsigned lat = dcache.access(e.curMemAddr);
            complete = curCycle + (skip_agen ? 0 : 1) + lat;
        } else {
            // Forwarded from an older matching store.
            complete = curCycle + (skip_agen ? 0 : 1) + 1;
        }
        if (!oracle_inputs || (e.addrPredicted && !v0.avail)) {
            // Speculative access: read whatever that address holds.
            e.pendResult = state.readMem(e.curMemAddr, e.memSz);
        }
    }

    // Value publication is delayed by the verification latency when a
    // predicted instruction computes something other than what its
    // consumers were handed (paper: dependants are delayed by the
    // VP-verification latency).
    if (e.predicted && e.pendResult != e.curResult)
        complete += params.vpVerifyLatency;

    e.inFlight = true;
    e.completeAt = complete;
    // In-flight entries leave both candidate sets; completion makes
    // the entry a finalize candidate again, and a wake landing during
    // the flight makes it an issue candidate again.
    readySet.erase(slot);
    finalCand.erase(slot);
    if (schedMode != SchedMode::Brute) {
        // The brute scan first sees a completion the cycle after
        // issue, so an already-due completeAt fires then.
        WheelEvent ev;
        ev.at = std::max(complete, curCycle + 1);
        ev.seq = e.seq;
        ev.slot = slot;
        wheel.schedule(ev, curCycle);
    }
}

void
Core::issueStage()
{
    unsigned issued = 0;
    // Fast: only ready-set members (program order). Brute and Xcheck:
    // the legacy full-window walk; Xcheck additionally asserts that
    // every entry the walk finds issuable is in the ready set, which
    // (the evaluation code being shared) pins the fast path to
    // identical issue decisions.
    if (schedMode == SchedMode::Fast) {
        collectInOrder(readySet, schedScratch);
    } else {
        schedScratch.assign(orderList.begin() +
                                static_cast<long>(orderHead),
                            orderList.end());
    }
    for (int slot : schedScratch) {
        RobEntry &e = at(slot);
        if (!e.valid || !e.needsExec || e.inFlight || e.finalized)
            continue;
        if (curCycle <= e.dispatchCycle)
            continue; // earliest issue is the cycle after dispatch

        // Does this entry currently want to execute?
        bool wants = false;
        OperandView v[2];
        bool all_avail = true;
        bool all_final = true;
        for (int k = 0; k < 2; ++k) {
            v[k] = operandView(slot, k, curCycle);
            all_avail = all_avail && v[k].avail;
            all_final = all_final && v[k].final;
        }
        // Loads with a reused/predicted address need no operands to
        // access the cache.
        bool addr_ready_load =
            e.isLd && e.memAddrKnown && (e.addrReused ||
                                         e.addrPredicted);
        if (!all_avail && !addr_ready_load) {
            // Waiter links guarantee a wake when the missing operand
            // publishes, so the entry can leave the ready set.
            readySet.erase(slot);
            continue;
        }

        if (!e.executedOnce) {
            wants = true;
        } else {
            bool changed = v[0].value != e.usedVals[0] ||
                           v[1].value != e.usedVals[1];
            // An address-speculative load can have accessed the wrong
            // location with operand values that coincidentally equal
            // the oracle ones; the value test alone would never
            // re-issue it. Redo the access once real operands arrive.
            bool addr_stale = e.isLd && all_avail &&
                              e.curMemAddr != e.exec.out.memAddr;
            if (!changed && !addr_stale) {
                // Quiescent: only an operand re-publication can change
                // this evaluation, and the persistent waiter links
                // re-wake the entry then — so stop polling it.
                readySet.erase(slot);
                continue;
            }
            if (params.reexec == ReexecPolicy::Multiple || addr_stale) {
                wants = true; // ME: re-execute on any new value
            } else {
                // NME: re-execute once, after operands are final.
                wants = all_final && e.execCount < 2;
                if (!wants) {
                    if (e.execCount >= 2) {
                        // Final re-execution already done; nothing
                        // further can make this entry issue.
                        readySet.erase(slot);
                    }
                    // else: waiting on operand *finality*, which can
                    // elapse with no publication — keep polling (the
                    // operand view notes the finalize cycle as an
                    // idle-skip bound).
                    continue;
                }
            }
        }
        if (schedMode == SchedMode::Xcheck) {
            VPIR_ASSERT(readySet.test(slot),
                        "issuable entry missing from the ready set");
        }

        // Loads must respect store disambiguation before requesting
        // a port (a blocked load is a dataflow stall, not resource
        // contention).
        bool fwd = false;
        RobRef dep;
        bool needs_port = false;
        if (e.isLd) {
            if (addr_ready_load && !all_avail) {
                // Address known speculatively; can't disambiguate
                // against oracle yet but the paper's machine still
                // requires older store addresses to be known.
            }
            if (!loadMayAccess(slot, fwd, dep))
                continue;
            needs_port = !fwd;
        }

        // From here on the instruction is ready: any denial is
        // resource contention (Figure 5).
        ++st.resourceRequests;
        cycleHadWork = true;
        if (issued >= params.issueWidth) {
            ++st.resourceDenied;
            continue;
        }
        bool skip_agen_fu = e.isLd && (e.addrReused);
        FuType fu = skip_agen_fu ? FuType::None : e.di->fu;
        if (!fus.available(fu, curCycle)) {
            ++st.resourceDenied;
            continue;
        }
        if (needs_port && dcachePortsUsed >= params.dcachePorts) {
            ++st.resourceDenied;
            continue;
        }
        fus.acquire(fu, curCycle, e.di->issueLat);
        if (needs_port)
            ++dcachePortsUsed;
        issueEntry(slot);
        ++issued;
    }
}

// -------------------------------------------------- completion/verify

void
Core::completeEntry(int slot)
{
    RobEntry &e = at(slot);
    cycleHadWork = true;
    e.inFlight = false;
    e.executedOnce = true;
    e.curResult = e.pendResult;
    e.curResult2 = e.pendResult2;
    e.curResult2Valid = true;
    e.curTaken = e.pendTaken;
    e.curNextPC = e.pendNextPC;
    if (e.isLd || e.isSt) {
        if (!e.addrReused)
            e.curMemAddr = static_cast<Addr>(e.pendMemAddr);
        e.memAddrKnown = true;
    }
    e.hasValue = producesResult(e.inst);
    e.readyTime = curCycle;

    if (e.isSt) {
        e.storeAddrReady = true;
        noteStoreAddrReady();
        if (params.technique == Technique::IR ||
            params.technique == Technique::Hybrid) {
            // Injected fault: a dropped invalidation leaves stale
            // load values in the RB. With the oracle cross-check on,
            // the dispatch precision check refuses the stale hit;
            // with it off, an escape is the retire checker's to catch.
            if (!injector.fireRbDropInv())
                rb.storeInvalidate(e.curMemAddr, e.memSz);
        }
    }

    if (e.isCtrl && e.resolvable) {
        bool vp_mode = params.technique == Technique::VP ||
                       params.technique == Technique::Hybrid;
        bool sb = !vp_mode ||
                  params.branchRes == BranchResolution::Speculative;
        if (sb)
            e.pendingResolve = true;
    }

    if ((params.technique == Technique::IR ||
         params.technique == Technique::Hybrid) &&
        !e.rbInserted) {
        insertIntoRb(slot);
    }

    // Scheduler upkeep: the publication may unblock consumers, the
    // entry itself is a finalize candidate again (re-execution
    // candidacy is wake-driven: any publication landing during the
    // flight already re-inserted it into the ready set), and a
    // pending SB resolution makes it a resolution candidate.
    wakeWaiters(slot);
    if (!e.finalized)
        finalCand.insert(slot);
    // An address-stale load wants to re-issue on *unchanged* operands
    // (the issue scan's addr_stale term), and this completion itself
    // is what made the address stale — there may be no further
    // operand publication to deliver a wake, so re-arm it here.
    if (e.isLd && e.curMemAddr != e.exec.out.memAddr)
        readySet.insert(slot);
    if (e.pendingResolve && !e.finalActionDone)
        ctrlSet.insert(slot);
}

void
Core::processCompletions()
{
    if (schedMode == SchedMode::Brute) {
        forEachInOrder([&](int slot) {
            RobEntry &e = at(slot);
            if (e.valid && e.inFlight && e.completeAt <= curCycle)
                completeEntry(slot);
            return true;
        });
        return;
    }

    // Event-driven: only this cycle's wheel bucket. Squashes leave
    // stale events behind, so each is validated against live ROB
    // state; completion order must be program order (RB insertion and
    // store-invalidation are order-sensitive), so sort by seq.
    dueScratch.clear();
    wheel.popDue(curCycle, dueScratch);
    schedScratch.clear();
    for (const WheelEvent &ev : dueScratch) {
        const RobEntry &e = at(ev.slot);
        if (ev.kind == WheelEvent::Kind::Refinal) {
            // A parked finalize candidate's recheck came due (its
            // producer's verification delay elapsed). Re-issued or
            // squashed incarnations drop the event; completion or the
            // staleness check re-arms them.
            if (e.valid && e.seq == ev.seq && !e.inFlight &&
                !e.finalized && e.needsExec && e.executedOnce) {
                finalCand.insert(ev.slot);
            }
            continue;
        }
        if (e.valid && e.seq == ev.seq && e.inFlight &&
            e.completeAt <= curCycle) {
            schedScratch.push_back(ev.slot);
        }
    }
    std::sort(schedScratch.begin(), schedScratch.end(),
              [this](int a, int b) { return at(a).seq < at(b).seq; });

    if (schedMode == SchedMode::Xcheck) {
        // The brute walk must find exactly the slots the wheel
        // delivered (both lists are seq-ascending).
        xcheckScratch.clear();
        forEachInOrder([&](int slot) {
            const RobEntry &e = at(slot);
            if (e.valid && e.inFlight && e.completeAt <= curCycle)
                xcheckScratch.push_back(slot);
            return true;
        });
        VPIR_ASSERT(xcheckScratch == schedScratch,
                    "event wheel diverged from the completion scan");
    }

    for (int slot : schedScratch)
        completeEntry(slot);
}

void
Core::finalizeScan()
{
    // Fast walks only the finalize-candidate set, as a mutable
    // worklist: an entry that fails because an operand is not yet
    // final *parks* — on the producer's finalize-waiter list when the
    // producer has not finalized, or on a timed wheel recheck when
    // only its verification delay is pending — instead of being
    // re-polled every cycle. A producer finalizing mid-pass wakes its
    // parked consumers and splices them back into the worklist in
    // program order, so chains of same-cycle finalizations behave
    // exactly as in the brute walk. Brute/Xcheck walk the whole
    // window; Xcheck also runs the park bookkeeping for candidates
    // (keeping the structures on the fast trajectory) and asserts
    // every entry it finalizes is a candidate.
    bool fast = schedMode == SchedMode::Fast;
    bool park = schedMode != SchedMode::Brute;
    if (fast) {
        collectInOrder(finalCand, schedScratch);
    } else {
        schedScratch.assign(orderList.begin() +
                                static_cast<long>(orderHead),
                            orderList.end());
    }
    for (size_t i = 0; i < schedScratch.size(); ++i) {
        int slot = schedScratch[i];
        RobEntry &e = at(slot);
        if (!e.valid || e.finalized || e.inFlight)
            continue;
        if (!e.needsExec || !e.executedOnce)
            continue;
        bool member = finalCand.test(slot);

        bool ops_final = true;
        for (int k = 0; k < 2; ++k) {
            OperandView v = operandView(slot, k, curCycle);
            if (v.final)
                continue;
            ops_final = false;
            if (park && member && refAlive(e.srcRob[k])) {
                const RobEntry &p = at(e.srcRob[k].slot);
                if (!p.finalized) {
                    // Re-completion can put a still-parked entry back
                    // into the candidate set; the node is already on
                    // the right producer's list then.
                    if (finWaiters[slot * 2 + k].prodSlot < 0)
                        linkFinWaiter(slot, k, e.srcRob[k].slot);
                    finalCand.erase(slot);
                } else if (p.finalizeAt > curCycle) {
                    scheduleRefinal(slot, p.finalizeAt);
                    finalCand.erase(slot);
                }
                // else: a finalized-now producer publishes before it
                // finalizes, so a non-final view cannot happen — keep
                // the entry polling defensively.
            }
            break;
        }
        if (!ops_final)
            continue;

        // The last execution must have consumed the final (oracle)
        // operand values; otherwise a re-execution is still due: the
        // publication that changes the operands re-wakes the entry on
        // the issue side, and its completion re-arms the candidate.
        if (e.usedVals[0] != e.exec.srcVals[0] ||
            e.usedVals[1] != e.exec.srcVals[1]) {
            if (park && member)
                finalCand.erase(slot);
            continue;
        }

        // A load whose last access used a mispredicted address read
        // the wrong location even if the (stale) operand values
        // happened to match the oracle ones; hold it for the
        // addr-stale re-issue instead of finalizing wrong data.
        if (e.isLd && e.curMemAddr != e.exec.out.memAddr) {
            if (park && member)
                finalCand.erase(slot);
            continue;
        }

        if (schedMode == SchedMode::Xcheck) {
            VPIR_ASSERT(member, "finalizing entry missing from the "
                                "finalize-candidate set");
        }
        e.finalized = true;
        e.finalizeAt = curCycle + (e.predicted ? params.vpVerifyLatency
                                               : 0);
        if (e.predicted && e.predValue != e.exec.out.result)
            ++st.valueMispredictEvents;
        readySet.erase(slot);
        finalCand.erase(slot);
        // Finalized entries never re-execute, so the operand links
        // have no wakes left to deliver.
        unlinkWaiter(slot, 0);
        unlinkWaiter(slot, 1);
        cycleHadWork = true;

        // Wake parked consumers. With a verification delay the value
        // is final only at finalizeAt: recheck then (timed event);
        // otherwise recheck this pass, in program order (consumers
        // are younger, so the splice point is always after i).
        int id = e.finWaiterHead;
        while (id >= 0) {
            int next = finWaiters[id].next;
            int cslot = id / 2;
            unlinkFinWaiter(cslot, id % 2);
            const RobEntry &c = at(cslot);
            if (e.finalizeAt > curCycle) {
                scheduleRefinal(cslot, e.finalizeAt);
            } else if (!c.inFlight && !c.finalized &&
                       !finalCand.test(cslot)) {
                finalCand.insert(cslot);
                if (fast) {
                    auto it = std::upper_bound(
                        schedScratch.begin() +
                            static_cast<std::ptrdiff_t>(i) + 1,
                        schedScratch.end(), cslot,
                        [this](int a, int b) {
                            return at(a).seq < at(b).seq;
                        });
                    schedScratch.insert(it, cslot);
                }
            }
            id = next;
        }
    }
}

// ---------------------------------------------------------- resolution

void
Core::doResolve(int slot, Addr computed_next, bool is_final)
{
    RobEntry &e = at(slot);
    cycleHadWork = true;
    noteResolvedForFetch(e);
    if (is_final) {
        e.finalActionDone = true;
        ctrlSet.erase(slot);
    }
    if (computed_next == e.exec.out.nextPC &&
        e.correctResolveAt == UINT64_MAX) {
        e.correctResolveAt = curCycle;
    }
    if (computed_next != e.followedNextPC)
        squashAfter(slot, computed_next);
}

void
Core::resolveControl()
{
    // Oldest-first; a squash removes all younger entries, so restart
    // scanning is unnecessary (the validity guard sees them gone).
    // Fast iterates only the unresolved-control set; Brute/Xcheck walk
    // the whole window, Xcheck asserting every acting entry is in the
    // set.
    if (schedMode == SchedMode::Fast) {
        collectInOrder(ctrlSet, schedScratch);
    } else {
        schedScratch.assign(orderList.begin() +
                                static_cast<long>(orderHead),
                            orderList.end());
    }
    for (int slot : schedScratch) {
        RobEntry &e = at(slot);
        if (!e.valid || !e.isCtrl || !e.resolvable)
            continue;
        bool nsb = (params.technique == Technique::VP ||
                    params.technique == Technique::Hybrid) &&
                   params.branchRes == BranchResolution::NonSpeculative;
        if (nsb) {
            if (e.finalized && e.finalizeAt <= curCycle &&
                !e.finalActionDone) {
                if (schedMode == SchedMode::Xcheck) {
                    VPIR_ASSERT(ctrlSet.test(slot),
                                "resolving entry missing from the "
                                "control set");
                }
                doResolve(slot, e.curNextPC, true);
            } else if (e.finalized && !e.finalActionDone &&
                       e.finalizeAt > curCycle) {
                noteWake(e.finalizeAt); // idle-skip bound
            }
        } else if (e.pendingResolve) {
            if (schedMode == SchedMode::Xcheck) {
                VPIR_ASSERT(ctrlSet.test(slot),
                            "resolving entry missing from the "
                            "control set");
            }
            e.pendingResolve = false;
            cycleHadWork = true;
            bool fin = e.finalized && e.finalizeAt <= curCycle;
            doResolve(slot, e.curNextPC, fin);
        }
    }
}

// -------------------------------------------------------------- squash

void
Core::rebuildRename()
{
    for (auto &r : regProducer)
        r = RobRef{};
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        DstRegs d = dstRegs(e.inst);
        for (RegId r : d.dst) {
            if (r != REG_INVALID)
                regProducer[r] = RobRef{slot, e.seq};
        }
        return true;
    });
}

void
Core::squashAfter(int slot, Addr redirect)
{
    RobEntry &e = at(slot);

    cycleHadWork = true;
    ++st.branchSquashes;
    bool legit = redirect == e.exec.out.nextPC &&
                 e.predNextPC != e.exec.out.nextPC &&
                 !e.legitSquashCounted;
    if (legit)
        e.legitSquashCounted = true;
    else
        ++st.spuriousSquashes;

    // Drop everything younger than the squashing instruction.
    while (robUsed > 0) {
        int last = (robTail + static_cast<int>(params.robEntries) - 1) %
                   static_cast<int>(params.robEntries);
        RobEntry &y = at(last);
        if (y.seq <= e.seq)
            break;
        if (y.execCount > 0) { // includes executions still in flight
            ++st.squashedExecuted;
            if ((params.technique == Technique::IR ||
                 params.technique == Technique::Hybrid) &&
                y.rbInserted) {
                rb.markSquashed(y.rbEntry);
            }
        }
        y.valid = false;
        robTail = last;
        --robUsed;
        ++auditSquashed;
        orderList.pop_back(); // youngest-first, mirrors the ROB pop
        // Scheduler teardown. Waiter unlinks are eager: this slot
        // will be reused, and a dangling node would corrupt a live
        // producer's list. Youngest-first order means y's own waiters
        // (younger still) already unlinked themselves, and y's
        // producers (older) are still walkable.
        readySet.erase(last);
        ctrlSet.erase(last);
        finalCand.erase(last);
        if (y.isCtrl && y.resolvable && !y.resolvedForFetch) {
            VPIR_ASSERT(robUnresolvedCtrl > 0,
                        "unresolved-control counter underflow");
            --robUnresolvedCtrl;
        }
        unlinkWaiter(last, 0);
        unlinkWaiter(last, 1);
        unlinkFinWaiter(last, 0);
        unlinkFinWaiter(last, 1);
        // Stale wheel events for y are discarded on pop by the
        // (slot, seq) validity check.
    }
    while (!lsq.empty() &&
           (!refAlive(lsq.back().rob) || lsq.back().rob.seq > e.seq)) {
        lsq.pop_back();
    }
    while (!storeQ.empty() &&
           (!refAlive(storeQ.back()) || storeQ.back().seq > e.seq)) {
        storeQ.pop_back();
    }
    // Surviving entries keep their readiness, so the prefix only needs
    // clamping to the shortened queue.
    if (storeAddrPrefix > storeQ.size())
        storeAddrPrefix = storeQ.size();
    rebuildRename();

    state.rollback(e.postMark);

    // Repair the speculative predictor state: restore the snapshot
    // taken before this instruction predicted, then re-apply its own
    // effect with the outcome just used for the redirect.
    bpred.restore(e.bpCp);
    if (e.cls == InstClass::Branch)
        bpred.forceHistoryBit(e.curTaken);
    if (isCall(e.inst.op))
        bpred.redoCall(e.pc + 4);
    if (isReturn(e.inst))
        bpred.redoReturn();

    e.followedNextPC = redirect;
    fetchQueue.clear();
    fqResolvable = 0;
    fetchPC = redirect;
    fetchResumeCycle = curCycle + 1;
    fetchHalted = false;
    icacheStallUntil = 0;
}

// ------------------------------------------------------------ RB fill

void
Core::insertIntoRb(int slot)
{
    RobEntry &e = at(slot);
    if (e.cls == InstClass::Nop || e.isHalt)
        return;

    RbInsertInfo info;
    info.pc = e.pc;
    info.inst = e.inst;
    for (int k = 0; k < 2; ++k) {
        info.srcReg[k] = e.srcReg[k];
        info.srcVal[k] = e.exec.srcVals[k];
    }
    info.result = e.exec.out.result;
    info.result2 = e.exec.out.result2;
    info.taken = e.exec.out.taken;
    info.nextPC = e.exec.out.nextPC;
    info.memAddr = e.exec.out.memAddr;
    info.memValue = e.isLd ? e.exec.out.result : 0;

    // Injected RB faults. A corrupt result is handed straight to
    // dependants by any later matching probe (the reuse test validates
    // operands, not results). A corrupt operand value mis-fires more
    // rarely — only when a future probe's live operand equals the
    // corrupted value, which a single flipped low bit makes realistic
    // for counters — and then delivers a result from the wrong operand
    // context. Control outcomes are left intact so corruption surfaces
    // as a wrong committed value, not a wrong-path walk.
    if (injector.fireRbOperand()) {
        int k = static_cast<int>(injector.pick(2));
        if (info.srcReg[k] != REG_INVALID)
            info.srcVal[k] = injector.corrupt(info.srcVal[k]);
    }
    if (injector.fireRbResult()) {
        info.result = injector.corrupt(info.result);
        if (e.isLd)
            info.memValue = injector.corrupt(info.memValue);
    }

    RbRef ref = rb.insert(info);

    // Dependence pointers: exact program-order producers resolved
    // through the ROB (still-alive producers carry their RB entry).
    RbRef links[2];
    for (int k = 0; k < 2; ++k) {
        const RobRef &p = e.srcRob[k];
        if (refAlive(p)) {
            const RobEntry &pe = at(p.slot);
            if (pe.rbEntry.valid())
                links[k] = pe.rbEntry;
        }
    }
    // Injected fault: a corrupt dependence pointer. Dropping the link
    // severs the chain, which can only reduce S_{n+d} reuse — the
    // safe failure mode early validation is supposed to guarantee.
    if (injector.fireRbLink())
        links[injector.pick(2)] = RbRef{};
    rb.linkSources(ref, links);

    e.rbEntry = ref;
    e.rbInserted = true;
}

// -------------------------------------------------------------- commit

namespace
{

/** VPIR_BPRED_DEBUG=1: per-PC conditional mispredict histogram.
 *  Shared across cores; the sweep engine runs simulations on several
 *  threads, so updates take the mutex (only when the knob is set). */
std::map<Addr, std::pair<uint64_t, uint64_t>> bpredDebugMap;
std::mutex bpredDebugMu;

bool
bpredDebugEnabled()
{
    static const bool on = std::getenv("VPIR_BPRED_DEBUG") != nullptr;
    return on;
}

} // anonymous namespace

void
dumpBpredDebug()
{
    std::lock_guard<std::mutex> lk(bpredDebugMu);
    std::vector<std::pair<Addr, std::pair<uint64_t, uint64_t>>> v(
        bpredDebugMap.begin(), bpredDebugMap.end());
    std::sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
        return a.second.second > b.second.second;
    });
    for (size_t i = 0; i < v.size() && i < 12; ++i) {
        std::fprintf(stderr, "  pc=0x%x execs=%llu miss=%llu (%.1f%%)\n",
                     v[i].first,
                     static_cast<unsigned long long>(v[i].second.first),
                     static_cast<unsigned long long>(v[i].second.second),
                     100.0 * static_cast<double>(v[i].second.second) /
                         static_cast<double>(v[i].second.first));
    }
    bpredDebugMap.clear();
}

void
Core::trainPredictors(RobEntry &e)
{
    if (e.isCtrl) {
        bpred.update(e.pc, e.inst, e.exec.out.taken, e.exec.out.nextPC,
                     e.ghrUsed);
        if (e.cls == InstClass::Branch) {
            ++st.condBranches;
            if (e.predTaken != e.exec.out.taken)
                ++st.condMispredicted;
            if (bpredDebugEnabled()) {
                std::lock_guard<std::mutex> lk(bpredDebugMu);
                auto &d = bpredDebugMap[e.pc];
                ++d.first;
                if (e.predTaken != e.exec.out.taken)
                    ++d.second;
            }
        }
        if (isReturn(e.inst)) {
            ++st.returns;
            if (e.predNextPC != e.exec.out.nextPC)
                ++st.returnMispredicted;
        }
        if (e.resolvable && e.correctResolveAt != UINT64_MAX) {
            st.branchResLatSum += e.correctResolveAt - e.dispatchCycle;
            ++st.branchResCount;
        }
    }

    if (params.technique == Technique::VP ||
        params.technique == Technique::Hybrid) {
        if (producesResult(e.inst) && !e.isSt &&
            e.inst.rd != REG_INVALID) {
            vptResult.update(e.pc, e.exec.out.result, e.madePred);
            if (e.predicted) {
                ++st.vpResultPredicted;
                if (e.predValue == e.exec.out.result)
                    ++st.vpResultCorrect;
                else
                    ++st.vpResultWrong;
            }
        }
        if (e.isLd || e.isSt) {
            vptAddr.update(e.pc, e.exec.out.memAddr, e.madeAddrPred);
            if (e.addrPredicted) {
                ++st.vpAddrPredicted;
                if (e.addrPredValue == e.exec.out.memAddr)
                    ++st.vpAddrCorrect;
                else
                    ++st.vpAddrWrong;
            }
        }
    }
}

void
Core::recordCommitStats(RobEntry &e)
{
    ++st.committedInsts;
    if (e.isLd || e.isSt) {
        ++st.committedMemOps;
        if (e.isLd)
            ++st.committedLoads;
        else
            ++st.committedStores;
    }
    if (e.reused || e.reusedLate)
        ++st.reusedResults;
    if (e.isCtrl && e.resolvable) {
        ++st.resolvableControl;
        if (e.reused)
            ++st.reusedControl;
    }
    if (e.addrReused || ((e.reused || e.reusedLate) && (e.isLd || e.isSt)))
        ++st.reusedAddrs;
    if (e.execCount > 0) {
        unsigned b = static_cast<unsigned>(
            std::min(e.execCount, 4)) - 1;
        ++st.execCountHist[b];
    }
    trainPredictors(e);
}

void
Core::commitStage()
{
    unsigned commits = 0;
    while (commits < params.commitWidth && robUsed > 0 && !done) {
        RobEntry &e = at(robHead);
        if (!(e.finalized && e.finalizeAt <= curCycle) || e.inFlight) {
            // Head finalized but verification pending: the only
            // purely time-gated commit stall (idle-skip bound).
            if (e.finalized && !e.inFlight && e.finalizeAt > curCycle)
                noteWake(e.finalizeAt);
            break;
        }
        if (e.isCtrl && e.resolvable && !e.finalActionDone) {
            // SB resolutions mark final action lazily; the final
            // publication necessarily happened, so take it now.
            if (e.curNextPC == e.followedNextPC) {
                e.finalActionDone = true;
                ctrlSet.erase(robHead);
                cycleHadWork = true;
                if (e.correctResolveAt == UINT64_MAX)
                    e.correctResolveAt = curCycle;
            } else {
                break; // resolution pending; cannot commit yet
            }
        }
        if (params.irOracleCheck) {
            VPIR_ASSERT(!e.isCtrl ||
                            e.followedNextPC == e.exec.out.nextPC,
                        "committing a control instruction on a wrong path");
        }

        if (e.isHalt) {
            cycleHadWork = true;
            if (checker)
                checkRetired(e);
            done = true;
            st.haltedCleanly = true;
            ++st.committedInsts;
            // Discard still-buffered wrong-path/young writes so the
            // emulator state is exactly the architectural state at
            // the halt (end-state equivalence with pure emulation).
            state.rollback(e.postMark);
            break;
        }

        if (e.isSt) {
            if (dcachePortsUsed >= params.dcachePorts) {
                ++st.resourceRequests;
                ++st.resourceDenied;
                cycleHadWork = true;
                break;
            }
            ++dcachePortsUsed;
            dcache.access(e.curMemAddr);
        }

        if (params.auditInvariants)
            auditCommit(e);
        if (checker)
            checkRetired(e);
        recordCommitStats(e);
        state.retire(e.postMark);

        if (!lsq.empty() && refAlive(lsq.front().rob) &&
            lsq.front().rob.seq == e.seq) {
            lsq.pop_front();
        }
        if (e.isSt && !storeQ.empty() && storeQ.front().seq == e.seq) {
            storeQ.pop_front();
            if (storeAddrPrefix > 0) // committing store was ready
                --storeAddrPrefix;
        }

        DstRegs d = dstRegs(e.inst);
        for (RegId r : d.dst) {
            if (r != REG_INVALID && regProducer[r].slot == robHead &&
                regProducer[r].seq == e.seq) {
                regProducer[r] = RobRef{};
            }
        }

        // Committed entries are finalized and resolved, so they left
        // the scheduling sets already; the erases are idempotent
        // belt-and-braces before the slot is reused.
        readySet.erase(robHead);
        ctrlSet.erase(robHead);
        finalCand.erase(robHead);
        // Consumers still linked for re-publication wakes see the
        // committed value as architectural (and final) once the ref
        // dies, so the links dissolve. A never-woken operand counts
        // this as its publication. The finalize-waiter list drained
        // when this entry finalized; the walk is defensive.
        while (e.waiterHead >= 0) {
            int id = e.waiterHead;
            int cs = id / 2;
            bool seen = waiters[id].availSeen;
            unlinkWaiter(cs, id % 2);
            if (!seen && --at(cs).pendingOps == 0)
                readySet.insert(cs);
        }
        while (e.finWaiterHead >= 0) {
            int cs = e.finWaiterHead / 2;
            unlinkFinWaiter(cs, e.finWaiterHead % 2);
            finalCand.insert(cs); // re-arm rather than strand
        }
        e.valid = false;
        robHead = (robHead + 1) % static_cast<int>(params.robEntries);
        --robUsed;
        ++commits;
        cycleHadWork = true;
        // Consume the order-list head; compact once the dead prefix
        // reaches a full window (amortized O(1) per commit).
        ++orderHead;
        if (orderHead >= params.robEntries) {
            orderList.erase(orderList.begin(),
                            orderList.begin() +
                                static_cast<long>(orderHead));
            orderHead = 0;
        }

        if (st.committedInsts >= params.maxInsts)
            done = true;
    }
}

// --------------------------------------------------------- hardening

void
Core::checkRetired(const RobEntry &e)
{
    Retired r;
    r.seq = e.seq;
    r.cycle = curCycle;
    r.pc = e.pc;
    r.inst = e.inst;
    r.result = e.curResult;
    r.result2 = e.curResult2;
    r.nextPC = e.isCtrl ? e.curNextPC : e.pc + 4;
    r.memAddr = e.curMemAddr;
    // The timing model carries no separate store-data value; pass the
    // dispatch-time one so the checker still validates the replayed
    // store semantics against the original functional execution.
    r.storeValue = e.exec.out.storeValue;
    checker->onRetire(r);
}

void
Core::watchdogDump()
{
    std::ostringstream os;
    os << "watchdog: no instruction committed for "
       << (curCycle - lastCommitCycle) << " cycles (limit "
       << params.watchdogCycles << ")\n"
       << "  cycle " << curCycle << ", committed " << st.committedInsts
       << ", fetchPC 0x" << std::hex << fetchPC << std::dec
       << (fetchHalted ? " (fetch halted)" : "") << ", fetchQueue "
       << fetchQueue.size() << ", rob " << robUsed << "/"
       << params.robEntries << ", lsq " << lsq.size() << "\n";
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        os << "  [" << slot << "] seq " << e.seq << " pc 0x" << std::hex
           << e.pc << std::dec << " " << disassemble(e.inst)
           << (e.finalized ? " finalized" : "")
           << (e.inFlight ? " in-flight" : "")
           << (e.executedOnce ? "" : " never-executed")
           << (e.needsExec ? "" : " no-exec")
           << (e.hasValue ? "" : " no-value");
        if (e.isCtrl) {
            os << (e.finalActionDone ? " resolved" : " unresolved");
        }
        if (e.executedOnce) {
            os << " exec=" << e.execCount;
            os << std::hex << " used=[0x" << e.usedVals[0] << ",0x"
               << e.usedVals[1] << "] oracle=[0x" << e.exec.srcVals[0]
               << ",0x" << e.exec.srcVals[1] << "]";
            if (e.isLd || e.isSt) {
                os << " addr=0x" << e.curMemAddr << "/0x"
                   << e.exec.out.memAddr
                   << (e.addrPredicted ? " addr-pred" : "")
                   << (e.addrReused ? " addr-reused" : "");
            }
            os << std::dec;
        }
        os << "\n";
        return true;
    });
    panic(os.str());
}

// ------------------------------------------------------------- audits

void
Core::auditFail(const std::string &what) const
{
    panic("audit: " + what + " (cycle " + std::to_string(curCycle) +
          ", committed " + std::to_string(st.committedInsts) + ")");
}

void
Core::auditCommit(const RobEntry &e) const
{
    if (e.isHalt || e.cls == InstClass::Nop)
        return;
    // Late validation must have run its course: whatever value this
    // instruction is retiring with — predicted, reused, or computed —
    // has to equal its oracle execution along the fetched path. A
    // difference here is a wrong value escaping to architectural
    // state, the exact failure class VPIR_AUDIT exists to pin to a
    // cycle.
    if (producesResult(e.inst) && !e.isSt &&
        e.curResult != e.exec.out.result) {
        auditFail("committing seq " + std::to_string(e.seq) +
                  " with an unvalidated " +
                  (e.predicted ? std::string("predicted")
                   : (e.reused || e.reusedLate)
                       ? std::string("reused")
                       : std::string("computed")) +
                  " value (pc " + std::to_string(e.pc) + ", " +
                  disassemble(e.inst) + ")");
    }
    if (producesResult(e.inst) && !e.isSt && e.curResult2Valid &&
        e.inst.rd2 != REG_INVALID &&
        e.curResult2 != e.exec.out.result2) {
        auditFail("committing seq " + std::to_string(e.seq) +
                  " with an unvalidated secondary value");
    }
    if (!e.finalized || e.finalizeAt > curCycle || e.inFlight)
        auditFail("committing seq " + std::to_string(e.seq) +
                  " before it finalized");
}

void
Core::auditCycle() const
{
    // Occupancy bounds.
    if (robUsed > params.robEntries)
        auditFail("ROB occupancy above capacity");
    if (lsq.size() > params.lsqEntries)
        auditFail("LSQ occupancy above capacity");
    if (fetchQueue.size() > params.fetchQueueSize)
        auditFail("fetch queue above capacity");
    if (storeQ.size() > lsq.size())
        auditFail("store queue larger than the LSQ");
    if (storeAddrPrefix > storeQ.size())
        auditFail("store-address watermark beyond the store queue");

    // Instruction conservation: every sequence number dispatch handed
    // out is committed, squashed, or still live in the ROB.
    uint64_t dispatched = nextSeq - 1;
    if (dispatched != st.committedInsts + auditSquashed + robUsed) {
        auditFail("conservation: dispatched " +
                  std::to_string(dispatched) + " != committed " +
                  std::to_string(st.committedInsts) + " + squashed " +
                  std::to_string(auditSquashed) + " + in-flight " +
                  std::to_string(robUsed));
    }

    // ROB walk: the ring's live window must be valid entries with
    // strictly increasing sequence numbers and coherent flags.
    uint64_t prev_seq = 0;
    const char *rob_bad = nullptr;
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        if (!e.valid)
            rob_bad = "invalid entry inside the ROB's live window";
        else if (e.seq <= prev_seq)
            rob_bad = "ROB sequence numbers not strictly increasing";
        else if (e.finalized && e.inFlight)
            rob_bad = "entry both finalized and in flight";
        else if (e.seq >= nextSeq)
            rob_bad = "ROB entry with an unissued sequence number";
        prev_seq = e.seq;
        return rob_bad == nullptr;
    });
    if (rob_bad)
        auditFail(rob_bad);

    // The persistent order list's live window must mirror the ROB's
    // ring walk slot for slot (it replaces the per-cycle rebuild).
    if (orderList.size() - orderHead != robUsed) {
        auditFail("order list window size " +
                  std::to_string(orderList.size() - orderHead) +
                  " != ROB occupancy " + std::to_string(robUsed));
    }
    {
        size_t oi = orderHead;
        const char *ol_bad = nullptr;
        forEachInOrder([&](int slot) {
            if (orderList[oi++] != slot)
                ol_bad = "order list diverged from the ROB ring walk";
            return ol_bad == nullptr;
        });
        if (ol_bad)
            auditFail(ol_bad);
    }

    // Every LSQ/storeQ reference must point at a live ROB entry
    // (commit pops the head, squash pops the dead suffix).
    for (const LsqEntry &le : lsq) {
        if (!refAlive(le.rob))
            auditFail("LSQ entry references a dead ROB slot");
    }
    for (size_t i = 0; i < storeQ.size(); ++i) {
        if (!refAlive(storeQ[i]))
            auditFail("store queue references a dead ROB slot");
        if (i < storeAddrPrefix && !at(storeQ[i].slot).storeAddrReady)
            auditFail("address-unready store inside the watermark "
                      "prefix");
    }

    // Periodic structure sweeps (O(entries), too hot for every cycle).
    if ((curCycle & 0xfff) == 0) {
        std::string w = rb.audit();
        if (w.empty())
            w = vptResult.audit();
        if (w.empty())
            w = vptAddr.audit();
        if (!w.empty())
            auditFail(w);
    }

    auditSched();
}

void
Core::auditSched() const
{
    // Incremental counters against a full recount.
    unsigned unresolved = 0;
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        if (e.isCtrl && e.resolvable && !e.resolvedForFetch)
            ++unresolved;
        return true;
    });
    if (unresolved != robUnresolvedCtrl)
        auditFail("unresolved-control counter " +
                  std::to_string(robUnresolvedCtrl) + " != recount " +
                  std::to_string(unresolved));
    unsigned fq_res = 0;
    for (const FetchedInst &f : fetchQueue)
        fq_res += f.resolvable ? 1 : 0;
    if (fq_res != fqResolvable)
        auditFail("fetch-queue resolvable counter " +
                  std::to_string(fqResolvable) + " != recount " +
                  std::to_string(fq_res));

    // Ready-set completeness: any entry whose brute issue evaluation
    // would currently want execution — or that is polling toward a
    // wake-less transition (an NME entry waiting only on operand
    // finality) — must be a member (the set may hold a conservative
    // superset; the scan re-filters). Control-set membership is
    // exact: unresolved resolvable control, both ways.
    const char *bad = nullptr;
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        if (e.needsExec && !e.inFlight && !e.finalized) {
            bool all_avail = true;
            OperandView v[2];
            for (int k = 0; k < 2; ++k) {
                v[k] = operandView(slot, k, curCycle);
                all_avail = all_avail && v[k].avail;
            }
            bool arl = e.isLd && e.memAddrKnown &&
                       (e.addrReused || e.addrPredicted);
            if (all_avail || arl) {
                bool need;
                if (!e.executedOnce) {
                    need = true;
                } else {
                    bool changed = v[0].value != e.usedVals[0] ||
                                   v[1].value != e.usedVals[1];
                    bool addr_stale = e.isLd && all_avail &&
                                      e.curMemAddr !=
                                          e.exec.out.memAddr;
                    if (!changed && !addr_stale)
                        need = false;
                    else if (params.reexec == ReexecPolicy::Multiple ||
                             addr_stale)
                        need = true;
                    else // NME: membership persists until the single
                         // final re-execution happens (the finality
                         // flip that enables it has no wake)
                        need = e.execCount < 2;
                }
                if (need && !readySet.test(slot))
                    bad = "actionable entry missing from the ready set";
            }
        }
        bool unres = e.isCtrl && e.resolvable && !e.finalActionDone;
        if (unres != ctrlSet.test(slot))
            bad = unres ? "unresolved control missing from the "
                          "control set"
                        : "resolved control left in the control set";
        return bad == nullptr;
    });
    if (bad)
        auditFail(bad);

    // Finalize-candidate completeness: anything the brute finalize
    // walk would finalize right now must be a candidate. In Brute no
    // parking happens, so the stronger invariant holds: every
    // completed-unfinalized entry is a candidate.
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        if (!e.needsExec || !e.executedOnce || e.inFlight ||
            e.finalized || finalCand.test(slot)) {
            return true;
        }
        if (schedMode == SchedMode::Brute) {
            bad = "completed entry missing from the finalize-candidate "
                  "set";
            return false;
        }
        bool ops_final = true;
        for (int k = 0; k < 2; ++k)
            ops_final = ops_final &&
                        operandView(slot, k, curCycle).final;
        if (ops_final && e.usedVals[0] == e.exec.srcVals[0] &&
            e.usedVals[1] == e.exec.srcVals[1] &&
            !(e.isLd && e.curMemAddr != e.exec.out.memAddr)) {
            bad = "finalizable entry missing from the "
                  "finalize-candidate set";
        }
        return bad == nullptr;
    });
    if (bad)
        auditFail(bad);

    // Set members must be live entries still eligible for their set.
    // In-flight members are allowed: a wake landing mid-flight leaves
    // the entry in the set so the post-completion scan re-evaluates
    // it (the scan filters in-flight entries without erasing).
    readySet.forEach([&](int slot) {
        const RobEntry &e = at(slot);
        if (!e.valid || !e.needsExec || e.finalized)
            bad = "stale ready-set member";
        return bad == nullptr;
    });
    if (bad)
        auditFail(bad);
    ctrlSet.forEach([&](int slot) {
        if (!at(slot).valid)
            bad = "control-set member references a dead slot";
        return bad == nullptr;
    });
    if (bad)
        auditFail(bad);
    finalCand.forEach([&](int slot) {
        const RobEntry &e = at(slot);
        if (!e.valid || !e.needsExec || !e.executedOnce ||
            e.inFlight || e.finalized) {
            bad = "stale finalize-candidate member";
        }
        return bad == nullptr;
    });
    if (bad)
        auditFail(bad);

    // Waiter discipline: operand links are persistent — every operand
    // with a live in-window producer is linked until the consumer
    // finalizes (or dies) or the producer commits; availSeen mirrors
    // the operand view's availability, and pendingOps counts exactly
    // the not-yet-seen links. Finalize-waiter nodes park on a live,
    // not-yet-finalized producer and agree with the source ref.
    size_t in_flight = 0;
    forEachInOrder([&](int slot) {
        const RobEntry &e = at(slot);
        if (e.inFlight)
            ++in_flight;
        int pend = 0;
        for (int k = 0; k < 2; ++k) {
            const OpWaiter &w = waiters[slot * 2 + k];
            bool should_link = e.needsExec && !e.finalized &&
                               e.srcReg[k] != REG_INVALID &&
                               refAlive(e.srcRob[k]);
            if (w.prodSlot < 0) {
                if (should_link)
                    bad = "unlinked operand with a live producer";
                continue;
            }
            if (!should_link) {
                bad = "waiter link outlived its producer or consumer";
            } else if (e.srcRob[k].slot != w.prodSlot) {
                bad = "waiter link disagrees with the source ref";
            } else if (w.availSeen !=
                       operandView(slot, k, curCycle).avail) {
                bad = "waiter availSeen disagrees with the operand "
                      "view";
            }
            if (!w.availSeen)
                ++pend;

            const OpWaiter &fw = finWaiters[slot * 2 + k];
            if (fw.prodSlot >= 0) {
                if (!at(fw.prodSlot).valid ||
                    at(fw.prodSlot).finalized) {
                    bad = "finalize waiter parked on a dead or "
                          "finalized producer";
                } else if (e.srcRob[k].slot != fw.prodSlot ||
                           !refAlive(e.srcRob[k])) {
                    bad = "finalize-waiter link disagrees with the "
                          "source ref";
                }
            }
        }
        if (!bad && e.needsExec && !e.finalized && pend != e.pendingOps)
            bad = "pendingOps disagrees with the unseen waiter count";
        return bad == nullptr;
    });
    if (bad)
        auditFail(bad);

    // Every in-flight entry scheduled a completion event (stale events
    // from squashed incarnations may pad the wheel; pop validates).
    if (schedMode != SchedMode::Brute && wheel.size() < in_flight)
        auditFail("fewer wheel events than in-flight instructions");
}

// ---------------------------------------------------------------- run

bool
Core::cycle()
{
    if (done)
        return false;
    ckptBoundary = false;
    dcachePortsUsed = 0;
    // Per-cycle scheduler scratch: wake hints accumulate across the
    // stages below; cycleHadWork latches any observable activity and
    // vetoes the idle skip.
    schedWake = UINT64_MAX;
    cycleHadWork = false;
    ++prof.cyclesRun;
    namespace chr = std::chrono;
    chr::steady_clock::time_point t0;
    auto lap = [&](uint64_t &acc) {
        chr::steady_clock::time_point t1 = chr::steady_clock::now();
        acc += static_cast<uint64_t>(
            chr::duration_cast<chr::nanoseconds>(t1 - t0).count());
        t0 = t1;
    };
    if (prof.enabled)
        t0 = chr::steady_clock::now();
    processCompletions();
    finalizeScan();
    resolveControl();
    if (prof.enabled)
        lap(prof.executeNs);
    commitStage();
    if (prof.enabled)
        lap(prof.commitNs);
    if (!done) {
        issueStage();
        if (prof.enabled)
            lap(prof.issueNs);
        dispatchStage();
        if (prof.enabled)
            lap(prof.dispatchNs);
        fetchStage();
        if (prof.enabled)
            lap(prof.fetchNs);
    }
    // Checkpoint drain schedule: a pure function of commit progress.
    // Crossing the threshold gates fetch; the pipeline then empties
    // through normal commit and the boundary fires once quiesced. The
    // same bubbles occur whether or not anything is persisted, which
    // is what keeps resumed runs byte-identical to uninterrupted ones.
    if (params.ckptInsts && !done) {
        if (ckptDraining && quiescedForCkpt()) {
            ckptDraining = false;
            ckptBoundary = true;
            nextCkptAt = st.committedInsts + params.ckptInsts;
        } else if (!ckptDraining && st.committedInsts >= nextCkptAt) {
            ckptDraining = true;
        }
    }
    if (params.watchdogCycles && !done) {
        if (st.committedInsts != lastCommitInsts) {
            lastCommitInsts = st.committedInsts;
            lastCommitCycle = curCycle;
        } else if (curCycle - lastCommitCycle >= params.watchdogCycles) {
            watchdogDump();
        }
    }
    if (params.auditInvariants && !done) {
        if (curCycle == auditClobberCycle)
            ++st.committedInsts; // VPIR_TEST_AUDIT_CLOBBER: planted bug
        auditCycle();
    }
    // Cooperative per-cell deadline (the sweep's in-process timeout
    // mode, VPIR_CELL_TIMEOUT_MS): polled every 16K cycles so the
    // wall-clock read stays off the hot path.
    if ((curCycle & 0x3fff) == 0 && cellDeadlineExpired())
        panic("cell wall-clock deadline exceeded "
              "(VPIR_CELL_TIMEOUT_MS)");
    // Idle-cycle skipping (event-driven mode only): when nothing
    // observable happened this cycle, jump to the cycle before the
    // next possible action — the earliest wheel event or wake hint —
    // never past the watchdog trip, the planted audit clobber, the
    // next deadline-poll cycle, or the maxCycles budget. Skipped
    // cycles still count toward st.cycles, so every cycle-derived
    // observable matches the brute-force scheduler exactly.
    if (schedMode == SchedMode::Fast && !done && !cycleHadWork &&
        !ckptBoundary) {
        uint64_t target =
            std::min(schedWake, wheel.nextEventAt(curCycle));
        if (params.watchdogCycles)
            target = std::min(target,
                              lastCommitCycle + params.watchdogCycles);
        if (auditClobberCycle > curCycle)
            target = std::min(target, auditClobberCycle);
        if (cellDeadlineArmed())
            target = std::min(target, (curCycle | 0x3fff) + 1);
        uint64_t room = params.maxCycles - st.cycles; // >= 1 here
        uint64_t delta = 0;
        if (target == UINT64_MAX)
            delta = room - 1; // nothing pending: sprint to the budget
        else if (target > curCycle + 1)
            delta = std::min(target - curCycle - 1, room - 1);
        curCycle += delta;
        st.cycles += delta;
        prof.idleSkippedCycles += delta;
    }
    ++curCycle;
    ++st.cycles;
    if (st.cycles >= params.maxCycles)
        done = true;
    return !done;
}

const CoreStats &
Core::run()
{
    while (cycle()) {
    }
    return finishStats();
}

const CoreStats &
Core::finishStats()
{
    st.icacheAccesses = icache.accesses();
    st.icacheMisses = icache.misses();
    st.dcacheAccesses = dcache.accesses();
    st.dcacheMisses = dcache.misses();
    if (checker)
        st.checkedInsts = checker->checkedInsts();
    const FaultCounts &fc = injector.counts();
    st.faultsVptValue = fc.vptValue;
    st.faultsVptConf = fc.vptConf;
    st.faultsRbOperand = fc.rbOperand;
    st.faultsRbResult = fc.rbResult;
    st.faultsRbLink = fc.rbLink;
    st.faultsRbDropInv = fc.rbDropInv;
    return st;
}

// ------------------------------------------------------- checkpointing

bool
Core::quiescedForCkpt() const
{
    return robUsed == 0 && fetchQueue.empty() && lsq.empty() &&
           storeQ.empty() && state.journalDepth() == 0;
}

void
Core::saveCheckpoint(CkptWriter &w) const
{
    VPIR_ASSERT(quiescedForCkpt(),
                "checkpoint outside a quiesced commit boundary");
    w.u64(curCycle);
    w.u64(nextSeq);
    w.u32(fetchPC);
    w.u64(fetchResumeCycle);
    w.u64(icacheStallUntil);
    w.b(fetchHalted);
    w.u64(lastCommitCycle);
    w.u64(lastCommitInsts);
    w.u64(auditSquashed);
    w.u64(nextCkptAt);
    w.u32(static_cast<uint32_t>(robHead));
    sweep::forEachStatField(st,
        [&w](const char *, const uint64_t &v) { w.u64(v); });
    w.b(st.haltedCleanly);
    w.u32(emu.pc());
    w.b(emu.halted());
    state.serialize(w);
    icache.serialize(w);
    dcache.serialize(w);
    bpred.serialize(w);
    vptResult.serialize(w);
    vptAddr.serialize(w);
    rb.serialize(w);
    fus.serialize(w);
    injector.serialize(w);
    w.b(checker != nullptr);
    if (checker)
        checker->serialize(w);
}

bool
Core::restoreCheckpoint(CkptReader &r)
{
    curCycle = r.u64();
    nextSeq = r.u64();
    fetchPC = r.u32();
    fetchResumeCycle = r.u64();
    icacheStallUntil = r.u64();
    fetchHalted = r.b();
    lastCommitCycle = r.u64();
    lastCommitInsts = r.u64();
    auditSquashed = r.u64();
    nextCkptAt = r.u64();
    uint32_t head = r.u32();
    if (head >= params.robEntries) {
        r.fail();
        return false;
    }
    sweep::forEachStatField(st,
        [&r](const char *, uint64_t &v) { v = r.u64(); });
    st.haltedCleanly = r.b();
    emu.setPC(r.u32());
    // The halt latch is legitimate mid-run state: a wrong-path HALT
    // executed speculatively at dispatch sets it and nothing clears
    // it, so it travels verbatim.
    emu.setHalt(r.b());
    if (!state.deserialize(r) || !icache.deserialize(r) ||
        !dcache.deserialize(r) || !bpred.deserialize(r) ||
        !vptResult.deserialize(r) || !vptAddr.deserialize(r) ||
        !rb.deserialize(r) || !fus.deserialize(r) ||
        !injector.deserialize(r)) {
        return false;
    }
    if (r.b() != (checker != nullptr)) {
        r.fail();
        return false;
    }
    if (checker && !checker->deserialize(r))
        return false;
    if (!r.ok())
        return false;

    // The pipeline was empty at the boundary: reset all transient
    // structures rather than serializing their (empty) contents. The
    // ROB head position travels so physical slot allocation continues
    // exactly where the interrupted run's would have.
    robHead = static_cast<int>(head);
    robTail = robHead;
    robUsed = 0;
    for (RobEntry &e : rob)
        e.valid = false;
    lsq.clear();
    fetchQueue.clear();
    storeQ.clear();
    storeAddrPrefix = 0;
    orderList.clear();
    orderHead = 0;
    readySet.clear();
    ctrlSet.clear();
    finalCand.clear();
    wheel.clear();
    waiters.assign(waiters.size(), OpWaiter{});
    finWaiters.assign(finWaiters.size(), OpWaiter{});
    robUnresolvedCtrl = 0;
    fqResolvable = 0;
    schedWake = UINT64_MAX;
    cycleHadWork = false;
    for (RobRef &p : regProducer)
        p = RobRef{};
    dcachePortsUsed = 0;
    done = false;
    ckptDraining = false;
    ckptBoundary = false;
    return true;
}

} // namespace vpir
