/**
 * @file
 * The 4-way dynamically scheduled superscalar core (paper Table 1),
 * with pluggable Value Prediction and Instruction Reuse.
 *
 * Modelling approach (see DESIGN.md §5): the functional emulator runs
 * in dispatch order along the *fetched* path — wrong paths included —
 * via the undo journal, giving each dynamic instruction its
 * correct-for-that-path ("oracle") results at dispatch. Timing is
 * modelled on top: when values become available, which of them are
 * value-speculative, when predictions verify, and when branches
 * resolve. Executions with speculative inputs re-evaluate the
 * instruction semantics with the speculative values, so branches fed
 * by wrong predictions compute genuinely wrong outcomes and trigger
 * the paper's spurious squashes under SB resolution.
 */

#ifndef VPIR_CORE_CORE_HH
#define VPIR_CORE_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bpred/bpred.hh"
#include "check/checker.hh"
#include "check/fault.hh"
#include "common/event_wheel.hh"
#include "common/ring.hh"
#include "common/slot_set.hh"
#include "core/core_stats.hh"
#include "core/sched_profile.hh"
#include "core/fu_pool.hh"
#include "core/params.hh"
#include "emu/executor.hh"
#include "emu/state.hh"
#include "isa/decode.hh"
#include "mem/cache.hh"
#include "reuse/reuse_buffer.hh"
#include "vp/vpt.hh"

namespace vpir
{

/** Reference to a ROB slot guarded by a sequence number. */
struct RobRef
{
    int slot = -1;
    uint64_t seq = 0;

    bool valid() const { return slot >= 0; }
};

/** One in-flight instruction (reorder buffer / RUU entry). */
struct RobEntry
{
    bool valid = false;
    uint64_t seq = 0;           //!< dynamic sequence number
    Addr pc = 0;
    Instr inst;
    InstClass cls = InstClass::Nop;
    const DecodeInfo *di = nullptr; //!< static decode info, cached at
                                    //!< dispatch (never re-looked-up)
    ExecResult exec;            //!< oracle outcome along this path
    JournalMark postMark = 0;   //!< journal position after emu step
    uint64_t dispatchCycle = 0;

    // Renamed sources.
    RegId srcReg[2] = {REG_INVALID, REG_INVALID};
    RobRef srcRob[2];           //!< in-flight producers (invalid = arch)

    // Dataflow timing state.
    bool needsExec = true;      //!< occupies an FU when issued
    bool inFlight = false;      //!< execution outstanding
    uint64_t completeAt = 0;    //!< scheduled completion cycle
    bool executedOnce = false;
    int execCount = 0;
    bool hasValue = false;      //!< some value (pred/reuse/computed)
    uint64_t readyTime = 0;     //!< cycle the current value is usable
    bool finalized = false;     //!< value verified non-speculative
    uint64_t finalizeAt = UINT64_MAX;
    uint64_t usedVals[2] = {0, 0};   //!< operand values of last issue
    bool usedFinal[2] = {true, true};

    // Current (possibly speculative) values.
    uint64_t curResult = 0;
    uint64_t curResult2 = 0;
    bool curResult2Valid = false;
    bool curTaken = false;
    Addr curNextPC = 0;
    Addr curMemAddr = 0;
    bool memAddrKnown = false;  //!< address computed (or reused/pred)

    // Value prediction state.
    bool predicted = false;
    uint64_t predValue = 0;
    VptPrediction madePred;     //!< for VPT training
    bool addrPredicted = false;
    uint64_t addrPredValue = 0;
    VptPrediction madeAddrPred;

    // Instruction reuse state.
    bool reused = false;        //!< full result reuse
    bool addrReused = false;
    RbRef rbEntry;              //!< entry inserted to / reused from
    bool rbInserted = false;

    // Control state.
    bool isCtrl = false;
    bool resolvable = false;    //!< cond branch or indirect jump
    bool predTaken = false;     //!< fetch's predicted direction
    Addr predNextPC = 0;        //!< fetch's original prediction
    Addr followedNextPC = 0;    //!< path fetch currently follows
    uint32_t ghrUsed = 0;
    bool fromRas = false;
    BpredCheckpoint bpCp;
    bool pendingResolve = false;   //!< a publication needs SB action
    bool finalActionDone = false;  //!< final-outcome action happened
    bool resolvedForFetch = false; //!< counts against the 8-branch cap
    bool legitSquashCounted = false;
    uint64_t correctResolveAt = UINT64_MAX; //!< first oracle-consistent
                                            //!< resolution (Figure 4)

    // Pending execution outputs (published at completion).
    uint64_t pendResult = 0;
    uint64_t pendResult2 = 0;
    bool pendTaken = false;
    Addr pendNextPC = 0;
    Addr pendMemAddr = 0;

    bool reusedLate = false;    //!< Figure 3 late-validation reuse hit
    // Memory state.
    bool isLd = false;
    bool isSt = false;
    unsigned memSz = 0;
    bool storeAddrReady = false; //!< AGEN done (for disambiguation)

    bool isHalt = false;

    // Incremental-scheduler state (see DESIGN.md §13).
    /** Operands still waiting on a live producer's first publication;
     *  reaching zero moves the entry into the ready set. */
    int pendingOps = 0;
    /** Head of this entry's value-waiter list (consumers linked for
     *  publication wakeups), as an index into Core::waiters; -1 when
     *  empty. */
    int waiterHead = -1;
    /** Head of this entry's finalize-waiter list (consumers parked
     *  until this entry finalizes), indexing Core::finWaiters. */
    int finWaiterHead = -1;
};

/** Load/store queue entry. */
struct LsqEntry
{
    RobRef rob;
    bool isLoad = false;
};

/** Everything fetch hands to dispatch for one instruction. */
struct FetchedInst
{
    Addr pc = 0;
    Instr inst;
    const DecodeInfo *di = nullptr; //!< cached per static instruction
    bool isCtrl = false;
    bool resolvable = false; //!< cond branch or indirect jump
    Addr predNextPC = 0;
    bool predTaken = false;
    uint32_t ghrUsed = 0;
    bool fromRas = false;
    BpredCheckpoint bpCp;
};

/** Dump and reset the VPIR_BPRED_DEBUG per-PC histogram. */
void dumpBpredDebug();

/** The out-of-order core. */
class Core
{
  public:
    /**
     * @param warm  Optional post-warmup snapshot for the same
     *              (program, params.warmupInsts): the image load and
     *              functional warmup are replaced by an O(pages)
     *              copy-on-write clone. Must have been built by
     *              makeWarmSnapshot() on the same program with the
     *              same warmup length; the resulting machine is
     *              bit-identical to a cold-started one.
     */
    Core(const CoreParams &params, const Program &program,
         const EmuSnapshot *warm = nullptr);

    /** Run until halt or the configured limits; returns final stats. */
    const CoreStats &run();

    /** Advance one cycle. @return false when the run is over. */
    bool cycle();

    /** Fill the derived counters (cache totals, checker/fault counts)
     *  into the stats and return them. Idempotent; run() calls it, and
     *  external cycle() drivers (sim/checkpoint.cc) call it once the
     *  run is over. */
    const CoreStats &finishStats();

    // --- mid-run checkpointing (params.ckptInsts) -------------------
    /**
     * True right after a cycle() that completed a scheduled drain: the
     * pipeline is empty, all speculation is retired or rolled back,
     * and the machine may be serialized. Cleared by the next cycle().
     */
    bool atCkptBoundary() const { return ckptBoundary; }

    /** Serialize the quiesced machine (architectural state, tables,
     *  stats, RNG streams). Only legal when atCkptBoundary(). */
    void saveCheckpoint(CkptWriter &w) const;

    /**
     * Restore a saveCheckpoint() bundle into a freshly constructed
     * core for the same (params, program). @return false (reader
     * failed) on any geometry or invariant mismatch; the core must
     * then be discarded (cold restart), not run.
     */
    bool restoreCheckpoint(CkptReader &r);

    const CoreStats &stats() const { return st; }
    /** Per-stage cycle profile (VPIR_PROFILE=1; idle-skip counter is
     *  always live). Host-dependent — never part of CoreStats. */
    const SchedProfile &schedProfile() const { return prof; }
    uint64_t now() const { return curCycle; }
    /** Highest dynamic sequence number handed out so far. */
    uint64_t seqAllocated() const { return nextSeq - 1; }
    EmuState &emuState() { return state; }

  private:
    // --- pipeline stages (called in this order each cycle) ----------
    void processCompletions();
    void finalizeScan();
    void resolveControl();
    void commitStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // --- helpers -------------------------------------------------------
    RobEntry &at(int slot) { return rob[slot]; }
    const RobEntry &at(int slot) const { return rob[slot]; }
    bool refAlive(const RobRef &r) const;
    int allocRob();

    /** Visit live ROB slots oldest-first until @p fn returns false.
     *  A template (not std::function) — this runs every cycle and
     *  must not allocate. */
    template <typename Fn>
    void
    forEachInOrder(Fn &&fn) const
    {
        int slot = robHead;
        for (unsigned i = 0; i < robUsed; ++i) {
            if (!fn(slot))
                return;
            slot = (slot + 1) % static_cast<int>(params.robEntries);
        }
    }

    /** Decode info of the text instruction at @p pc (must be valid). */
    const DecodeInfo *
    decodeAt(Addr pc) const
    {
        return decodeCache[(pc - prog.textBase) / 4];
    }

    /** Value of register @p reg as produced by entry @p e. */
    uint64_t entryValueFor(const RobEntry &e, RegId reg) const;
    /** Is @p reg's value from producer @p e available at @p t? */
    bool entryValueAvail(const RobEntry &e, RegId reg, uint64_t t) const;

    struct OperandView
    {
        bool avail = false;
        bool final = false;
        uint64_t value = 0;
    };
    /** Current dataflow view of operand @p k of entry @p slot. */
    OperandView operandView(int slot, int k, uint64_t t) const;

    /** Advance the store-address-ready watermark past every ready
     *  store; call after any store's storeAddrReady flips true. */
    void noteStoreAddrReady();
    /** Sequence of the oldest in-flight store whose address is still
     *  unknown (UINT64_MAX if none): O(1) against the watermark.
     *  Under VPIR_LSQ_XCHECK, cross-checked against a full LSQ scan. */
    uint64_t oldestUnknownStoreSeq() const;

    void issueEntry(int slot);
    void completeEntry(int slot);
    void doResolve(int slot, Addr computed_next, bool is_final);
    void squashAfter(int slot, Addr redirect);
    void rebuildRename();
    unsigned unresolvedBranches() const;
    void tryDispatchReuse(int slot);
    void tryDispatchPredict(int slot);
    bool loadMayAccess(int slot, bool &forward, RobRef &conflict) const;
    void insertIntoRb(int slot);

    // --- incremental scheduling (DESIGN.md §13) ---------------------
    /** Register the freshly dispatched entry with the scheduler:
     *  waiter links for unavailable operands, ready-set membership,
     *  control-set membership, unresolved-branch counter. */
    void schedOnDispatch(int slot);
    /** Link consumer operand (@p cslot, @p k) into @p pslot's waiter
     *  list. */
    void linkWaiter(int cslot, int k, int pslot);
    /** Unlink consumer operand (@p cslot, @p k) from wherever it is
     *  linked; no-op when unlinked. */
    void unlinkWaiter(int cslot, int k);
    /** Producer @p prodSlot just published: re-check its waiters and
     *  move newly unblocked consumers into the ready set. */
    void wakeWaiters(int prodSlot);
    /** Park consumer operand (@p cslot, @p k) on @p pslot's
     *  finalize-waiter list (woken when the producer finalizes). */
    void linkFinWaiter(int cslot, int k, int pslot);
    /** Unlink (@p cslot, @p k) from its finalize-waiter list; no-op
     *  when unlinked. */
    void unlinkFinWaiter(int cslot, int k);
    /** Schedule a finalize-recheck event for @p slot at @p at. */
    void scheduleRefinal(int slot, uint64_t at);
    /** Mark @p e resolved for the fetch-side branch cap, keeping the
     *  unresolved-control counter in step. */
    void noteResolvedForFetch(RobEntry &e);
    /** Members of @p s in program (sequence) order, into @p out. */
    void collectInOrder(const SlotSet &s, std::vector<int> &out) const;
    /** Record a cycle at which a time gate opens (idle-skip bound). */
    void
    noteWake(uint64_t at) const
    {
        if (at < schedWake)
            schedWake = at;
    }
    /** Scheduler-structure audit (ready/control sets, waiter links,
    *   counters vs brute-force recomputation). */
    void auditSched() const;

    void recordCommitStats(RobEntry &e);
    void trainPredictors(RobEntry &e);
    void checkRetired(const RobEntry &e);
    [[noreturn]] void watchdogDump();

    // --- invariant audits (params.auditInvariants / VPIR_AUDIT) -----
    /** End-of-cycle structural audit: instruction conservation,
     *  occupancy bounds, ROB ordering, LSQ/storeQ liveness, and
     *  (periodically) RB/VPT entry sanity. Panics at the cycle of
     *  first corruption. */
    void auditCycle() const;
    /** Commit-side audit: no instruction may retire carrying an
     *  unvalidated (wrong) predicted or reused value. */
    void auditCommit(const RobEntry &e) const;
    [[noreturn]] void auditFail(const std::string &what) const;

    // --- configuration / substrate ----------------------------------
    CoreParams params;
    const Program &prog;
    EmuState state;
    Emulator emu;
    Cache icache;
    Cache dcache;
    BranchPredUnit bpred;
    Vpt vptResult;
    Vpt vptAddr;
    ReuseBuffer rb;
    FuPool fus;
    FaultInjector injector;
    std::unique_ptr<LockstepChecker> checker;

    // --- machine state ----------------------------------------------
    /** DecodeInfo per static instruction, built once at construction
     *  so the pipeline never re-decodes a dynamic instruction. */
    std::vector<const DecodeInfo *> decodeCache;
    /**
     * Program-order list of live ROB slots, maintained incrementally
     * instead of being rebuilt from a ring walk every cycle: dispatch
     * appends, commit advances orderHead (compacting periodically so
     * the vector stays bounded), and squash pops the dead suffix. The
     * live window orderList[orderHead..] always equals a
     * forEachInOrder() walk; auditCycle() checks exactly that.
     */
    std::vector<int> orderList;
    size_t orderHead = 0;

    // --- incremental scheduler (DESIGN.md §13) ----------------------
    /** How issue/complete/finalize/resolve find their candidates.
     *  Fast uses the ready set + event wheel + idle-cycle skipping;
     *  Brute runs the legacy full scans (perf baseline, and the
     *  reference the fast path must match byte-for-byte); Xcheck
     *  takes fast-path decisions while re-running the brute scans
     *  each cycle and asserting agreement (no idle skipping, so every
     *  cycle is checked). Env-selected (VPIR_SCHED_XCHECK wins over
     *  VPIR_SCHED_BRUTE), never a CoreParams field: cell hashes,
     *  caches, and stdout stay identical across modes. */
    enum class SchedMode { Fast, Brute, Xcheck };
    SchedMode schedMode = SchedMode::Fast;
    /** Slots that might issue: operands plausibly ready, or an
     *  addr-reused/predicted load. Conservative superset of the brute
     *  issue scan's side-effect reachers; entries the scan finds
     *  unactionable drop out and are re-inserted by the next relevant
     *  wakeup (operand publication). */
    SlotSet readySet;
    /** Unresolved resolvable control entries (resolution candidates);
     *  emptied per entry once its final action is done. */
    SlotSet ctrlSet;
    /** Finalize candidates: completed entries whose finalize check is
     *  worth running. A failed check parks the entry — on a
     *  producer's finalize-waiter list, or on a timed wheel recheck —
     *  instead of polling (Fast/Xcheck; Brute keeps the entry in and
     *  polls nothing since it walks the window anyway). */
    SlotSet finalCand;
    /** Completion + finalize-recheck events keyed by due cycle. Fed
     *  in Fast/Xcheck; Brute keeps it empty and scans instead. */
    EventWheel wheel;
    /** Waiter node per (consumer slot, operand): doubly linked into
     *  the producer's RobEntry::waiterHead list. Node id is
     *  slot * 2 + k; prodSlot < 0 means unlinked. Links persist from
     *  dispatch until the consumer finalizes (or dies) or the
     *  producer commits: every publication by the producer re-wakes
     *  the consumer into the ready set, which is what lets the issue
     *  scan drop quiescent entries without missing a re-execution. */
    struct OpWaiter
    {
        int prev = -1;
        int next = -1;
        int prodSlot = -1;
        /** The operand has been seen available (pendingOps was
         *  decremented for it); availability is monotone per ROB
         *  incarnation. */
        bool availSeen = false;
    };
    std::vector<OpWaiter> waiters;
    /** Finalize-waiter nodes, same shape and id scheme as waiters
     *  (availSeen unused): consumer (slot, k) parked on the
     *  producer's RobEntry::finWaiterHead until it finalizes. */
    std::vector<OpWaiter> finWaiters;
    /** Live counts replacing unresolvedBranches()'s full walks. */
    unsigned robUnresolvedCtrl = 0;
    unsigned fqResolvable = 0;
    /** Earliest cycle any time gate evaluated this cycle could open
     *  (producer finalizeAt, fetch stall end, commit-head wait);
     *  bounds the idle skip. Reset each cycle; mutable because const
     *  evaluation paths (operandView) record hints. */
    mutable uint64_t schedWake = UINT64_MAX;
    /** Any state mutation this cycle? Idle skipping requires none. */
    bool cycleHadWork = false;
    /** Scratch for candidate collection (no per-cycle allocation). */
    std::vector<int> schedScratch;
    std::vector<WheelEvent> dueScratch;
    std::vector<int> xcheckScratch;
    SchedProfile prof;

    std::vector<RobEntry> rob;
    int robHead = 0;
    int robTail = 0; //!< next free slot
    unsigned robUsed = 0;
    Ring<LsqEntry> lsq;
    Ring<FetchedInst> fetchQueue;
    /** Stores of the lsq in program order: the disambiguation scans
     *  only ever look at stores, so they walk this instead. */
    Ring<RobRef> storeQ;
    /** storeQ[0, storeAddrPrefix) all have storeAddrReady; the entry
     *  at storeAddrPrefix (when present) does not. Monotone within a
     *  store's lifetime; commit shifts it down, squash clamps it. */
    size_t storeAddrPrefix = 0;
    bool lsqXcheck = false; //!< VPIR_LSQ_XCHECK: brute-force verify
    RobRef regProducer[NUM_ARCH_REGS];

    Addr fetchPC;
    uint64_t fetchResumeCycle = 0;
    uint64_t icacheStallUntil = 0;
    bool fetchHalted = false; //!< stopped at HALT or invalid PC

    uint64_t curCycle = 0;
    uint64_t nextSeq = 1;
    unsigned dcachePortsUsed = 0; //!< this cycle
    bool done = false;

    // Watchdog progress tracking.
    uint64_t lastCommitCycle = 0;
    uint64_t lastCommitInsts = 0;

    // --- checkpoint drain state (params.ckptInsts) ------------------
    /** True when the pipeline is empty at a commit boundary with no
     *  live journal speculation. */
    bool quiescedForCkpt() const;
    /** Fetch is gated off while the pipeline drains to a boundary. */
    bool ckptDraining = false;
    /** Set for exactly the cycle() that reached the boundary. */
    bool ckptBoundary = false;
    /** Committed-instruction count that triggers the next drain. The
     *  schedule is a pure function of commit progress, so interrupted
     *  and uninterrupted runs drain at identical points. */
    uint64_t nextCkptAt = UINT64_MAX;

    /** Dispatched entries dropped by squashes, for the conservation
     *  audit (dispatched == committed + squashed + in-ROB). */
    uint64_t auditSquashed = 0;
    /** VPIR_TEST_AUDIT_CLOBBER: cycle at which to deliberately break
     *  a conservation law, proving the audit catches corruption. */
    uint64_t auditClobberCycle = UINT64_MAX;

    CoreStats st;
};

} // namespace vpir

#endif // VPIR_CORE_CORE_HH
