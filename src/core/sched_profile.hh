/**
 * @file
 * Per-stage cycle profiler (VPIR_PROFILE=1).
 *
 * Wall-clock time spent inside each pipeline stage of Core::cycle,
 * plus how many cycles ran versus were skipped by the idle-cycle
 * fast-forward. Lives outside CoreStats on purpose: the nanosecond
 * fields are host-dependent and idleSkippedCycles differs between the
 * event-driven and brute-force schedulers, so folding them into the
 * deterministic stats block would break stats byte-identity, the
 * result-cache fingerprint, and checkpoint round-trips. The sweep
 * engine carries the profile through the fork wire protocol as plain
 * integers and emits it per cell into bench_timing.*.json.
 */

#ifndef VPIR_CORE_SCHED_PROFILE_HH
#define VPIR_CORE_SCHED_PROFILE_HH

#include <cstdint>

namespace vpir
{

struct SchedProfile
{
    uint64_t fetchNs = 0;
    uint64_t dispatchNs = 0;
    uint64_t issueNs = 0;
    /** Completion + finalize + control-resolution walks. */
    uint64_t executeNs = 0;
    uint64_t commitNs = 0;
    /** Cycles the simulator actually stepped through. */
    uint64_t cyclesRun = 0;
    /** Cycles fast-forwarded by the idle skipper (always counted,
     *  even when nanosecond timing is off). */
    uint64_t idleSkippedCycles = 0;
    /** True when VPIR_PROFILE=1 armed nanosecond timing. */
    bool enabled = false;
};

/** Visit every integer field with its JSON/wire name; keeps the fork
 *  wire protocol and the timing-JSON emitter on one field list. */
template <typename P, typename F>
void
forEachProfileField(P &p, F f)
{
    f("fetch_ns", p.fetchNs);
    f("dispatch_ns", p.dispatchNs);
    f("issue_ns", p.issueNs);
    f("execute_ns", p.executeNs);
    f("commit_ns", p.commitNs);
    f("cycles_run", p.cyclesRun);
    f("idle_skipped_cycles", p.idleSkippedCycles);
}

} // namespace vpir

#endif // VPIR_CORE_SCHED_PROFILE_HH
