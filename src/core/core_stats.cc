#include "core/core_stats.hh"

namespace vpir
{

void
CoreStats::exportTo(StatSet &out) const
{
    out.set("cycles", static_cast<double>(cycles));
    out.set("committed_insts", static_cast<double>(committedInsts));
    out.set("committed_mem_ops", static_cast<double>(committedMemOps));
    out.set("committed_loads", static_cast<double>(committedLoads));
    out.set("committed_stores", static_cast<double>(committedStores));
    out.set("ipc", ipc());
    out.set("executed_insts", static_cast<double>(executedInsts));
    out.set("squashed_executed", static_cast<double>(squashedExecuted));
    out.set("squashed_recovered",
            static_cast<double>(squashedRecovered));
    out.set("branch_squashes", static_cast<double>(branchSquashes));
    out.set("spurious_squashes", static_cast<double>(spuriousSquashes));
    out.set("cond_branches", static_cast<double>(condBranches));
    out.set("cond_mispredicted", static_cast<double>(condMispredicted));
    out.set("returns", static_cast<double>(returns));
    out.set("return_mispredicted",
            static_cast<double>(returnMispredicted));
    out.set("branch_res_lat_sum",
            static_cast<double>(branchResLatSum));
    out.set("branch_res_count", static_cast<double>(branchResCount));
    out.set("branch_res_lat_avg",
            ratio(static_cast<double>(branchResLatSum),
                  static_cast<double>(branchResCount)));
    out.set("resource_requests",
            static_cast<double>(resourceRequests));
    out.set("resource_denied", static_cast<double>(resourceDenied));
    out.set("resource_contention",
            ratio(static_cast<double>(resourceDenied),
                  static_cast<double>(resourceRequests)));
    for (int i = 0; i < 4; ++i) {
        out.set("exec_count_" + std::to_string(i + 1),
                static_cast<double>(execCountHist[i]));
    }
    out.set("reused_results", static_cast<double>(reusedResults));
    out.set("reused_control", static_cast<double>(reusedControl));
    out.set("resolvable_control",
            static_cast<double>(resolvableControl));
    out.set("reused_addrs", static_cast<double>(reusedAddrs));
    out.set("vp_result_predicted",
            static_cast<double>(vpResultPredicted));
    out.set("vp_result_correct", static_cast<double>(vpResultCorrect));
    out.set("vp_result_wrong", static_cast<double>(vpResultWrong));
    out.set("vp_addr_predicted",
            static_cast<double>(vpAddrPredicted));
    out.set("vp_addr_correct", static_cast<double>(vpAddrCorrect));
    out.set("vp_addr_wrong", static_cast<double>(vpAddrWrong));
    out.set("value_mispredict_events",
            static_cast<double>(valueMispredictEvents));
    out.set("icache_accesses", static_cast<double>(icacheAccesses));
    out.set("icache_misses", static_cast<double>(icacheMisses));
    out.set("dcache_accesses", static_cast<double>(dcacheAccesses));
    out.set("dcache_misses", static_cast<double>(dcacheMisses));
    out.set("checked_insts", static_cast<double>(checkedInsts));
    out.set("faults_vpt_value", static_cast<double>(faultsVptValue));
    out.set("faults_vpt_conf", static_cast<double>(faultsVptConf));
    out.set("faults_rb_operand", static_cast<double>(faultsRbOperand));
    out.set("faults_rb_result", static_cast<double>(faultsRbResult));
    out.set("faults_rb_link", static_cast<double>(faultsRbLink));
    out.set("faults_rb_dropinv", static_cast<double>(faultsRbDropInv));
    out.set("halted_cleanly", haltedCleanly ? 1.0 : 0.0);
}

} // namespace vpir
