/**
 * @file
 * Table 4: % increase in the number of control squashes due to
 * spurious branch mispredictions (speculative branch resolution
 * only; NSB configurations do not change the squash count).
 */

#include "bench/bench_util.hh"
#include "bench/paper_ref.hh"

using namespace vpir;
using namespace vpir::bench;

namespace
{

/** % increase of squashes over the non-spurious squashes. */
double
increasePct(const CoreStats &vp)
{
    uint64_t legit = vp.branchSquashes - vp.spuriousSquashes;
    return legit ? 100.0 * static_cast<double>(vp.spuriousSquashes) /
                       static_cast<double>(legit)
                 : 0.0;
}

} // anonymous namespace

int
main()
{
    banner("Table 4",
           "percent increase in control squashes (spurious "
           "mispredictions)");
    Runner runner;
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "magic-me-sb",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0));
        runner.prefetch(name, "magic-nme-sb",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::Speculative, 0));
        runner.prefetch(name, "lvp-me-sb",
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0));
        runner.prefetch(name, "lvp-nme-sb",
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                                 BranchResolution::Speculative, 0));
    }

    TextTable t({"bench", "Magic ME-SB", "(p)", "Magic NME-SB", "(p)",
                 "LVP ME-SB", "(p)", "LVP NME-SB", "(p)"});
    for (const auto &name : workloadNames()) {
        const CoreStats &m_me = runner.run(
            name, "magic-me-sb",
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, 0));
        const CoreStats &m_nme = runner.run(
            name, "magic-nme-sb",
            vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                     BranchResolution::Speculative, 0));
        const CoreStats &l_me = runner.run(
            name, "lvp-me-sb",
            vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, 0));
        const CoreStats &l_nme = runner.run(
            name, "lvp-nme-sb",
            vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                     BranchResolution::Speculative, 0));
        const paper::Table4Row &ref = paper::table4.at(name);
        t.addRow({name, TextTable::num(increasePct(m_me), 1),
                  TextTable::num(ref.magicMeSb, 1),
                  TextTable::num(increasePct(m_nme), 1),
                  TextTable::num(ref.magicNmeSb, 1),
                  TextTable::num(increasePct(l_me), 1),
                  TextTable::num(ref.lvpMeSb, 1),
                  TextTable::num(increasePct(l_nme), 1),
                  TextTable::num(ref.lvpNmeSb, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape checks: VP_LVP causes a much larger increase "
                "than VP_Magic (its\nvalue misprediction rate is "
                "higher); NME trims the ME numbers slightly.\n");
    return exitStatus();
}
