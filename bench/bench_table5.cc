/**
 * @file
 * Table 5: executed instructions squashed by branch mispredictions,
 * and the fraction of that squashed work IR recovers from the reuse
 * buffer.
 */

#include "bench/bench_util.hh"
#include "bench/paper_ref.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Table 5",
           "executed instructions squashed, and squashed work "
           "recovered by IR");
    Runner runner;
    for (const auto &name : workloadNames())
        runner.prefetch(name, "ir", irConfig());

    TextTable t({"bench", "insts exec(K)", "squashed %", "(p)",
                 "recovered %", "(p)"});
    for (const auto &name : workloadNames()) {
        const CoreStats &ir = runner.run(name, "ir", irConfig());
        const paper::Table5Row &ref = paper::table5.at(name);
        double squashed_pct =
            pct(static_cast<double>(ir.squashedExecuted),
                static_cast<double>(ir.executedInsts));
        double recovered_pct =
            pct(static_cast<double>(ir.squashedRecovered),
                static_cast<double>(ir.squashedExecuted));
        t.addRow({name,
                  TextTable::num(ir.executedInsts / 1000.0, 0),
                  TextTable::num(squashed_pct, 1),
                  TextTable::num(ref.execSquashedPct, 1),
                  TextTable::num(recovered_pct, 1),
                  TextTable::num(ref.squashRecoveredPct, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape check: a significant share of squashed "
                "executed work (paper: ~28-54%%)\nis recovered "
                "through the reuse buffer.\n");
    return exitStatus();
}
