/**
 * @file
 * Figure 4: branch resolution latency (decode -> final resolution),
 * normalised to the base machine, for VP {ME,NME} x {SB,NSB} at 0-
 * and 1-cycle verification latency, and for IR (same bars in both
 * halves).
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

namespace
{

void
prefetchHalf(Runner &runner, unsigned lat)
{
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "base", baseConfig());
        std::string l = std::to_string(lat);
        runner.prefetch(name, "magic-me-sb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, lat));
        runner.prefetch(name, "magic-nme-sb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::Speculative, lat));
        runner.prefetch(name, "magic-me-nsb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::NonSpeculative, lat));
        runner.prefetch(name, "magic-nme-nsb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::NonSpeculative, lat));
        runner.prefetch(name, "ir", irConfig());
    }
}

void
half(Runner &runner, unsigned lat)
{
    std::printf("--- %u-cycle VP-verification latency ---\n", lat);
    TextTable t({"bench", "ME-SB", "NME-SB", "ME-NSB", "NME-NSB",
                 "reuse-n+d"});
    for (const auto &name : workloadNames()) {
        const CoreStats &base =
            runner.run(name, "base", baseConfig());
        double b = branchResLat(base);
        auto norm = [&](const CoreStats &s) {
            return TextTable::num(b > 0 ? branchResLat(s) / b : 0.0,
                                  3);
        };
        std::string l = std::to_string(lat);
        const CoreStats &me_sb = runner.run(
            name, "magic-me-sb-" + l,
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, lat));
        const CoreStats &nme_sb = runner.run(
            name, "magic-nme-sb-" + l,
            vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                     BranchResolution::Speculative, lat));
        const CoreStats &me_nsb = runner.run(
            name, "magic-me-nsb-" + l,
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::NonSpeculative, lat));
        const CoreStats &nme_nsb = runner.run(
            name, "magic-nme-nsb-" + l,
            vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                     BranchResolution::NonSpeculative, lat));
        const CoreStats &ir = runner.run(name, "ir", irConfig());
        t.addRow({name, norm(me_sb), norm(nme_sb), norm(me_nsb),
                  norm(nme_nsb), norm(ir)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // anonymous namespace

int
main()
{
    banner("Figure 4",
           "branch resolution latency, normalised to base (< 1.0 "
           "is better)");
    Runner runner;
    prefetchHalf(runner, 0);
    prefetchHalf(runner, 1);
    half(runner, 0);
    half(runner, 1);
    std::printf("shape checks: all configurations reduce the latency; "
                "SB reduces it more\nthan NSB; with 1-cycle "
                "verification the NSB reduction shrinks toward the\n"
                "base; the reuse bars are identical in both halves "
                "and among the lowest.\n");
    return exitStatus();
}
