/**
 * @file
 * Table 6: percent of committed instructions executed once, twice,
 * and three times under VP_Magic ME-SB with 1-cycle verification
 * latency.
 */

#include "bench/bench_util.hh"
#include "bench/paper_ref.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Table 6", "instructions executed 1 / 2 / 3 times "
                      "(VP_Magic, ME-SB, 1-cycle)");
    Runner runner;
    for (const auto &name : workloadNames())
        runner.prefetch(name, "magic-me-sb-1",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 1));

    TextTable t({"bench", "1x", "(p)", "2x", "(p)", "3x", "(p)",
                 ">=4x"});
    for (const auto &name : workloadNames()) {
        const CoreStats &st = runner.run(
            name, "magic-me-sb-1",
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, 1));
        uint64_t total = st.execCountHist[0] + st.execCountHist[1] +
                         st.execCountHist[2] + st.execCountHist[3];
        auto share = [&](int i) {
            return TextTable::num(
                pct(static_cast<double>(st.execCountHist[i]),
                    static_cast<double>(total)),
                1);
        };
        const paper::Table6Row &ref = paper::table6.at(name);
        t.addRow({name, share(0), TextTable::num(ref.once, 1),
                  share(1), TextTable::num(ref.twice, 1), share(2),
                  TextTable::num(ref.thrice, 1), share(3)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape check: very few instructions execute more "
                "than twice, which is\nwhy restricting re-execution "
                "(NME) barely changes performance.\n");
    return exitStatus();
}
