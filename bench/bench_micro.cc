/**
 * @file
 * Microbenchmarks (google-benchmark) for the hardware-structure
 * models and the simulator itself: operations per second for VPT
 * predict/update, RB probe/insert, cache accesses, gshare rounds,
 * functional emulation, and whole-pipeline simulation.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bpred/bpred.hh"
#include "common/rng.hh"
#include "mem/cache.hh"
#include "reuse/reuse_buffer.hh"
#include "sim/simulator.hh"
#include "sim/warm_cache.hh"
#include "vp/vpt.hh"

using namespace vpir;

namespace
{

void
BM_VptPredictUpdate(benchmark::State &state)
{
    Vpt vpt;
    Rng rng(1);
    uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + static_cast<Addr>((i % 512) * 4);
        uint64_t v = (i >> 9) & 3;
        VptPrediction p = vpt.predict(pc, v);
        vpt.update(pc, v, p);
        benchmark::DoNotOptimize(p.value);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VptPredictUpdate);

void
BM_RbProbeInsert(benchmark::State &state)
{
    ReuseBuffer rb;
    Instr add;
    add.op = Op::ADD;
    add.rd = 3;
    add.rs = 1;
    add.rt = 2;
    uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + static_cast<Addr>((i % 512) * 4);
        uint64_t a = (i >> 9) & 3;
        RbOperandQuery q[2];
        q[0].reg = 1;
        q[0].ready = true;
        q[0].value = a;
        q[1].reg = 2;
        q[1].ready = true;
        q[1].value = a + 1;
        RbProbeResult r = rb.probe(pc, add, q);
        if (!r.resultReused) {
            RbInsertInfo info;
            info.pc = pc;
            info.inst = add;
            info.srcReg[0] = 1;
            info.srcReg[1] = 2;
            info.srcVal[0] = a;
            info.srcVal[1] = a + 1;
            info.result = 2 * a + 1;
            rb.insert(info);
        }
        benchmark::DoNotOptimize(r.resultReused);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RbProbeInsert);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache c(CacheParams{64 * 1024, 2, 32, 1, 6});
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(static_cast<Addr>(rng.below(1 << 18))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_GsharePredictTrain(benchmark::State &state)
{
    BranchPredUnit bp;
    Instr br;
    br.op = Op::BNE;
    br.rs = 1;
    br.rt = 2;
    br.target = 0x2000;
    uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + static_cast<Addr>((i % 64) * 4);
        BpredLookup l = bp.predict(pc, br);
        bp.update(pc, br, (i & 3) != 0, 0x2000, l.ghrUsed);
        benchmark::DoNotOptimize(l.predTaken);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredictTrain);

void
BM_FunctionalEmulation(benchmark::State &state)
{
    WorkloadScale sc;
    sc.factor = 1.0;
    Workload w = makeWorkload("gcc", sc);
    auto st = std::make_unique<EmuState>();
    auto emu = std::make_unique<Emulator>(w.program, *st);
    Emulator::loadProgram(w.program, *st);
    uint64_t insts = 0;
    for (auto _ : state) {
        if (emu->halted()) {
            state.PauseTiming();
            st = std::make_unique<EmuState>();
            emu = std::make_unique<Emulator>(w.program, *st);
            Emulator::loadProgram(w.program, *st);
            state.ResumeTiming();
        }
        emu->step();
        st->retire(st->mark());
        ++insts;
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
}
BENCHMARK(BM_FunctionalEmulation);

void
BM_PipelineSimulation(benchmark::State &state)
{
    // Whole-machine simulation throughput in committed
    // instructions/second, on the configuration selected by the
    // benchmark argument: 0 base, 1 VP, 2 IR.
    WorkloadScale sc;
    sc.factor = 1.0;
    Workload w = makeWorkload("perl", sc);
    CoreParams cfg;
    switch (state.range(0)) {
      case 1:
        cfg = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                       BranchResolution::Speculative, 0);
        break;
      case 2:
        cfg = irConfig();
        break;
      default:
        cfg = baseConfig();
    }
    // VPIR_CHECK=1 etc. apply here too, so the checker's overhead is
    // directly measurable against the same benchmark without it.
    CoreParams run_cfg = withLimits(cfg, 50000);
    applyHardeningEnv(run_cfg);
    uint64_t insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Core core(run_cfg, w.program);
        state.ResumeTiming();
        const CoreStats &st = core.run();
        insts += st.committedInsts;
    }
    state.SetItemsProcessed(static_cast<int64_t>(insts));
    // Simulated millions of committed instructions per host second —
    // the headline number the sweep engine also reports per cell.
    state.counters["simMIPS"] = benchmark::Counter(
        static_cast<double>(insts) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimulation)->Arg(0)->Arg(1)->Arg(2);

void
BM_CellSetup(benchmark::State &state)
{
    // Sweep-cell setup cost: everything that happens before cycle 0 —
    // workload assembly, image load, functional warmup, core
    // construction. Honors VPIR_WARM_CACHE, so running it with the
    // cache off and on measures the warm-start win directly
    // (tools/perf_smoke.sh does exactly that).
    WorkloadScale sc;
    sc.factor = 1.0;
    CoreParams cfg = withLimits(baseConfig(), 1);
    cfg.warmupInsts = 20000;
    uint64_t cells = 0;
    for (auto _ : state) {
        if (WarmStartCache::enabledFromEnv()) {
            WarmStartCache &cache = WarmStartCache::global();
            auto w = cache.workload("perl", sc);
            auto snap = cache.snapshot("perl", sc, cfg.warmupInsts);
            Simulator sim(cfg, std::move(w), std::move(snap));
            benchmark::DoNotOptimize(&sim.core());
        } else {
            Workload w = makeWorkload("perl", sc);
            Simulator sim(cfg, std::move(w.program));
            benchmark::DoNotOptimize(&sim.core());
        }
        ++cells;
    }
    state.SetItemsProcessed(static_cast<int64_t>(cells));
}
BENCHMARK(BM_CellSetup);

} // anonymous namespace

BENCHMARK_MAIN();
