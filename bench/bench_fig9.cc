/**
 * @file
 * Figure 9: repeated instructions decomposed by input readiness —
 * producers themselves reused, unreused producers at least 50
 * instructions ahead, or unreused producers closer than that
 * (inputs not ready).
 */

#include "bench/bench_util.hh"
#include "redundancy/redundancy.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Figure 9",
           "repeated instructions by producer readiness");
    std::vector<RedundancyStats> all = analyzeAllWorkloads();

    TextTable t({"bench", "prod reused %", "prod-dist >= 50 %",
                 "prod-dist < 50 %"});
    for (size_t i = 0; i < workloadNames().size(); ++i) {
        const std::string &name = workloadNames()[i];
        const RedundancyStats &st = all[i];
        double rep = static_cast<double>(st.repeated);
        t.addRow({name, TextTable::num(pct(st.prodReused, rep), 1),
                  TextTable::num(pct(st.prodFar, rep), 1),
                  TextTable::num(pct(st.prodNear, rep), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper's shape: for most repeated instructions the "
                "inputs are ready\nbecause their producers are "
                "themselves reused; fewer than ~10%% have\nunreused "
                "producers within 50 instructions (inputs not "
                "ready), contrary\nto the expectation that decode-"
                "time operands are rarely available.\n");
    return exitStatus();
}
