/**
 * @file
 * Extension experiment (not a paper figure): the hybrid VP+IR
 * machine the paper's introduction and conclusion call for. The
 * reuse buffer is probed first (non-speculative, early-validating);
 * a value prediction fills in whenever the operand-based test fails.
 *
 * Expected shape: the hybrid captures at least as much redundancy as
 * either technique alone and its speedup is at or above
 * max(VP, IR) on most benchmarks, because reuse converts would-be
 * predictions into non-speculative results (no verification, no
 * re-execution) while prediction covers reuse's not-ready and
 * different-operand misses.
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Hybrid (extension)",
           "speedups: VP alone, IR alone, IR-first hybrid");
    Runner runner;
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "base", baseConfig());
        runner.prefetch(name, "vp",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0));
        runner.prefetch(name, "ir", irConfig());
        runner.prefetch(name, "hybrid", hybridConfig());
    }

    TextTable t({"bench", "VP(Magic,SB)", "IR", "hybrid",
                 "hyb reuse %", "hyb pred %"});
    std::vector<double> vp_s, ir_s, hy_s;
    for (const auto &name : workloadNames()) {
        const CoreStats &base = runner.run(name, "base", baseConfig());
        const CoreStats &vp = runner.run(
            name, "vp",
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, 0));
        const CoreStats &ir = runner.run(name, "ir", irConfig());
        const CoreStats &hy =
            runner.run(name, "hybrid", hybridConfig());
        double sv = speedup(vp, base);
        double si = speedup(ir, base);
        double sh = speedup(hy, base);
        vp_s.push_back(sv);
        ir_s.push_back(si);
        hy_s.push_back(sh);
        t.addRow({name, TextTable::num(sv, 3), TextTable::num(si, 3),
                  TextTable::num(sh, 3),
                  TextTable::num(
                      pct(static_cast<double>(hy.reusedResults),
                          static_cast<double>(hy.committedInsts)),
                      1),
                  TextTable::num(
                      pct(static_cast<double>(hy.vpResultCorrect),
                          static_cast<double>(hy.committedInsts)),
                      1)});
    }
    t.addRow({"HM", TextTable::num(harmonicMean(vp_s), 3),
              TextTable::num(harmonicMean(ir_s), 3),
              TextTable::num(harmonicMean(hy_s), 3), "", ""});
    std::printf("%s\n", t.render().c_str());
    std::printf("reused instructions never re-execute or verify; "
                "predictions cover the\noperand-test misses — the "
                "combination the paper's section 5 anticipates.\n");
    return exitStatus();
}
