/**
 * @file
 * Figure 3: performance benefit of early validation. Two IR runs per
 * benchmark — "early" validates reuse at decode (real IR), "late"
 * validates at execute (hits behave as correct value predictions) —
 * reported as % speedup over base, plus the harmonic-mean bars.
 *
 * Paper's shape: more than half of IR's improvement disappears when
 * validation is deferred to execute.
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Figure 3", "performance benefits of early validation");
    Runner runner;
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "base", baseConfig());
        runner.prefetch(name, "ir-early", irConfig(IrValidation::Early));
        runner.prefetch(name, "ir-late", irConfig(IrValidation::Late));
    }

    TextTable t({"bench", "early speedup %", "late speedup %",
                 "late/early"});
    std::vector<double> early_s, late_s;
    for (const auto &name : workloadNames()) {
        const CoreStats &base = runner.run(name, "base", baseConfig());
        const CoreStats &early =
            runner.run(name, "ir-early", irConfig(IrValidation::Early));
        const CoreStats &late =
            runner.run(name, "ir-late", irConfig(IrValidation::Late));
        double es = speedup(early, base);
        double ls = speedup(late, base);
        early_s.push_back(es);
        late_s.push_back(ls);
        t.addRow({name, TextTable::num(100.0 * (es - 1.0), 2),
                  TextTable::num(100.0 * (ls - 1.0), 2),
                  TextTable::num(
                      es > 1.0 ? (ls - 1.0) / (es - 1.0) : 0.0, 2)});
    }
    double hm_e = harmonicMean(early_s);
    double hm_l = harmonicMean(late_s);
    t.addRow({"HM", TextTable::num(100.0 * (hm_e - 1.0), 2),
              TextTable::num(100.0 * (hm_l - 1.0), 2),
              TextTable::num(
                  hm_e > 1.0 ? (hm_l - 1.0) / (hm_e - 1.0) : 0.0, 2)});
    std::printf("%s\n", t.render().c_str());
    std::printf("paper's claim: \"more than half of the performance "
                "improvement is lost\nif the validation is deferred "
                "to the execution stage\" (late/early < 0.5\nfor the "
                "harmonic mean).\n");
    return exitStatus();
}
