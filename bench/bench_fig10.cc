/**
 * @file
 * Figure 10: the fraction of redundant instructions (repeated +
 * derivable) that IR's non-speculative, operand-based test can
 * capture. The paper's headline: 84-97%.
 */

#include "bench/bench_util.hh"
#include "redundancy/redundancy.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Figure 10", "amount of redundancy that can be reused");
    WorkloadScale scale = benchScale();
    uint64_t limit = benchInstLimit();

    TextTable t({"bench", "redundant %", "reusable %",
                 "reusable/redundant %"});
    for (const auto &name : workloadNames()) {
        Workload w = makeWorkload(name, scale);
        RedundancyParams params;
        params.maxInsts = limit;
        RedundancyStats st = analyzeRedundancy(w.program, params);
        double rp = static_cast<double>(st.resultProducing);
        t.addRow({name,
                  TextTable::num(pct(st.redundant(), rp), 1),
                  TextTable::num(pct(st.reusable, rp), 1),
                  TextTable::num(100.0 * st.reusableFraction(), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper's claim: \"most (84-97%%) of the redundant "
                "instructions in programs\nare amenable to reuse\" — "
                "detecting redundancy non-speculatively from\n"
                "operands does not significantly restrict IR.\n");
    return 0;
}
