/**
 * @file
 * Figure 10: the fraction of redundant instructions (repeated +
 * derivable) that IR's non-speculative, operand-based test can
 * capture. The paper's headline: 84-97%.
 */

#include "bench/bench_util.hh"
#include "redundancy/redundancy.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Figure 10", "amount of redundancy that can be reused");
    std::vector<RedundancyStats> all = analyzeAllWorkloads();

    TextTable t({"bench", "redundant %", "reusable %",
                 "reusable/redundant %"});
    for (size_t i = 0; i < workloadNames().size(); ++i) {
        const std::string &name = workloadNames()[i];
        const RedundancyStats &st = all[i];
        double rp = static_cast<double>(st.resultProducing);
        t.addRow({name,
                  TextTable::num(pct(st.redundant(), rp), 1),
                  TextTable::num(pct(st.reusable, rp), 1),
                  TextTable::num(100.0 * st.reusableFraction(), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper's claim: \"most (84-97%%) of the redundant "
                "instructions in programs\nare amenable to reuse\" — "
                "detecting redundancy non-speculatively from\n"
                "operands does not significantly restrict IR.\n");
    return exitStatus();
}
