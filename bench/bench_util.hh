/**
 * @file
 * Shared plumbing for the experiment harnesses: run a workload under
 * a configuration (with in-process caching so one bench can derive
 * several columns from one run), and common formatting helpers.
 *
 * Environment knobs:
 *   VPIR_BENCH_INSTS  committed-instruction budget per run
 *                     (default 400000)
 *   VPIR_BENCH_SCALE  workload scale factor (default 1.0)
 */

#ifndef VPIR_BENCH_BENCH_UTIL_HH
#define VPIR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <string>

#include "sim/simulator.hh"
#include "stats/table.hh"

namespace vpir
{
namespace bench
{

/** Cached (benchmark, config-label) -> stats runner. */
class Runner
{
  public:
    Runner() : limit(benchInstLimit()), scale(benchScale()) {}

    const CoreStats &
    run(const std::string &workload, const std::string &label,
        const CoreParams &params)
    {
        std::string key = workload + "/" + label;
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        CoreParams p = withLimits(params, limit);
        CoreStats st = runWorkload(workload, p, scale);
        return cache.emplace(key, st).first->second;
    }

    uint64_t instLimit() const { return limit; }

  private:
    uint64_t limit;
    WorkloadScale scale;
    std::map<std::string, CoreStats> cache;
};

/** Conditional-branch direction prediction rate (%). */
inline double
brPredRate(const CoreStats &st)
{
    return st.condBranches
               ? 100.0 * (1.0 - static_cast<double>(st.condMispredicted) /
                                    static_cast<double>(st.condBranches))
               : 0.0;
}

/** Return target prediction rate (%). */
inline double
retPredRate(const CoreStats &st)
{
    return st.returns
               ? 100.0 * (1.0 - static_cast<double>(st.returnMispredicted) /
                                    static_cast<double>(st.returns))
               : 0.0;
}

/** Speedup of @p s over @p base (IPC ratio). */
inline double
speedup(const CoreStats &s, const CoreStats &base)
{
    return base.ipc() > 0.0 ? s.ipc() / base.ipc() : 0.0;
}

/** Mean branch resolution latency in cycles. */
inline double
branchResLat(const CoreStats &st)
{
    return st.branchResCount
               ? static_cast<double>(st.branchResLatSum) /
                     static_cast<double>(st.branchResCount)
               : 0.0;
}

/** Resource contention ratio (denied / requested). */
inline double
contention(const CoreStats &st)
{
    return st.resourceRequests
               ? static_cast<double>(st.resourceDenied) /
                     static_cast<double>(st.resourceRequests)
               : 0.0;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("(paper: Sodani & Sohi, \"Understanding the "
                "Differences Between Value\n Prediction and "
                "Instruction Reuse\", MICRO-31, 1998)\n");
    std::printf("================================================="
                "=====================\n");
}

} // namespace bench
} // namespace vpir

#endif // VPIR_BENCH_BENCH_UTIL_HH
