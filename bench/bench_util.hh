/**
 * @file
 * Shared plumbing for the experiment harnesses: run a workload under
 * a configuration (memoized through the parallel sweep engine so one
 * bench can derive several columns from one run), and common
 * formatting helpers.
 *
 * Environment knobs:
 *   VPIR_BENCH_INSTS    committed-instruction budget per run
 *                       (default 400000)
 *   VPIR_BENCH_SCALE    workload scale factor (default 1.0)
 *   VPIR_JOBS           worker threads (default hardware concurrency)
 *   VPIR_RESULT_CACHE   on-disk result cache directory (off if unset)
 *   VPIR_TIMING_JSON    timing report path (default
 *                       bench_timing.<harness>.json, so a full bench
 *                       run keeps every harness's records)
 *   VPIR_TIMING_VERBOSE per-cell lines in the stderr summary
 *   VPIR_CHECK          =1: lockstep-verify every retired instruction
 *   VPIR_WATCHDOG_CYCLES commit-progress watchdog limit
 *   VPIR_FAULT_*        deterministic fault injection (see configs.hh)
 *   VPIR_ISOLATE        =1: run each sweep cell in a forked child so
 *                       a crash/hang is contained as a CellFailure
 *   VPIR_CELL_TIMEOUT_MS per-cell wall-clock deadline (SIGKILL when
 *                       isolated, cooperative panic in-process)
 *   VPIR_CELL_RLIMIT_MB address-space rlimit per isolated cell
 *   VPIR_WARM_CACHE     =0: disable the warm-start cache (per-cell
 *                       assembly + warmup; byte-identical results)
 */

#ifndef VPIR_BENCH_BENCH_UTIL_HH
#define VPIR_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "redundancy/redundancy.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"
#include "sweep/sweep.hh"

namespace vpir
{
namespace bench
{

/**
 * Memoized (benchmark, configuration) -> stats runner, backed by the
 * process-wide SweepEngine. Results are keyed by a hash of the full
 * CoreParams — not the display label — so two configs that share a
 * label can never alias each other's cached stats, and identical
 * configs under different labels are simulated once.
 *
 * Harnesses call prefetch() for every cell up front (fanning the work
 * out across VPIR_JOBS threads), then run() in table order; run()
 * blocks only on cells still in flight, and tables print byte-identical
 * output for any job count. Calling run() without prefetch() still
 * works — it just serializes on that cell.
 */
class Runner
{
  public:
    Runner() : limit(benchInstLimit()), scale(benchScale()) {}

    ~Runner()
    {
        auto &eng = sweep::SweepEngine::global();
        if (eng.cellsComputed() + eng.cellsFromDiskCache() == 0)
            return;
        eng.printSummary(stderr);
        // Default to a per-harness path: 16 harnesses writing one
        // shared bench_timing.json would each clobber the last one's
        // records. An explicit VPIR_TIMING_JSON is honored as-is.
        const char *path = std::getenv("VPIR_TIMING_JSON");
        std::string def = std::string("bench_timing.") +
                          program_invocation_short_name + ".json";
        eng.writeTimingJson(path && *path ? path : def);
    }

    /** Schedule a cell without waiting for its result. */
    void
    prefetch(const std::string &workload, const std::string &label,
             const CoreParams &params)
    {
        sweep::SweepEngine::global().prefetch(cell(workload, label, params));
    }

    const CoreStats &
    run(const std::string &workload, const std::string &label,
        const CoreParams &params)
    {
        return sweep::SweepEngine::global().get(cell(workload, label, params));
    }

    uint64_t instLimit() const { return limit; }

  private:
    sweep::SweepCell
    cell(const std::string &workload, const std::string &label,
         const CoreParams &params) const
    {
        CoreParams p = withLimits(params, limit);
        applyHardeningEnv(p);
        return sweep::SweepCell{workload, label, p, scale};
    }

    uint64_t limit;
    WorkloadScale scale;
};

/**
 * Process exit status for a bench main(): 1 when any sweep cell
 * failed (the failure details were printed by the Runner destructor's
 * summary), 0 otherwise. Harnesses end with `return exitStatus();` so
 * CI sees per-cell failures instead of a clean-looking table of zeros.
 */
inline int
exitStatus()
{
    return sweep::SweepEngine::global().failures().empty() ? 0 : 1;
}

/**
 * Run the redundancy limit study (fig 8-10) over every workload on
 * VPIR_JOBS threads. Results come back in workloadNames() order, so
 * table output is independent of the job count; an aggregate timing
 * line goes to stderr.
 */
inline std::vector<RedundancyStats>
analyzeAllWorkloads()
{
    const auto &names = workloadNames();
    WorkloadScale scale = benchScale();
    uint64_t limit = benchInstLimit();
    std::vector<RedundancyStats> out(names.size());
    auto t0 = std::chrono::steady_clock::now();
    sweep::parallelFor(names.size(), [&](size_t i) {
        Workload w = makeWorkload(names[i], scale);
        RedundancyParams params;
        params.maxInsts = limit;
        out[i] = analyzeRedundancy(w.program, params);
    });
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    uint64_t insts = 0;
    for (const RedundancyStats &st : out)
        insts += st.totalDynamic;
    std::fprintf(stderr,
                 "[sweep] %zu analysis cells, jobs=%u: wall %.2f s, "
                 "%.1f M insts, %.1f MIPS\n",
                 names.size(), sweep::defaultJobs(), wall,
                 static_cast<double>(insts) / 1e6,
                 wall > 0.0 ? static_cast<double>(insts) / wall / 1e6 : 0.0);
    return out;
}

/** Conditional-branch direction prediction rate (%). */
inline double
brPredRate(const CoreStats &st)
{
    return st.condBranches
               ? 100.0 * (1.0 - static_cast<double>(st.condMispredicted) /
                                    static_cast<double>(st.condBranches))
               : 0.0;
}

/** Return target prediction rate (%). */
inline double
retPredRate(const CoreStats &st)
{
    return st.returns
               ? 100.0 * (1.0 - static_cast<double>(st.returnMispredicted) /
                                    static_cast<double>(st.returns))
               : 0.0;
}

/** Speedup of @p s over @p base (IPC ratio). */
inline double
speedup(const CoreStats &s, const CoreStats &base)
{
    return base.ipc() > 0.0 ? s.ipc() / base.ipc() : 0.0;
}

/** Mean branch resolution latency in cycles. */
inline double
branchResLat(const CoreStats &st)
{
    return st.branchResCount
               ? static_cast<double>(st.branchResLatSum) /
                     static_cast<double>(st.branchResCount)
               : 0.0;
}

/** Resource contention ratio (denied / requested). */
inline double
contention(const CoreStats &st)
{
    return st.resourceRequests
               ? static_cast<double>(st.resourceDenied) /
                     static_cast<double>(st.resourceRequests)
               : 0.0;
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("(paper: Sodani & Sohi, \"Understanding the "
                "Differences Between Value\n Prediction and "
                "Instruction Reuse\", MICRO-31, 1998)\n");
    std::printf("================================================="
                "=====================\n");
}

} // namespace bench
} // namespace vpir

#endif // VPIR_BENCH_BENCH_UTIL_HH
