/**
 * @file
 * Reference values from the paper's tables, printed next to measured
 * values by the bench harnesses. Figures (3-10) have no numeric
 * labels in the paper, so benches for them state the qualitative
 * shape being reproduced instead.
 */

#ifndef VPIR_BENCH_PAPER_REF_HH
#define VPIR_BENCH_PAPER_REF_HH

#include <map>
#include <string>

namespace vpir
{
namespace paper
{

/** Table 2: branch / return prediction rates (%). */
struct Table2Row
{
    double instMillions;
    double brPredRate;
    double retPredRate;
};

inline const std::map<std::string, Table2Row> table2 = {
    {"go", {354.7, 75.8, 99.9}},      {"m88ksim", {491.4, 94.6, 100}},
    {"ijpeg", {439.8, 88.8, 99.9}},   {"perl", {479.1, 95.6, 100}},
    {"vortex", {507.6, 97.8, 99.9}},  {"gcc", {420.8, 92.0, 100}},
    {"compress", {421.2, 89.3, 100}},
};

/** Table 3: reuse and prediction rates (%). */
struct Table3Row
{
    double irResult, irAddr;
    double magicPred, magicMispred, magicAddrPred, magicAddrMispred;
    double lvpPred, lvpMispred, lvpAddrPred, lvpAddrMispred;
};

inline const std::map<std::string, Table3Row> table3 = {
    {"go", {24.3, 19.9, 38.4, 3.3, 26.8, 4.7, 30.4, 4.5, 25.6, 4.0}},
    {"m88ksim",
     {48.5, 33.9, 54.8, 0.6, 42.0, 4.6, 42.0, 2.7, 31.2, 1.3}},
    {"ijpeg", {11.2, 24.0, 16.7, 0.9, 19.4, 2.2, 17.4, 4.4, 18.1, 2.2}},
    {"perl", {19.8, 28.1, 35.4, 1.2, 35.6, 2.0, 26.8, 1.7, 32.0, 1.2}},
    {"vortex",
     {20.9, 16.2, 36.7, 1.1, 26.9, 4.4, 33.8, 3.3, 24.7, 3.3}},
    {"gcc", {18.6, 19.4, 36.5, 1.9, 23.9, 5.2, 29.2, 3.9, 18.9, 2.9}},
    {"compress",
     {16.5, 65.1, 20.5, 0.2, 43.4, 0.03, 17.3, 0.6, 41.7, 0.1}},
};

/** Table 4: % increase in branch squashes from spurious
 *  mispredictions. */
struct Table4Row
{
    double magicMeSb, magicNmeSb, lvpMeSb, lvpNmeSb;
};

inline const std::map<std::string, Table4Row> table4 = {
    {"go", {20.0, 17.1, 37.8, 37.2}},
    {"m88ksim", {3.4, 2.9, 102.9, 99.8}},
    {"ijpeg", {3.3, 3.1, 31.9, 31.8}},
    {"perl", {30.3, 22.0, 39.4, 37.9}},
    {"vortex", {54.4, 51.8, 164.5, 160.4}},
    {"gcc", {16.4, 14.1, 50.9, 49.5}},
    {"compress", {1.5, 1.5, 30.6, 30.6}},
};

/** Table 5: squashed work and its recovery by IR. */
struct Table5Row
{
    double instExecutedMillions;
    double execSquashedPct;   //!< % of executed insts squashed
    double squashRecoveredPct; //!< % of squashed insts recovered
};

inline const std::map<std::string, Table5Row> table5 = {
    {"go", {450.4, 15.0, 36.6}},     {"m88ksim", {543.5, 4.9, 53.9}},
    {"ijpeg", {454.8, 2.5, 49.4}},   {"perl", {530.7, 4.7, 33.8}},
    {"vortex", {560.9, 1.2, 29.8}},  {"gcc", {466.8, 5.7, 35.3}},
    {"compress", {490.8, 9.8, 27.7}},
};

/** Table 6: % of dynamic instructions executed 1/2/3 times
 *  (VP_Magic, ME-SB, 1-cycle verification latency). */
struct Table6Row
{
    double once, twice, thrice;
};

inline const std::map<std::string, Table6Row> table6 = {
    {"go", {94.4, 4.9, 0.7}},      {"m88ksim", {97.6, 2.3, 0.1}},
    {"ijpeg", {98.9, 1.0, 0.1}},   {"perl", {98.3, 1.6, 0.2}},
    {"vortex", {98.5, 1.5, 0.0}},  {"gcc", {96.3, 3.3, 0.4}},
    {"compress", {99.6, 0.4, 0.0}},
};

} // namespace paper
} // namespace vpir

#endif // VPIR_BENCH_PAPER_REF_HH
