/**
 * @file
 * Ablations of the design choices DESIGN.md calls out (not paper
 * experiments):
 *   1. VP with result-only / address-only prediction — where the VP
 *      speedup comes from per benchmark.
 *   2. Structure capacity at fixed associativity — how sensitive the
 *      Table 3 capture rates are to the paper's 16K/4K sizing.
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Ablations", "VP prediction kinds and structure capacity");
    Runner runner;

    // Schedule every cell of both sections before reading any result.
    {
        CoreParams full = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                   BranchResolution::Speculative, 0);
        CoreParams res_only = full;
        res_only.vpPredictAddresses = false;
        CoreParams addr_only = full;
        addr_only.vpPredictResults = false;
        for (const auto &name : workloadNames()) {
            runner.prefetch(name, "base", baseConfig());
            runner.prefetch(name, "vp-full", full);
            runner.prefetch(name, "vp-res", res_only);
            runner.prefetch(name, "vp-addr", addr_only);
        }
        for (unsigned rb_entries : {512u, 2048u, 4096u, 8192u}) {
            CoreParams ir = irConfig();
            ir.rb.entries = rb_entries;
            CoreParams vp = full;
            vp.vpt.entries = rb_entries * 4;
            std::string tag = std::to_string(rb_entries);
            for (const char *wname : {"m88ksim", "perl"}) {
                runner.prefetch(wname, "ir-" + tag, ir);
                runner.prefetch(wname, "vp-" + tag, vp);
            }
        }
    }

    std::printf("--- 1. VP_Magic ME-SB: which predictions matter "
                "---\n");
    TextTable t1({"bench", "full", "results only", "addresses only"});
    for (const auto &name : workloadNames()) {
        const CoreStats &base = runner.run(name, "base", baseConfig());
        CoreParams full = vpConfig(VpScheme::Magic,
                                   ReexecPolicy::Multiple,
                                   BranchResolution::Speculative, 0);
        CoreParams res_only = full;
        res_only.vpPredictAddresses = false;
        CoreParams addr_only = full;
        addr_only.vpPredictResults = false;
        t1.addRow({name,
                   TextTable::num(
                       speedup(runner.run(name, "vp-full", full),
                               base),
                       3),
                   TextTable::num(
                       speedup(runner.run(name, "vp-res", res_only),
                               base),
                       3),
                   TextTable::num(
                       speedup(runner.run(name, "vp-addr", addr_only),
                               base),
                       3)});
    }
    std::printf("%s\n", t1.render().c_str());

    std::printf("--- 2. capture rate vs capacity (m88ksim, perl) "
                "---\n");
    TextTable t2({"entries (RB / VPT)", "m88k reuse %", "m88k pred %",
                  "perl reuse %", "perl pred %"});
    for (unsigned rb_entries : {512u, 2048u, 4096u, 8192u}) {
        unsigned vpt_entries = rb_entries * 4;
        CoreParams ir = irConfig();
        ir.rb.entries = rb_entries;
        CoreParams vp = vpConfig(VpScheme::Magic,
                                 ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0);
        vp.vpt.entries = vpt_entries;
        std::string tag = std::to_string(rb_entries);
        auto reuse_rate = [&](const std::string &wname) {
            const CoreStats &s =
                runner.run(wname, "ir-" + tag, ir);
            return pct(static_cast<double>(s.reusedResults),
                       static_cast<double>(s.committedInsts));
        };
        auto pred_rate = [&](const std::string &wname) {
            const CoreStats &s = runner.run(wname, "vp-" + tag, vp);
            return pct(static_cast<double>(s.vpResultCorrect),
                       static_cast<double>(s.committedInsts));
        };
        t2.addRow({std::to_string(rb_entries) + " / " +
                       std::to_string(vpt_entries),
                   TextTable::num(reuse_rate("m88ksim"), 1),
                   TextTable::num(pred_rate("m88ksim"), 1),
                   TextTable::num(reuse_rate("perl"), 1),
                   TextTable::num(pred_rate("perl"), 1)});
    }
    std::printf("%s\n", t2.render().c_str());
    std::printf("observation: once the hot static instructions fit, "
                "capture is bounded\nby the 4 instances per "
                "instruction, not capacity — supporting the paper's\n"
                "equal-hardware sizing of the two structures.\n");
    return exitStatus();
}
