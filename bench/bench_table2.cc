/**
 * @file
 * Table 2: benchmark programs, dynamic instruction counts, and
 * branch / return prediction rates on the base machine.
 *
 * Substitution note: absolute instruction counts are scaled down
 * (DESIGN.md §2); the reproduction targets are the per-benchmark
 * prediction-rate ordering and levels.
 */

#include "bench/bench_util.hh"
#include "bench/paper_ref.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Table 2", "benchmarks, branch and return prediction rates");
    Runner runner;
    for (const auto &name : workloadNames())
        runner.prefetch(name, "base", baseConfig());

    TextTable t({"bench", "insts(K)", "br pred %", "(paper)",
                 "ret pred %", "(paper)"});
    for (const auto &name : workloadNames()) {
        const CoreStats &st = runner.run(name, "base", baseConfig());
        const paper::Table2Row &ref = paper::table2.at(name);
        t.addRow({name,
                  TextTable::num(st.committedInsts / 1000.0, 0),
                  TextTable::num(brPredRate(st), 1),
                  TextTable::num(ref.brPredRate, 1),
                  TextTable::num(retPredRate(st), 1),
                  TextTable::num(ref.retPredRate, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("note: paper instruction counts are 354-508M after "
                "fast-forward; this\nreproduction runs scaled-down "
                "synthetic workloads (VPIR_BENCH_INSTS=%llu).\n",
                static_cast<unsigned long long>(runner.instLimit()));
    return exitStatus();
}
