/**
 * @file
 * Figure 8: classification of instruction results into unique,
 * repeated, derivable, and unaccounted (limit study, §4.3), over
 * result-producing dynamic instructions.
 */

#include "bench/bench_util.hh"
#include "redundancy/redundancy.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Figure 8",
           "classification of results: unique / repeated / "
           "derivable / unaccounted");
    std::vector<RedundancyStats> all = analyzeAllWorkloads();

    TextTable t({"bench", "unique %", "repeated %", "derivable %",
                 "unaccounted %"});
    for (size_t i = 0; i < workloadNames().size(); ++i) {
        const std::string &name = workloadNames()[i];
        const RedundancyStats &st = all[i];
        double rp = static_cast<double>(st.resultProducing);
        t.addRow({name, TextTable::num(pct(st.unique, rp), 1),
                  TextTable::num(pct(st.repeated, rp), 1),
                  TextTable::num(pct(st.derivable, rp), 1),
                  TextTable::num(pct(st.unaccounted, rp), 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper's shape: few (<5%%) unique results, most "
                "(80-90%%) repeated, few\n(<5%%) derivable; the "
                "buffering cap (10K instances/static instruction)\n"
                "leaves a small unaccounted remainder.\n");
    return exitStatus();
}
