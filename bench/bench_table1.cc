/**
 * @file
 * Table 1: base machine parameters. Prints the configuration the
 * simulator instantiates so it can be eyeballed against the paper.
 */

#include "bench/bench_util.hh"
#include "isa/decode.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Table 1", "details of the base simulator");
    CoreParams p = baseConfig();

    TextTable t({"parameter", "this simulator", "paper"});
    t.addRow({"fetch width", std::to_string(p.fetchWidth),
              "4 insts/cycle, 1 taken branch, no line crossing"});
    t.addRow({"icache",
              std::to_string(p.icache.sizeBytes / 1024) + "KB " +
                  std::to_string(p.icache.ways) + "-way " +
                  std::to_string(p.icache.lineBytes) + "B line, " +
                  std::to_string(p.icache.missLatency) + "-cycle miss",
              "64KB 2-way 32B, 6-cycle miss"});
    t.addRow({"branch predictor",
              "gshare " + std::to_string(p.bpred.historyBits) +
                  "-bit history, " +
                  std::to_string(p.bpred.tableEntries / 1024) +
                  "K counters",
              "gshare, 10-bit history, 16K counters"});
    t.addRow({"issue",
              "OoO " + std::to_string(p.issueWidth) + " ops/cycle, " +
                  std::to_string(p.robEntries) + "-entry ROB, " +
                  std::to_string(p.lsqEntries) + "-entry LSQ, " +
                  std::to_string(p.maxUnresolvedBranches) +
                  " unresolved branches",
              "OoO 4/cycle, 32 ROB, 32 LSQ, 8 branches"});
    t.addRow({"int ALUs", std::to_string(fuPoolSize(FuType::IntAlu)),
              "8"});
    t.addRow({"load/store units",
              std::to_string(fuPoolSize(FuType::LoadStore)), "2"});
    t.addRow({"FP adders", std::to_string(fuPoolSize(FuType::FpAdder)),
              "4"});
    t.addRow({"int mult/div",
              std::to_string(fuPoolSize(FuType::IntMulDiv)), "1"});
    t.addRow({"FP mult/div",
              std::to_string(fuPoolSize(FuType::FpMulDiv)), "1"});
    t.addRow({"int alu latency",
              std::to_string(decodeInfo(Op::ADD).opLat) + "/" +
                  std::to_string(decodeInfo(Op::ADD).issueLat),
              "1/1"});
    t.addRow({"int mult latency",
              std::to_string(decodeInfo(Op::MULT).opLat) + "/" +
                  std::to_string(decodeInfo(Op::MULT).issueLat),
              "3/1"});
    t.addRow({"int div latency",
              std::to_string(decodeInfo(Op::DIV).opLat) + "/" +
                  std::to_string(decodeInfo(Op::DIV).issueLat),
              "20/19"});
    t.addRow({"fp add latency",
              std::to_string(decodeInfo(Op::ADD_D).opLat) + "/" +
                  std::to_string(decodeInfo(Op::ADD_D).issueLat),
              "2/1"});
    t.addRow({"fp mult latency",
              std::to_string(decodeInfo(Op::MUL_D).opLat) + "/" +
                  std::to_string(decodeInfo(Op::MUL_D).issueLat),
              "4/1"});
    t.addRow({"fp div latency",
              std::to_string(decodeInfo(Op::DIV_D).opLat) + "/" +
                  std::to_string(decodeInfo(Op::DIV_D).issueLat),
              "12/12"});
    t.addRow({"fp sqrt latency",
              std::to_string(decodeInfo(Op::SQRT_D).opLat) + "/" +
                  std::to_string(decodeInfo(Op::SQRT_D).issueLat),
              "24/24"});
    t.addRow({"dcache",
              std::to_string(p.dcache.sizeBytes / 1024) + "KB " +
                  std::to_string(p.dcache.ways) + "-way " +
                  std::to_string(p.dcache.lineBytes) + "B line, " +
                  std::to_string(p.dcache.missLatency) +
                  "-cycle miss, " + std::to_string(p.dcachePorts) +
                  " ports",
              "64KB 2-way 32B, 6-cycle miss, dual ported"});
    t.addRow({"VPT (VP runs)", "16K entries, 4-way, LRU",
              "16K entries, 4-way, LRU"});
    t.addRow({"RB (IR runs)", "4K entries, 4-way, LRU",
              "4K entries, 4-way, LRU"});
    std::printf("%s\n", t.render().c_str());
    return exitStatus();
}
