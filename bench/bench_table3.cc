/**
 * @file
 * Table 3: IR reuse rates and VP_Magic / VP_LVP prediction and
 * misprediction rates. Result percentages are over committed
 * instructions; address percentages are over committed memory
 * operations, as in the paper.
 */

#include "bench/bench_util.hh"
#include "bench/paper_ref.hh"

using namespace vpir;
using namespace vpir::bench;

namespace
{

double
overInsts(uint64_t n, const CoreStats &st)
{
    return pct(static_cast<double>(n),
               static_cast<double>(st.committedInsts));
}

double
overMem(uint64_t n, const CoreStats &st)
{
    return pct(static_cast<double>(n),
               static_cast<double>(st.committedMemOps));
}

} // anonymous namespace

int
main()
{
    banner("Table 3", "percentage IR and VP rates");
    Runner runner;

    CoreParams magic = vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                BranchResolution::Speculative, 0);
    CoreParams lvp = vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                              BranchResolution::Speculative, 0);

    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "ir", irConfig());
        runner.prefetch(name, "magic", magic);
        runner.prefetch(name, "lvp", lvp);
    }

    TextTable t({"bench", "ir-res", "(p)", "ir-adr", "(p)", "mag-res",
                 "(p)", "mag-mis", "(p)", "mag-adr", "(p)", "lvp-res",
                 "(p)", "lvp-mis", "(p)"});
    for (const auto &name : workloadNames()) {
        const CoreStats &ir = runner.run(name, "ir", irConfig());
        const CoreStats &m = runner.run(name, "magic", magic);
        const CoreStats &l = runner.run(name, "lvp", lvp);
        const paper::Table3Row &ref = paper::table3.at(name);
        t.addRow({name,
                  TextTable::num(overInsts(ir.reusedResults, ir), 1),
                  TextTable::num(ref.irResult, 1),
                  TextTable::num(overMem(ir.reusedAddrs, ir), 1),
                  TextTable::num(ref.irAddr, 1),
                  TextTable::num(overInsts(m.vpResultCorrect, m), 1),
                  TextTable::num(ref.magicPred, 1),
                  TextTable::num(overInsts(m.vpResultWrong, m), 1),
                  TextTable::num(ref.magicMispred, 1),
                  TextTable::num(overMem(m.vpAddrCorrect, m), 1),
                  TextTable::num(ref.magicAddrPred, 1),
                  TextTable::num(overInsts(l.vpResultCorrect, l), 1),
                  TextTable::num(ref.lvpPred, 1),
                  TextTable::num(overInsts(l.vpResultWrong, l), 1),
                  TextTable::num(ref.lvpMispred, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("address columns for VP_LVP (paper: pred 18.1-41.7%%, "
                "mispred 0.1-4.0%%):\n");
    TextTable t2({"bench", "lvp-adr", "(p)", "lvp-adr-mis", "(p)"});
    for (const auto &name : workloadNames()) {
        const CoreStats &l = runner.run(name, "lvp", lvp);
        const paper::Table3Row &ref = paper::table3.at(name);
        t2.addRow({name, TextTable::num(overMem(l.vpAddrCorrect, l), 1),
                   TextTable::num(ref.lvpAddrPred, 1),
                   TextTable::num(overMem(l.vpAddrWrong, l), 1),
                   TextTable::num(ref.lvpAddrMispred, 1)});
    }
    std::printf("%s\n", t2.render().c_str());
    std::printf("shape checks: VP_Magic result rate >= IR result rate "
                "(all but compress\nin the paper); compress address "
                "reuse is the outlier high value; VP_LVP\nrates sit "
                "below VP_Magic with higher mispredictions.\n");
    return exitStatus();
}
