/**
 * @file
 * Figure 7: speedups over base for VP_LVP {ME,NME} x {SB,NSB} at 0-
 * and 1-cycle VP-verification latency, with harmonic-mean bars.
 * (Not comparable with the IR bars: LVP stores one instance per
 * instruction.)
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

namespace
{

void
prefetchHalf(Runner &runner, unsigned lat)
{
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "base", baseConfig());
        std::string l = std::to_string(lat);
        runner.prefetch(name, "lvp-me-sb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, lat));
        runner.prefetch(name, "lvp-nme-sb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                                 BranchResolution::Speculative, lat));
        runner.prefetch(name, "lvp-me-nsb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                                 BranchResolution::NonSpeculative, lat));
        runner.prefetch(name, "lvp-nme-nsb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                                 BranchResolution::NonSpeculative, lat));
    }
}

void
half(Runner &runner, unsigned lat)
{
    std::printf("--- %u-cycle VP-verification latency ---\n", lat);
    TextTable t({"bench", "ME-SB", "NME-SB", "ME-NSB", "NME-NSB"});
    std::vector<std::vector<double>> cols(4);
    for (const auto &name : workloadNames()) {
        const CoreStats &base = runner.run(name, "base", baseConfig());
        std::string l = std::to_string(lat);
        const CoreStats *runs[4] = {
            &runner.run(name, "lvp-me-sb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, lat)),
            &runner.run(name, "lvp-nme-sb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                                 BranchResolution::Speculative, lat)),
            &runner.run(name, "lvp-me-nsb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Multiple,
                                 BranchResolution::NonSpeculative,
                                 lat)),
            &runner.run(name, "lvp-nme-nsb-" + l,
                        vpConfig(VpScheme::Lvp, ReexecPolicy::Single,
                                 BranchResolution::NonSpeculative,
                                 lat)),
        };
        std::vector<std::string> row = {name};
        for (int c = 0; c < 4; ++c) {
            double s = speedup(*runs[c], base);
            cols[c].push_back(s);
            row.push_back(TextTable::num(s, 3));
        }
        t.addRow(row);
    }
    std::vector<std::string> hm = {"HM"};
    for (int c = 0; c < 4; ++c)
        hm.push_back(TextTable::num(harmonicMean(cols[c]), 3));
    t.addRow(hm);
    std::printf("%s\n", t.render().c_str());
}

} // anonymous namespace

int
main()
{
    banner("Figure 7", "speedups with VP_LVP");
    Runner runner;
    prefetchHalf(runner, 0);
    prefetchHalf(runner, 1);
    half(runner, 0);
    half(runner, 1);
    std::printf(
        "shape checks (paper §4.2.4):\n"
        "  1. With LVP's accuracy, SB configurations degrade "
        "performance (< 1.0)\n     on most benchmarks.\n"
        "  2. Unlike VP_Magic, NSB beats SB: with high value "
        "misprediction rates\n     it pays to delay branch "
        "resolution.\n"
        "  3. 1-cycle verification lowers everything further.\n");
    return exitStatus();
}
