/**
 * @file
 * Figure 5: resource contention (ready instructions denied execution
 * resources / total requests), normalised to the base machine, for
 * the four VP_Magic configurations and IR. The paper reports 0-cycle
 * verification latency (1-cycle is similar); we print both halves'
 * headline (0-cycle) series.
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

int
main()
{
    banner("Figure 5", "resource contention normalised to base");
    Runner runner;
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "base", baseConfig());
        runner.prefetch(name, "magic-me-sb",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, 0));
        runner.prefetch(name, "magic-nme-sb",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::Speculative, 0));
        runner.prefetch(name, "magic-me-nsb",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::NonSpeculative, 0));
        runner.prefetch(name, "magic-nme-nsb",
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::NonSpeculative, 0));
        runner.prefetch(name, "ir", irConfig());
    }

    TextTable t({"bench", "base", "ME-SB", "NME-SB", "ME-NSB",
                 "NME-NSB", "reuse-n+d"});
    for (const auto &name : workloadNames()) {
        const CoreStats &base = runner.run(name, "base", baseConfig());
        double b = contention(base);
        auto norm = [&](const CoreStats &s) {
            return TextTable::num(b > 0 ? contention(s) / b : 0.0, 3);
        };
        const CoreStats &me_sb = runner.run(
            name, "magic-me-sb",
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::Speculative, 0));
        const CoreStats &nme_sb = runner.run(
            name, "magic-nme-sb",
            vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                     BranchResolution::Speculative, 0));
        const CoreStats &me_nsb = runner.run(
            name, "magic-me-nsb",
            vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                     BranchResolution::NonSpeculative, 0));
        const CoreStats &nme_nsb = runner.run(
            name, "magic-nme-nsb",
            vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                     BranchResolution::NonSpeculative, 0));
        const CoreStats &ir = runner.run(name, "ir", irConfig());
        t.addRow({name, "1.000", norm(me_sb), norm(nme_sb),
                  norm(me_nsb), norm(nme_nsb), norm(ir)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("shape checks: VP raises contention (re-executions "
                "and earlier-ready\ninstructions clustering "
                "requests); IR mostly lowers it (reused\n"
                "instructions never occupy execution resources); "
                "ME and NME are nearly\nidentical, as in the paper's "
                "discussion of Table 6.\n");
    return exitStatus();
}
