/**
 * @file
 * Figure 6: speedups over base for VP_Magic {ME,NME} x {SB,NSB} and
 * IR (scheme S_{n+d}), at 0- and 1-cycle VP-verification latency,
 * with harmonic-mean bars.
 */

#include "bench/bench_util.hh"

using namespace vpir;
using namespace vpir::bench;

namespace
{

void
prefetchHalf(Runner &runner, unsigned lat)
{
    for (const auto &name : workloadNames()) {
        runner.prefetch(name, "base", baseConfig());
        std::string l = std::to_string(lat);
        runner.prefetch(name, "magic-me-sb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, lat));
        runner.prefetch(name, "magic-nme-sb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::Speculative, lat));
        runner.prefetch(name, "magic-me-nsb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Multiple,
                                 BranchResolution::NonSpeculative, lat));
        runner.prefetch(name, "magic-nme-nsb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::NonSpeculative, lat));
        runner.prefetch(name, "ir", irConfig());
    }
}

void
half(Runner &runner, unsigned lat)
{
    std::printf("--- %u-cycle VP-verification latency ---\n", lat);
    TextTable t({"bench", "ME-SB", "NME-SB", "ME-NSB", "NME-NSB",
                 "reuse-n+d"});
    std::vector<std::vector<double>> cols(5);
    for (const auto &name : workloadNames()) {
        const CoreStats &base = runner.run(name, "base", baseConfig());
        std::string l = std::to_string(lat);
        const CoreStats *runs[5] = {
            &runner.run(name, "magic-me-sb-" + l,
                        vpConfig(VpScheme::Magic,
                                 ReexecPolicy::Multiple,
                                 BranchResolution::Speculative, lat)),
            &runner.run(name, "magic-nme-sb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::Speculative, lat)),
            &runner.run(name, "magic-me-nsb-" + l,
                        vpConfig(VpScheme::Magic,
                                 ReexecPolicy::Multiple,
                                 BranchResolution::NonSpeculative,
                                 lat)),
            &runner.run(name, "magic-nme-nsb-" + l,
                        vpConfig(VpScheme::Magic, ReexecPolicy::Single,
                                 BranchResolution::NonSpeculative,
                                 lat)),
            &runner.run(name, "ir", irConfig()),
        };
        std::vector<std::string> row = {name};
        for (int c = 0; c < 5; ++c) {
            double s = speedup(*runs[c], base);
            cols[c].push_back(s);
            row.push_back(TextTable::num(s, 3));
        }
        t.addRow(row);
    }
    std::vector<std::string> hm = {"HM"};
    for (int c = 0; c < 5; ++c)
        hm.push_back(TextTable::num(harmonicMean(cols[c]), 3));
    t.addRow(hm);
    std::printf("%s\n", t.render().c_str());
}

} // anonymous namespace

int
main()
{
    banner("Figure 6", "speedups with VP_Magic and IR (S_n+d)");
    Runner runner;
    prefetchHalf(runner, 0);
    prefetchHalf(runner, 1);
    half(runner, 0);
    half(runner, 1);
    std::printf(
        "shape checks (paper §4.2.4):\n"
        "  1. SB outperforms NSB for VP_Magic (spurious squashes are "
        "outweighed by\n     earlier resolution).\n"
        "  2. ME vs NME is negligible.\n"
        "  3. 1-cycle verification hurts, and hurts NSB more than "
        "SB.\n"
        "  4. IR can match or beat VP on some benchmarks despite "
        "capturing less\n     redundancy.\n");
    return exitStatus();
}
